"""Unit tests for the report renderers."""

from repro.experiments.reporting import pct, render_series, render_table


class TestRenderTable:
    def test_alignment_and_rule(self):
        text = render_table(["name", "value"], [["a", "1"], ["long-name", "22"]])
        lines = text.splitlines()
        assert len(lines) == 4
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all rows padded to equal width
        assert set(lines[1]) <= {"-", " "}

    def test_cells_right_justified(self):
        text = render_table(["h"], [["x"]])
        assert "h" in text.splitlines()[0]

    def test_empty_rows(self):
        text = render_table(["a", "b"], [])
        assert len(text.splitlines()) == 2


class TestRenderSeries:
    def test_bars_scale_to_peak(self):
        text = render_series(
            "T", ["x"], [("A", [10.0]), ("B", [5.0])], unit="s", bar_width=10
        )
        bar_a = text.splitlines()[1].split("|")[1]
        bar_b = text.splitlines()[2].split("|")[1]
        assert len(bar_a) == 10
        assert len(bar_b) == 5

    def test_zero_values_have_no_bar(self):
        text = render_series("T", ["x"], [("A", [0.0])], unit="s")
        assert text.splitlines()[1].endswith("|")

    def test_title_first_line(self):
        assert render_series("My Figure", [], [], "s").splitlines()[0] == "My Figure"


class TestPct:
    def test_two_decimals(self):
        assert pct(33.1) == "33.10"
        assert pct(0) == "0.00"
