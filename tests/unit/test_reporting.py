"""Unit tests for the report renderers."""

from repro.experiments.reporting import pct, render_series, render_table


class TestRenderTable:
    def test_alignment_and_rule(self):
        text = render_table(["name", "value"], [["a", "1"], ["long-name", "22"]])
        lines = text.splitlines()
        assert len(lines) == 4
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all rows padded to equal width
        assert set(lines[1]) <= {"-", " "}

    def test_cells_right_justified(self):
        text = render_table(["h"], [["x"]])
        assert "h" in text.splitlines()[0]

    def test_empty_rows(self):
        text = render_table(["a", "b"], [])
        assert len(text.splitlines()) == 2


class TestRenderSeries:
    def test_bars_scale_to_peak(self):
        text = render_series(
            "T", ["x"], [("A", [10.0]), ("B", [5.0])], unit="s", bar_width=10
        )
        bar_a = text.splitlines()[1].split("|")[1]
        bar_b = text.splitlines()[2].split("|")[1]
        assert len(bar_a) == 10
        assert len(bar_b) == 5

    def test_zero_values_have_no_bar(self):
        text = render_series("T", ["x"], [("A", [0.0])], unit="s")
        assert text.splitlines()[1].endswith("|")

    def test_title_first_line(self):
        assert render_series("My Figure", [], [], "s").splitlines()[0] == "My Figure"


class TestPct:
    def test_two_decimals(self):
        assert pct(33.1) == "33.10"
        assert pct(0) == "0.00"


class TestRoutingCacheLine:
    def _run(self, hits, misses, workers):
        from types import SimpleNamespace

        from repro.pipeline import RunReport

        rep = RunReport(label="x")
        rep.record(
            "pdw.pathgen",
            wall_s=0.1,
            counters={
                "routing_cache_hits": float(hits),
                "routing_cache_misses": float(misses),
                "workers": float(workers),
            },
        )
        return SimpleNamespace(report=rep)

    def test_aggregates_across_runs(self):
        from repro.experiments.timings import routing_cache_line

        line = routing_cache_line([self._run(90, 10, 1), self._run(10, 90, 4)])
        assert "100 hits / 100 misses" in line
        assert "50.0% hit rate" in line
        assert "workers: 4" in line

    def test_silent_without_counters(self):
        from types import SimpleNamespace

        from repro.experiments.timings import routing_cache_line
        from repro.pipeline import RunReport

        empty = SimpleNamespace(report=RunReport(label="y"))
        assert routing_cache_line([empty]) == ""
