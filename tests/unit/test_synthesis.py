"""Unit tests for the synthesis orchestrator options."""

import pytest

from repro.arch import DeviceKind, figure2_chip
from repro.assay import Operation, Reagent, SequencingGraph
from repro.errors import SynthesisError
from repro.synth import ArchSpec, synthesize


def tiny_assay():
    g = SequencingGraph("tiny")
    g.add_reagent(Reagent("r1", "sample"))
    g.add_reagent(Reagent("r2", "enzyme"))
    g.add_operation(Operation("o1", "mix"), ["r1", "r2"])
    g.add_operation(Operation("o2", "detect"), ["o1"])
    return g


class TestSynthesizeOptions:
    def test_auto_inventory(self):
        result = synthesize(tiny_assay())
        assert result.device_count >= 2  # at least a mixer and a detector

    def test_explicit_inventory_respected(self):
        inv = {DeviceKind.MIXER: 2, DeviceKind.DETECTOR: 1}
        result = synthesize(tiny_assay(), inventory=inv)
        assert result.device_count == 3

    def test_arch_spec_ports(self):
        result = synthesize(
            tiny_assay(), spec=ArchSpec(flow_ports=2, waste_ports=3)
        )
        assert len(result.chip.flow_ports) == 2
        assert len(result.chip.waste_ports) == 3

    def test_prebuilt_chip_with_binding(self):
        chip = figure2_chip()
        binding = {"o1": "mixer", "o2": "det1"}
        result = synthesize(tiny_assay(), chip=chip, binding=binding)
        assert result.chip is chip
        assert result.binding == binding
        result.schedule.validate()

    def test_prebuilt_chip_auto_binding(self):
        result = synthesize(tiny_assay(), chip=figure2_chip())
        assert result.binding["o1"] == "mixer"
        assert result.binding["o2"] in ("det1", "det2")

    def test_explicit_reagent_ports(self):
        chip = figure2_chip()
        ports = {"r1": "in1", "r2": "in2"}
        result = synthesize(
            tiny_assay(), chip=chip,
            binding={"o1": "mixer", "o2": "det1"},
            reagent_ports=ports,
        )
        assert result.reagent_ports == ports
        tr = result.schedule.get("tr:r1->o1")
        assert tr.path[0] == "in1"

    def test_invalid_assay_rejected(self):
        g = SequencingGraph("bad")
        g.add_reagent(Reagent("r1", "x"))
        with pytest.raises(Exception):
            synthesize(g)  # no operations

    def test_incompatible_binding_rejected(self):
        # o1 is a mix; det1 cannot execute it.
        with pytest.raises(SynthesisError):
            synthesize(
                tiny_assay(),
                chip=figure2_chip(),
                binding={"o1": "det1", "o2": "det2"},
            )

    def test_incomplete_binding_rejected(self):
        with pytest.raises(SynthesisError):
            synthesize(tiny_assay(), chip=figure2_chip(), binding={"o1": "mixer"})

    def test_unknown_device_in_binding_rejected(self):
        with pytest.raises(SynthesisError):
            synthesize(
                tiny_assay(),
                chip=figure2_chip(),
                binding={"o1": "ghost", "o2": "det1"},
            )
