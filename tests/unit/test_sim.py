"""Unit tests for the discrete-event schedule executor."""

import pytest

from repro.schedule import ScheduledTask
from repro.sim import ScheduleExecutor, SimEventKind, simulate_plan


class TestBaselineExecution:
    @pytest.fixture(scope="class")
    def report(self, demo_synthesis):
        return ScheduleExecutor(demo_synthesis).run()

    def test_every_operation_ran(self, report, demo_synthesis):
        assert report.count(SimEventKind.OPERATION_RUN) == len(
            demo_synthesis.assay.operations
        )

    def test_every_reagent_injected(self, report, demo_synthesis):
        assert report.count(SimEventKind.INJECTION) == len(
            [
                (r.id, c)
                for r in demo_synthesis.assay.reagents
                for c in demo_synthesis.assay.consumers_of(r.id)
            ]
        )

    def test_no_structural_anomalies(self, report):
        """The wash-free baseline is structurally sound: only residue
        anomalies (which washes later fix) may appear."""
        kinds = {e.kind for e in report.anomalies}
        assert kinds <= {SimEventKind.CROSS_CONTAMINATION}

    def test_baseline_contaminations_exist(self, report):
        # The whole paper is motivated by this being non-empty.
        assert report.count(SimEventKind.CROSS_CONTAMINATION) > 0

    def test_terminal_product_disposed(self, report):
        assert report.count(SimEventKind.WASTE_DISPOSED) == 1

    def test_summary_lists_counts(self, report):
        assert "operation_run=" in report.summary()


class TestPlanExecution:
    def test_pdw_plan_has_zero_anomalies(self, demo_pdw_plan, demo_synthesis):
        report = simulate_plan(demo_pdw_plan, demo_synthesis)
        assert report.ok, [str(a) for a in report.anomalies]

    def test_dawo_plan_has_zero_anomalies(self, demo_dawo_plan, demo_synthesis):
        report = simulate_plan(demo_dawo_plan, demo_synthesis)
        assert report.ok, [str(a) for a in report.anomalies]

    def test_washes_recorded(self, demo_pdw_plan, demo_synthesis):
        report = simulate_plan(demo_pdw_plan, demo_synthesis)
        assert report.count(SimEventKind.WASH_RUN) == demo_pdw_plan.n_wash


class TestAnomalyDetection:
    def test_transport_from_empty_device_flagged(self, demo_synthesis):
        # Move the producing op after its consumer transport: content missing.
        schedule = demo_synthesis.schedule.copy()
        op = schedule.get("op:o1")
        tr = schedule.get("tr:o1->o3")
        schedule.replace(op.at(tr.end + 20))
        report = ScheduleExecutor(demo_synthesis, schedule).run()
        assert report.count(SimEventKind.MISSING_CONTENT) >= 1

    def test_operation_without_inputs_flagged(self, demo_synthesis):
        schedule = demo_synthesis.schedule.copy()
        # Drop one input delivery of o1 entirely.
        schedule.remove("tr:r1->o1")
        report = ScheduleExecutor(demo_synthesis, schedule).run()
        assert any(
            "o1" in e.detail for e in report.events
            if e.kind is SimEventKind.MISSING_INPUT
        )

    def test_wrong_port_flagged(self, demo_synthesis):
        schedule = demo_synthesis.schedule.copy()
        task = schedule.get("tr:r1->o1")
        other_port = next(
            p for p in demo_synthesis.chip.flow_ports
            if p != demo_synthesis.reagent_ports["r1"]
        )
        # Rebuild the injection from a different port.
        from repro.arch.routing import Router

        router = Router(demo_synthesis.chip)
        new_path = router.shortest_path(other_port, task.path[-1])
        schedule.remove(task.id)
        schedule.add(
            ScheduledTask(
                id=task.id, kind=task.kind, start=task.start,
                duration=task.duration, path=new_path, device=task.device,
                fluid_type=task.fluid_type, edge=task.edge,
            )
        )
        report = ScheduleExecutor(demo_synthesis, schedule).run()
        assert report.count(SimEventKind.WRONG_PORT) == 1

    def test_leftover_content_flagged(self, demo_synthesis):
        schedule = demo_synthesis.schedule.copy()
        schedule.remove("ws:o6")  # terminal product never disposed
        report = ScheduleExecutor(demo_synthesis, schedule).run()
        assert report.count(SimEventKind.LEFTOVER_CONTENT) == 1
