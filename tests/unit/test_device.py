"""Unit tests for the device taxonomy."""

import pytest

from repro.arch import Device, DeviceKind
from repro.arch.device import DEVICE_CAPABILITIES, kind_for_operation


class TestDevice:
    def test_name_required(self):
        with pytest.raises(ValueError):
            Device("", DeviceKind.MIXER)

    def test_capacity_positive(self):
        with pytest.raises(ValueError):
            Device("m", DeviceKind.MIXER, capacity=0)

    def test_capabilities_by_kind(self):
        mixer = Device("m", DeviceKind.MIXER)
        assert mixer.can_execute("mix")
        assert mixer.can_execute("dilute")
        assert not mixer.can_execute("detect")

    def test_detector_only_detects(self):
        det = Device("d", DeviceKind.DETECTOR)
        assert det.capabilities == frozenset({"detect"})

    def test_devices_are_frozen(self):
        d = Device("m", DeviceKind.MIXER)
        with pytest.raises(AttributeError):
            d.name = "other"  # type: ignore[misc]


class TestKindForOperation:
    @pytest.mark.parametrize(
        "op_type, kind",
        [
            ("mix", DeviceKind.MIXER),
            ("heat", DeviceKind.HEATER),
            ("detect", DeviceKind.DETECTOR),
            ("filter", DeviceKind.FILTER),
            ("split", DeviceKind.SEPARATOR),
        ],
    )
    def test_known_operations(self, op_type, kind):
        assert kind_for_operation(op_type) is kind

    def test_unknown_operation(self):
        with pytest.raises(KeyError):
            kind_for_operation("teleport")

    def test_every_kind_has_capabilities(self):
        for kind in DeviceKind:
            assert DEVICE_CAPABILITIES[kind], kind
