"""The exception hierarchy contracts downstream users rely on."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.IlpError,
            errors.ModelError,
            errors.SolverError,
            errors.InfeasibleError,
            errors.UnboundedError,
            errors.ArchitectureError,
            errors.GridError,
            errors.RoutingError,
            errors.AssayError,
            errors.SynthesisError,
            errors.SchedulingError,
            errors.WashError,
            errors.BenchmarkError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_grid_error_is_architecture_error(self):
        assert issubclass(errors.GridError, errors.ArchitectureError)

    def test_infeasible_is_solver_error(self):
        assert issubclass(errors.InfeasibleError, errors.SolverError)

    def test_default_messages(self):
        assert "infeasible" in str(errors.InfeasibleError())
        assert "unbounded" in str(errors.UnboundedError())
