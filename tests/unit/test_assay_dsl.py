"""Unit tests for the assay text DSL."""

import pytest

from repro.assay.dsl import format_assay, parse_assay
from repro.errors import AssayError

SAMPLE = """
assay glucose-test
# inputs
reagent s1 : serum
reagent g1 : glucose-agent
reagent b1 : diluent
# protocol
mix1 = mix(s1, g1) @ 5s
dil1 = dilute(mix1, b1)
det1 = detect(dil1) @ 4s
"""


class TestParse:
    def test_parses_sample(self):
        g = parse_assay(SAMPLE)
        assert g.name == "glucose-test"
        assert g.operation_count == 3
        assert len(g.reagents) == 3

    def test_explicit_duration(self):
        g = parse_assay(SAMPLE)
        assert g.operation("mix1").duration == 5
        assert g.operation("det1").duration == 4

    def test_default_duration_when_omitted(self):
        g = parse_assay(SAMPLE)
        assert g.operation("dil1").duration == 5  # dilute default

    def test_inputs_wired(self):
        g = parse_assay(SAMPLE)
        assert g.inputs_of("mix1") == ["g1", "s1"]
        assert g.inputs_of("det1") == ["dil1"]

    def test_comments_and_blanks_ignored(self):
        g = parse_assay("assay t\nreagent r : x\n\n# c\no = mix(r)\n")
        assert g.operation_count == 1


class TestParseErrors:
    def test_missing_assay_header(self):
        with pytest.raises(AssayError, match="must start"):
            parse_assay("reagent r : x\n")

    def test_duplicate_header(self):
        with pytest.raises(AssayError, match="duplicate"):
            parse_assay("assay a\nassay b\n")

    def test_unknown_statement_with_line_number(self):
        with pytest.raises(AssayError, match="line 3"):
            parse_assay("assay t\nreagent r : x\nthis is nonsense\n")

    def test_unknown_op_type(self):
        with pytest.raises(AssayError, match="line 3"):
            parse_assay("assay t\nreagent r : x\no = levitate(r)\n")

    def test_unknown_input(self):
        with pytest.raises(AssayError, match="line 2"):
            parse_assay("assay t\no = mix(ghost)\n")

    def test_empty_document(self):
        with pytest.raises(AssayError, match="empty"):
            parse_assay("# nothing\n")

    def test_operation_without_inputs(self):
        with pytest.raises(AssayError):
            parse_assay("assay t\nreagent r : x\no = mix()\n")


class TestRoundTrip:
    def test_format_parse_round_trip(self):
        g = parse_assay(SAMPLE)
        again = parse_assay(format_assay(g))
        assert again.name == g.name
        assert again.operation_count == g.operation_count
        assert again.edge_count == g.edge_count
        for op in g.operations:
            assert again.inputs_of(op.id) == g.inputs_of(op.id)
            assert again.operation(op.id).duration == g.operation(op.id).duration

    def test_round_trip_on_demo_assay(self, demo_assay):
        again = parse_assay(format_assay(demo_assay))
        assert again.fluid_types() == demo_assay.fluid_types()

    def test_round_trip_on_benchmarks(self):
        from repro.bench import load_benchmark

        for name in ("PCR", "IVD", "Kinase-act-1"):
            g = load_benchmark(name)
            again = parse_assay(format_assay(g))
            assert again.edge_count == g.edge_count
