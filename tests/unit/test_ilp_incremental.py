"""Unit tests for warm-started incremental re-solve (repro.ilp.incremental)."""

import pytest

from repro.core import PDWConfig
from repro.ilp import LinExpr, Model, SolveStatus
from repro.ilp import incremental
from repro.pipeline import ArtifactCache


def knapsack_model() -> Model:
    m = Model()
    x = m.add_integer_var("x", 0, 10)
    y = m.add_integer_var("y", 0, 10)
    m.add_constr(x + y <= 7)
    m.set_objective(3 * x + 2 * y, sense="max")
    return m


class TestStructureDigest:
    def test_weights_do_not_change_the_digest(self):
        a = incremental.structure_digest("syn", PDWConfig(alpha=0.3, beta=0.3, gamma=0.4))
        b = incremental.structure_digest("syn", PDWConfig(alpha=0.9, beta=0.05, gamma=0.05))
        assert a == b

    def test_budget_and_solver_knobs_do_not_change_the_digest(self):
        a = incremental.structure_digest("syn", PDWConfig(time_limit_s=5.0))
        b = incremental.structure_digest(
            "syn", PDWConfig(time_limit_s=300.0, mip_gap=0.2, solver_mode="race")
        )
        assert a == b

    def test_candidate_knobs_change_the_digest(self):
        base = incremental.structure_digest("syn", PDWConfig())
        assert base != incremental.structure_digest("syn", PDWConfig(max_candidates=3))
        assert base != incremental.structure_digest("syn", PDWConfig(enable_integration=False))
        assert base != incremental.structure_digest("syn", PDWConfig(max_wash_path_mm=12.0))

    def test_synthesis_digest_changes_the_digest(self):
        cfg = PDWConfig()
        assert incremental.structure_digest("syn-a", cfg) != incremental.structure_digest(
            "syn-b", cfg
        )

    def test_solver_environment_changes_the_digest(self, monkeypatch):
        from repro.ilp import faults

        cfg = PDWConfig()
        clean = incremental.structure_digest("syn", cfg)
        monkeypatch.setenv(faults.ENV_FORCE, "branch_bound")
        assert incremental.structure_digest("syn", cfg) != clean


class TestAdoptIncumbent:
    def test_feasible_assignment_adopted_with_fresh_objective(self):
        model = knapsack_model()
        adopted = incremental.adopt_incumbent(model, {"x": 7.0, "y": 0.0})
        assert adopted is not None
        assert adopted.status is SolveStatus.FEASIBLE
        # Objective evaluated under *this* model's weights (max 3x + 2y).
        assert adopted.objective == pytest.approx(21.0)

    def test_missing_variable_rejected(self):
        model = knapsack_model()
        assert incremental.adopt_incumbent(model, {"x": 7.0}) is None

    def test_constraint_violation_rejected(self):
        model = knapsack_model()
        assert incremental.adopt_incumbent(model, {"x": 7.0, "y": 7.0}) is None


class TestIncumbentRoundtrip:
    def test_store_then_load_then_adopt(self, tmp_path):
        cache = ArtifactCache(tmp_path / "store")
        model = knapsack_model()
        solution = model.solve()
        digest = incremental.structure_digest("syn", PDWConfig())
        assert incremental.store_incumbent(cache, digest, solution, PDWConfig())
        payload = incremental.load_incumbent(cache, digest)
        assert payload is not None
        adopted = incremental.adopt_incumbent(knapsack_model(), payload["values"])
        assert adopted is not None
        assert adopted.objective == pytest.approx(solution.objective)

    def test_no_cache_is_a_clean_miss(self):
        digest = incremental.structure_digest("syn", PDWConfig())
        assert incremental.load_incumbent(None, digest) is None
        model = knapsack_model()
        assert not incremental.store_incumbent(None, digest, model.solve(), PDWConfig())

    def test_failed_solution_not_stored(self, tmp_path):
        from repro.ilp import Solution

        cache = ArtifactCache(tmp_path / "store")
        digest = incremental.structure_digest("syn", PDWConfig())
        failed = Solution(SolveStatus.ERROR, message="nope")
        assert not incremental.store_incumbent(cache, digest, failed, PDWConfig())
        assert incremental.load_incumbent(cache, digest) is None

    def test_foreign_payload_rejected(self, tmp_path):
        cache = ArtifactCache(tmp_path / "store")
        digest = incremental.structure_digest("syn", PDWConfig())
        cache.put(digest, {"version": "0", "values": {}})
        assert incremental.load_incumbent(cache, digest) is None
        cache.put(digest, ["not", "a", "payload"])
        assert incremental.load_incumbent(cache, digest) is None


class TestModelMemo:
    def test_checkout_removes_the_entry(self):
        memo = incremental.ModelMemo(capacity=2)
        memo.checkin("k", "model")
        assert memo.checkout("k") == "model"
        # Single-owner semantics: a concurrent second checkout misses.
        assert memo.checkout("k") is None

    def test_lru_eviction_past_capacity(self):
        memo = incremental.ModelMemo(capacity=2)
        memo.checkin("a", 1)
        memo.checkin("b", 2)
        memo.checkin("c", 3)
        assert memo.checkout("a") is None
        assert memo.checkout("b") == 2
        assert memo.checkout("c") == 3

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            incremental.ModelMemo(capacity=0)

    def test_len_and_clear(self):
        memo = incremental.ModelMemo()
        memo.checkin("a", 1)
        memo.checkin("b", 2)
        assert len(memo) == 2
        memo.clear()
        assert len(memo) == 0
