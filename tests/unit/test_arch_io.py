"""Unit tests for chip JSON (de)serialization."""

import pytest

from repro.arch import figure2_chip
from repro.arch.io import chip_from_dict, chip_from_json, chip_to_dict, chip_to_json
from repro.errors import ArchitectureError


class TestRoundTrip:
    def test_figure2_round_trip(self):
        original = figure2_chip()
        restored = chip_from_json(chip_to_json(original))
        assert restored.name == original.name
        assert sorted(restored.graph.nodes) == sorted(original.graph.nodes)
        assert restored.graph.number_of_edges() == original.graph.number_of_edges()
        assert restored.flow_ports == original.flow_ports
        assert restored.waste_ports == original.waste_ports

    def test_devices_preserved(self):
        restored = chip_from_json(chip_to_json(figure2_chip()))
        assert restored.devices["mixer"].kind.value == "mixer"
        assert restored.devices["det1"].kind.value == "detector"

    def test_parameters_preserved(self):
        original = figure2_chip()
        restored = chip_from_json(chip_to_json(original))
        assert restored.parameters == original.parameters

    def test_positions_preserved(self):
        original = figure2_chip()
        restored = chip_from_json(chip_to_json(original))
        for node in original.graph.nodes:
            assert restored.position(node) == original.position(node)

    def test_synthesized_chip_round_trip(self, demo_synthesis):
        original = demo_synthesis.chip
        restored = chip_from_json(chip_to_json(original))
        assert restored.stats() == original.stats()

    def test_custom_edge_length_survives(self):
        data = chip_to_dict(figure2_chip())
        data["channels"][0] = data["channels"][0][:2] + [9.5]
        restored = chip_from_dict(data)
        a, b = data["channels"][0][:2]
        assert restored.edge_length_mm(a, b) == 9.5


class TestErrors:
    def test_malformed_json(self):
        with pytest.raises(ArchitectureError):
            chip_from_json("{oops")

    def test_non_object(self):
        with pytest.raises(ArchitectureError):
            chip_from_json("[]")

    def test_missing_fields(self):
        with pytest.raises(ArchitectureError):
            chip_from_dict({"name": "x"})

    def test_unknown_kind_rejected(self):
        data = chip_to_dict(figure2_chip())
        data["nodes"][0]["kind"] = "wormhole"
        with pytest.raises(ArchitectureError):
            chip_from_dict(data)

    def test_invalid_chip_still_validated(self):
        # Deserialization runs the normal Chip validation (no ports, etc.).
        with pytest.raises(ArchitectureError):
            chip_from_dict({
                "name": "bad",
                "nodes": [{"id": "a", "kind": "channel"}],
                "channels": [],
            })
