"""Unit tests for the occupancy timeline."""

import pytest

from repro.errors import SchedulingError
from repro.schedule import Timeline, intervals_overlap


class TestIntervalOverlap:
    @pytest.mark.parametrize(
        "a, b, expected",
        [
            ((0, 5), (5, 9), False),   # touching half-open intervals
            ((0, 5), (4, 9), True),
            ((4, 9), (0, 5), True),
            ((0, 1), (2, 3), False),
            ((0, 10), (3, 4), True),   # containment
        ],
    )
    def test_cases(self, a, b, expected):
        assert intervals_overlap(a, b) is expected


class TestOccupy:
    def test_zero_duration_ignored(self):
        tl = Timeline()
        tl.occupy(["n"], 5, 0)
        assert tl.busy_intervals("n") == []

    def test_negative_rejected(self):
        tl = Timeline()
        with pytest.raises(SchedulingError):
            tl.occupy(["n"], -1, 2)

    def test_intervals_kept_sorted(self):
        tl = Timeline()
        tl.occupy(["n"], 10, 2)
        tl.occupy(["n"], 0, 2)
        tl.occupy(["n"], 5, 2)
        assert tl.busy_intervals("n") == [(0, 2), (5, 7), (10, 12)]


class TestIsFree:
    def test_free_before_and_after(self):
        tl = Timeline()
        tl.occupy(["n"], 5, 5)
        assert tl.is_free(["n"], 0, 5)
        assert tl.is_free(["n"], 10, 3)
        assert not tl.is_free(["n"], 4, 2)
        assert not tl.is_free(["n"], 7, 1)

    def test_multiple_nodes_all_must_be_free(self):
        tl = Timeline()
        tl.occupy(["a"], 0, 4)
        assert not tl.is_free(["a", "b"], 2, 2)
        assert tl.is_free(["b"], 2, 2)


class TestEarliestFit:
    def test_fits_in_gap(self):
        tl = Timeline()
        tl.occupy(["n"], 0, 3)
        tl.occupy(["n"], 6, 3)
        assert tl.earliest_fit(["n"], 0, 3) == 3

    def test_skips_too_small_gap(self):
        tl = Timeline()
        tl.occupy(["n"], 0, 3)
        tl.occupy(["n"], 5, 3)
        assert tl.earliest_fit(["n"], 0, 3) == 8

    def test_respects_ready_time(self):
        tl = Timeline()
        assert tl.earliest_fit(["n"], 7, 2) == 7

    def test_multi_node_paths(self):
        tl = Timeline()
        tl.occupy(["a"], 0, 4)
        tl.occupy(["b"], 6, 4)
        assert tl.earliest_fit(["a", "b"], 0, 2) == 4

    def test_deadline_returns_none(self):
        tl = Timeline()
        tl.occupy(["n"], 0, 10)
        assert tl.earliest_fit(["n"], 0, 2, deadline=10) is None
        assert tl.earliest_fit(["n"], 0, 2, deadline=12) == 10

    def test_zero_duration_always_fits(self):
        tl = Timeline()
        tl.occupy(["n"], 0, 10)
        assert tl.earliest_fit(["n"], 3, 0) == 3

    def test_horizon(self):
        tl = Timeline()
        assert tl.horizon() == 0
        tl.occupy(["a"], 2, 5)
        tl.occupy(["b"], 1, 3)
        assert tl.horizon() == 7
