"""Unit tests for assay JSON (de)serialization."""

import pytest

from repro.assay import (
    graph_from_dict,
    graph_from_json,
    graph_to_dict,
    graph_to_json,
)
from repro.errors import AssayError


class TestRoundTrip:
    def test_json_round_trip_preserves_structure(self, demo_assay):
        restored = graph_from_json(graph_to_json(demo_assay))
        assert restored.name == demo_assay.name
        assert restored.operation_count == demo_assay.operation_count
        assert restored.edge_count == demo_assay.edge_count
        for op in demo_assay.operations:
            assert restored.inputs_of(op.id) == demo_assay.inputs_of(op.id)

    def test_round_trip_preserves_fluid_types(self, demo_assay):
        restored = graph_from_json(graph_to_json(demo_assay))
        assert restored.fluid_types() == demo_assay.fluid_types()

    def test_dict_round_trip_preserves_durations(self, demo_assay):
        data = graph_to_dict(demo_assay)
        data["operations"][0]["duration_s"] = 42
        restored = graph_from_dict(data)
        assert restored.operation("o1").duration == 42


class TestErrorHandling:
    def test_malformed_json(self):
        with pytest.raises(AssayError):
            graph_from_json("{not json")

    def test_non_object_json(self):
        with pytest.raises(AssayError):
            graph_from_json("[1, 2]")

    def test_missing_fields(self):
        with pytest.raises(AssayError):
            graph_from_dict({"reagents": []})

    def test_invalid_graph_rejected_on_load(self):
        doc = {
            "name": "bad",
            "reagents": [{"id": "r1", "fluid_type": "x"}],
            "operations": [],
        }
        with pytest.raises(AssayError):
            graph_from_dict(doc)

    def test_operation_missing_inputs_field(self):
        doc = {
            "name": "bad",
            "reagents": [{"id": "r1", "fluid_type": "x"}],
            "operations": [{"id": "o1", "op_type": "mix"}],
        }
        with pytest.raises(AssayError):
            graph_from_dict(doc)
