"""Unit tests for the ILP presolve analysis on a hand-built micro-instance."""

import pytest

from repro.arch import ChipBuilder, DeviceKind
from repro.contam.events import WashRequirement
from repro.core.config import PDWConfig
from repro.core.monolithic import MonolithicWashIlp
from repro.core.schedule_ilp import WashScheduleIlp
from repro.core.targets import WashCluster
from repro.ilp import faults as ilp_faults
from repro.ilp import presolve
from repro.schedule import Schedule, ScheduledTask, TaskKind


@pytest.fixture
def chip():
    builder = ChipBuilder("micro")
    builder.add_flow_port("in1").add_flow_port("in2")
    builder.add_waste_port("out1")
    builder.add_device("mixer", DeviceKind.MIXER)
    builder.add_junctions("a", "b", "c")
    builder.connect("in1", "a", "b", "out1")
    builder.connect("in2", "c", "b")
    builder.add_channel("a", "mixer")
    return builder.build()


def task(tid, kind, start, duration, path=None, device=None, op_id=None,
         fluid="f", edge=None):
    return ScheduledTask(
        id=tid, kind=kind, start=start, duration=duration, path=path,
        device=device, op_id=op_id, fluid_type=fluid, edge=edge,
    )


@pytest.fixture
def baseline():
    return Schedule([
        task("tr:r1->o1", TaskKind.TRANSPORT, 0, 2, path=("in1", "a", "mixer"),
             edge=("r1", "o1"), fluid="dye"),
        task("rm:r1->o1", TaskKind.REMOVAL, 2, 2, path=("in1", "a", "b", "out1"),
             edge=("r1", "o1"), fluid="dye"),
        task("op:o1", TaskKind.OPERATION, 4, 3, device="mixer", op_id="o1",
             fluid="mix-out"),
        task("tr:r2->o2", TaskKind.TRANSPORT, 8, 2, path=("in2", "c", "b"),
             edge=("r2", "o2"), fluid="ink"),
    ])


def cluster():
    return WashCluster("w1", [
        WashRequirement(
            node="a", fluid_type="dye", contaminated_at=4, deadline=8,
            source_task="rm:r1->o1", blocking_task="tr:r2->o2",
        )
    ])


SHORT = ("in1", "a", "b", "out1")
LONGER = ("in1", "a", "b", "c", "b", "out1")


def _analyze(chip, baseline, candidates, horizon=40, **cfg):
    return presolve.analyze(
        chip, list(baseline.tasks()), [cluster()], candidates,
        PDWConfig(**cfg), horizon,
    )


class TestAnalyze:
    def test_bound_propagation_matches_baseline_chain(self, chip, baseline):
        info = _analyze(chip, baseline, {"w1": [SHORT]})
        # est: the precedence chain forces tr -> rm -> op; an absorbable
        # removal contributes zero minimum duration.
        assert info.est["tr:r1->o1"] == 0
        assert info.est["rm:r1->o1"] == 2
        assert info.est["op:o1"] == 4
        assert info.est["tr:r2->o2"] == 8
        # lst never crosses est, and the chain tightens it below horizon.
        for tid in info.est:
            assert info.est[tid] <= info.lst[tid] < info.horizon

    def test_absorbable_removal_detected(self, chip, baseline):
        info = _analyze(chip, baseline, {"w1": [SHORT]})
        assert "rm:r1->o1" in info.absorbable
        off = _analyze(chip, baseline, {"w1": [SHORT]}, enable_integration=False)
        assert not off.absorbable

    def test_wash_window_from_source_and_blocker(self, chip, baseline):
        info = _analyze(chip, baseline, {"w1": [SHORT]})
        # Absorbable source removal: the wash may start at the removal's
        # est (the removal can shrink to nothing under absorption).
        assert info.wash_est["w1"] == info.est["rm:r1->o1"]
        assert info.wash_lst["w1"] <= info.lst["tr:r2->o2"] - info.min_wash["w1"]

    def test_provable_orders_cover_the_chain(self, chip, baseline):
        info = _analyze(chip, baseline, {"w1": [SHORT]})
        # The contaminating removal and its transport precede the wash;
        # the blocking transport follows it.
        assert "rm:r1->o1" in info.before_wash["w1"]
        assert "tr:r1->o1" in info.before_wash["w1"]
        assert "tr:r2->o2" in info.after_wash["w1"]

    def test_dominated_candidate_dropped_only_under_beta(self, chip, baseline):
        info = _analyze(chip, baseline, {"w1": [LONGER, SHORT]})
        assert info.survivors["w1"] == [1]
        assert info.dropped_candidates == 1
        # With beta = 0 the length term cannot break ties, so the rule
        # must not fire (an alternate optimum could pick the longer path).
        info0 = _analyze(chip, baseline, {"w1": [LONGER, SHORT]}, beta=0.0)
        assert info0.survivors["w1"] == [0, 1]
        assert info0.dropped_candidates == 0

    def test_t_floor_is_a_valid_makespan_bound(self, chip, baseline):
        info = _analyze(chip, baseline, {"w1": [SHORT]})
        assert info.t_floor >= info.est["tr:r2->o2"] + 2
        assert info.t_floor <= info.horizon

    def test_trivial_info_proves_nothing(self, baseline):
        info = presolve.trivial_info(40, list(baseline.tasks()), ["w1"])
        assert info.redundant_pairs == set()
        assert info.before_wash == {}
        assert info.wash_est["w1"] == 0
        assert info.wash_lst["w1"] == 40
        assert info.t_floor == 0


class TestBuilderIntegration:
    def test_presolved_model_is_strictly_smaller(self, chip, baseline):
        cands = {"w1": [SHORT, LONGER]}
        on = WashScheduleIlp(chip, baseline, [cluster()], cands,
                             PDWConfig(presolve="on"))
        off = WashScheduleIlp(chip, baseline, [cluster()], cands,
                              PDWConfig(presolve="off"))
        on.ensure_built()
        off.ensure_built()
        assert len(on.model.constraints) < len(off.model.constraints)
        assert on.presolve_info is not None
        assert off.presolve_info is None
        assert on.presolve_info.dropped_constraints > 0

    def test_monolithic_model_never_presolves(self, chip, baseline):
        # The relaxation frees the baseline order, so fixed-order
        # deductions would be unsound there.
        ilp = MonolithicWashIlp(chip, baseline, [cluster()],
                                {"w1": [SHORT]}, PDWConfig())
        assert ilp.presolve_enabled is False

    def test_env_override_disables_presolve(self, chip, baseline, monkeypatch):
        monkeypatch.setenv(ilp_faults.ENV_PRESOLVE, "off")
        ilp = WashScheduleIlp(chip, baseline, [cluster()],
                              {"w1": [SHORT]}, PDWConfig())
        assert ilp.presolve_enabled is False
        # An explicit config pin beats the environment.
        pinned = WashScheduleIlp(chip, baseline, [cluster()],
                                 {"w1": [SHORT]}, PDWConfig(presolve="off"))
        assert pinned.presolve_enabled is False


class TestEnvironmentToken:
    def test_presolve_env_lands_in_token(self, monkeypatch):
        monkeypatch.delenv(ilp_faults.ENV_PRESOLVE, raising=False)
        base = ilp_faults.environment_token()
        monkeypatch.setenv(ilp_faults.ENV_PRESOLVE, "off")
        assert ilp_faults.environment_token() != base
        assert "presolve=off" in ilp_faults.environment_token()

    def test_resolve_presolve_prefers_explicit_config(self, monkeypatch):
        monkeypatch.setenv(ilp_faults.ENV_PRESOLVE, "off")
        assert ilp_faults.resolve_presolve("on") == "off"
        monkeypatch.delenv(ilp_faults.ENV_PRESOLVE)
        assert ilp_faults.resolve_presolve("off") == "off"
        assert ilp_faults.resolve_presolve("on") == "on"
