"""The observability layer: trace spans, metrics registry, bench compare."""

import json
import time

import pytest

from repro.errors import ReproError
from repro.obs import metrics as obs_metrics
from repro.obs import perf
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
)
from repro.obs.trace import Tracer


# ---------------------------------------------------------------------------
# trace spans
# ---------------------------------------------------------------------------


class TestSpans:
    def test_nesting_records_parent_indices(self):
        tr = Tracer(enabled=True)
        with tr.span("outer"):
            with tr.span("mid") as sp:
                sp.set("k", 7)
                with tr.span("inner"):
                    pass
            with tr.span("sibling"):
                pass
        names = {rec.name: rec for rec in tr.spans}
        assert names["outer"].parent is None
        assert names["mid"].parent == names["outer"].index
        assert names["inner"].parent == names["mid"].index
        assert names["sibling"].parent == names["outer"].index
        assert names["mid"].attrs == {"k": 7}
        assert all(rec.status == "ok" for rec in tr.spans)
        assert all(rec.duration_s >= 0.0 for rec in tr.spans)

    def test_exception_marks_status_and_propagates(self):
        tr = Tracer(enabled=True)
        with pytest.raises(KeyError):
            with tr.span("outer"):
                with tr.span("boom"):
                    raise KeyError("x")
        names = {rec.name: rec for rec in tr.spans}
        assert names["boom"].status == "error:KeyError"
        assert names["outer"].status == "error:KeyError"
        # The stack unwound: a new span is a root again.
        with tr.span("after"):
            pass
        assert {r.name: r for r in tr.spans}["after"].parent is None

    def test_disabled_tracer_records_nothing(self):
        tr = Tracer(enabled=False)
        with tr.span("ghost") as sp:
            sp.set("ignored", 1)  # the shared no-op handle
        assert tr.spans == []

    def test_record_span_for_async_regions(self):
        tr = Tracer(enabled=True)
        t0 = time.perf_counter()
        rec = tr.record_span("suite.attempt", t0 - 1.0, t0, status="fail", attempt=2)
        assert rec.status == "fail"
        assert rec.attrs == {"attempt": 2}
        assert rec.duration_s == pytest.approx(1.0)
        assert tr.spans[-1] is rec

    def test_chrome_trace_is_loadable_json(self):
        tr = Tracer(enabled=True)
        with tr.span("outer", assay="PCR"):
            with tr.span("inner"):
                pass
        payload = json.loads(tr.chrome_trace(config_digest="abc123"))
        assert payload["otherData"]["config_digest"] == "abc123"
        events = payload["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        assert meta and meta[0]["name"] == "process_name"
        assert {e["name"] for e in complete} == {"outer", "inner"}
        for event in complete:
            assert event["dur"] >= 0
            assert isinstance(event["ts"], float) or isinstance(event["ts"], int)
        (outer,) = [e for e in complete if e["name"] == "outer"]
        assert outer["args"] == {"assay": "PCR"}

    def test_render_tree_indents_children(self):
        tr = Tracer(enabled=True)
        with tr.span("root"):
            with tr.span("child"):
                pass
        text = tr.render_tree()
        lines = text.splitlines()
        assert lines[0].startswith("root")
        assert lines[1].startswith("  child")

    def test_clear_restarts_epoch(self):
        tr = Tracer(enabled=True)
        with tr.span("a"):
            pass
        tr.clear()
        assert tr.spans == []
        with tr.span("b"):
            pass
        assert tr.spans[0].start_s < 1.0  # fresh epoch, not seconds in


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------


class TestInstruments:
    def test_counter_monotonic(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1.0)

    def test_gauge_last_write_wins(self):
        g = Gauge()
        g.set(5.0)
        g.inc(1.0)
        assert g.value == 6.0
        g.absorb({"value": 2.0})
        assert g.value == 2.0

    def test_histogram_bucket_edges(self):
        h = Histogram(bounds=(0.1, 1.0, 10.0))
        h.observe(0.1)    # exactly on a bound -> that bucket (le semantics)
        h.observe(0.1000001)
        h.observe(10.0)
        h.observe(10.1)   # past the last bound -> overflow
        assert h.counts == [1, 1, 1, 1]
        assert h.count == 4
        assert h.sum == pytest.approx(20.3000001)

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0, 0.1))

    def test_histogram_absorb_requires_identical_bounds(self):
        h = Histogram(bounds=(0.1, 1.0))
        with pytest.raises(ValueError):
            h.absorb({"bounds": [0.2, 1.0], "counts": [0, 0, 0], "sum": 0, "count": 0})


class TestRegistry:
    def test_get_or_create_by_name_and_labels(self):
        reg = MetricsRegistry()
        a = reg.counter("pdw_x_total", stage="ilp")
        b = reg.counter("pdw_x_total", stage="ilp")
        c = reg.counter("pdw_x_total", stage="replay")
        assert a is b and a is not c
        assert len(reg) == 2

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("pdw_x_total")
        with pytest.raises(TypeError):
            reg.gauge("pdw_x_total")

    def test_snapshot_merge_across_processes(self):
        # Two "workers" build registries independently; snapshots travel
        # through JSON (as over the supervisor pipe / journal) and merge.
        merged = MetricsRegistry()
        for worker in range(2):
            reg = MetricsRegistry()
            reg.counter("pdw_runs_total", outcome="ok").inc(2)
            reg.gauge("pdw_last_n").set(worker)
            reg.histogram("pdw_wall_seconds").observe(0.02)
            snap = json.loads(json.dumps(reg.as_dict()))
            merged.merge(snap)
        assert merged.counter("pdw_runs_total", outcome="ok").value == 4.0
        assert merged.gauge("pdw_last_n").value == 1.0  # last write wins
        hist = merged.histogram("pdw_wall_seconds")
        assert hist.count == 2
        assert hist.counts[DEFAULT_BUCKETS.index(0.05)] == 2

    def test_merge_snapshots_helper(self):
        reg = MetricsRegistry()
        reg.counter("pdw_a_total").inc()
        snap = reg.as_dict()
        out = merge_snapshots([snap, snap])
        assert out.counter("pdw_a_total").value == 2.0

    def test_from_dict_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("pdw_a_total", k="v").inc(3)
        clone = MetricsRegistry.from_dict(reg.as_dict())
        assert clone.as_dict() == reg.as_dict()


class TestPrometheusRendering:
    def test_counter_and_gauge_lines(self):
        reg = MetricsRegistry()
        reg.counter("pdw_runs_total", outcome="ok").inc(3)
        reg.gauge("pdw_workers").set(2)
        text = reg.render_prometheus()
        assert "# TYPE pdw_runs_total counter" in text
        assert 'pdw_runs_total{outcome="ok"} 3' in text
        assert "# TYPE pdw_workers gauge" in text
        assert "pdw_workers 2" in text
        assert text.endswith("\n")

    def test_histogram_buckets_are_cumulative_with_inf(self):
        reg = MetricsRegistry()
        h = reg.histogram("pdw_wall_seconds", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        text = reg.render_prometheus()
        assert 'pdw_wall_seconds_bucket{le="0.1"} 1' in text
        assert 'pdw_wall_seconds_bucket{le="1"} 2' in text
        assert 'pdw_wall_seconds_bucket{le="+Inf"} 3' in text
        assert "pdw_wall_seconds_sum 5.55" in text
        assert "pdw_wall_seconds_count 3" in text

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("pdw_odd_total", msg='say "hi"\nback\\slash').inc()
        text = reg.render_prometheus()
        assert r'msg="say \"hi\"\nback\\slash"' in text


class TestGlobalRegistry:
    def test_reset_clears_global(self):
        obs_metrics.reset()
        obs_metrics.registry().counter("pdw_tmp_total").inc()
        assert len(obs_metrics.registry()) == 1
        obs_metrics.reset()
        assert len(obs_metrics.registry()) == 0


# ---------------------------------------------------------------------------
# bench compare
# ---------------------------------------------------------------------------


def _bench_payload(wall=1.0, ilp=0.5, pathgen=0.2, rung=0.4, build=0.1,
                   presolve=0.01, **over):
    payload = {
        "schema": perf.BENCH_SCHEMA,
        "git_sha": "deadbee",
        "created_unix": 0.0,
        "iterations": 3,
        "quick": False,
        "config_digest": "cfg",
        "time_limit_s": 120.0,
        "hot_paths": list(perf.DEFAULT_HOT_PATHS),
        "benchmarks": {
            "PCR": {
                "wall_s": {"median": wall, "p95": wall, "samples": [wall]},
                "stages": {
                    "pdw.ilp": {"median": ilp, "p95": ilp, "samples": [ilp]},
                    "pdw.pathgen": {
                        "median": pathgen, "p95": pathgen, "samples": [pathgen]
                    },
                    "pdw.ilp.build": {
                        "median": build, "p95": build, "samples": [build]
                    },
                    "pdw.ilp.presolve": {
                        "median": presolve, "p95": presolve,
                        "samples": [presolve],
                    },
                },
                "rungs": {"highs": {"median": rung, "p95": rung, "samples": [rung]}},
            }
        },
    }
    payload.update(over)
    return payload


class TestStatistics:
    def test_median(self):
        assert perf.median([]) == 0.0
        assert perf.median([3.0, 1.0, 2.0]) == 2.0
        assert perf.median([4.0, 1.0, 3.0, 2.0]) == 2.5

    def test_p95_nearest_rank(self):
        assert perf.p95([]) == 0.0
        assert perf.p95([1.0]) == 1.0
        samples = [float(i) for i in range(1, 21)]  # 1..20
        assert perf.p95(samples) == 19.0  # ceil(0.95*20)=19 -> 19th value


class TestCompareBench:
    def test_no_regression_within_threshold(self):
        report = perf.compare_bench(
            _bench_payload(wall=1.1), _bench_payload(wall=1.0), threshold_pct=25.0
        )
        assert report.ok
        assert "PCR.wall_s" in report.compared
        assert report.skipped == []

    def test_regression_past_threshold(self):
        report = perf.compare_bench(
            _bench_payload(wall=2.0, ilp=0.5),
            _bench_payload(wall=1.0, ilp=0.5),
            threshold_pct=25.0,
        )
        assert not report.ok
        (reg,) = report.regressions
        assert reg.path == "PCR.wall_s"
        assert reg.pct == pytest.approx(100.0)
        assert "REGRESSED" in report.render()

    def test_rung_hot_path_is_gated(self):
        report = perf.compare_bench(
            _bench_payload(rung=1.0),
            _bench_payload(rung=0.1, hot_paths=["highs"]),
            threshold_pct=25.0,
        )
        assert [r.path for r in report.regressions] == ["PCR.highs"]

    def test_missing_series_is_skipped_not_failed(self):
        baseline = _bench_payload(hot_paths=["wall_s", "pdw.renamed_stage"])
        report = perf.compare_bench(_bench_payload(), baseline, threshold_pct=25.0)
        assert report.ok
        assert "PCR.pdw.renamed_stage" in report.skipped

    def test_schema_mismatch_raises(self):
        bad = _bench_payload(schema="pdw-bench/0")
        with pytest.raises(ReproError):
            perf.compare_bench(_bench_payload(), bad)
        with pytest.raises(ReproError):
            perf.compare_bench(bad, _bench_payload())

    def test_load_bench_errors_cleanly(self, tmp_path):
        missing = tmp_path / "nope.json"
        with pytest.raises(ReproError):
            perf.load_bench(missing)
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ReproError):
            perf.load_bench(bad)


class TestBenchCli:
    """``pdw bench --compare`` exit codes on canned fixtures."""

    @pytest.fixture
    def canned_run(self, monkeypatch):
        def fake_run_bench(names=None, config=None, iterations=3, quick=False,
                           progress=None, sched_workers=None):
            return perf.BenchResult(_bench_payload(wall=1.0))

        monkeypatch.setattr(perf, "run_bench", fake_run_bench)

    def test_compare_exit_0_on_ok(self, tmp_path, canned_run, capsys):
        from repro.cli import main

        baseline = tmp_path / "base.json"
        baseline.write_text(json.dumps(_bench_payload(wall=1.0)))
        out = tmp_path / "out.json"
        code = main(["bench", "--out", str(out), "--compare", str(baseline)])
        assert code == 0
        assert out.exists()
        assert "result: OK" in capsys.readouterr().out

    def test_compare_exit_1_on_regression(self, tmp_path, canned_run, capsys):
        from repro.cli import main

        baseline = tmp_path / "base.json"
        baseline.write_text(json.dumps(_bench_payload(wall=0.1)))
        out = tmp_path / "out.json"
        code = main(["bench", "--out", str(out), "--compare", str(baseline)])
        assert code == 1
        assert "REGRESSION PCR.wall_s" in capsys.readouterr().out
