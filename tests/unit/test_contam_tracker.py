"""Unit tests for the contamination tracker and the plan verifier."""

import pytest

from repro.arch import ChipBuilder, DeviceKind
from repro.contam import ContaminationTracker, contamination_violations
from repro.schedule import Schedule, ScheduledTask, TaskKind


@pytest.fixture
def line_chip():
    """in1 - a - mixer - b - out1."""
    b = ChipBuilder("line")
    b.add_flow_port("in1").add_waste_port("out1")
    b.add_device("mixer", DeviceKind.MIXER)
    b.add_junctions("a", "b")
    b.connect("in1", "a", "mixer", "b", "out1")
    return b.build()


def transport(tid, start, path, fluid, edge=None, kind=TaskKind.TRANSPORT, duration=2):
    return ScheduledTask(
        id=tid, kind=kind, start=start, duration=duration,
        path=tuple(path), fluid_type=fluid, edge=edge,
    )


class TestTracker:
    def test_flow_contaminates_interior_nodes_only(self, line_chip):
        sched = Schedule([
            transport("t1", 0, ("in1", "a", "mixer", "b", "out1"), "dye"),
        ])
        tracker = ContaminationTracker(line_chip, sched)
        assert tracker.contaminated_nodes() == ["a", "b", "mixer"]

    def test_event_time_is_task_end(self, line_chip):
        sched = Schedule([transport("t1", 3, ("in1", "a", "mixer"), "dye")])
        tracker = ContaminationTracker(line_chip, sched)
        assert all(e.time == 5 for e in tracker.events())

    def test_wash_task_leaves_no_residue(self, line_chip):
        sched = Schedule([
            ScheduledTask(id="w", kind=TaskKind.WASH, start=0, duration=2,
                          path=("in1", "a", "mixer", "b", "out1")),
        ])
        tracker = ContaminationTracker(line_chip, sched)
        assert tracker.events() == []

    def test_operation_contaminates_device(self, line_chip):
        sched = Schedule([
            ScheduledTask(id="op:o1", kind=TaskKind.OPERATION, start=0, duration=4,
                          device="mixer", op_id="o1", fluid_type="product"),
        ])
        tracker = ContaminationTracker(line_chip, sched)
        assert [e.node for e in tracker.events()] == ["mixer"]

    def test_uses_after_filters_by_time(self, line_chip):
        sched = Schedule([
            transport("t1", 0, ("in1", "a", "mixer"), "dye"),
            transport("t2", 5, ("in1", "a", "mixer"), "ink"),
        ])
        tracker = ContaminationTracker(line_chip, sched)
        later = tracker.uses_after("a", 2)
        assert [u.task_id for u in later] == ["t2"]

    def test_uses_chronological(self, line_chip):
        sched = Schedule([
            transport("t2", 5, ("in1", "a", "mixer"), "ink"),
            transport("t1", 0, ("in1", "a", "mixer"), "dye"),
        ])
        tracker = ContaminationTracker(line_chip, sched)
        assert [u.task_id for u in tracker.uses_of("a")] == ["t1", "t2"]


class TestViolationChecker:
    def test_clean_sequence_passes(self, line_chip):
        sched = Schedule([
            transport("t1", 0, ("in1", "a", "mixer"), "dye"),
            transport("t2", 5, ("in1", "a", "mixer"), "dye"),
        ])
        assert contamination_violations(line_chip, sched) == []

    def test_foreign_residue_flagged(self, line_chip):
        sched = Schedule([
            transport("t1", 0, ("in1", "a", "mixer"), "dye", edge=("r1", "o1")),
            transport("t2", 5, ("in1", "a", "mixer"), "ink", edge=("r2", "o2")),
        ])
        violations = contamination_violations(line_chip, sched)
        assert {v.node for v in violations} == {"a", "mixer"}
        assert all(v.task_id == "t2" for v in violations)

    def test_wash_between_clears_residue(self, line_chip):
        sched = Schedule([
            transport("t1", 0, ("in1", "a", "mixer"), "dye", edge=("r1", "o1")),
            ScheduledTask(id="w", kind=TaskKind.WASH, start=2, duration=2,
                          path=("in1", "a", "mixer", "b", "out1")),
            transport("t2", 5, ("in1", "a", "mixer"), "ink", edge=("r2", "o2")),
        ])
        assert contamination_violations(line_chip, sched) == []

    def test_co_inputs_of_same_operation_are_related(self, line_chip):
        sched = Schedule([
            transport("t1", 0, ("in1", "a", "mixer"), "dye", edge=("r1", "o1")),
            transport("t2", 3, ("in1", "a", "mixer"), "ink", edge=("r2", "o1")),
        ])
        assert contamination_violations(line_chip, sched) == []

    def test_waste_flows_tolerate_residue(self, line_chip):
        sched = Schedule([
            transport("t1", 0, ("in1", "a", "mixer"), "dye", edge=("r1", "o1")),
            transport("t2", 5, ("mixer", "b", "out1"), "junk", edge=("o1", "waste"),
                      kind=TaskKind.WASTE),
        ])
        assert contamination_violations(line_chip, sched) == []

    def test_violation_reports_residue_and_fluid(self, line_chip):
        sched = Schedule([
            transport("t1", 0, ("in1", "a", "mixer"), "dye", edge=("r1", "o1")),
            transport("t2", 5, ("in1", "a", "mixer"), "ink", edge=("r2", "o2")),
        ])
        v = contamination_violations(line_chip, sched)[0]
        assert v.residue_type == "dye"
        assert v.fluid_type == "ink"
        assert "t2" in str(v)
