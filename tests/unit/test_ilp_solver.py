"""Unit tests for the HiGHS backend."""

import numpy as np
import pytest

from repro.ilp import LinExpr, Model, SolveStatus


class TestBasicSolves:
    def test_maximize_knapsack_corner(self):
        m = Model()
        x = m.add_integer_var("x", 0, 10)
        y = m.add_integer_var("y", 0, 10)
        m.add_constr(x + y <= 7)
        m.set_objective(3 * x + 2 * y, sense="max")
        sol = m.solve()
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(21.0)
        assert sol.rounded(x) == 7 and sol.rounded(y) == 0

    def test_minimize_with_equality(self):
        m = Model()
        x = m.add_continuous_var("x", 0, 10)
        y = m.add_continuous_var("y", 0, 10)
        m.add_constr(x + y == 4)
        m.set_objective(2 * x + y)
        sol = m.solve()
        assert sol.objective == pytest.approx(4.0)
        assert sol.value(x) == pytest.approx(0.0)

    def test_integrality_enforced(self):
        m = Model()
        x = m.add_integer_var("x", 0, 10)
        m.add_constr(2 * x >= 5)  # LP optimum 2.5
        m.set_objective(x)
        sol = m.solve()
        assert sol.rounded(x) == 3

    def test_objective_constant_included(self):
        m = Model()
        x = m.add_continuous_var("x", 0, 5)
        m.set_objective(x + 10)
        assert m.solve().objective == pytest.approx(10.0)

    def test_empty_model_solves_trivially(self):
        m = Model()
        m.objective = LinExpr({}, 42.0)
        sol = m.solve()
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(42.0)

    def test_unconstrained_model_uses_bounds(self):
        m = Model()
        x = m.add_continuous_var("x", 1, 2)
        m.set_objective(x, sense="max")
        assert m.solve().objective == pytest.approx(2.0)


class TestStatuses:
    def test_infeasible_detected(self):
        m = Model()
        b = m.add_binary_var("b")
        m.add_constr(LinExpr.from_any(b) >= 2)
        sol = m.solve()
        assert sol.status is SolveStatus.INFEASIBLE
        assert not sol.status.has_solution

    def test_has_solution_property(self):
        assert SolveStatus.OPTIMAL.has_solution
        assert SolveStatus.FEASIBLE.has_solution
        assert not SolveStatus.UNBOUNDED.has_solution
        assert not SolveStatus.ERROR.has_solution


class _FakeMilpResult:
    def __init__(self, status, x, mip_gap=None, message="fake"):
        self.status = status
        self.x = x
        self.mip_gap = mip_gap
        self.message = message


class TestBrokenBackendResults:
    """Degenerate backend results must become ERROR, never silent repairs."""

    def _solve_with_fake(self, monkeypatch, result):
        import repro.ilp.solver as solver_mod

        monkeypatch.setattr(solver_mod, "milp", lambda **kwargs: result)
        m = Model()
        m.add_integer_var("x", 0, 10)
        m.set_objective(LinExpr({}, 0.0))
        return m.solve()

    def test_fractional_integral_value_downgraded_to_error(self, monkeypatch):
        sol = self._solve_with_fake(
            monkeypatch, _FakeMilpResult(status=0, x=np.array([0.49]))
        )
        assert sol.status is SolveStatus.ERROR
        assert "integrality violated" in sol.message
        assert sol.values == {}

    def test_rounding_noise_within_tolerance_accepted(self, monkeypatch):
        sol = self._solve_with_fake(
            monkeypatch, _FakeMilpResult(status=0, x=np.array([2.9999999995]))
        )
        assert sol.status is SolveStatus.OPTIMAL
        assert list(sol.values.values()) == [3.0]

    def test_limit_without_incumbent_is_error(self, monkeypatch):
        # HiGHS reports status 1 (limit) but delivers no point at all.
        sol = self._solve_with_fake(monkeypatch, _FakeMilpResult(status=1, x=None))
        assert sol.status is SolveStatus.ERROR
        assert not sol.status.has_solution


class TestSolutionObject:
    def test_value_evaluates_expressions(self):
        m = Model()
        x = m.add_integer_var("x", 3, 3)
        y = m.add_integer_var("y", 4, 4)
        m.set_objective(x + y)
        sol = m.solve()
        assert sol.value(2 * x - y + 1) == pytest.approx(3.0)
        assert sol[x] == pytest.approx(3.0)

    def test_as_name_map(self):
        m = Model()
        m.add_integer_var("alpha", 1, 1)
        sol = m.solve()
        assert sol.as_name_map() == {"alpha": 1.0}

    def test_integral_values_rounded(self):
        m = Model()
        x = m.add_integer_var("x", 0, 9)
        m.add_constr(3 * x >= 8)
        m.set_objective(x)
        sol = m.solve()
        assert sol.values[x] == 3.0  # exactly, not 2.9999...

    def test_solve_time_recorded(self):
        m = Model()
        x = m.add_integer_var("x", 0, 1)
        m.set_objective(x)
        assert m.solve().solve_time_s >= 0.0


class TestOptionOverrideMerge:
    """Caller-supplied scalar overrides must merge into ``options``.

    Regression: ``solve(model, mip_gap=..., options=...)`` silently
    dropped the gap whenever ``options`` was also passed and the time
    limits happened to agree — the overrides must merge symmetrically.
    """

    def _captured_options(self, monkeypatch, **solve_kwargs):
        import repro.ilp.solver as solver_mod

        captured = {}

        def fake_milp(**kwargs):
            captured.update(kwargs["options"])
            return _FakeMilpResult(status=0, x=np.array([0.0]))

        monkeypatch.setattr(solver_mod, "milp", fake_milp)
        m = Model()
        m.add_integer_var("x", 0, 10)
        m.set_objective(LinExpr({}, 0.0))
        solver_mod.solve(m, **solve_kwargs)
        return captured

    def test_mip_gap_forwarded_alongside_options(self, monkeypatch):
        from repro.ilp.solver import HighsOptions

        opts = self._captured_options(
            monkeypatch,
            mip_gap=0.125,
            options=HighsOptions(time_limit_s=None, mip_gap=None),
        )
        assert opts["mip_rel_gap"] == pytest.approx(0.125)

    def test_time_limit_forwarded_alongside_options(self, monkeypatch):
        from repro.ilp.solver import HighsOptions

        opts = self._captured_options(
            monkeypatch,
            time_limit_s=7.0,
            options=HighsOptions(mip_gap=0.01),
        )
        assert opts["time_limit"] == pytest.approx(7.0)
        assert opts["mip_rel_gap"] == pytest.approx(0.01)

    def test_options_fields_win_when_no_override_given(self, monkeypatch):
        from repro.ilp.solver import HighsOptions

        opts = self._captured_options(
            monkeypatch,
            options=HighsOptions(time_limit_s=3.0, mip_gap=0.05, presolve=False),
        )
        assert opts["time_limit"] == pytest.approx(3.0)
        assert opts["mip_rel_gap"] == pytest.approx(0.05)
        assert opts["presolve"] is False
