"""Unit tests for the content-addressed artifact cache and its digests."""

import os
import subprocess
import sys

import pytest

from repro.core import PDWConfig
from repro.pipeline import (
    ArtifactCache,
    cache_enabled,
    default_cache_dir,
    digest_config,
    digest_synthesis,
    stable_digest,
)
from repro.synth import synthesize
from tests.conftest import build_demo_assay


class TestStableDigest:
    def test_deterministic(self):
        assert stable_digest("a", 1, [2, 3]) == stable_digest("a", 1, [2, 3])

    def test_order_sensitive(self):
        assert stable_digest("a", "b") != stable_digest("b", "a")

    def test_dict_key_order_irrelevant(self):
        assert stable_digest({"x": 1, "y": 2}) == stable_digest({"y": 2, "x": 1})

    def test_rejects_undigestable(self):
        with pytest.raises(TypeError):
            stable_digest(object())

    def test_stable_across_processes(self):
        """The digest must survive process boundaries (no hash() salt)."""
        expr = "stable_digest('stage', 'replay', '1', {'a': 1, 'b': [2, 3], 'c': None})"
        local = eval(expr, {"stable_digest": stable_digest})
        code = f"from repro.pipeline import stable_digest; print({expr})"
        env = {**os.environ, "PYTHONPATH": os.pathsep.join(sys.path)}
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, env=env, check=True,
        )
        assert out.stdout.strip() == local

    def test_config_digest_stable_across_processes(self):
        """Config digests (dataclass + enum canonicalization) cross processes."""
        local = digest_config(PDWConfig())
        code = (
            "from repro.core import PDWConfig;"
            "from repro.pipeline import digest_config;"
            "print(digest_config(PDWConfig()))"
        )
        env = {**os.environ, "PYTHONPATH": os.pathsep.join(sys.path)}
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, env=env, check=True,
        )
        assert out.stdout.strip() == local


class TestInvalidation:
    def test_config_change_changes_digest(self):
        assert digest_config(PDWConfig()) != digest_config(PDWConfig(beta=0.9))

    def test_necessity_policy_changes_digest(self):
        from repro.contam import NecessityPolicy

        a = digest_config(PDWConfig())
        b = digest_config(PDWConfig(necessity=NecessityPolicy.REUSE_ONLY))
        assert a != b

    def test_integration_window_changes_digest(self):
        a = digest_config(PDWConfig())
        b = digest_config(PDWConfig(integration_window_s=25.0))
        assert a != b

    def test_assay_change_changes_synthesis_digest(self):
        from repro.assay import Operation

        base = synthesize(build_demo_assay())
        grown = build_demo_assay()
        grown.add_operation(Operation("o7", "detect"), ["o6"])
        assert digest_synthesis(base) != digest_synthesis(synthesize(grown))

    def test_same_synthesis_same_digest(self):
        a = synthesize(build_demo_assay())
        b = synthesize(build_demo_assay())
        assert digest_synthesis(a) == digest_synthesis(b)


class TestArtifactCache:
    def test_roundtrip(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        digest = stable_digest("roundtrip")
        assert cache.get(digest) is None
        cache.put(digest, {"answer": 42})
        assert digest in cache
        assert cache.get(digest) == {"answer": 42}

    def test_miss_on_unknown_digest(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        assert cache.get(stable_digest("never-stored")) is None

    def test_corrupt_entry_is_a_miss_and_quarantined(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        digest = stable_digest("corrupt")
        cache.put(digest, [1, 2, 3])
        path = cache._path(digest)
        path.write_bytes(b"not a pickle")
        assert cache.get(digest) is None
        # Quarantined (moved, never deleted) so the bytes stay for postmortems.
        assert not path.exists()
        assert len(list(cache.quarantined())) == 1

    def test_stats_and_clear(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        for i in range(3):
            cache.put(stable_digest("entry", i), i)
        count, total = cache.stats()
        assert count == 3
        assert total > 0
        assert cache.clear() == 3
        assert cache.stats() == (0, 0)

    def test_overwrite_is_last_writer_wins(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        digest = stable_digest("rewrite")
        cache.put(digest, "old")
        cache.put(digest, "new")
        assert cache.get(digest) == "new"


class TestDefaults:
    def test_cache_dir_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
        assert default_cache_dir() == tmp_path / "elsewhere"

    def test_cache_disable_gate(self, monkeypatch):
        from repro.pipeline import default_cache

        monkeypatch.setenv("REPRO_CACHE", "off")
        assert not cache_enabled()
        assert default_cache() is None
        monkeypatch.delenv("REPRO_CACHE")
        assert cache_enabled()
