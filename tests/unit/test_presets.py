"""Unit tests for the Fig. 2 preset chip."""

import pytest

from repro.arch import DeviceKind, figure2_chip
from repro.arch.presets import FIGURE2_FLOW_PATHS, figure2_transport_paths


@pytest.fixture(scope="module")
def chip():
    return figure2_chip()


class TestFigure2Topology:
    def test_inventory(self, chip):
        assert len(chip.devices) == 5
        assert chip.flow_ports == ["in1", "in2", "in3", "in4"]
        assert chip.waste_ports == ["out1", "out2", "out3", "out4"]
        assert len(chip.channel_nodes) == 16  # s1..s16

    def test_device_kinds(self, chip):
        assert chip.devices["mixer"].kind is DeviceKind.MIXER
        assert chip.devices["heater"].kind is DeviceKind.HEATER
        assert chip.devices["filter"].kind is DeviceKind.FILTER
        assert {d.name for d in chip.devices_of_kind(DeviceKind.DETECTOR)} == {
            "det1", "det2",
        }

    def test_every_table1_path_is_a_valid_walk(self, chip):
        for name, path in FIGURE2_FLOW_PATHS.items():
            chip.check_path(path), name

    def test_transport_paths_in_order(self, chip):
        paths = figure2_transport_paths()
        assert len(paths) == 9
        assert paths[0] == ("in1", "s2", "filter", "s1", "out2")

    def test_wash_paths_start_flow_end_waste(self, chip):
        for name in ("w1", "w2", "w3"):
            path = FIGURE2_FLOW_PATHS[name]
            assert path[0] in chip.flow_ports
            assert path[-1] in chip.waste_ports

    def test_positions_available_for_rendering(self, chip):
        for node in chip.graph.nodes:
            assert chip.position(node) is not None

    def test_devices_have_two_channel_ends(self, chip):
        for device in chip.devices:
            assert chip.graph.degree(device) == 2, device
