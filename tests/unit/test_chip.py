"""Unit tests for the Chip flow-network model and its builder."""

import pytest

from repro.arch import ChipBuilder, DeviceKind, NodeKind
from repro.errors import ArchitectureError, RoutingError
from repro.units import PhysicalParameters


def tiny_chip():
    """in1 - a - mixer - b - out1, with a stub junction c off node a."""
    b = ChipBuilder("tiny")
    b.add_flow_port("in1").add_waste_port("out1")
    b.add_device("mixer", DeviceKind.MIXER)
    b.add_junctions("a", "b", "c")
    b.connect("in1", "a", "mixer", "b", "out1")
    b.add_channel("a", "c")
    return b.build()


class TestBuilderValidation:
    def test_duplicate_node_rejected(self):
        b = ChipBuilder("t")
        b.add_junction("a")
        with pytest.raises(ArchitectureError):
            b.add_junction("a")

    def test_channel_to_unknown_node(self):
        b = ChipBuilder("t")
        b.add_junction("a")
        with pytest.raises(ArchitectureError):
            b.add_channel("a", "ghost")

    def test_self_loop_rejected(self):
        b = ChipBuilder("t")
        b.add_junction("a")
        with pytest.raises(ArchitectureError):
            b.add_channel("a", "a")

    def test_connect_needs_two_nodes(self):
        with pytest.raises(ArchitectureError):
            ChipBuilder("t").connect("only")

    def test_chip_requires_ports(self):
        b = ChipBuilder("t")
        b.add_junction("a").add_junction("z")
        b.add_channel("a", "z")
        with pytest.raises(ArchitectureError):
            b.build()

    def test_disconnected_network_rejected(self):
        b = ChipBuilder("t")
        b.add_flow_port("in1").add_waste_port("out1")
        b.add_junctions("a", "island1", "island2")
        b.connect("in1", "a", "out1")
        b.add_channel("island1", "island2")
        with pytest.raises(ArchitectureError):
            b.build()

    def test_detached_port_rejected(self):
        b = ChipBuilder("t")
        b.add_flow_port("in1").add_waste_port("out1")
        with pytest.raises(ArchitectureError):
            b.build()


class TestChipQueries:
    def test_node_kinds(self):
        chip = tiny_chip()
        assert chip.kind_of("in1") is NodeKind.FLOW_PORT
        assert chip.kind_of("out1") is NodeKind.WASTE_PORT
        assert chip.kind_of("mixer") is NodeKind.DEVICE
        assert chip.kind_of("a") is NodeKind.CHANNEL

    def test_port_and_device_predicates(self):
        chip = tiny_chip()
        assert chip.is_port("in1") and chip.is_port("out1")
        assert not chip.is_port("mixer")
        assert chip.is_device("mixer") and not chip.is_device("a")

    def test_washable_excludes_ports(self):
        chip = tiny_chip()
        assert set(chip.washable_nodes) == {"a", "b", "c", "mixer"}

    def test_devices_of_kind(self):
        chip = tiny_chip()
        assert [d.name for d in chip.devices_of_kind(DeviceKind.MIXER)] == ["mixer"]
        assert chip.devices_of_kind(DeviceKind.HEATER) == []

    def test_stats(self):
        s = tiny_chip().stats()
        assert s == {
            "nodes": 6, "edges": 5, "devices": 1, "flow_ports": 1, "waste_ports": 1,
        }


class TestPathGeometry:
    def test_path_length_uses_pitch(self):
        chip = tiny_chip()
        pitch = chip.parameters.cell_pitch_mm
        assert chip.path_length_mm(["in1", "a", "mixer"]) == pytest.approx(2 * pitch)

    def test_path_cells(self):
        chip = tiny_chip()
        assert chip.path_cells(["in1", "a", "mixer"]) == 2
        assert chip.path_cells(["in1"]) == 0

    def test_check_path_accepts_valid_walk(self):
        chip = tiny_chip()
        assert chip.check_path(["in1", "a", "mixer", "b", "out1"])

    def test_check_path_rejects_teleport(self):
        chip = tiny_chip()
        with pytest.raises(RoutingError):
            chip.check_path(["in1", "b"])

    def test_check_path_rejects_single_node(self):
        with pytest.raises(RoutingError):
            tiny_chip().check_path(["in1"])

    def test_edge_length_missing_edge(self):
        with pytest.raises(RoutingError):
            tiny_chip().edge_length_mm("in1", "out1")

    def test_transport_and_wash_times(self):
        params = PhysicalParameters(flow_velocity_mm_s=10.0, cell_pitch_mm=5.0,
                                    dissolution_time_s=2.0)
        b = ChipBuilder("t", params)
        b.add_flow_port("in1").add_waste_port("out1").add_junction("a")
        b.connect("in1", "a", "out1")
        chip = b.build()
        path = ["in1", "a", "out1"]
        assert chip.transport_time_s(path) == 1  # 10mm / 10mm/s
        assert chip.wash_time_s(path) == 3  # 1s flush + 2s dissolution
