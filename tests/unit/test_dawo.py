"""Unit tests for the DAWO and IMMEDIATE baselines."""

import pytest

from repro.baselines import immediate_wash_plan
from repro.contam import contamination_violations
from repro.schedule import TaskKind


class TestDawoPlan:
    def test_verified_plan(self, demo_dawo_plan):
        assert demo_dawo_plan.schedule.conflicts() == []
        assert contamination_violations(
            demo_dawo_plan.chip, demo_dawo_plan.schedule
        ) == []

    def test_method_label(self, demo_dawo_plan):
        assert demo_dawo_plan.method == "DAWO"
        assert demo_dawo_plan.solver_status == "heuristic"

    def test_washes_are_port_to_port(self, demo_dawo_plan):
        chip = demo_dawo_plan.chip
        for wash in demo_dawo_plan.washes:
            assert wash.path[0] in chip.flow_ports
            assert wash.path[-1] in chip.waste_ports
            assert wash.targets <= set(wash.path)

    def test_no_integration(self, demo_dawo_plan):
        assert demo_dawo_plan.integrated_removals == 0

    def test_all_baseline_tasks_present(self, demo_dawo_plan, demo_synthesis):
        for task in demo_synthesis.schedule:
            assert task.id in demo_dawo_plan.schedule

    def test_wash_before_first_blocker(self, demo_dawo_plan):
        """Every wash finishes before each of its blocking tasks starts."""
        sched = demo_dawo_plan.schedule
        # blocking info lives in the plan's washes via requirements; rebuild
        # the relation from the wash task ordering instead: a wash must not
        # overlap any task sharing its path nodes (validated), and the plan
        # passed contamination verification, which is the end-to-end check.
        for wash in demo_dawo_plan.washes:
            task = sched.get(f"wash:{wash.id}")
            assert task.duration == wash.duration

    def test_more_washes_than_pdw(self, demo_dawo_plan, demo_pdw_plan):
        assert demo_dawo_plan.n_wash >= demo_pdw_plan.n_wash


class TestImmediatePlan:
    @pytest.fixture(scope="class")
    def plan(self, demo_synthesis):
        return immediate_wash_plan(demo_synthesis)

    def test_verified(self, plan):
        assert plan.schedule.conflicts() == []
        assert contamination_violations(plan.chip, plan.schedule) == []

    def test_method_label(self, plan):
        assert plan.method == "IMMEDIATE"

    def test_wash_count_between_pdw_and_reuse_only(self, plan, demo_pdw_plan):
        # Uses PDW necessity but no merging: at least as many washes.
        assert plan.n_wash >= demo_pdw_plan.n_wash

    def test_eager_washes_delay_more_than_pdw(self, plan, demo_pdw_plan):
        assert plan.average_waiting_time >= demo_pdw_plan.average_waiting_time

    def test_washes_scheduled(self, plan):
        assert len(plan.schedule.tasks(TaskKind.WASH)) == plan.n_wash
