"""Unit tests: degradation spec grammar, sampling and plan threading."""

import pytest

from repro.core import PDWConfig, optimize_washes
from repro.degrade.model import PRESETS, derive, parse_matrix, parse_spec
from repro.errors import DegradationError, DegradedInfeasibleError
from repro.synth import synthesize

from tests.conftest import build_demo_assay


# -- spec grammar ------------------------------------------------------------------

def test_presets_parse_to_canonical_tokens():
    for name, expansion in PRESETS.items():
        assert parse_spec(name) == parse_spec(expansion)


def test_token_is_canonical_and_reparses():
    spec = parse_spec("valves=1:channels=2:seed=7")
    assert spec.token() == "channels=2:valves=1:seed=7"
    assert parse_spec(spec.token()) == spec


def test_dead_nodes_sorted_and_deduplicated():
    spec = parse_spec("dead=n2+n1+n2")
    assert spec.dead == ("n1", "n2")
    assert spec.token() == "dead=n1+n2"


def test_seed_omitted_when_nothing_sampled():
    assert parse_spec("dead=n1").token() == "dead=n1"
    assert "seed=" in parse_spec("channels=1").token()


def test_with_dead_merges():
    spec = parse_spec("channels=1").with_dead(["x"])
    assert spec.dead == ("x",)
    assert spec.channels == 1


def test_parse_matrix_splits_scenarios():
    specs = parse_matrix("light, moderate")
    assert [s.token() for s in specs] == [
        "channels=1:seed=0",
        "channels=2:valves=1:seed=0",
    ]


@pytest.mark.parametrize(
    "bad",
    ["", "bogus", "channels=x", "channels=-1", "dead=", "channels=0", "k=1"],
)
def test_malformed_specs_raise(bad):
    with pytest.raises(DegradationError):
        parse_spec(bad)


# -- derivation --------------------------------------------------------------------

@pytest.fixture(scope="module")
def demo_synthesis():
    return synthesize(build_demo_assay())


def test_derive_is_deterministic(demo_synthesis):
    spec = parse_spec("channels=2:valves=1:seed=3")
    a = derive(demo_synthesis.chip, demo_synthesis.schedule, spec)
    b = derive(demo_synthesis.chip, demo_synthesis.schedule, spec)
    assert a == b
    assert len(a.dead) >= 1


def test_sampled_nodes_are_unused_by_baseline(demo_synthesis):
    spec = parse_spec("channels=3:valves=2:seed=1")
    degradation = derive(demo_synthesis.chip, demo_synthesis.schedule, spec)
    used = set()
    for task in demo_synthesis.schedule.tasks():
        used.update(task.path or ())
        if task.device is not None:
            used.add(task.device)
    sampled = set(degradation.channels) | set(degradation.valves)
    assert not (sampled & used)


def test_derive_rejects_unknown_and_port_nodes(demo_synthesis):
    with pytest.raises(DegradationError):
        derive(demo_synthesis.chip, demo_synthesis.schedule, parse_spec("dead=nope"))
    port = sorted(demo_synthesis.chip.flow_ports)[0]
    with pytest.raises(DegradationError):
        derive(
            demo_synthesis.chip, demo_synthesis.schedule, parse_spec(f"dead={port}")
        )


# -- pipeline threading ------------------------------------------------------------

def test_config_normalizes_degrade_spec():
    cfg = PDWConfig(degrade="moderate")
    assert cfg.degrade == "channels=2:valves=1:seed=0"
    with pytest.raises(DegradationError):
        PDWConfig(degrade="nonsense")


def test_degraded_plan_avoids_dead_nodes(demo_synthesis):
    plan = optimize_washes(demo_synthesis, PDWConfig(degrade="moderate"))
    info = plan.degradation
    assert info is not None
    assert info.spec == "channels=2:valves=1:seed=0"
    for wash in plan.washes:
        assert not (set(wash.path) & info.dead)


def test_dead_used_node_is_proven_infeasible(demo_synthesis):
    healthy = optimize_washes(demo_synthesis, PDWConfig())
    assert healthy.degradation is None
    target = sorted(healthy.washes[0].targets)[0]
    with pytest.raises(DegradedInfeasibleError):
        optimize_washes(demo_synthesis, PDWConfig(degrade=f"dead={target}"))


def test_plan_json_embeds_degradation(demo_synthesis):
    from repro.export.plan_json import plan_to_dict

    plan = optimize_washes(demo_synthesis, PDWConfig(degrade="light"))
    payload = plan_to_dict(plan)
    assert payload["degradation"]["spec"] == "channels=1:seed=0"
    assert payload["degradation"]["coverage"] == 1.0
    assert "repairs" not in payload
