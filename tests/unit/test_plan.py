"""Unit tests for WashPlan edge cases and WashOperation records."""

import pytest

from repro.arch import figure2_chip
from repro.core.plan import WashOperation, WashPlan
from repro.schedule import Schedule, ScheduledTask, TaskKind


def op_task(op_id, start, duration=4):
    return ScheduledTask(
        id=f"op:{op_id}", kind=TaskKind.OPERATION, start=start,
        duration=duration, device="mixer", op_id=op_id, fluid_type="f",
    )


@pytest.fixture
def empty_plan():
    chip = figure2_chip()
    baseline = Schedule([op_task("o1", 0)])
    return WashPlan(
        method="PDW",
        chip=chip,
        schedule=baseline.copy(),
        washes=[],
        baseline_schedule=baseline,
        solver_status="no-wash-needed",
    )


class TestWashOperation:
    def test_end_derived(self):
        wash = WashOperation(
            id="w1", targets=frozenset({"s3"}),
            path=("in1", "s2", "s3", "s4", "out1"), start=5, duration=3,
        )
        assert wash.end == 8

    def test_absorbed_removals_default_empty(self):
        wash = WashOperation(
            id="w1", targets=frozenset({"s3"}),
            path=("in1", "s2", "s3", "s4", "out1"), start=0, duration=1,
        )
        assert wash.absorbed_removals == ()


class TestEmptyPlan:
    def test_zero_metrics(self, empty_plan):
        assert empty_plan.n_wash == 0
        assert empty_plan.l_wash_mm == 0.0
        assert empty_plan.total_wash_time == 0
        assert empty_plan.integrated_removals == 0
        assert empty_plan.t_delay == 0

    def test_no_wash_tasks(self, empty_plan):
        assert empty_plan.wash_tasks() == []

    def test_average_waiting_zero(self, empty_plan):
        assert empty_plan.average_waiting_time == 0.0

    def test_metrics_mapping(self, empty_plan):
        metrics = empty_plan.metrics()
        assert metrics["n_wash"] == 0.0
        assert metrics["t_delay_s"] == 0.0


class TestDelayAccounting:
    def test_waiting_time_averages_over_operations(self):
        chip = figure2_chip()
        baseline = Schedule([op_task("o1", 0), op_task("o2", 10)])
        shifted = Schedule([op_task("o1", 2), op_task("o2", 10)])
        plan = WashPlan(
            method="X", chip=chip, schedule=shifted, washes=[],
            baseline_schedule=baseline,
        )
        assert plan.average_waiting_time == pytest.approx(1.0)

    def test_negative_shifts_clamped(self):
        chip = figure2_chip()
        baseline = Schedule([op_task("o1", 5)])
        earlier = Schedule([op_task("o1", 3)])
        plan = WashPlan(
            method="X", chip=chip, schedule=earlier, washes=[],
            baseline_schedule=baseline,
        )
        assert plan.average_waiting_time == 0.0
