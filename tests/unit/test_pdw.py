"""Unit tests for the PDW pipeline, its plan object and the verifier."""

import pytest

from repro.assay import Operation, Reagent, SequencingGraph
from repro.contam import contamination_violations
from repro.core import PDWConfig, PathDriverWash, optimize_washes
from repro.core.pdw import verify_plan
from repro.errors import WashError
from repro.schedule import TaskKind
from repro.synth import synthesize


class TestConfig:
    def test_paper_defaults(self):
        cfg = PDWConfig()
        assert (cfg.alpha, cfg.beta, cfg.gamma) == (0.3, 0.3, 0.4)

    def test_negative_weight_rejected(self):
        with pytest.raises(WashError):
            PDWConfig(alpha=-1)

    def test_all_zero_weights_rejected(self):
        with pytest.raises(WashError):
            PDWConfig(alpha=0, beta=0, gamma=0)

    def test_bad_path_mode_rejected(self):
        with pytest.raises(WashError):
            PDWConfig(path_mode="psychic")

    def test_time_limit_positive(self):
        with pytest.raises(WashError):
            PDWConfig(time_limit_s=0)


class TestPlanStructure:
    def test_solver_reached_optimality(self, demo_pdw_plan):
        assert demo_pdw_plan.solver_status == "optimal"

    def test_schedule_contains_wash_tasks(self, demo_pdw_plan):
        washes = demo_pdw_plan.schedule.tasks(TaskKind.WASH)
        assert len(washes) == demo_pdw_plan.n_wash
        assert demo_pdw_plan.wash_tasks() == [t.id for t in washes]

    def test_wash_paths_are_port_to_port(self, demo_pdw_plan):
        chip = demo_pdw_plan.chip
        for wash in demo_pdw_plan.washes:
            assert wash.path[0] in chip.flow_ports
            assert wash.path[-1] in chip.waste_ports

    def test_wash_covers_its_targets(self, demo_pdw_plan):
        for wash in demo_pdw_plan.washes:
            assert wash.targets <= set(wash.path)

    def test_wash_duration_follows_eq17(self, demo_pdw_plan):
        chip = demo_pdw_plan.chip
        for wash in demo_pdw_plan.washes:
            assert wash.duration == chip.wash_time_s(wash.path)

    def test_absorbed_removals_dropped_from_schedule(self, demo_pdw_plan):
        for wash in demo_pdw_plan.washes:
            for rm_id in wash.absorbed_removals:
                assert rm_id not in demo_pdw_plan.schedule

    def test_plan_is_conflict_and_contamination_free(self, demo_pdw_plan):
        assert demo_pdw_plan.schedule.conflicts() == []
        assert contamination_violations(
            demo_pdw_plan.chip, demo_pdw_plan.schedule
        ) == []

    def test_verify_plan_passes(self, demo_pdw_plan):
        verify_plan(demo_pdw_plan)


class TestMetrics:
    def test_l_wash_sums_path_lengths(self, demo_pdw_plan):
        chip = demo_pdw_plan.chip
        expected = sum(chip.path_length_mm(w.path) for w in demo_pdw_plan.washes)
        assert demo_pdw_plan.l_wash_mm == pytest.approx(expected)

    def test_t_delay_consistent(self, demo_pdw_plan):
        assert demo_pdw_plan.t_delay == (
            demo_pdw_plan.t_assay - demo_pdw_plan.baseline_makespan
        )

    def test_total_wash_time(self, demo_pdw_plan):
        assert demo_pdw_plan.total_wash_time == sum(
            w.duration for w in demo_pdw_plan.washes
        )

    def test_average_waiting_non_negative(self, demo_pdw_plan):
        assert demo_pdw_plan.average_waiting_time >= 0.0

    def test_metrics_mapping_complete(self, demo_pdw_plan):
        m = demo_pdw_plan.metrics()
        assert set(m) == {
            "n_wash", "l_wash_mm", "t_assay_s", "t_delay_s", "avg_wait_s",
            "total_wash_time_s", "integrated_removals",
        }


class TestSemantics:
    def test_wash_inside_its_window(self, demo_pdw_plan, demo_synthesis):
        """Eq. 16 against the re-timed schedule: wash after every source,
        before every blocker."""
        sched = demo_pdw_plan.schedule
        for wash in demo_pdw_plan.washes:
            task = sched.get(f"wash:{wash.id}")
            assert task.start == wash.start

    def test_operations_keep_precedence(self, demo_pdw_plan, demo_synthesis):
        sched = demo_pdw_plan.schedule
        assay = demo_synthesis.assay
        for op in assay.operations:
            for src in assay.inputs_of(op.id):
                if assay.is_reagent(src):
                    continue
                assert (
                    sched.operation_task(src).end
                    <= sched.operation_task(op.id).start
                )

    def test_no_wash_needed_short_circuit(self):
        g = SequencingGraph("clean")
        g.add_reagent(Reagent("r1", "water"))
        g.add_operation(Operation("o1", "detect"), ["r1"])
        plan = optimize_washes(synthesize(g))
        assert plan.n_wash == 0
        assert plan.solver_status == "no-wash-needed"
        assert plan.t_delay == 0

    def test_pdw_not_worse_than_dawo(self, demo_pdw_plan, demo_dawo_plan):
        assert demo_pdw_plan.n_wash <= demo_dawo_plan.n_wash
        assert demo_pdw_plan.l_wash_mm <= demo_dawo_plan.l_wash_mm
        assert demo_pdw_plan.t_assay <= demo_dawo_plan.t_assay

    def test_exact_path_mode_runs(self, demo_synthesis):
        plan = PathDriverWash(
            demo_synthesis,
            PDWConfig(time_limit_s=30, path_mode="exact", max_candidates=3),
        ).run()
        assert plan.solver_status in ("optimal", "feasible")
        verify_plan(plan)

    def test_notes_record_necessity_breakdown(self, demo_pdw_plan):
        notes = demo_pdw_plan.notes
        assert notes["requirements"] > 0
        assert notes["necessity_events"] >= notes["requirements"]
