"""JobStore lifecycle and dedup semantics (docs/SERVICE.md state machine)."""

from __future__ import annotations

from repro.serve import JobStore, parse_job
from repro.serve.jobs import JOB_STATES, TERMINAL_STATES, job_progress
from repro.serve.wire import job_digest


def _spec(**overrides):
    payload = {"benchmark": "PCR"}
    payload.update(overrides)
    return parse_job(payload)


def _admit(store, **overrides):
    spec = _spec(**overrides)
    return store.admit(spec, job_digest(spec))


class TestLifecycle:
    def test_states_are_canonical(self):
        assert JOB_STATES == ("queued", "running", "done", "failed", "cancelled")
        assert set(TERMINAL_STATES) < set(JOB_STATES)

    def test_happy_path(self):
        store = JobStore()
        job, created = _admit(store)
        assert created and job.state == "queued" and job.attempts == 0
        store.mark_running(job)
        assert job.state == "running" and job.attempts == 1
        assert job.started_ts is not None
        store.mark_done(job)
        assert job.state == "done" and job.finished_ts is not None

    def test_failure_records_taxonomy_kind(self):
        store = JobStore()
        job, _ = _admit(store)
        store.mark_running(job)
        store.mark_failed(job, "timeout", "killed after 1s")
        assert job.state == "failed"
        assert job.error_kind == "timeout"
        assert job.status_dict()["error"]["message"] == "killed after 1s"

    def test_cancel_only_from_queued(self):
        store = JobStore()
        job, _ = _admit(store)
        assert store.mark_cancelled(job)
        assert job.state == "cancelled"
        other, created = _admit(store, config={"time_limit_s": 7})
        store.mark_running(other)
        assert not store.mark_cancelled(other)
        assert other.state == "running"


class TestDedup:
    def test_same_digest_dedups_while_live(self):
        store = JobStore()
        first, created = _admit(store)
        assert created
        for state_setter in (lambda: None, lambda: store.mark_running(first)):
            state_setter()
            again, created = _admit(store)
            assert again is first and not created

    def test_done_job_still_dedups(self):
        store = JobStore()
        job, _ = _admit(store)
        store.mark_running(job)
        store.mark_done(job)
        again, created = _admit(store)
        assert again is job and not created

    def test_failed_job_is_resubmittable_under_same_id(self):
        store = JobStore()
        job, _ = _admit(store)
        store.mark_running(job)
        store.mark_failed(job, "crash", "boom")
        retried, created = _admit(store)
        assert created, "failed digest must re-queue"
        assert retried is job, "resubmission keeps the public job id"
        assert retried.state == "queued"
        assert retried.error_kind is None
        assert retried.attempts == 1  # attempt counter survives for observability

    def test_distinct_configs_are_distinct_jobs(self):
        store = JobStore()
        a, _ = _admit(store)
        b, created = _admit(store, config={"time_limit_s": 9})
        assert created and b is not a
        assert a.id != b.id

    def test_counts_by_state(self):
        store = JobStore()
        a, _ = _admit(store)
        b, _ = _admit(store, config={"time_limit_s": 9})
        store.mark_running(b)
        counts = store.counts()
        assert counts["queued"] == 1 and counts["running"] == 1
        assert counts["done"] == counts["failed"] == counts["cancelled"] == 0


class TestProgress:
    def test_progress_counts_this_jobs_nodes_only(self):
        store = JobStore()
        job, _ = _admit(store)
        store.mark_running(job)
        records = [
            # A stale record from before this job started must not count.
            {"event": "node_success", "benchmark": "PCR", "method": "pdw",
             "stage": "synthesis", "ts": job.started_ts - 100},
            {"event": "node_success", "benchmark": "PCR", "method": "pdw",
             "stage": "pathgen", "ts": job.started_ts + 1},
            # Another benchmark's node is invisible to this job.
            {"event": "node_success", "benchmark": "IVD", "method": "pdw",
             "stage": "pathgen", "ts": job.started_ts + 1},
            # Attempts don't count, only successes.
            {"event": "node_attempt", "benchmark": "PCR", "method": "pdw",
             "stage": "ilp", "ts": job.started_ts + 2},
        ]
        progress = job_progress(job, records)
        assert progress == {"nodes_done": 1, "nodes_total": 11}

    def test_progress_is_none_before_start(self):
        store = JobStore()
        job, _ = _admit(store)
        assert job_progress(job, []) == {"nodes_done": None, "nodes_total": None}
