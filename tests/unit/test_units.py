"""Unit tests for physical parameters (Eq. 17 wash-time model)."""

import pytest

from repro.units import DEFAULT_PARAMETERS, PhysicalParameters


class TestValidation:
    def test_rejects_nonpositive_velocity(self):
        with pytest.raises(ValueError):
            PhysicalParameters(flow_velocity_mm_s=0)

    def test_rejects_nonpositive_pitch(self):
        with pytest.raises(ValueError):
            PhysicalParameters(cell_pitch_mm=-1)

    def test_rejects_negative_dissolution(self):
        with pytest.raises(ValueError):
            PhysicalParameters(dissolution_time_s=-0.5)


class TestGeometry:
    def test_path_length(self):
        p = PhysicalParameters(cell_pitch_mm=2.0)
        assert p.path_length_mm(5) == pytest.approx(10.0)

    def test_path_length_rejects_negative(self):
        with pytest.raises(ValueError):
            DEFAULT_PARAMETERS.path_length_mm(-1)


class TestTimes:
    def test_transport_time_rounds_up(self):
        p = PhysicalParameters(flow_velocity_mm_s=10.0, cell_pitch_mm=3.0)
        assert p.transport_time_s(7) == 3  # 21mm / 10mm/s = 2.1 -> 3

    def test_transport_time_minimum_one_tick(self):
        p = PhysicalParameters(flow_velocity_mm_s=10.0, cell_pitch_mm=1.5)
        assert p.transport_time_s(0) == 1
        assert p.transport_time_s(1) == 1

    def test_wash_time_adds_dissolution(self):
        p = PhysicalParameters(
            flow_velocity_mm_s=10.0, cell_pitch_mm=5.0, dissolution_time_s=2.0
        )
        # Eq. 17: L/v + t_d = 20/10 + 2 = 4
        assert p.wash_time_s(4) == 4

    def test_wash_time_at_least_flush(self):
        p = PhysicalParameters(dissolution_time_s=0.0)
        assert p.wash_time_s(0) == 1

    def test_paper_defaults(self):
        assert DEFAULT_PARAMETERS.flow_velocity_mm_s == 10.0
