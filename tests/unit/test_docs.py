"""Documentation integrity: the docs reference real files and symbols."""

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]


def referenced_paths(markdown: str):
    """Backtick-quoted *.py / *.md paths mentioned in a document."""
    for match in re.finditer(r"`([\w/ .-]+\.(?:py|md))`", markdown):
        yield match.group(1).strip()


class TestFormulationDoc:
    DOC = (REPO / "docs" / "FORMULATION.md").read_text()

    def test_referenced_source_files_exist(self):
        for rel in referenced_paths(self.DOC):
            if not rel.endswith(".py"):
                continue
            # paths are relative to src/repro/ except the bench harness
            candidates = (REPO / "src" / "repro" / rel, REPO / rel)
            assert any(c.exists() for c in candidates), rel

    @pytest.mark.parametrize(
        "dotted",
        [
            "repro.assay.graph.SequencingGraph",
            "repro.contam.necessity._classify",
            "repro.core.schedule_ilp.WashScheduleIlp._add_wash_windows",
            "repro.core.schedule_ilp.WashScheduleIlp._add_integration_vars",
            "repro.core.monolithic.MonolithicWashIlp",
            "repro.core.targets.cluster_requirements",
            "repro.core.pathgen.integration_candidates",
            "repro.units.PhysicalParameters.wash_time_s",
            "repro.ilp.model.Model.add_or_indicator",
            "repro.baselines.dawo.SweepLineReplayer",
            "repro.arch.control.ControlLayer.actuation_table",
            "repro.sim.executor.ScheduleExecutor",
        ],
    )
    def test_cited_symbols_exist(self, dotted):
        import importlib

        parts = dotted.split(".")
        for split in range(len(parts), 1, -1):
            try:
                obj = importlib.import_module(".".join(parts[:split]))
                break
            except ModuleNotFoundError:
                continue
        else:
            pytest.fail(f"no importable prefix in {dotted}")
        for attr in parts[split:]:
            obj = getattr(obj, attr)


class TestReadmeAndDesign:
    def test_readme_references_exist(self):
        text = (REPO / "README.md").read_text()
        for name in ("DESIGN.md", "EXPERIMENTS.md", "docs/FORMULATION.md"):
            assert name in text
            assert (REPO / name).exists()

    def test_examples_listed_in_readme_exist(self):
        text = (REPO / "README.md").read_text()
        for match in re.finditer(r"`(\w+\.py)`", text):
            candidate = REPO / "examples" / match.group(1)
            if "examples" in text[: match.start()].rsplit("\n", 3)[-1] or candidate.exists():
                continue
        # Explicit list: every shipped example is mentioned.
        for script in (REPO / "examples").glob("*.py"):
            assert script.name in text, script.name

    def test_license_exists(self):
        assert (REPO / "LICENSE").read_text().startswith("MIT License")
