"""Unit tests for the exporters (plan JSON, actuation CSV, SVG)."""

import json
import xml.etree.ElementTree as ET

from repro.arch import figure2_chip
from repro.arch.presets import FIGURE2_FLOW_PATHS
from repro.export import actuation_program, plan_to_dict, plan_to_json
from repro.viz.svg import render_svg


class TestPlanJson:
    def test_round_trips_through_json(self, demo_pdw_plan):
        data = json.loads(plan_to_json(demo_pdw_plan))
        assert data["method"] == "PDW"
        assert data["metrics"]["n_wash"] == demo_pdw_plan.n_wash

    def test_tasks_complete(self, demo_pdw_plan):
        data = plan_to_dict(demo_pdw_plan)
        assert len(data["tasks"]) == len(demo_pdw_plan.schedule)
        kinds = {t["kind"] for t in data["tasks"]}
        assert "wash" in kinds and "operation" in kinds

    def test_washes_reference_paths_and_targets(self, demo_pdw_plan):
        data = plan_to_dict(demo_pdw_plan)
        for wash in data["washes"]:
            assert wash["path"][0].startswith("in")
            assert set(wash["targets"]) <= set(wash["path"])

    def test_flow_tasks_have_paths_operations_do_not(self, demo_pdw_plan):
        for task in plan_to_dict(demo_pdw_plan)["tasks"]:
            if task["kind"] == "operation":
                assert task["path"] is None
            else:
                assert len(task["path"]) >= 2


class TestActuationProgram:
    def test_csv_structure(self, demo_synthesis):
        csv = actuation_program(demo_synthesis.chip, demo_synthesis.schedule)
        lines = csv.splitlines()
        assert lines[0].startswith("# valve program")
        header = lines[2].split(",")
        assert header[0] == "tick"
        n_valves = len(header) - 1
        body = lines[3:]
        assert len(body) >= demo_synthesis.schedule.makespan - 1
        for row in body:
            cells = row.split(",")
            assert len(cells) == n_valves + 1
            assert set(cells[1:]) <= {"O", "C"}

    def test_some_valves_open_during_flows(self, demo_synthesis):
        csv = actuation_program(demo_synthesis.chip, demo_synthesis.schedule)
        assert "O" in csv.split("\n", 3)[3]


class TestSvg:
    def test_valid_xml(self):
        svg = render_svg(figure2_chip())
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")

    def test_contains_devices_and_ports(self):
        svg = render_svg(figure2_chip())
        assert "mixer" in svg
        assert svg.count("<polygon") == 4   # 4 flow ports
        assert "#e06666" in svg             # waste port fill

    def test_path_overlay_drawn(self):
        svg = render_svg(figure2_chip(), paths=[FIGURE2_FLOW_PATHS["w3"]])
        assert "<polyline" in svg

    def test_multiple_overlays_get_distinct_colors(self):
        svg = render_svg(
            figure2_chip(),
            paths=[FIGURE2_FLOW_PATHS["w1"], FIGURE2_FLOW_PATHS["w2"]],
        )
        assert "#1f77b4" in svg and "#d62728" in svg

    def test_chip_without_positions(self):
        import networkx as nx
        from repro.arch.chip import Chip, NodeKind
        
        g = nx.Graph()
        g.add_node("in1", kind=NodeKind.FLOW_PORT)
        g.add_node("out1", kind=NodeKind.WASTE_PORT)
        g.add_edge("in1", "out1", length_mm=1.5)
        chip = Chip("bare", g, {}, ["in1"], ["out1"])
        svg = render_svg(chip)
        assert "no layout coordinates" in svg
        ET.fromstring(svg)

    def test_labels_can_be_disabled(self):
        svg = render_svg(figure2_chip(), labels=False)
        assert "<text" not in svg
