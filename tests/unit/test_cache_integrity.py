"""Self-verifying cache entries: checksums, quarantine, size bound."""

from __future__ import annotations

import os
import pickle

import pytest

from repro.pipeline.cache import (
    ENTRY_FORMAT,
    ENTRY_MAGIC,
    ENV_MAX_BYTES,
    ArtifactCache,
    max_cache_bytes,
    stable_digest,
)


@pytest.fixture
def cache(tmp_path):
    return ArtifactCache(tmp_path / "store")


def _entry_path(cache, digest):
    return cache._path(digest)


class TestEntryFormat:
    def test_header_framing(self, cache):
        digest = stable_digest("framing")
        cache.put(digest, {"k": 1})
        data = _entry_path(cache, digest).read_bytes()
        assert data.startswith(ENTRY_MAGIC)
        assert data[len(ENTRY_MAGIC)] == ENTRY_FORMAT
        payload = data[len(ENTRY_MAGIC) + 1 + 32:]
        assert pickle.loads(payload) == {"k": 1}

    def test_roundtrip_verifies(self, cache):
        digest = stable_digest("roundtrip")
        cache.put(digest, [1, 2, 3])
        assert cache.get(digest) == [1, 2, 3]
        report = cache.verify()
        assert (report.checked, report.ok, report.quarantined) == (1, 1, [])


class TestQuarantine:
    def test_flipped_byte_quarantines_and_recompute_succeeds(self, cache):
        digest = stable_digest("bitrot")
        cache.put(digest, {"answer": 42})
        path = _entry_path(cache, digest)
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))

        assert cache.get(digest) is None  # miss, not garbage
        assert not path.exists()
        quarantined = list(cache.quarantined())
        assert len(quarantined) == 1
        # The caller recomputes and the store heals.
        cache.put(digest, {"answer": 42})
        assert cache.get(digest) == {"answer": 42}

    def test_bad_magic_quarantines(self, cache):
        digest = stable_digest("magic")
        cache.put(digest, 1)
        path = _entry_path(cache, digest)
        path.write_bytes(b"XXXX" + path.read_bytes()[4:])
        assert cache.get(digest) is None
        assert list(cache.quarantined())

    def test_unknown_entry_format_quarantines(self, cache):
        digest = stable_digest("format")
        cache.put(digest, 1)
        path = _entry_path(cache, digest)
        data = bytearray(path.read_bytes())
        data[len(ENTRY_MAGIC)] = 99
        path.write_bytes(bytes(data))
        assert cache.get(digest) is None

    def test_quarantine_log_records_reason(self, cache):
        digest = stable_digest("logged")
        cache.put(digest, 1)
        _entry_path(cache, digest).write_bytes(b"junk")
        cache.get(digest)
        log = (cache.root / "quarantine" / "log.jsonl").read_text()
        assert "bad-header" in log

    def test_verify_sweeps_unread_corruption(self, cache):
        good = stable_digest("good")
        bad = stable_digest("bad")
        cache.put(good, "fine")
        cache.put(bad, "doomed")
        path = _entry_path(cache, bad)
        data = bytearray(path.read_bytes())
        data[-1] ^= 0x01
        path.write_bytes(bytes(data))

        report = cache.verify()
        assert report.checked == 2
        assert report.ok == 1
        assert len(report.quarantined) == 1
        assert "checksum-mismatch" in report.render()
        # The good entry still reads; the store shrank by one.
        assert cache.get(good) == "fine"
        assert cache.stats()[0] == 1

    def test_entries_excludes_quarantine_dir(self, cache):
        digest = stable_digest("excluded")
        cache.put(digest, 1)
        _entry_path(cache, digest).write_bytes(b"junk")
        cache.get(digest)
        assert list(cache.entries()) == []
        assert cache.stats() == (0, 0)


class TestChaosCorrupt:
    def test_armed_corrupt_forces_quarantine(self, cache, stage_fault):
        digest = stable_digest("chaos-corrupt")
        cache.put(digest, "victim")
        stage_fault("cache:corrupt")
        assert cache.get(digest) is None
        assert list(cache.quarantined())


class TestSizeBound:
    def test_gc_evicts_oldest_mtime_first(self, cache):
        digests = [stable_digest("gc", i) for i in range(3)]
        for i, digest in enumerate(digests):
            cache.put(digest, "x" * 100)
            os.utime(_entry_path(cache, digest), (1000 + i, 1000 + i))
        _, total = cache.stats()
        per_entry = total // 3

        removed, freed = cache.gc(max_bytes=per_entry * 2)
        assert removed == 1
        assert freed > 0
        assert cache.get(digests[0]) is None  # oldest went first
        assert cache.get(digests[1]) is not None
        assert cache.get(digests[2]) is not None

    def test_gc_without_limit_is_noop(self, cache, monkeypatch):
        monkeypatch.delenv(ENV_MAX_BYTES, raising=False)
        cache.put(stable_digest("keep"), 1)
        assert cache.gc() == (0, 0)

    def test_get_refreshes_mtime(self, cache):
        digest = stable_digest("touched")
        cache.put(digest, 1)
        path = _entry_path(cache, digest)
        os.utime(path, (1000, 1000))
        cache.get(digest)
        assert path.stat().st_mtime > 1000


class TestMaxBytesParsing:
    @pytest.mark.parametrize(
        "raw,expected",
        [("1024", 1024), ("1K", 1024), ("2M", 2 * 2**20), ("1G", 2**30),
         ("1k", 1024)],
    )
    def test_suffixes(self, monkeypatch, raw, expected):
        monkeypatch.setenv(ENV_MAX_BYTES, raw)
        assert max_cache_bytes() == expected

    def test_unset_is_none(self, monkeypatch):
        monkeypatch.delenv(ENV_MAX_BYTES, raising=False)
        assert max_cache_bytes() is None

    @pytest.mark.parametrize("raw", ["lots", "12Q", "-5"])
    def test_malformed_warns_and_disables(self, monkeypatch, raw):
        monkeypatch.setenv(ENV_MAX_BYTES, raw)
        with pytest.warns(RuntimeWarning):
            assert max_cache_bytes() is None
