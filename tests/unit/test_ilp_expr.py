"""Unit tests for linear-expression algebra."""

import pytest

from repro.errors import ModelError
from repro.ilp import LinExpr, LinExprBuilder, Model


@pytest.fixture
def model():
    return Model("t")


@pytest.fixture
def xy(model):
    return model.add_continuous_var("x"), model.add_continuous_var("y")


class TestVariable:
    def test_bounds_validation(self, model):
        with pytest.raises(ModelError):
            model.add_var("bad", lb=5, ub=1)

    def test_nan_bound_rejected(self, model):
        with pytest.raises(ModelError):
            model.add_var("bad", lb=float("nan"))

    def test_binary_clamps_bounds(self, model):
        b = model.add_binary_var("b")
        assert (b.lb, b.ub) == (0.0, 1.0)
        assert b.is_integral

    def test_integer_is_integral(self, model):
        assert model.add_integer_var("i").is_integral

    def test_continuous_not_integral(self, xy):
        assert not xy[0].is_integral

    def test_duplicate_names_rejected(self, model):
        model.add_continuous_var("x")
        with pytest.raises(ModelError):
            model.add_continuous_var("x")


class TestLinExprArithmetic:
    def test_add_variables(self, xy):
        x, y = xy
        expr = x + y
        assert expr.terms == {x: 1.0, y: 1.0}
        assert expr.constant == 0.0

    def test_add_constant(self, xy):
        x, _ = xy
        assert (x + 3).constant == 3.0
        assert (3 + x).constant == 3.0

    def test_subtract(self, xy):
        x, y = xy
        expr = x - y - 2
        assert expr.terms == {x: 1.0, y: -1.0}
        assert expr.constant == -2.0

    def test_rsub(self, xy):
        x, _ = xy
        expr = 5 - x
        assert expr.terms == {x: -1.0}
        assert expr.constant == 5.0

    def test_scalar_multiplication(self, xy):
        x, y = xy
        expr = 3 * x + y * 2
        assert expr.terms == {x: 3.0, y: 2.0}

    def test_negation(self, xy):
        x, _ = xy
        assert (-x).terms == {x: -1.0}

    def test_cancellation_via_simplified(self, xy):
        x, y = xy
        expr = (x + y - x).simplified()
        assert expr.terms == {y: 1.0}

    def test_non_scalar_multiplication_rejected(self, xy):
        x, y = xy
        with pytest.raises(TypeError):
            LinExpr.from_any(x) * LinExpr.from_any(y)  # type: ignore[operator]

    def test_sum_helper(self, model):
        vs = [model.add_continuous_var(f"v{i}") for i in range(5)]
        expr = LinExpr.sum(vs)
        assert all(expr.terms[v] == 1.0 for v in vs)

    def test_sum_empty(self):
        expr = LinExpr.sum([])
        assert expr.terms == {} and expr.constant == 0.0

    def test_from_any_rejects_strings(self):
        with pytest.raises(TypeError):
            LinExpr.from_any("nope")  # type: ignore[arg-type]


class TestLinExprBuilder:
    def test_accumulates_variables_exprs_and_constants(self, model):
        x, y = model.add_continuous_var("x"), model.add_continuous_var("y")
        expr = (
            LinExprBuilder()
            .add(x)
            .add(2 * y + 1, scale=1.0)
            .add(3)
            .add(x, scale=0.5)
            .build()
        )
        assert expr.terms == {x: 1.5, y: 2.0}
        assert expr.constant == 4.0

    def test_scaled_expr(self, model):
        x = model.add_continuous_var("x")
        expr = LinExprBuilder().add(x + 2, scale=3.0).build()
        assert expr.terms == {x: 3.0}
        assert expr.constant == 6.0

    def test_build_resets_builder(self, model):
        x = model.add_continuous_var("x")
        b = LinExprBuilder()
        first = b.add(x).build()
        second = b.add(x, scale=2.0).build()
        assert first.terms == {x: 1.0}
        assert second.terms == {x: 2.0}

    def test_rejects_unknown_operands(self):
        with pytest.raises(TypeError):
            LinExprBuilder().add("nope")  # type: ignore[arg-type]


class TestSumLinearity:
    def test_sum_never_calls_add(self, model, monkeypatch):
        """Regression: ``LinExpr.sum`` must not fold via ``__add__``.

        The old implementation reduced with ``+``, copying the growing
        accumulator dict once per operand — O(N^2) over N expressions.
        The builder-backed version keeps one mutable dict, so ``__add__``
        (and its dict-copying cost) never runs.
        """

        def boom(self, other):
            raise AssertionError("LinExpr.sum fell back to quadratic __add__")

        vs = [model.add_continuous_var(f"v{i}") for i in range(50)]
        exprs = [2.0 * v + 1.0 for v in vs]
        monkeypatch.setattr(LinExpr, "__add__", boom)
        monkeypatch.setattr(LinExpr, "__radd__", boom)
        total = LinExpr.sum(exprs + [5.0])
        assert total.constant == 55.0
        assert total.terms == {v: 2.0 for v in vs}


class TestComparisons:
    def test_le_builds_relation(self, xy):
        x, y = xy
        expr, sense = x + y <= 5
        assert sense == "<="
        assert expr.constant == -5.0

    def test_ge_builds_relation(self, xy):
        x, _ = xy
        _, sense = x >= 1
        assert sense == ">="

    def test_eq_builds_relation(self, xy):
        x, y = xy
        expr, sense = x == y
        assert sense == "=="
        assert expr.terms == {x: 1.0, y: -1.0}

    def test_variable_comparison_constant(self, xy):
        x, _ = xy
        expr, sense = x <= 3
        assert sense == "<=" and expr.constant == -3.0
