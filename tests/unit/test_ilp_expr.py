"""Unit tests for linear-expression algebra."""

import pytest

from repro.errors import ModelError
from repro.ilp import LinExpr, Model


@pytest.fixture
def model():
    return Model("t")


@pytest.fixture
def xy(model):
    return model.add_continuous_var("x"), model.add_continuous_var("y")


class TestVariable:
    def test_bounds_validation(self, model):
        with pytest.raises(ModelError):
            model.add_var("bad", lb=5, ub=1)

    def test_nan_bound_rejected(self, model):
        with pytest.raises(ModelError):
            model.add_var("bad", lb=float("nan"))

    def test_binary_clamps_bounds(self, model):
        b = model.add_binary_var("b")
        assert (b.lb, b.ub) == (0.0, 1.0)
        assert b.is_integral

    def test_integer_is_integral(self, model):
        assert model.add_integer_var("i").is_integral

    def test_continuous_not_integral(self, xy):
        assert not xy[0].is_integral

    def test_duplicate_names_rejected(self, model):
        model.add_continuous_var("x")
        with pytest.raises(ModelError):
            model.add_continuous_var("x")


class TestLinExprArithmetic:
    def test_add_variables(self, xy):
        x, y = xy
        expr = x + y
        assert expr.terms == {x: 1.0, y: 1.0}
        assert expr.constant == 0.0

    def test_add_constant(self, xy):
        x, _ = xy
        assert (x + 3).constant == 3.0
        assert (3 + x).constant == 3.0

    def test_subtract(self, xy):
        x, y = xy
        expr = x - y - 2
        assert expr.terms == {x: 1.0, y: -1.0}
        assert expr.constant == -2.0

    def test_rsub(self, xy):
        x, _ = xy
        expr = 5 - x
        assert expr.terms == {x: -1.0}
        assert expr.constant == 5.0

    def test_scalar_multiplication(self, xy):
        x, y = xy
        expr = 3 * x + y * 2
        assert expr.terms == {x: 3.0, y: 2.0}

    def test_negation(self, xy):
        x, _ = xy
        assert (-x).terms == {x: -1.0}

    def test_cancellation_via_simplified(self, xy):
        x, y = xy
        expr = (x + y - x).simplified()
        assert expr.terms == {y: 1.0}

    def test_non_scalar_multiplication_rejected(self, xy):
        x, y = xy
        with pytest.raises(TypeError):
            LinExpr.from_any(x) * LinExpr.from_any(y)  # type: ignore[operator]

    def test_sum_helper(self, model):
        vs = [model.add_continuous_var(f"v{i}") for i in range(5)]
        expr = LinExpr.sum(vs)
        assert all(expr.terms[v] == 1.0 for v in vs)

    def test_sum_empty(self):
        expr = LinExpr.sum([])
        assert expr.terms == {} and expr.constant == 0.0

    def test_from_any_rejects_strings(self):
        with pytest.raises(TypeError):
            LinExpr.from_any("nope")  # type: ignore[arg-type]


class TestComparisons:
    def test_le_builds_relation(self, xy):
        x, y = xy
        expr, sense = x + y <= 5
        assert sense == "<="
        assert expr.constant == -5.0

    def test_ge_builds_relation(self, xy):
        x, _ = xy
        _, sense = x >= 1
        assert sense == ">="

    def test_eq_builds_relation(self, xy):
        x, y = xy
        expr, sense = x == y
        assert sense == "=="
        assert expr.terms == {x: 1.0, y: -1.0}

    def test_variable_comparison_constant(self, xy):
        x, _ = xy
        expr, sense = x <= 3
        assert sense == "<=" and expr.constant == -3.0
