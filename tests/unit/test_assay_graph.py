"""Unit tests for sequencing graphs, fluid typing and operations."""

import pytest

from repro.assay import Operation, Reagent, SequencingGraph
from repro.assay.fluids import Fluid, buffer_fluid, composite_fluid
from repro.assay.operations import default_duration, is_transformative, spec_for
from repro.errors import AssayError


@pytest.fixture
def graph(demo_assay):
    return demo_assay


class TestOperationTaxonomy:
    def test_detect_is_pass_through(self):
        assert not is_transformative("detect")
        assert not is_transformative("store")

    def test_mix_and_heat_transform(self):
        assert is_transformative("mix")
        assert is_transformative("heat")

    def test_unknown_type_rejected(self):
        with pytest.raises(KeyError):
            spec_for("levitate")

    def test_default_durations_positive(self):
        assert default_duration("mix") == 5
        assert default_duration("detect") == 4


class TestFluids:
    def test_same_type_does_not_contaminate(self):
        a, b = Fluid("x", "serum"), Fluid("y", "serum")
        assert not a.contaminates(b)

    def test_different_types_contaminate(self):
        assert Fluid("x", "serum").contaminates(Fluid("y", "dye"))

    def test_buffer_never_contaminates(self):
        buf = buffer_fluid()
        assert buf.is_buffer
        assert not buf.contaminates(Fluid("y", "dye"))
        assert not Fluid("y", "dye").contaminates(buf)

    def test_composite_fluid_embeds_op_identity(self):
        a = composite_fluid("o1", "mix", ["x", "y"])
        b = composite_fluid("o2", "mix", ["x", "y"])
        assert a != b

    def test_composite_fluid_input_order_irrelevant(self):
        assert composite_fluid("o1", "mix", ["x", "y"]) == composite_fluid(
            "o1", "mix", ["y", "x"]
        )


class TestGraphConstruction:
    def test_duplicate_ids_rejected(self, graph):
        with pytest.raises(AssayError):
            graph.add_reagent(Reagent("r1", "again"))
        with pytest.raises(AssayError):
            graph.add_operation(Operation("o1", "mix"), ["r1"])

    def test_unknown_input_rejected(self, graph):
        with pytest.raises(AssayError):
            graph.add_operation(Operation("oX", "mix"), ["ghost"])

    def test_operation_needs_inputs(self, graph):
        with pytest.raises(AssayError):
            graph.add_operation(Operation("oX", "mix"), [])

    def test_duration_defaults_by_type(self):
        assert Operation("o", "mix").duration == 5
        assert Operation("o", "mix", 9).duration == 9

    def test_add_input_extends_edges(self, graph):
        before = graph.edge_count
        graph.add_reagent(Reagent("extra", "water"))
        graph.add_input("o1", "extra")
        assert graph.edge_count == before + 1

    def test_add_input_rejects_duplicates(self, graph):
        with pytest.raises(AssayError):
            graph.add_input("o1", "r1")


class TestGraphQueries:
    def test_counts(self, graph):
        assert graph.operation_count == 6
        # 4 reagent edges + 5 internal + 1 terminal
        assert graph.edge_count == 10

    def test_terminal_operations(self, graph):
        assert graph.terminal_operations() == ["o6"]

    def test_inputs_and_consumers(self, graph):
        assert graph.inputs_of("o5") == ["o3", "o4"]
        assert graph.consumers_of("o1") == ["o3"]

    def test_topological_order_respects_dependencies(self, graph):
        order = graph.topological_operations()
        assert order.index("o1") < order.index("o3") < order.index("o5")

    def test_required_device_kinds(self, graph):
        kinds = graph.required_device_kinds()
        assert kinds == {"mixer": 3, "detector": 2, "heater": 1}


class TestFluidPropagation:
    def test_reagents_keep_their_type(self, graph):
        types = graph.fluid_types()
        assert types["r1"] == "sample"

    def test_pass_through_detect(self, graph):
        types = graph.fluid_types()
        assert types["o3"] == types["o1"]
        assert types["o6"] == types["o5"]

    def test_transformative_creates_new_type(self, graph):
        types = graph.fluid_types()
        assert types["o1"] not in ("sample", "enzyme")
        assert types["o1"] != types["o2"]

    def test_heat_transforms(self, graph):
        types = graph.fluid_types()
        assert types["o4"] != types["o2"]


class TestValidation:
    def test_valid_graph_passes(self, graph):
        graph.validate()

    def test_unused_reagent_flagged(self, graph):
        graph.add_reagent(Reagent("lonely", "water"))
        assert any("lonely" in issue for issue in graph.issues())

    def test_multi_input_pass_through_flagged(self):
        g = SequencingGraph("bad")
        g.add_reagent(Reagent("r1", "a"))
        g.add_reagent(Reagent("r2", "b"))
        g.add_operation(Operation("o1", "detect"), ["r1", "r2"])
        assert any("pass-through" in issue for issue in g.issues())
        with pytest.raises(AssayError):
            g.validate()

    def test_empty_graph_invalid(self):
        g = SequencingGraph("empty")
        assert g.issues()

    def test_name_required(self):
        with pytest.raises(AssayError):
            SequencingGraph("")
