"""Unit tests for candidate wash-path generation."""

import pytest

from repro.arch import figure2_chip
from repro.arch.routing import is_simple
from repro.core.pathgen import candidate_paths
from repro.errors import WashError


@pytest.fixture(scope="module")
def chip():
    return figure2_chip()


class TestCandidatePaths:
    def test_all_candidates_cover_targets(self, chip):
        targets = ["s12", "s13", "s16"]
        for path in candidate_paths(chip, targets):
            assert set(targets) <= set(path)

    def test_port_to_port_structure(self, chip):
        for path in candidate_paths(chip, ["s3", "s4"]):
            assert path[0] in chip.flow_ports
            assert path[-1] in chip.waste_ports

    def test_sorted_by_length(self, chip):
        paths = candidate_paths(chip, ["s6"], max_candidates=5)
        lengths = [chip.path_length_mm(p) for p in paths]
        assert lengths == sorted(lengths)

    def test_respects_max_candidates(self, chip):
        assert len(candidate_paths(chip, ["s6"], max_candidates=2)) <= 2

    def test_simple_candidates_preferred(self, chip):
        for path in candidate_paths(chip, ["s15", "s16"], max_candidates=6):
            assert is_simple(path)

    def test_reproduces_paper_candidate_discussion(self, chip):
        # Section II-C: washing s16-s12-s13 — out4 gives the short path.
        paths = candidate_paths(chip, ["s16", "s12", "s13"], max_candidates=6)
        best = paths[0]
        assert best == ("in4", "s13", "s12", "s16", "s15", "s11", "out4")

    def test_device_target_is_traversed(self, chip):
        paths = candidate_paths(chip, ["heater"])
        assert all("heater" in p for p in paths)

    def test_empty_targets_rejected(self, chip):
        with pytest.raises(WashError):
            candidate_paths(chip, [])
