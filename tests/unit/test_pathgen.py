"""Unit tests for candidate wash-path generation."""

import json

import pytest

from repro.arch import figure2_chip
from repro.arch.routing import is_simple
from repro.core import PDWConfig, optimize_washes
from repro.core.pathgen import WORKERS_ENV, candidate_paths, resolve_pathgen_workers
from repro.errors import WashError
from repro.export import plan_to_dict


@pytest.fixture(scope="module")
def chip():
    return figure2_chip()


class TestCandidatePaths:
    def test_all_candidates_cover_targets(self, chip):
        targets = ["s12", "s13", "s16"]
        for path in candidate_paths(chip, targets):
            assert set(targets) <= set(path)

    def test_port_to_port_structure(self, chip):
        for path in candidate_paths(chip, ["s3", "s4"]):
            assert path[0] in chip.flow_ports
            assert path[-1] in chip.waste_ports

    def test_sorted_by_length(self, chip):
        paths = candidate_paths(chip, ["s6"], max_candidates=5)
        lengths = [chip.path_length_mm(p) for p in paths]
        assert lengths == sorted(lengths)

    def test_respects_max_candidates(self, chip):
        assert len(candidate_paths(chip, ["s6"], max_candidates=2)) <= 2

    def test_simple_candidates_preferred(self, chip):
        for path in candidate_paths(chip, ["s15", "s16"], max_candidates=6):
            assert is_simple(path)

    def test_reproduces_paper_candidate_discussion(self, chip):
        # Section II-C: washing s16-s12-s13 — out4 gives the short path.
        paths = candidate_paths(chip, ["s16", "s12", "s13"], max_candidates=6)
        best = paths[0]
        assert best == ("in4", "s13", "s12", "s16", "s15", "s11", "out4")

    def test_device_target_is_traversed(self, chip):
        paths = candidate_paths(chip, ["heater"])
        assert all("heater" in p for p in paths)

    def test_empty_targets_rejected(self, chip):
        with pytest.raises(WashError):
            candidate_paths(chip, [])


class TestWorkerResolution:
    def test_defaults_to_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_pathgen_workers(PDWConfig()) == 1

    def test_config_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "8")
        assert resolve_pathgen_workers(PDWConfig(pathgen_workers=2)) == 2

    def test_env_used_when_config_unset(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "3")
        assert resolve_pathgen_workers(PDWConfig()) == 3

    def test_malformed_env_ignored(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "many")
        with pytest.warns(RuntimeWarning, match=WORKERS_ENV):
            assert resolve_pathgen_workers(PDWConfig()) == 1

    def test_non_positive_env_ignored(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "0")
        with pytest.warns(RuntimeWarning, match=WORKERS_ENV):
            assert resolve_pathgen_workers(PDWConfig()) == 1

    def test_negative_config_rejected(self):
        with pytest.raises(WashError):
            PDWConfig(pathgen_workers=-1)


def _plan_bytes(plan) -> bytes:
    """Canonical plan JSON with run-dependent wall times stripped.

    The per-run pipeline report and solver wall clock legitimately differ
    between executions; everything the plan *decides* (tasks, washes,
    metrics) must not.
    """
    data = plan_to_dict(plan)
    data.pop("pipeline", None)
    data.pop("solve_time_s", None)
    return json.dumps(data, sort_keys=True).encode()


class TestParallelDeterminism:
    def test_worker_count_does_not_change_plan(self, demo_synthesis, monkeypatch):
        cfg = PDWConfig(time_limit_s=30.0)
        monkeypatch.setenv(WORKERS_ENV, "1")
        serial = optimize_washes(demo_synthesis, cfg)
        monkeypatch.setenv(WORKERS_ENV, "4")
        threaded = optimize_washes(demo_synthesis, cfg)
        # The pool actually engaged (multiple clusters, 4 workers)...
        assert threaded.report.get("pathgen").counters["workers"] == 4.0
        # ...and produced a byte-identical plan.
        assert _plan_bytes(threaded) == _plan_bytes(serial)
