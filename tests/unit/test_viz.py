"""Unit tests for the ASCII chip renderer."""

import networkx as nx
import pytest

from repro.arch import figure2_chip
from repro.arch.chip import Chip, NodeKind
from repro.arch.device import Device, DeviceKind
from repro.viz import render_chip


@pytest.fixture(scope="module")
def chip():
    return figure2_chip()


class TestRenderChip:
    def test_contains_port_glyphs(self, chip):
        art = render_chip(chip)
        assert "I" in art and "O" in art

    def test_device_glyphs_present(self, chip):
        art = render_chip(chip)
        for glyph in ("M", "H", "D", "F"):
            assert glyph in art

    def test_legend_present(self, chip):
        assert "I=flow port" in render_chip(chip)

    def test_highlight_marks_path(self, chip):
        art = render_chip(chip, highlight=["s3", "s4"])
        assert "*" in art
        assert "*=highlighted" in art

    def test_chip_without_positions_is_placeholder(self):
        g = nx.Graph()
        g.add_node("in1", kind=NodeKind.FLOW_PORT)
        g.add_node("m", kind=NodeKind.DEVICE)
        g.add_node("out1", kind=NodeKind.WASTE_PORT)
        g.add_edge("in1", "m", length_mm=1.5)
        g.add_edge("m", "out1", length_mm=1.5)
        chip = Chip("bare", g, {"m": Device("m", DeviceKind.MIXER)}, ["in1"], ["out1"])
        assert "no layout coordinates" in render_chip(chip)

    def test_synthesized_chip_renders(self, demo_synthesis):
        art = render_chip(demo_synthesis.chip)
        assert "M" in art  # mixers placed
