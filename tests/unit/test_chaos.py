"""Pipeline-wide fault injection (`repro.pipeline.chaos`)."""

from __future__ import annotations

import time

import pytest

from repro.pipeline import chaos
from repro.pipeline.chaos import ChaosError, InjectedFault, StageFault, parse_spec


class TestSpecParsing:
    def test_single_clause(self):
        (fault,) = parse_spec("pathgen:crash")
        assert fault == StageFault(stage="pathgen", mode="crash")

    def test_full_grammar(self):
        faults = parse_spec("pathgen:crash:2@PCR, cache:corrupt ,replay:hang:0.5")
        assert faults == (
            StageFault("pathgen", "crash", 2.0, "PCR"),
            StageFault("cache", "corrupt"),
            StageFault("replay", "hang", 0.5),
        )

    def test_exit_code_argument(self):
        (fault,) = parse_spec("ilp:exit:7")
        assert fault.mode == "exit"
        assert fault.arg == 7.0

    @pytest.mark.parametrize(
        "bad",
        ["pathgen", ":crash", "pathgen:explode", "pathgen:crash:soon",
         "pathgen:hang:-1"],
    )
    def test_malformed_clause_raises(self, bad):
        with pytest.raises(ChaosError):
            parse_spec(bad)

    def test_empty_spec_is_clean(self, monkeypatch):
        monkeypatch.delenv(chaos.ENV_STAGE_FAULT, raising=False)
        assert chaos.active_faults() == ()
        assert chaos.environment_token() == ""


class TestFiring:
    def test_crash_raises_injected_fault(self, stage_fault):
        stage_fault("pathgen:crash")
        with pytest.raises(InjectedFault):
            chaos.trip("pathgen")
        # Other stages stay healthy.
        chaos.trip("replay")

    def test_injected_fault_is_a_repro_error(self):
        from repro.errors import ReproError

        assert issubclass(InjectedFault, ReproError)

    def test_benchmark_scoping(self, stage_fault):
        stage_fault("pathgen:crash@PCR")
        # Outside any scope: the scoped clause stays silent.
        chaos.trip("pathgen")
        with chaos.scope("IVD"):
            chaos.trip("pathgen")
        with chaos.scope("PCR"):
            with pytest.raises(InjectedFault):
                chaos.trip("pathgen")
        assert chaos.current_scope() is None

    def test_count_limited_crash_disarms_itself(self, stage_fault):
        stage_fault("ilp:crash:2")
        for _ in range(2):
            with pytest.raises(InjectedFault):
                chaos.trip("ilp")
        # Third and later trips: the budget is spent.
        chaos.trip("ilp")
        chaos.trip("ilp")

    def test_reset_rewinds_counters(self, stage_fault):
        stage_fault("ilp:crash:1")
        with pytest.raises(InjectedFault):
            chaos.trip("ilp")
        chaos.trip("ilp")
        chaos.reset()
        with pytest.raises(InjectedFault):
            chaos.trip("ilp")

    def test_hang_sleeps_for_arg_seconds(self, stage_fault):
        stage_fault("replay:hang:0.05")
        started = time.perf_counter()
        chaos.trip("replay")
        assert time.perf_counter() - started >= 0.05

    def test_corrupt_is_noop_at_stage_layer(self, stage_fault):
        stage_fault("cache:corrupt")
        chaos.trip("cache")  # applied at the cache-read layer instead


class TestCorruptPayload:
    def test_flips_first_byte(self):
        assert chaos.corrupt_payload(b"\x00abc") == b"\xffabc"

    def test_empty_payload_still_changes(self):
        assert chaos.corrupt_payload(b"") != b""
