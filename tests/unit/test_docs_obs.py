"""docs/OBSERVABILITY.md's series table cannot drift from the source tree.

Every ``pdw_*`` metric name registered anywhere under ``src/repro/`` must
have a row in the Built-in series table, and every row must name a series
that still exists in code — the docs-drift contract CLI.md and SERVICE.md
already have, applied to metrics.  (PR 8 shipped ``pdw_degrade_*`` series
the table lagged behind on; this test makes that class of drift a
failure.)
"""

from __future__ import annotations

import re
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
OBS_MD = REPO / "docs" / "OBSERVABILITY.md"
SRC = REPO / "src" / "repro"

#: Metric names are always ``pdw_``-prefixed string literals at the
#: registration site (naming convention section of the doc).
_NAME = re.compile(r'"(pdw_[a-z0-9_]+)"')
#: A series-table row: | `pdw_name` | kind | labels |
_ROW = re.compile(r"^\|\s*`(pdw_[a-z0-9_]+)`\s*\|\s*(counter|gauge|histogram)\s*\|", re.M)


def _code_series() -> set:
    names = set()
    for path in SRC.rglob("*.py"):
        names.update(_NAME.findall(path.read_text(encoding="utf-8")))
    return names


def _documented_series(text: str) -> set:
    return {m.group(1) for m in _ROW.finditer(text)}


class TestObservabilityDocs:
    text = OBS_MD.read_text(encoding="utf-8")
    documented = _documented_series(text)
    in_code = _code_series()

    def test_tables_parsed_at_all(self):
        assert len(self.documented) > 20
        assert len(self.in_code) > 20

    def test_every_registered_series_is_documented(self):
        missing = self.in_code - self.documented
        assert not missing, (
            f"metric series registered in src/repro but missing from "
            f"docs/OBSERVABILITY.md: {sorted(missing)}"
        )

    def test_no_row_documents_a_ghost_series(self):
        ghosts = self.documented - self.in_code
        assert not ghosts, (
            f"docs/OBSERVABILITY.md documents series absent from code: "
            f"{sorted(ghosts)}"
        )

    def test_repair_histogram_buckets_documented(self):
        # The one histogram with custom buckets: the doc must state the
        # unit and the bucket override, pinned to the code constant.
        from repro.degrade.repair import REPAIR_BUCKETS

        assert REPAIR_BUCKETS == (0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 15.0, 60.0)
        assert "REPAIR_BUCKETS" in self.text
        assert "0.05, 0.1, 0.25, 0.5, 1.0, 2.5,\n5.0, 15.0, 60.0" in self.text or \
            "0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 15.0, 60.0" in self.text.replace("\n", " ")
