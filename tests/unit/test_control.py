"""Unit tests for the control layer (valves and actuation)."""

import pytest

from repro.arch import ChipBuilder, figure2_chip
from repro.arch.control import ControlLayer, _norm
from repro.errors import ArchitectureError
from repro.schedule import Schedule, ScheduledTask, TaskKind


@pytest.fixture(scope="module")
def fig2_layer():
    return ControlLayer(figure2_chip())


def straight_chip():
    """in1 - a - b - c - out1 (no branches except at the ports)."""
    builder = ChipBuilder("straight")
    builder.add_flow_port("in1").add_waste_port("out1")
    builder.add_junctions("a", "b", "c")
    builder.connect("in1", "a", "b", "c", "out1")
    return builder.build()


class TestValvePlacement:
    def test_branching_segments_get_valves(self, fig2_layer):
        # s3 has degree 3 -> all its segments are gated.
        for neighbor in fig2_layer.chip.neighbors("s3"):
            assert fig2_layer.valve_on("s3", neighbor) is not None

    def test_straight_segments_need_no_valve(self):
        layer = ControlLayer(straight_chip())
        # a-b and b-c connect degree-2 junctions: no leakage possible.
        assert layer.valve_on("a", "b") is None
        assert layer.valve_on("b", "c") is None

    def test_port_segments_always_gated(self):
        layer = ControlLayer(straight_chip())
        assert layer.valve_on("in1", "a") is not None
        assert layer.valve_on("c", "out1") is not None

    def test_valve_ids_unique(self, fig2_layer):
        ids = [v.id for v in fig2_layer.valves.values()]
        assert len(ids) == len(set(ids))

    def test_norm_is_order_insensitive(self):
        assert _norm("b", "a") == _norm("a", "b")

    def test_valve_gates_both_orders(self, fig2_layer):
        valve = fig2_layer.valve_on("s3", "s4")
        assert valve.gates("s4", "s3")


class TestPathIsolation:
    def test_open_set_covers_gated_path_segments(self, fig2_layer):
        path = ("in1", "s2", "s3", "s4", "out1")
        open_v, _ = fig2_layer.path_valves(path)
        for a, b in zip(path, path[1:]):
            valve = fig2_layer.valve_on(a, b)
            if valve is not None:
                assert valve in open_v

    def test_closed_set_blocks_side_branches(self, fig2_layer):
        path = ("in1", "s2", "s3", "s4", "out1")
        _, closed_v = fig2_layer.path_valves(path)
        # s3 branches to s15: that valve must be closed.
        assert fig2_layer.valve_on("s3", "s15") in closed_v
        # The filter branch off s2 must be closed too.
        assert fig2_layer.valve_on("s2", "filter") in closed_v

    def test_open_and_closed_disjoint(self, fig2_layer):
        open_v, closed_v = fig2_layer.path_valves(("in3", "s9", "det1", "s10"))
        assert not (open_v & closed_v)


class TestActuation:
    def flow(self, tid, start, path, kind=TaskKind.TRANSPORT):
        return ScheduledTask(
            id=tid, kind=kind, start=start, duration=2, path=path, fluid_type="f",
        )

    def test_conflict_free_schedule_builds_table(self, fig2_layer):
        sched = Schedule([
            self.flow("t1", 0, ("in1", "s2", "s3", "s4", "out1")),
            self.flow("t2", 0, ("in4", "s13", "s12", "s16", "s15", "s11", "out4")),
            self.flow("t3", 3, ("in2", "s7", "s6", "s5", "out1")),
        ])
        assert sched.conflicts() == []
        table = fig2_layer.actuation_table(sched)
        assert table.horizon == 5
        assert table.open_valves(0)

    def test_node_conflicting_tasks_rejected_by_valves(self, fig2_layer):
        # Both paths use s3 concurrently in incompatible directions.
        sched = Schedule([
            self.flow("t1", 0, ("in1", "s2", "s3", "s4", "out1")),
            self.flow("t2", 0, ("in1", "s2", "s3", "s15", "s11", "out4")),
        ])
        with pytest.raises(ArchitectureError):
            fig2_layer.actuation_table(sched)

    def test_operation_traps_fluid(self, fig2_layer):
        sched = Schedule([
            ScheduledTask(id="op:o1", kind=TaskKind.OPERATION, start=0, duration=3,
                          device="mixer", op_id="o1", fluid_type="f"),
        ])
        table = fig2_layer.actuation_table(sched)
        assert table.open_valves(0) == frozenset()
        # both mixer end valves demanded closed
        assert table.horizon == 3

    def test_switch_count_counts_transitions(self, fig2_layer):
        sched = Schedule([self.flow("t1", 0, ("in1", "s1", "out2"))])
        table = fig2_layer.actuation_table(sched)
        open_now = len(table.open_valves(0))
        # each open valve opens once and closes once
        assert table.switch_count() == 2 * open_now

    def test_control_port_sharing(self, fig2_layer):
        sched = Schedule([self.flow("t1", 0, ("in1", "s1", "out2"))])
        table = fig2_layer.actuation_table(sched)
        groups = table.control_port_groups()
        assert sum(len(g) for g in groups) == fig2_layer.valve_count
        # all never-actuated valves share one port
        assert table.control_port_count() < fig2_layer.valve_count


class TestEndToEnd:
    def test_benchmark_schedule_is_valve_consistent(self, demo_synthesis):
        layer = ControlLayer(demo_synthesis.chip)
        table = layer.actuation_table(demo_synthesis.schedule)
        assert table.horizon >= demo_synthesis.schedule.makespan - 1
        assert table.control_port_count() <= layer.valve_count

    def test_pdw_plan_is_valve_consistent(self, demo_pdw_plan):
        layer = ControlLayer(demo_pdw_plan.chip)
        table = layer.actuation_table(demo_pdw_plan.schedule)
        assert table.switch_count() > 0
