"""docs/CLI.md cannot drift from the argparse tree.

Walks :func:`repro.cli.build_parser` and asserts every subcommand has a
``## pdw <name>`` section documenting every one of its flags (and no
section documents a subcommand that does not exist).
"""

import argparse
import re
from pathlib import Path

import pytest

from repro.cli import build_parser

CLI_MD = Path(__file__).resolve().parents[2] / "docs" / "CLI.md"


def _subparsers(parser: argparse.ArgumentParser) -> dict:
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            return dict(action.choices)
    raise AssertionError("pdw parser has no subcommands")


def _sections(text: str) -> dict:
    """Map ``## pdw <name>`` heading -> section body."""
    sections = {}
    matches = list(re.finditer(r"^## pdw (\S+)\s*$", text, flags=re.M))
    for i, m in enumerate(matches):
        end = matches[i + 1].start() if i + 1 < len(matches) else len(text)
        sections[m.group(1)] = text[m.end():end]
    return sections


def _documented_tokens(action: argparse.Action) -> list:
    """The strings any of which may document this action in CLI.md."""
    if action.option_strings:
        return list(action.option_strings)
    # Positionals: dest or metavar, whichever the doc chose.
    tokens = [action.dest]
    if action.metavar:
        tokens.append(action.metavar)
    return tokens


class TestCliDocs:
    text = CLI_MD.read_text(encoding="utf-8")
    sections = _sections(text)
    subcommands = _subparsers(build_parser())

    def test_every_subcommand_has_a_section(self):
        missing = set(self.subcommands) - set(self.sections)
        assert not missing, f"subcommands undocumented in docs/CLI.md: {sorted(missing)}"

    def test_no_section_documents_a_ghost_subcommand(self):
        ghosts = set(self.sections) - set(self.subcommands)
        assert not ghosts, f"docs/CLI.md documents nonexistent subcommands: {sorted(ghosts)}"

    @pytest.mark.parametrize("name", sorted(_subparsers(build_parser())))
    def test_every_flag_is_documented(self, name):
        body = self.sections[name]
        sub = self.subcommands[name]
        for action in sub._actions:
            if isinstance(action, argparse._HelpAction):
                continue
            tokens = _documented_tokens(action)
            assert any(f"`{tok}`" in body for tok in tokens), (
                f"'pdw {name}' flag {tokens[0]!r} is not documented "
                f"in its docs/CLI.md section"
            )

    @pytest.mark.parametrize("name", sorted(_subparsers(build_parser())))
    def test_every_choice_value_is_documented(self, name):
        """Enum flags (report names, cache actions, --what, --method, ...)
        must document every accepted value, not just the flag itself.
        Benchmark-name choice lists are exempt — sections point at
        ``pdw list`` instead of enumerating Table II."""
        from repro.bench import BENCHMARKS

        body = self.sections[name]
        benchmarks = set(BENCHMARKS)
        for action in self.subcommands[name]._actions:
            if isinstance(action, argparse._HelpAction) or not action.choices:
                continue
            choices = set(action.choices)
            if choices <= benchmarks:
                continue
            for value in choices:
                assert f"`{value}`" in body, (
                    f"'pdw {name}' choice {value!r} of {action.dest!r} is "
                    f"not documented in its docs/CLI.md section"
                )

    def test_exit_codes_documented(self):
        assert "## Exit codes" in self.text
        for code in ("0", "1", "2", "3"):
            assert re.search(rf"^\| {code} \|", self.text, flags=re.M), (
                f"exit code {code} missing from docs/CLI.md"
            )
