"""Unit tests for the solver degradation ladder and fault injection."""

import time

import pytest

from repro.errors import LadderExhausted, SolverError
from repro.ilp import LinExpr, Model, Solution, SolverPortfolio, SolveStatus
from repro.ilp import faults


def knapsack_model() -> Model:
    m = Model()
    x = m.add_integer_var("x", 0, 10)
    y = m.add_integer_var("y", 0, 10)
    m.add_constr(x + y <= 7)
    m.set_objective(3 * x + 2 * y, sense="max")
    return m


def infeasible_model() -> Model:
    m = Model()
    b = m.add_binary_var("b")
    m.add_constr(LinExpr.from_any(b) >= 2)
    m.set_objective(LinExpr.from_any(b))
    return m


class TestCleanLadder:
    def test_primary_rung_wins(self):
        result = SolverPortfolio(time_limit_s=30.0).solve(knapsack_model())
        assert result.rung == "highs"
        assert result.solution.status is SolveStatus.OPTIMAL
        assert result.solution.objective == pytest.approx(21.0)
        assert len(result.attempts) == 1
        assert result.attempts[0].succeeded
        assert result.attempts[0].wall_s >= 0.0

    def test_infeasible_stops_ladder_immediately(self):
        result = SolverPortfolio(time_limit_s=30.0).solve(infeasible_model())
        assert result.solution.status is SolveStatus.INFEASIBLE
        # A proven-infeasible model must not be retried on lower rungs.
        assert len(result.attempts) == 1

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(SolverError):
            SolverPortfolio(time_limit_s=0.0)

    def test_unknown_force_rejected(self):
        with pytest.raises(SolverError):
            SolverPortfolio(force="simplex-by-hand")


class _SlowRungPortfolio(SolverPortfolio):
    """Every rung ignores its budget, overruns, and fails.

    Models HiGHS's soft time limit: the regression guarded here is the
    ladder handing every later rung the ``min_rung_budget_s`` floor even
    after the *global* deadline had already been blown.
    """

    def __init__(self, overrun_s: float, **kwargs):
        super().__init__(**kwargs)
        self.overrun_s = overrun_s
        self.granted: list = []

    def _overrun(self, budget_s: float) -> Solution:
        self.granted.append(budget_s)
        time.sleep(self.overrun_s)
        return Solution(SolveStatus.ERROR, message="still grinding")

    def _run_highs(self, model, budget_s):
        return self._overrun(budget_s)

    def _run_highs_relaxed(self, model, budget_s):
        return self._overrun(budget_s)

    def _run_branch_bound(self, model, budget_s):
        return self._overrun(budget_s)


class TestBudgetClamp:
    """The portfolio's global deadline is a ceiling, not a suggestion."""

    def test_slice_zero_once_deadline_passed(self):
        pf = SolverPortfolio(time_limit_s=5.0)
        assert pf._slice("highs", time.perf_counter() - 1.0) == 0.0
        assert pf._slice("branch_bound", time.perf_counter() - 1.0) == 0.0

    def test_slice_floor_clamped_to_remaining(self):
        # Pre-fix, the min_rung_budget_s floor *extended* the deadline:
        # with 0.4s left a rung was still granted the full 1.0s floor.
        pf = SolverPortfolio(time_limit_s=5.0, min_rung_budget_s=1.0)
        budget = pf._slice("branch_bound", time.perf_counter() + 0.4)
        assert 0.0 < budget <= 0.4 + 1e-3

    def test_overrunning_rungs_cannot_leak_past_the_budget(self):
        # 2s global budget, every rung overruns its slice by sleeping
        # 1.2s: the ladder must stop once the deadline is exhausted
        # instead of walking all three rungs at the floor (~2x budget
        # total wall, never the leaky 3.6s+).
        pf = _SlowRungPortfolio(
            overrun_s=1.2, time_limit_s=2.0, min_rung_budget_s=1.0
        )
        started = time.perf_counter()
        with pytest.raises(LadderExhausted) as exc_info:
            pf.solve(knapsack_model())
        wall = time.perf_counter() - started
        assert wall <= 2.0 * 2.0
        assert len(exc_info.value.attempts) <= 2
        # Every granted slice respected the remaining global budget.
        deadline_total = sum(pf.granted)
        assert deadline_total <= 2.0 + 1e-3

    def test_first_rung_always_granted_the_floor(self):
        # A microscopic budget must still produce one genuine attempt.
        pf = _SlowRungPortfolio(
            overrun_s=0.0, time_limit_s=1e-9, min_rung_budget_s=1.0
        )
        with pytest.raises(LadderExhausted):
            pf.solve(knapsack_model())
        assert pf.granted[0] == pytest.approx(1.0)


class TestFaultInjection:
    def test_crash_falls_through_to_branch_bound(self, solver_fault):
        solver_fault("crash")
        result = SolverPortfolio(time_limit_s=30.0).solve(knapsack_model())
        assert result.rung == "branch_bound"
        assert result.solution.objective == pytest.approx(21.0)
        assert [a.rung for a in result.attempts] == [
            "highs", "highs-relaxed", "branch_bound",
        ]
        assert result.attempts[0].status == SolveStatus.ERROR.value
        assert "injected crash" in result.attempts[0].message

    def test_timeout_falls_through_to_branch_bound(self, solver_fault):
        solver_fault("timeout")
        result = SolverPortfolio(time_limit_s=30.0).solve(knapsack_model())
        assert result.rung == "branch_bound"
        assert result.solution.status is SolveStatus.OPTIMAL
        assert "time limit" in result.attempts[0].message

    def test_no_incumbent_falls_through(self, solver_fault):
        solver_fault("no_incumbent")
        result = SolverPortfolio(time_limit_s=30.0).solve(knapsack_model())
        assert result.rung == "branch_bound"

    def test_flaky_certain_failure(self, solver_fault):
        solver_fault("flaky:1.0")
        result = SolverPortfolio(time_limit_s=30.0).solve(knapsack_model())
        assert result.rung == "branch_bound"

    def test_flaky_never_fires_at_zero(self, solver_fault):
        solver_fault("flaky:0.0")
        result = SolverPortfolio(time_limit_s=30.0).solve(knapsack_model())
        assert result.rung == "highs"

    def test_flaky_stream_is_deterministic(self, solver_fault):
        solver_fault("flaky:0.5", seed="42")
        first = SolverPortfolio(time_limit_s=30.0).solve(knapsack_model()).rung
        faults.reset()
        second = SolverPortfolio(time_limit_s=30.0).solve(knapsack_model()).rung
        assert first == second


class TestForcedRungs:
    def test_force_branch_bound_single_attempt(self):
        result = SolverPortfolio(time_limit_s=30.0, force="branch_bound").solve(
            knapsack_model()
        )
        assert result.rung == "branch_bound"
        assert [a.rung for a in result.attempts] == ["branch_bound"]
        assert result.solution.objective == pytest.approx(21.0)

    def test_force_greedy_exhausts_the_ladder(self):
        with pytest.raises(LadderExhausted) as exc_info:
            SolverPortfolio(time_limit_s=30.0, force="greedy").solve(knapsack_model())
        assert exc_info.value.attempts == ()

    def test_force_env_variable(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_FORCE, "branch_bound")
        result = SolverPortfolio(time_limit_s=30.0).solve(knapsack_model())
        assert result.rung == "branch_bound"

    def test_from_config_respects_solver_field(self):
        from repro.core import PDWConfig

        pf = SolverPortfolio.from_config(
            PDWConfig(time_limit_s=30.0, solver="branch_bound")
        )
        assert pf.force == "branch_bound"
        auto = SolverPortfolio.from_config(PDWConfig(time_limit_s=30.0))
        assert auto.force is None


class TestRaceMode:
    """The concurrent rung race (solver_mode="race")."""

    def test_race_solves_and_reports_mode(self):
        result = SolverPortfolio(
            time_limit_s=30.0, mode="race", race_grace_s=1.0
        ).solve(knapsack_model())
        assert result.mode == "race"
        assert result.race_wall_s > 0.0
        assert result.solution.status.has_solution
        assert result.solution.objective == pytest.approx(21.0)
        # Every launched rung is accounted for: winner, finisher, or
        # explicitly cancelled — never silently dropped.
        assert {a.rung for a in result.attempts} == {
            "highs", "highs-relaxed", "branch_bound",
        }

    def test_race_winner_is_deterministic(self):
        winners = {
            SolverPortfolio(time_limit_s=30.0, mode="race", race_grace_s=1.0)
            .solve(knapsack_model())
            .rung
            for _ in range(3)
        }
        assert winners == {"highs"}

    def test_race_attempts_in_priority_order(self):
        result = SolverPortfolio(
            time_limit_s=30.0, mode="race", race_grace_s=1.0
        ).solve(knapsack_model())
        rungs = [a.rung for a in result.attempts]
        assert rungs == sorted(
            rungs, key=lambda r: {"highs": 0, "highs-relaxed": 1, "branch_bound": 2}[r]
        )

    def test_race_proves_infeasible(self):
        result = SolverPortfolio(
            time_limit_s=30.0, mode="race", race_grace_s=1.0
        ).solve(infeasible_model())
        assert result.solution.status is SolveStatus.INFEASIBLE

    def test_forced_rung_implies_ladder(self):
        result = SolverPortfolio(
            time_limit_s=30.0, mode="race", force="branch_bound"
        ).solve(knapsack_model())
        assert result.mode == "ladder"
        assert result.rung == "branch_bound"

    def test_unknown_mode_rejected(self):
        with pytest.raises(SolverError):
            SolverPortfolio(mode="regatta")

    def test_env_mode_overrides_default(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_MODE, "race")
        assert SolverPortfolio(time_limit_s=30.0).mode == "race"

    def test_explicit_config_beats_env(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_MODE, "ladder")
        assert faults.resolve_solver_mode("race") == "race"

    def test_junk_env_mode_rejected(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_MODE, "regatta")
        with pytest.raises(SolverError):
            faults.env_solver_mode()

    def test_crash_fault_lets_concurrent_rung_win(self, solver_fault):
        # The injected crash hits both HiGHS rungs (FAULT_TARGET_RUNGS),
        # so branch_bound must win the race without serial waiting.
        solver_fault("crash")
        result = SolverPortfolio(
            time_limit_s=30.0, mode="race", race_grace_s=1.0
        ).solve(knapsack_model())
        assert result.rung == "branch_bound"
        assert result.solution.objective == pytest.approx(21.0)

    def test_race_leaves_no_orphan_processes(self):
        import multiprocessing

        SolverPortfolio(
            time_limit_s=30.0, mode="race", race_grace_s=0.05
        ).solve(knapsack_model())
        deadline = time.perf_counter() + 5.0
        while time.perf_counter() < deadline:
            racers = [
                p for p in multiprocessing.active_children()
                if not p.name.startswith("SyncManager")
            ]
            if not racers:
                break
            time.sleep(0.01)
        assert not racers


class TestFaultSpecParsing:
    def test_plain_kinds(self):
        for kind in ("timeout", "crash", "no_incumbent"):
            spec = faults.FaultSpec.parse(kind)
            assert spec.kind == kind and spec.probability == 1.0

    def test_flaky_with_probability(self):
        spec = faults.FaultSpec.parse("flaky:0.25")
        assert spec.kind == "flaky"
        assert spec.probability == pytest.approx(0.25)

    def test_bare_flaky_defaults_to_certain(self):
        assert faults.FaultSpec.parse("flaky").probability == 1.0

    def test_junk_rejected(self):
        with pytest.raises(SolverError):
            faults.FaultSpec.parse("segfault")

    def test_bad_probability_rejected(self):
        with pytest.raises(SolverError):
            faults.FaultSpec.parse("flaky:lots")
        with pytest.raises(SolverError):
            faults.FaultSpec.parse("flaky:1.5")


class TestEnvironmentToken:
    def test_clean_environment_is_empty(self, monkeypatch):
        monkeypatch.delenv(faults.ENV_FAULT, raising=False)
        monkeypatch.delenv(faults.ENV_FORCE, raising=False)
        assert faults.environment_token() == ""

    def test_token_covers_both_variables(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_FAULT, "crash")
        tok_fault = faults.environment_token()
        monkeypatch.setenv(faults.ENV_FORCE, "branch_bound")
        tok_both = faults.environment_token()
        assert tok_fault and tok_both and tok_fault != tok_both

    def test_token_covers_solver_mode(self, monkeypatch):
        monkeypatch.delenv(faults.ENV_FAULT, raising=False)
        monkeypatch.delenv(faults.ENV_FORCE, raising=False)
        monkeypatch.setenv(faults.ENV_MODE, "race")
        tok = faults.environment_token()
        assert tok and "mode=race" in tok
