"""Unit tests for the solver degradation ladder and fault injection."""

import pytest

from repro.errors import LadderExhausted, SolverError
from repro.ilp import LinExpr, Model, SolverPortfolio, SolveStatus
from repro.ilp import faults


def knapsack_model() -> Model:
    m = Model()
    x = m.add_integer_var("x", 0, 10)
    y = m.add_integer_var("y", 0, 10)
    m.add_constr(x + y <= 7)
    m.set_objective(3 * x + 2 * y, sense="max")
    return m


def infeasible_model() -> Model:
    m = Model()
    b = m.add_binary_var("b")
    m.add_constr(LinExpr.from_any(b) >= 2)
    m.set_objective(LinExpr.from_any(b))
    return m


class TestCleanLadder:
    def test_primary_rung_wins(self):
        result = SolverPortfolio(time_limit_s=30.0).solve(knapsack_model())
        assert result.rung == "highs"
        assert result.solution.status is SolveStatus.OPTIMAL
        assert result.solution.objective == pytest.approx(21.0)
        assert len(result.attempts) == 1
        assert result.attempts[0].succeeded
        assert result.attempts[0].wall_s >= 0.0

    def test_infeasible_stops_ladder_immediately(self):
        result = SolverPortfolio(time_limit_s=30.0).solve(infeasible_model())
        assert result.solution.status is SolveStatus.INFEASIBLE
        # A proven-infeasible model must not be retried on lower rungs.
        assert len(result.attempts) == 1

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(SolverError):
            SolverPortfolio(time_limit_s=0.0)

    def test_unknown_force_rejected(self):
        with pytest.raises(SolverError):
            SolverPortfolio(force="simplex-by-hand")


class TestFaultInjection:
    def test_crash_falls_through_to_branch_bound(self, solver_fault):
        solver_fault("crash")
        result = SolverPortfolio(time_limit_s=30.0).solve(knapsack_model())
        assert result.rung == "branch_bound"
        assert result.solution.objective == pytest.approx(21.0)
        assert [a.rung for a in result.attempts] == [
            "highs", "highs-relaxed", "branch_bound",
        ]
        assert result.attempts[0].status == SolveStatus.ERROR.value
        assert "injected crash" in result.attempts[0].message

    def test_timeout_falls_through_to_branch_bound(self, solver_fault):
        solver_fault("timeout")
        result = SolverPortfolio(time_limit_s=30.0).solve(knapsack_model())
        assert result.rung == "branch_bound"
        assert result.solution.status is SolveStatus.OPTIMAL
        assert "time limit" in result.attempts[0].message

    def test_no_incumbent_falls_through(self, solver_fault):
        solver_fault("no_incumbent")
        result = SolverPortfolio(time_limit_s=30.0).solve(knapsack_model())
        assert result.rung == "branch_bound"

    def test_flaky_certain_failure(self, solver_fault):
        solver_fault("flaky:1.0")
        result = SolverPortfolio(time_limit_s=30.0).solve(knapsack_model())
        assert result.rung == "branch_bound"

    def test_flaky_never_fires_at_zero(self, solver_fault):
        solver_fault("flaky:0.0")
        result = SolverPortfolio(time_limit_s=30.0).solve(knapsack_model())
        assert result.rung == "highs"

    def test_flaky_stream_is_deterministic(self, solver_fault):
        solver_fault("flaky:0.5", seed="42")
        first = SolverPortfolio(time_limit_s=30.0).solve(knapsack_model()).rung
        faults.reset()
        second = SolverPortfolio(time_limit_s=30.0).solve(knapsack_model()).rung
        assert first == second


class TestForcedRungs:
    def test_force_branch_bound_single_attempt(self):
        result = SolverPortfolio(time_limit_s=30.0, force="branch_bound").solve(
            knapsack_model()
        )
        assert result.rung == "branch_bound"
        assert [a.rung for a in result.attempts] == ["branch_bound"]
        assert result.solution.objective == pytest.approx(21.0)

    def test_force_greedy_exhausts_the_ladder(self):
        with pytest.raises(LadderExhausted) as exc_info:
            SolverPortfolio(time_limit_s=30.0, force="greedy").solve(knapsack_model())
        assert exc_info.value.attempts == ()

    def test_force_env_variable(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_FORCE, "branch_bound")
        result = SolverPortfolio(time_limit_s=30.0).solve(knapsack_model())
        assert result.rung == "branch_bound"

    def test_from_config_respects_solver_field(self):
        from repro.core import PDWConfig

        pf = SolverPortfolio.from_config(
            PDWConfig(time_limit_s=30.0, solver="branch_bound")
        )
        assert pf.force == "branch_bound"
        auto = SolverPortfolio.from_config(PDWConfig(time_limit_s=30.0))
        assert auto.force is None


class TestFaultSpecParsing:
    def test_plain_kinds(self):
        for kind in ("timeout", "crash", "no_incumbent"):
            spec = faults.FaultSpec.parse(kind)
            assert spec.kind == kind and spec.probability == 1.0

    def test_flaky_with_probability(self):
        spec = faults.FaultSpec.parse("flaky:0.25")
        assert spec.kind == "flaky"
        assert spec.probability == pytest.approx(0.25)

    def test_bare_flaky_defaults_to_certain(self):
        assert faults.FaultSpec.parse("flaky").probability == 1.0

    def test_junk_rejected(self):
        with pytest.raises(SolverError):
            faults.FaultSpec.parse("segfault")

    def test_bad_probability_rejected(self):
        with pytest.raises(SolverError):
            faults.FaultSpec.parse("flaky:lots")
        with pytest.raises(SolverError):
            faults.FaultSpec.parse("flaky:1.5")


class TestEnvironmentToken:
    def test_clean_environment_is_empty(self, monkeypatch):
        monkeypatch.delenv(faults.ENV_FAULT, raising=False)
        monkeypatch.delenv(faults.ENV_FORCE, raising=False)
        assert faults.environment_token() == ""

    def test_token_covers_both_variables(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_FAULT, "crash")
        tok_fault = faults.environment_token()
        monkeypatch.setenv(faults.ENV_FORCE, "branch_bound")
        tok_both = faults.environment_token()
        assert tok_fault and tok_both and tok_fault != tok_both
