"""docs/SERVICE.md cannot drift from the live route registry.

The endpoint table is parsed out of the handbook and asserted row-by-row
against ``repro.serve.routes.ROUTES`` — method, path and the full status
-code set must match exactly, in both directions — and the documented
lifecycle states must match ``repro.serve.jobs.JOB_STATES``.  The same
contract docs/CLI.md has with ``build_parser()``.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.serve import ROUTES
from repro.serve.jobs import JOB_STATES

SERVICE_MD = Path(__file__).resolve().parents[2] / "docs" / "SERVICE.md"

#: An endpoint-table row: | `METHOD` | `/path` | purpose | codes |
_ROW = re.compile(
    r"^\|\s*`(?P<method>GET|POST|PUT|DELETE|PATCH)`\s*"
    r"\|\s*`(?P<path>/[^`]*)`\s*"
    r"\|\s*(?P<summary>[^|]+?)\s*"
    r"\|\s*(?P<codes>[\d,\s]+?)\s*\|\s*$",
    flags=re.M,
)


def _documented_rows(text: str) -> dict:
    rows = {}
    for m in _ROW.finditer(text):
        key = (m.group("method"), m.group("path"))
        codes = tuple(sorted(int(c) for c in re.findall(r"\d+", m.group("codes"))))
        rows[key] = codes
    return rows


class TestServiceDocs:
    text = SERVICE_MD.read_text(encoding="utf-8")
    rows = _documented_rows(text)
    registry = {(r.method, r.path): tuple(sorted(r.codes)) for r in ROUTES}

    def test_table_parsed_at_all(self):
        assert self.rows, "no endpoint-table rows found in docs/SERVICE.md"

    def test_every_route_has_a_table_row(self):
        missing = set(self.registry) - set(self.rows)
        assert not missing, f"routes undocumented in docs/SERVICE.md: {sorted(missing)}"

    def test_no_row_documents_a_ghost_route(self):
        ghosts = set(self.rows) - set(self.registry)
        assert not ghosts, f"docs/SERVICE.md documents nonexistent routes: {sorted(ghosts)}"

    @pytest.mark.parametrize("route", sorted(
        {(r.method, r.path) for r in ROUTES}
    ))
    def test_status_codes_match_exactly(self, route):
        assert self.rows[route] == self.registry[route], (
            f"{route[0]} {route[1]}: docs say {self.rows[route]}, "
            f"registry says {self.registry[route]}"
        )

    def test_lifecycle_states_documented(self):
        for state in JOB_STATES:
            assert re.search(rf"`{state}`", self.text), (
                f"lifecycle state {state!r} missing from docs/SERVICE.md"
            )

    def test_lifecycle_diagram_present(self):
        # The state machine sketch names every transition source.
        assert "queued ──▶ running" in self.text

    def test_dedup_and_backpressure_sections_present(self):
        for heading in ("Dedup semantics", "Backpressure", "Operations"):
            assert heading in self.text, f"section {heading!r} missing"

    def test_journal_location_documented(self):
        assert "journal/suite.jsonl" in self.text
