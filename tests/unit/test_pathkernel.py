"""Kernel-vs-networkx equivalence tests for the CSR routing kernel.

The :class:`~repro.arch.pathkernel.PathKernel` replaced networkx on the
routing hot path; these tests pin its contract to the reference
implementation on random grids and on every benchmark chip's generated
layout: same shortest-path cost, valid simple paths, identical k-path
cost ordering, and cache-served results identical to cold queries.
"""

import random

import networkx as nx
import pytest

from repro.arch.builder import ChipBuilder
from repro.arch.pathkernel import PathKernel, kernel_for
from repro.arch.routing import is_simple
from repro.bench import BENCHMARKS
from repro.errors import RoutingError
from repro.synth.binding import build_device_list
from repro.synth.layout import generate_layout

WEIGHT = "length_mm"


def nx_cost(graph, src, dst, banned=frozenset()):
    """Reference shortest-path cost, or ``None`` when unreachable."""
    if banned:
        keep = (set(graph) - set(banned)) | {src, dst}
        graph = graph.subgraph(keep)
    try:
        cost, _ = nx.bidirectional_dijkstra(graph, src, dst, weight=WEIGHT)
    except (nx.NetworkXNoPath, nx.NodeNotFound):
        return None
    return cost


def assert_valid_path(chip, path, src, dst, length):
    """The kernel's path is a real, simple walk of the claimed length."""
    assert path[0] == src and path[-1] == dst
    assert is_simple(path)
    total = 0.0
    for a, b in zip(path, path[1:]):
        assert chip.graph.has_edge(a, b)
        total += chip.graph.edges[a, b][WEIGHT]
    assert length == pytest.approx(total)


def random_grid_chip(seed, width=6, height=5):
    """A connected grid of junctions with random channel lengths."""
    rng = random.Random(seed)
    b = ChipBuilder(f"grid-{seed}")
    for x in range(width):
        for y in range(height):
            b.add_junction(f"n{x}_{y}", pos=(float(x), float(y)))
    for x in range(width):
        for y in range(height):
            if x + 1 < width:
                b.add_channel(
                    f"n{x}_{y}", f"n{x + 1}_{y}", round(rng.uniform(0.5, 4.0), 3)
                )
            if y + 1 < height:
                b.add_channel(
                    f"n{x}_{y}", f"n{x}_{y + 1}", round(rng.uniform(0.5, 4.0), 3)
                )
    b.add_flow_port("in1", pos=(-1.0, 0.0))
    b.add_channel("in1", "n0_0", 1.0)
    b.add_waste_port("out1", pos=(float(width), float(height - 1)))
    b.add_channel(f"n{width - 1}_{height - 1}", "out1", 1.0)
    return b.build()


def query_pairs(chip, rng, count=12):
    """Port pairs plus random interior pairs of one chip."""
    nodes = list(chip.graph.nodes)
    pairs = [(fp, wp) for fp in chip.flow_ports for wp in chip.waste_ports]
    for _ in range(count):
        a, b = rng.choice(nodes), rng.choice(nodes)
        if a != b:
            pairs.append((a, b))
    return pairs


@pytest.fixture(scope="module", params=sorted(BENCHMARKS))
def bench_chip(request):
    spec = BENCHMARKS[request.param]
    devices = build_device_list(spec.inventory)
    return generate_layout(devices, name=f"{spec.name}-chip")


class TestBenchmarkChipEquivalence:
    def test_shortest_costs_match_networkx(self, bench_chip):
        kernel = PathKernel(bench_chip)
        rng = random.Random(7)
        for src, dst in query_pairs(bench_chip, rng):
            expected = nx_cost(bench_chip.graph, src, dst)
            if expected is None:
                with pytest.raises(RoutingError):
                    kernel.shortest(src, dst)
                continue
            path, length = kernel.shortest(src, dst)
            assert length == pytest.approx(expected)
            assert_valid_path(bench_chip, path, src, dst, length)

    def test_avoid_sets_match_networkx_subgraph(self, bench_chip):
        kernel = PathKernel(bench_chip)
        rng = random.Random(11)
        interior = [n for n in bench_chip.graph.nodes if not bench_chip.is_port(n)]
        for src, dst in query_pairs(bench_chip, rng, count=6):
            banned = frozenset(
                n for n in rng.sample(interior, min(3, len(interior)))
                if n not in (src, dst)
            )
            expected = nx_cost(bench_chip.graph, src, dst, banned)
            if expected is None:
                with pytest.raises(RoutingError):
                    kernel.shortest(src, dst, banned)
                continue
            path, length = kernel.shortest(src, dst, banned)
            assert length == pytest.approx(expected)
            assert not banned & set(path[1:-1])
            assert_valid_path(bench_chip, path, src, dst, length)

    def test_k_path_cost_ordering_matches_networkx(self, bench_chip):
        kernel = PathKernel(bench_chip)
        k = 4
        for src in bench_chip.flow_ports[:2]:
            for dst in bench_chip.waste_ports[:2]:
                found = kernel.k_shortest(src, dst, k)
                costs = [length for _, length in found]
                assert costs == sorted(costs)
                gen = nx.shortest_simple_paths(
                    bench_chip.graph, src, dst, weight=WEIGHT
                )
                expected = []
                for path in gen:
                    expected.append(
                        sum(
                            bench_chip.graph.edges[a, b][WEIGHT]
                            for a, b in zip(path, path[1:])
                        )
                    )
                    if len(expected) == len(found):
                        break
                assert costs == pytest.approx(expected)
                for path, length in found:
                    assert_valid_path(bench_chip, path, src, dst, length)


class TestRandomGridEquivalence:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_shortest_costs_match_networkx(self, seed):
        chip = random_grid_chip(seed)
        kernel = PathKernel(chip)
        rng = random.Random(seed * 101)
        for src, dst in query_pairs(chip, rng, count=20):
            expected = nx_cost(chip.graph, src, dst)
            path, length = kernel.shortest(src, dst)
            assert length == pytest.approx(expected)
            assert_valid_path(chip, path, src, dst, length)

    @pytest.mark.parametrize("seed", [4, 5])
    def test_k_path_cost_ordering_matches_networkx(self, seed):
        chip = random_grid_chip(seed)
        kernel = PathKernel(chip)
        gen = nx.shortest_simple_paths(chip.graph, "in1", "out1", weight=WEIGHT)
        expected = []
        for path in gen:
            expected.append(
                sum(chip.graph.edges[a, b][WEIGHT] for a, b in zip(path, path[1:]))
            )
            if len(expected) == 5:
                break
        costs = [length for _, length in kernel.k_shortest("in1", "out1", 5)]
        assert costs == pytest.approx(expected)


class TestCache:
    def test_cache_hit_identical_to_cold(self):
        chip = random_grid_chip(9)
        kernel = PathKernel(chip)
        cold = kernel.shortest("in1", "out1")
        hits0, misses0, _ = kernel.cache_info()
        warm = kernel.shortest("in1", "out1")
        hits1, misses1, _ = kernel.cache_info()
        assert warm == cold
        assert (hits1, misses1) == (hits0 + 1, misses0)

    def test_negative_result_cached(self):
        chip = random_grid_chip(10)
        kernel = PathKernel(chip)
        # in1 attaches to the grid only through n0_0; banning it cuts in1 off.
        banned = frozenset({"n0_0"})
        with pytest.raises(RoutingError):
            kernel.shortest("in1", "out1", banned)
        _, misses0, _ = kernel.cache_info()
        with pytest.raises(RoutingError):
            kernel.shortest("in1", "out1", banned)
        _, misses1, _ = kernel.cache_info()
        assert misses1 == misses0  # second failure served from the cache

    def test_eviction_bounds_cache(self):
        chip = random_grid_chip(12)
        kernel = PathKernel(chip, cache_size=4)
        nodes = list(chip.graph.nodes)[:6]
        for a in nodes:
            for b in nodes:
                if a != b:
                    kernel.shortest(a, b)
        _, _, size = kernel.cache_info()
        assert size <= 4

    def test_kernel_for_is_cached_per_chip(self):
        chip = random_grid_chip(13)
        assert kernel_for(chip) is kernel_for(chip)
