"""Unit tests for the Table II benchmark suite."""

import pytest

from repro.bench import benchmark, benchmark_names, load_benchmark
from repro.bench.synthetic import synthetic_assay
from repro.errors import BenchmarkError

#: Expected |O|/|D|/|E| straight from Table II column 2.
TABLE2_SIZES = {
    "PCR": (7, 5, 15),
    "IVD": (12, 9, 24),
    "ProteinSplit": (14, 11, 27),
    "Kinase-act-1": (4, 9, 16),
    "Kinase-act-2": (12, 9, 48),
    "Synthetic1": (10, 12, 15),
    "Synthetic2": (15, 13, 24),
    "Synthetic3": (20, 18, 28),
}


class TestRegistry:
    def test_all_eight_present_in_order(self):
        assert benchmark_names() == list(TABLE2_SIZES)

    def test_unknown_name_raises(self):
        with pytest.raises(BenchmarkError):
            benchmark("NotABenchmark")
        with pytest.raises(BenchmarkError):
            load_benchmark("NotABenchmark")

    @pytest.mark.parametrize("name", list(TABLE2_SIZES))
    def test_sizes_match_table2(self, name):
        ops, devices, edges = TABLE2_SIZES[name]
        graph = load_benchmark(name)
        assert graph.operation_count == ops
        assert graph.edge_count == edges
        assert benchmark(name).device_total == devices

    @pytest.mark.parametrize("name", list(TABLE2_SIZES))
    def test_graphs_are_valid(self, name):
        load_benchmark(name).validate()

    @pytest.mark.parametrize("name", list(TABLE2_SIZES))
    def test_inventory_covers_required_kinds(self, name):
        graph = load_benchmark(name)
        inventory = {k.value: n for k, n in benchmark(name).inventory.items()}
        for kind in graph.required_device_kinds():
            assert inventory.get(kind, 0) >= 1, kind

    @pytest.mark.parametrize("name", list(TABLE2_SIZES))
    def test_paper_rows_have_pdw_not_worse(self, name):
        spec = benchmark(name)
        for d, p in zip(spec.paper_dawo, spec.paper_pdw):
            assert p <= d

    def test_loading_is_deterministic(self):
        a, b = load_benchmark("Synthetic2"), load_benchmark("Synthetic2")
        assert a.dependency_edges() == b.dependency_edges()


class TestSyntheticGenerator:
    def test_exact_counts(self):
        g = synthetic_assay("t", n_ops=8, n_edges=14, seed=7)
        assert g.operation_count == 8
        assert g.edge_count == 14

    def test_deterministic_by_seed(self):
        a = synthetic_assay("t", 10, 18, seed=1)
        b = synthetic_assay("t", 10, 18, seed=1)
        assert a.dependency_edges() == b.dependency_edges()

    def test_different_seeds_differ(self):
        a = synthetic_assay("t", 12, 20, seed=1)
        b = synthetic_assay("t", 12, 20, seed=2)
        assert a.dependency_edges() != b.dependency_edges()

    def test_infeasible_budget_rejected(self):
        with pytest.raises(BenchmarkError):
            synthetic_assay("t", n_ops=10, n_edges=10, seed=1)

    def test_zero_ops_rejected(self):
        with pytest.raises(BenchmarkError):
            synthetic_assay("t", n_ops=0, n_edges=5, seed=1)
