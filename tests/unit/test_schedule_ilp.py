"""Unit tests for the PDW scheduling ILP on hand-built micro-instances."""

import pytest

from repro.arch import ChipBuilder, DeviceKind
from repro.contam.events import WashRequirement
from repro.core.config import PDWConfig
from repro.core.schedule_ilp import WashScheduleIlp
from repro.core.targets import WashCluster
from repro.errors import WashError
from repro.schedule import Schedule, ScheduledTask, TaskKind


@pytest.fixture
def chip():
    """in1 - a - b - out1 with a side branch in2 - c - b."""
    builder = ChipBuilder("micro")
    builder.add_flow_port("in1").add_flow_port("in2")
    builder.add_waste_port("out1")
    builder.add_device("mixer", DeviceKind.MIXER)
    builder.add_junctions("a", "b", "c")
    builder.connect("in1", "a", "b", "out1")
    builder.connect("in2", "c", "b")
    builder.add_channel("a", "mixer")
    return builder.build()


def task(tid, kind, start, duration, path=None, device=None, op_id=None,
         fluid="f", edge=None):
    return ScheduledTask(
        id=tid, kind=kind, start=start, duration=duration, path=path,
        device=device, op_id=op_id, fluid_type=fluid, edge=edge,
    )


@pytest.fixture
def baseline(chip):
    """Injection -> removal -> op, then a later transport reusing 'a'."""
    return Schedule([
        task("tr:r1->o1", TaskKind.TRANSPORT, 0, 2, path=("in1", "a", "mixer"),
             edge=("r1", "o1"), fluid="dye"),
        task("rm:r1->o1", TaskKind.REMOVAL, 2, 2, path=("in1", "a", "b", "out1"),
             edge=("r1", "o1"), fluid="dye"),
        task("op:o1", TaskKind.OPERATION, 4, 3, device="mixer", op_id="o1",
             fluid="mix-out"),
        task("tr:r2->o2", TaskKind.TRANSPORT, 8, 2, path=("in2", "c", "b"),
             edge=("r2", "o2"), fluid="ink"),
    ])


def cluster(node="a", source="rm:r1->o1", blocker="tr:r2->o2"):
    return WashCluster("w1", [
        WashRequirement(
            node=node, fluid_type="dye", contaminated_at=4, deadline=8,
            source_task=source, blocking_task=blocker,
        )
    ])


class TestModelConstruction:
    def test_missing_candidates_rejected(self, chip, baseline):
        with pytest.raises(WashError):
            WashScheduleIlp(chip, baseline, [cluster()], {}, PDWConfig())

    def test_solves_and_places_wash_in_window(self, chip, baseline):
        cands = {"w1": [("in1", "a", "b", "out1")]}
        ilp = WashScheduleIlp(
            chip, baseline, [cluster()], cands,
            PDWConfig(enable_integration=False),
        )
        outcome = ilp.solve()
        wash_start = outcome.wash_starts["w1"]
        wash_end = wash_start + outcome.wash_durations["w1"]
        # after the contaminating removal ends...
        rm_end = outcome.starts["rm:r1->o1"] + 2
        assert wash_start >= rm_end
        # ... and before the blocking transport starts.
        assert wash_end <= outcome.starts["tr:r2->o2"]

    def test_precedences_preserved(self, chip, baseline):
        cands = {"w1": [("in1", "a", "b", "out1")]}
        outcome = WashScheduleIlp(
            chip, baseline, [cluster()], cands, PDWConfig()
        ).solve()
        s = outcome.starts
        assert s["rm:r1->o1"] >= s["tr:r1->o1"] + 2
        assert s["op:o1"] >= s["rm:r1->o1"] + 2

    def test_cheapest_candidate_selected(self, chip, baseline):
        short = ("in1", "a", "b", "out1")
        longer = ("in2", "c", "b", "a", "b", "out1")
        cands = {"w1": [longer, short]}
        outcome = WashScheduleIlp(
            chip, baseline, [cluster()], cands, PDWConfig()
        ).solve()
        assert outcome.wash_paths["w1"] == short

    def test_two_washes_sharing_nodes_serialized(self, chip, baseline):
        clusters = [
            cluster(),
            WashCluster("w2", [
                WashRequirement(
                    node="b", fluid_type="dye", contaminated_at=4, deadline=8,
                    source_task="rm:r1->o1", blocking_task="tr:r2->o2",
                )
            ]),
        ]
        path = ("in1", "a", "b", "out1")
        cands = {"w1": [path], "w2": [path]}
        outcome = WashScheduleIlp(
            chip, baseline, clusters, cands, PDWConfig()
        ).solve()
        s1, d1 = outcome.wash_starts["w1"], outcome.wash_durations["w1"]
        s2, d2 = outcome.wash_starts["w2"], outcome.wash_durations["w2"]
        assert s1 + d1 <= s2 or s2 + d2 <= s1

    def test_integration_absorbs_covered_removal(self, chip, baseline):
        # Candidate covers the removal path entirely and the removal's
        # window: ψ should fire, and the removal vanishes from timing.
        cands = {"w1": [("in1", "a", "b", "out1")]}
        outcome = WashScheduleIlp(
            chip, baseline, [cluster()], cands,
            PDWConfig(enable_integration=True),
        ).solve()
        assert outcome.absorbed.get("rm:r1->o1") == "w1"

    def test_integration_disabled_by_config(self, chip, baseline):
        cands = {"w1": [("in1", "a", "b", "out1")]}
        outcome = WashScheduleIlp(
            chip, baseline, [cluster()], cands,
            PDWConfig(enable_integration=False),
        ).solve()
        assert outcome.absorbed == {}

    def test_makespan_reported_via_objective(self, chip, baseline):
        cands = {"w1": [("in1", "a", "b", "out1")]}
        ilp = WashScheduleIlp(chip, baseline, [cluster()], cands, PDWConfig())
        outcome = ilp.solve()
        assert outcome.objective > 0
        assert outcome.status.value in ("optimal", "feasible")
        assert "vars" in outcome.model_stats

    def test_build_time_reported(self, chip, baseline):
        cands = {"w1": [("in1", "a", "b", "out1")]}
        ilp = WashScheduleIlp(chip, baseline, [cluster()], cands, PDWConfig())
        outcome = ilp.solve()
        assert outcome.build_time_s > 0.0


class TestBatchMatrixEquivalence:
    """The batch-built rows must produce the exact solver matrices the
    operator-built ``Constraint`` objects describe."""

    def _model(self, chip, baseline, integration):
        cands = {"w1": [("in1", "a", "b", "out1")]}
        ilp = WashScheduleIlp(
            chip, baseline, [cluster()], cands,
            PDWConfig(enable_integration=integration),
        )
        ilp.build()
        return ilp.model

    @pytest.mark.parametrize("integration", [True, False])
    def test_fast_arrays_match_constraint_objects(self, chip, baseline, integration):
        import numpy as np

        from repro.ilp.solver import _build_matrices

        model = self._model(chip, baseline, integration)
        arrays = model.constraint_arrays()
        assert arrays is not None  # every row went through the batch buffers
        fast = _build_matrices(model)
        model.constraint_arrays = lambda: None  # force the Python loop
        slow = _build_matrices(model)
        np.testing.assert_allclose(fast[0], slow[0])  # objective c
        np.testing.assert_allclose(fast[1], slow[1])  # integrality
        np.testing.assert_allclose(fast[2].lb, slow[2].lb)
        np.testing.assert_allclose(fast[2].ub, slow[2].ub)
        np.testing.assert_allclose(fast[3].A.toarray(), slow[3].A.toarray())
        np.testing.assert_allclose(fast[3].lb, slow[3].lb)
        np.testing.assert_allclose(fast[3].ub, slow[3].ub)
