"""Unit tests for the Schedule container and the Gantt renderer."""

import pytest

from repro.errors import SchedulingError
from repro.schedule import Schedule, ScheduledTask, TaskKind, render_gantt


def make_op(op_id, start, duration=3, device="mixer1"):
    return ScheduledTask(
        id=f"op:{op_id}", kind=TaskKind.OPERATION, start=start,
        duration=duration, device=device, op_id=op_id, fluid_type="f",
    )


def make_flow(tid, start, path, duration=2, kind=TaskKind.TRANSPORT):
    return ScheduledTask(
        id=tid, kind=kind, start=start, duration=duration,
        path=tuple(path), fluid_type="f",
    )


@pytest.fixture
def schedule():
    return Schedule([
        make_flow("tr:1", 0, ("in1", "a", "mixer1")),
        make_op("o1", 2),
        make_flow("tr:2", 5, ("mixer1", "b", "out1")),
    ])


class TestContainer:
    def test_duplicate_ids_rejected(self, schedule):
        with pytest.raises(SchedulingError):
            schedule.add(make_op("o1", 2))

    def test_get_unknown_raises(self, schedule):
        with pytest.raises(SchedulingError):
            schedule.get("nope")

    def test_replace_retimes(self, schedule):
        schedule.replace(schedule.get("op:o1").at(10))
        assert schedule.get("op:o1").start == 10

    def test_replace_unknown_raises(self, schedule):
        with pytest.raises(SchedulingError):
            schedule.replace(make_op("oX", 0))

    def test_remove(self, schedule):
        schedule.remove("tr:2")
        assert "tr:2" not in schedule
        with pytest.raises(SchedulingError):
            schedule.remove("tr:2")

    def test_tasks_sorted_by_start(self, schedule):
        starts = [t.start for t in schedule.tasks()]
        assert starts == sorted(starts)

    def test_kind_filter(self, schedule):
        assert len(schedule.operations()) == 1
        assert len(schedule.flow_tasks()) == 2

    def test_operation_task_lookup(self, schedule):
        assert schedule.operation_task("o1").id == "op:o1"
        with pytest.raises(SchedulingError):
            schedule.operation_task("oZ")

    def test_makespan(self, schedule):
        assert schedule.makespan == 7
        assert Schedule().makespan == 0

    def test_copy_is_independent(self, schedule):
        clone = schedule.copy()
        clone.remove("op:o1")
        assert "op:o1" in schedule

    def test_mapped_applies_function(self, schedule):
        shifted = schedule.mapped(lambda t: t.shifted(10))
        assert shifted.get("op:o1").start == 12


class TestConflictDetection:
    def test_clean_schedule_has_no_conflicts(self, schedule):
        assert schedule.conflicts() == []
        schedule.validate()

    def test_overlapping_device_use_flagged(self, schedule):
        schedule.add(make_op("o2", 3))  # overlaps op:o1 on mixer1
        assert ("op:o1", "op:o2") in schedule.conflicts()
        with pytest.raises(SchedulingError):
            schedule.validate()

    def test_shared_path_node_flagged(self, schedule):
        schedule.add(make_flow("tr:3", 0, ("a", "c")))
        assert ("tr:1", "tr:3") in schedule.conflicts()

    def test_precedence_validation(self, schedule):
        schedule.validate(dependencies=[("op:o1", "tr:2")])
        with pytest.raises(SchedulingError):
            schedule.validate(dependencies=[("tr:2", "op:o1")])


class TestGantt:
    def test_empty_schedule(self):
        assert "empty" in render_gantt(Schedule())

    def test_lanes_present(self, schedule):
        text = render_gantt(schedule)
        assert "dev mixer1" in text
        assert "transport" in text
        assert "makespan = 7 s" in text

    def test_overlapping_tasks_get_sublanes(self, schedule):
        schedule.add(make_flow("tr:x", 0, ("z1", "z2")))
        assert "transport+1" in render_gantt(schedule)

    def test_width_clipping(self, schedule):
        schedule.add(make_flow("tr:far", 500, ("q1", "q2")))
        text = render_gantt(schedule, width_limit=50)
        assert "…" in text
