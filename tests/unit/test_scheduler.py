"""Unit tests for the list scheduler and the synthesis orchestrator."""

import pytest

from repro.assay import Operation, Reagent, SequencingGraph
from repro.schedule import TaskKind
from repro.synth import synthesize
from repro.synth.scheduler import ListScheduler, assign_reagent_ports


@pytest.fixture(scope="module")
def synthesis():
    g = SequencingGraph("sched-demo")
    for i, fluid in enumerate(["sample", "enzyme", "dye", "salt"], start=1):
        g.add_reagent(Reagent(f"r{i}", fluid))
    g.add_operation(Operation("o1", "mix"), ["r1", "r2"])
    g.add_operation(Operation("o2", "mix"), ["r3", "r4"])
    g.add_operation(Operation("o3", "detect"), ["o1"])
    g.add_operation(Operation("o4", "heat"), ["o2"])
    g.add_operation(Operation("o5", "mix"), ["o3", "o4"])
    g.add_operation(Operation("o6", "detect"), ["o5"])
    return synthesize(g)


class TestScheduleStructure:
    def test_conflict_free(self, synthesis):
        synthesis.schedule.validate()

    def test_one_operation_task_per_op(self, synthesis):
        ops = synthesis.schedule.operations()
        assert {t.op_id for t in ops} == {o.id for o in synthesis.assay.operations}

    def test_transport_per_cross_device_edge(self, synthesis):
        transports = synthesis.schedule.tasks(TaskKind.TRANSPORT)
        for t in transports:
            src, dst = t.edge
            origin = t.path[0]
            assert t.path[-1] == synthesis.binding[dst]
            if synthesis.assay.is_reagent(src):
                assert origin == synthesis.reagent_ports[src]
            else:
                assert origin == synthesis.binding[src]

    def test_each_transport_followed_by_removal(self, synthesis):
        edges_tr = {t.edge for t in synthesis.schedule.tasks(TaskKind.TRANSPORT)}
        edges_rm = {t.edge for t in synthesis.schedule.tasks(TaskKind.REMOVAL)}
        assert edges_tr == edges_rm

    def test_removal_after_its_transport(self, synthesis):
        by_edge = {}
        for t in synthesis.schedule.flow_tasks():
            if t.edge:
                by_edge.setdefault(t.edge, {})[t.kind] = t
        for group in by_edge.values():
            tr, rm = group.get(TaskKind.TRANSPORT), group.get(TaskKind.REMOVAL)
            if tr and rm:
                assert rm.start >= tr.end

    def test_op_starts_after_inputs_arrive(self, synthesis):
        sched = synthesis.schedule
        for op in synthesis.assay.operations:
            op_task = sched.operation_task(op.id)
            for src in synthesis.assay.inputs_of(op.id):
                rm_id = f"rm:{src}->{op.id}"
                if rm_id in sched:
                    assert sched.get(rm_id).end <= op_task.start

    def test_terminal_product_disposed(self, synthesis):
        waste = synthesis.schedule.tasks(TaskKind.WASTE)
        assert {t.edge[0] for t in waste} == set(
            synthesis.assay.terminal_operations()
        )
        for t in waste:
            assert t.path[-1] in synthesis.chip.waste_ports

    def test_transports_avoid_foreign_devices(self, synthesis):
        for t in synthesis.schedule.tasks(TaskKind.TRANSPORT):
            interior = set(t.path[1:-1])
            assert not (interior & set(synthesis.chip.devices)), t.id

    def test_removals_avoid_all_devices(self, synthesis):
        for t in synthesis.schedule.tasks(TaskKind.REMOVAL):
            assert not (set(t.path) & set(synthesis.chip.devices)), t.id

    def test_no_eviction_fallbacks(self, synthesis):
        scheduler = ListScheduler(
            synthesis.chip, synthesis.assay, synthesis.binding,
            synthesis.reagent_ports,
        )
        scheduler.run()
        assert scheduler.eviction_fallbacks == 0

    def test_deterministic(self, synthesis):
        scheduler = ListScheduler(
            synthesis.chip, synthesis.assay, synthesis.binding,
            synthesis.reagent_ports,
        )
        a = {t.id: (t.start, t.duration) for t in scheduler.run()}
        b = {t.id: (t.start, t.duration) for t in synthesis.schedule}
        assert a == b


class TestReagentPorts:
    def test_every_reagent_gets_a_flow_port(self, synthesis):
        ports = assign_reagent_ports(
            synthesis.chip, synthesis.assay, synthesis.binding
        )
        for reagent in synthesis.assay.reagents:
            assert ports[reagent.id] in synthesis.chip.flow_ports


class TestSynthesisResult:
    def test_metadata(self, synthesis):
        assert synthesis.baseline_makespan == synthesis.schedule.makespan
        assert synthesis.device_count == len(synthesis.chip.devices)
        assert synthesis.fluid_types == synthesis.assay.fluid_types()

    def test_same_device_handoff_skips_transport(self):
        g = SequencingGraph("handoff")
        g.add_reagent(Reagent("r1", "a"))
        g.add_reagent(Reagent("r2", "b"))
        g.add_operation(Operation("o1", "mix"), ["r1", "r2"])
        g.add_operation(Operation("o2", "mix"), ["o1"])
        from repro.arch.device import DeviceKind

        res = synthesize(g, inventory={DeviceKind.MIXER: 1})
        assert "tr:o1->o2" not in res.schedule
        op1 = res.schedule.operation_task("o1")
        op2 = res.schedule.operation_task("o2")
        assert op2.start >= op1.end
