"""FairQueue: per-client FIFO order, round-robin fairness, bounded capacity."""

from __future__ import annotations

import threading

import pytest

from repro.serve import FairQueue


class TestOrdering:
    def test_single_client_is_fifo(self):
        q = FairQueue(capacity=8)
        for i in range(5):
            assert q.offer("a", i)
        assert [q.take(timeout=0) for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_round_robin_across_clients(self):
        q = FairQueue(capacity=16)
        # Client a bursts 3 jobs before b and c submit one each; fairness
        # means b and c each get a slot per rotation instead of waiting
        # out a's whole burst.
        for item in ("a1", "a2", "a3"):
            q.offer("a", item)
        q.offer("b", "b1")
        q.offer("c", "c1")
        order = [q.take(timeout=0) for _ in range(5)]
        assert order == ["a1", "b1", "c1", "a2", "a3"]

    def test_within_client_order_survives_rotation(self):
        q = FairQueue(capacity=16)
        for i in range(3):
            q.offer("x", f"x{i}")
            q.offer("y", f"y{i}")
        drained = [q.take(timeout=0) for _ in range(6)]
        assert [d for d in drained if d.startswith("x")] == ["x0", "x1", "x2"]
        assert [d for d in drained if d.startswith("y")] == ["y0", "y1", "y2"]


class TestCapacity:
    def test_offer_false_at_capacity(self):
        q = FairQueue(capacity=2)
        assert q.offer("a", 1)
        assert q.offer("b", 2)
        assert not q.offer("a", 3)
        assert q.depth() == 2

    def test_capacity_is_total_not_per_client(self):
        q = FairQueue(capacity=3)
        assert all(q.offer("same", i) for i in range(3))
        assert not q.offer("other", 99)

    def test_take_frees_a_slot(self):
        q = FairQueue(capacity=1)
        assert q.offer("a", 1)
        assert not q.offer("a", 2)
        assert q.take(timeout=0) == 1
        assert q.offer("a", 2)

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FairQueue(capacity=0)


class TestRemoveAndClose:
    def test_remove_queued_item(self):
        q = FairQueue(capacity=8)
        q.offer("a", "keep")
        q.offer("a", "drop")
        assert q.remove("drop")
        assert not q.remove("drop")
        assert q.take(timeout=0) == "keep"
        assert q.depth() == 0

    def test_take_timeout_returns_none(self):
        q = FairQueue(capacity=2)
        assert q.take(timeout=0.01) is None

    def test_close_wakes_blocked_takers(self):
        q = FairQueue(capacity=2)
        results = []
        t = threading.Thread(target=lambda: results.append(q.take(timeout=5.0)))
        t.start()
        q.close()
        t.join(timeout=2.0)
        assert not t.is_alive()
        assert results == [None]

    def test_closed_queue_refuses_offers(self):
        q = FairQueue(capacity=2)
        q.close()
        assert not q.offer("a", 1)

    def test_drain_empties_everything(self):
        q = FairQueue(capacity=8)
        q.offer("a", 1)
        q.offer("b", 2)
        assert sorted(q.drain()) == [1, 2]
        assert q.depth() == 0
