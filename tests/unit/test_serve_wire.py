"""Wire-format validation and digest identity for serve job submissions."""

from __future__ import annotations

import pytest

from repro.assay import graph_to_dict
from repro.serve import JobSpec, WireError, job_digest, parse_job
from repro.serve.wire import job_id_for

from tests.conftest import build_demo_assay


def _parse(payload):
    return parse_job(payload)


class TestValidation:
    def test_minimal_benchmark_submission(self):
        spec = _parse({"benchmark": "PCR"})
        assert spec.kind == "benchmark"
        assert spec.benchmark == "PCR"
        assert spec.method == "pdw"
        assert spec.client == "anon"
        assert spec.config.time_limit_s == 120.0  # CLI-matching default

    def test_rejects_non_object(self):
        with pytest.raises(WireError):
            _parse(["not", "an", "object"])

    def test_rejects_unknown_top_level_key(self):
        with pytest.raises(WireError, match="unknown keys"):
            _parse({"benchmark": "PCR", "priority": 9})

    def test_requires_exactly_one_target(self):
        with pytest.raises(WireError, match="exactly one"):
            _parse({})
        with pytest.raises(WireError, match="exactly one"):
            _parse({"benchmark": "PCR", "assay": {}})

    def test_rejects_unknown_benchmark(self):
        with pytest.raises(WireError, match="unknown benchmark"):
            _parse({"benchmark": "nope"})

    def test_rejects_unknown_method(self):
        with pytest.raises(WireError, match="unknown method"):
            _parse({"benchmark": "PCR", "method": "magic"})

    def test_rejects_unknown_config_key(self):
        with pytest.raises(WireError, match="unknown config key"):
            _parse({"benchmark": "PCR", "config": {"turbo": True}})

    def test_rejects_mistyped_config_values(self):
        with pytest.raises(WireError, match="must be a number"):
            _parse({"benchmark": "PCR", "config": {"time_limit_s": "fast"}})
        with pytest.raises(WireError, match="must be a boolean"):
            _parse({"benchmark": "PCR", "config": {"merge_clusters": 1}})
        with pytest.raises(WireError, match="must be an integer"):
            _parse({"benchmark": "PCR", "config": {"max_candidates": 2.5}})

    def test_config_validation_surfaces_as_wire_error(self):
        # PDWConfig's own __post_init__ rejection (negative budget) must
        # come back as a 400-class WireError, not an unhandled WashError.
        with pytest.raises(WireError, match="invalid config"):
            _parse({"benchmark": "PCR", "config": {"time_limit_s": -5}})

    def test_degrade_requires_pdw_method(self):
        with pytest.raises(WireError, match="PDW capability"):
            _parse({
                "benchmark": "PCR", "method": "dawo",
                "config": {"degrade": "light"},
            })

    def test_rejects_blank_client(self):
        with pytest.raises(WireError, match="client"):
            _parse({"benchmark": "PCR", "client": "   "})

    def test_malformed_assay_graph_is_wire_error(self):
        with pytest.raises(WireError):
            _parse({"assay": {"nonsense": True}})

    def test_assay_submission_roundtrips_graph(self):
        graph = graph_to_dict(build_demo_assay())
        spec = _parse({"assay": graph, "method": "immediate"})
        assert spec.kind == "assay"
        assert spec.target == "assay"
        assert spec.assay["name"] == graph["name"]


class TestDigest:
    def test_identical_submissions_share_a_digest(self):
        a = _parse({"benchmark": "PCR", "config": {"time_limit_s": 30}})
        b = _parse({"config": {"time_limit_s": 30}, "benchmark": "PCR"})
        assert job_digest(a) == job_digest(b)

    def test_int_float_coercion_is_digest_stable(self):
        # {"time_limit_s": 30} and {"time_limit_s": 30.0} are the same job.
        a = _parse({"benchmark": "PCR", "config": {"time_limit_s": 30}})
        b = _parse({"benchmark": "PCR", "config": {"time_limit_s": 30.0}})
        assert job_digest(a) == job_digest(b)

    def test_client_does_not_change_the_digest(self):
        a = _parse({"benchmark": "PCR", "client": "alice"})
        b = _parse({"benchmark": "PCR", "client": "bob"})
        assert job_digest(a) == job_digest(b)

    def test_config_changes_the_digest(self):
        a = _parse({"benchmark": "PCR"})
        b = _parse({"benchmark": "PCR", "config": {"time_limit_s": 33}})
        assert job_digest(a) != job_digest(b)

    def test_method_changes_the_digest(self):
        a = _parse({"benchmark": "PCR", "method": "pdw"})
        b = _parse({"benchmark": "PCR", "method": "dawo"})
        assert job_digest(a) != job_digest(b)

    def test_benchmark_changes_the_digest(self):
        a = _parse({"benchmark": "PCR"})
        b = _parse({"benchmark": "IVD"})
        assert job_digest(a) != job_digest(b)

    def test_assay_digest_is_content_addressed(self):
        graph = graph_to_dict(build_demo_assay())
        a = _parse({"assay": graph})
        b = _parse({"assay": dict(graph)})
        assert job_digest(a) == job_digest(b)

    def test_job_id_shape(self):
        spec = _parse({"benchmark": "PCR"})
        jid = job_id_for(job_digest(spec))
        assert jid.startswith("j") and len(jid) == 17
