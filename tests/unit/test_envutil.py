"""The shared CLI/env/default precedence helper (`repro.envutil.pick`).

Satellite of the serve PR: ``pdw cache --cache`` and ``pdw serve --cache``
must resolve the cache directory through one implementation, so the
precedence (explicit flag beats ``$REPRO_CACHE_DIR`` beats the XDG
default) cannot drift between subcommands.
"""

from __future__ import annotations

from pathlib import Path

from repro.cli import main
from repro.envutil import env_str, pick
from repro.pipeline.cache import default_cache_dir


def test_env_str_unset_returns_default(monkeypatch):
    monkeypatch.delenv("PDW_TEST_KNOB", raising=False)
    assert env_str("PDW_TEST_KNOB") is None
    assert env_str("PDW_TEST_KNOB", "fallback") == "fallback"


def test_env_str_empty_and_whitespace_are_unset(monkeypatch):
    monkeypatch.setenv("PDW_TEST_KNOB", "   ")
    assert env_str("PDW_TEST_KNOB", "fallback") == "fallback"
    monkeypatch.setenv("PDW_TEST_KNOB", " value ")
    assert env_str("PDW_TEST_KNOB") == "value"


def test_pick_explicit_beats_env_beats_default(monkeypatch):
    monkeypatch.setenv("PDW_TEST_KNOB", "from-env")
    assert pick("from-flag", "PDW_TEST_KNOB", "built-in") == "from-flag"
    assert pick(None, "PDW_TEST_KNOB", "built-in") == "from-env"
    monkeypatch.delenv("PDW_TEST_KNOB")
    assert pick(None, "PDW_TEST_KNOB", "built-in") == "built-in"


def test_default_cache_dir_precedence(monkeypatch, tmp_path):
    env_dir = tmp_path / "env-cache"
    flag_dir = tmp_path / "flag-cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(env_dir))
    # An explicit flag beats the environment variable...
    assert default_cache_dir(str(flag_dir)) == flag_dir
    # ...the environment variable beats the XDG default...
    assert default_cache_dir() == env_dir
    # ...and with neither, the XDG fallback applies.
    monkeypatch.delenv("REPRO_CACHE_DIR")
    monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
    assert default_cache_dir() == tmp_path / "xdg" / "repro-pdw"


def test_pdw_cache_honors_cache_flag_over_env(monkeypatch, tmp_path, capsys):
    env_dir = tmp_path / "env-cache"
    flag_dir = tmp_path / "flag-cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(env_dir))
    monkeypatch.delenv("REPRO_CACHE", raising=False)

    assert main(["cache", "info", "--cache", str(flag_dir)]) == 0
    out = capsys.readouterr().out
    assert str(flag_dir) in out
    assert str(env_dir) not in out

    # Without the flag the env var still wins (backward compatible).
    assert main(["cache", "info"]) == 0
    assert str(env_dir) in capsys.readouterr().out


def test_pdw_cache_clear_targets_flag_dir(monkeypatch, tmp_path, capsys):
    flag_dir = tmp_path / "flag-cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    assert main(["cache", "clear", "--cache", str(flag_dir)]) == 0
    assert str(Path(flag_dir)) in capsys.readouterr().out
