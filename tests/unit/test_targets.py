"""Unit tests for wash-target clustering."""

import pytest

from repro.arch import figure2_chip
from repro.contam.events import WashRequirement
from repro.core.targets import (
    WashCluster,
    _coverable,
    cluster_requirements,
    merge_by_blocker,
)
from repro.errors import RoutingError


def req(node, source="t1", blocker="t9", t_c=2, deadline=10, fluid="dye"):
    return WashRequirement(
        node=node, fluid_type=fluid, contaminated_at=t_c, deadline=deadline,
        source_task=source, blocking_task=blocker,
    )


@pytest.fixture(scope="module")
def chip():
    return figure2_chip()


class TestWashCluster:
    def test_aggregate_properties(self):
        cluster = WashCluster("w1", [
            req("s3", source="a", blocker="x", t_c=2, deadline=9),
            req("s4", source="b", blocker="y", t_c=4, deadline=7),
        ])
        assert cluster.targets == frozenset({"s3", "s4"})
        assert cluster.source_tasks == frozenset({"a", "b"})
        assert cluster.blocking_tasks == frozenset({"x", "y"})
        assert cluster.release == 4
        assert cluster.deadline == 7

    def test_window_overlap(self):
        a = WashCluster("a", [req("s3", t_c=0, deadline=5)])
        b = WashCluster("b", [req("s4", t_c=4, deadline=9)])
        c = WashCluster("c", [req("s5", t_c=6, deadline=9)])
        assert a.window_overlaps(b)
        assert not a.window_overlaps(c)

    def test_empty_window_requirement_rejected(self):
        with pytest.raises(ValueError):
            req("s3", t_c=5, deadline=4)


class TestClusterRequirements:
    def test_grouped_by_source_task(self, chip):
        reqs = [
            req("s3", source="t1"), req("s4", source="t1"),
            req("s13", source="t2", t_c=50, deadline=60),
        ]
        clusters = cluster_requirements(chip, reqs, merge=False)
        assert len(clusters) == 2
        by_targets = {c.targets for c in clusters}
        assert frozenset({"s3", "s4"}) in by_targets

    def test_merging_compatible_windows(self, chip):
        # Adjacent targets with overlapping windows merge into one wash.
        reqs = [
            req("s12", source="t1"),
            req("s13", source="t2"),
        ]
        merged = cluster_requirements(chip, reqs, merge=True)
        unmerged = cluster_requirements(chip, reqs, merge=False)
        assert len(merged) == 1
        assert len(unmerged) == 2

    def test_disjoint_windows_not_merged(self, chip):
        reqs = [
            req("s12", source="t1", t_c=0, deadline=5),
            req("s13", source="t2", t_c=20, deadline=30),
        ]
        assert len(cluster_requirements(chip, reqs, merge=True)) == 2

    def test_path_cap_blocks_merge(self, chip):
        reqs = [req("s12", source="t1"), req("s13", source="t2")]
        capped = cluster_requirements(chip, reqs, merge=True, max_path_mm=1.0)
        assert len(capped) == 2

    def test_cluster_ids_renumbered(self, chip):
        reqs = [req(f"s{i}", source=f"t{i}") for i in (3, 4, 5)]
        clusters = cluster_requirements(chip, reqs, merge=True)
        assert [c.id for c in clusters] == [f"w{i}" for i in range(1, len(clusters) + 1)]

    def test_no_requirements_no_clusters(self, chip):
        assert cluster_requirements(chip, []) == []


class _StubRouter:
    """Duck-typed router returning a scripted candidate list."""

    def __init__(self, candidates):
        self.candidates = candidates
        self.calls = []

    def port_to_port_candidates(self, targets, max_candidates=8):
        self.calls.append(max_candidates)
        if isinstance(self.candidates, Exception):
            raise self.candidates
        return self.candidates[:max_candidates]


class TestCoverable:
    NON_SIMPLE = ("p1", "a", "b", "a", "p2")  # revisits 'a'
    SIMPLE = ("p1", "a", "b", "c", "p2")

    def test_first_simple_candidate_returned(self):
        router = _StubRouter([self.SIMPLE, self.NON_SIMPLE])
        assert _coverable(router, ["a", "b"], max_candidates=2) == self.SIMPLE

    def test_later_candidates_are_tried(self):
        # Regression: only candidate [0] used to be inspected, so a simple
        # second candidate was ignored and the merge wrongly rejected.
        router = _StubRouter([self.NON_SIMPLE, self.SIMPLE])
        assert _coverable(router, ["a", "b"], max_candidates=2) == self.SIMPLE
        assert router.calls == [2]

    def test_all_non_simple_returns_none(self):
        router = _StubRouter([self.NON_SIMPLE, self.NON_SIMPLE])
        assert _coverable(router, ["a", "b"], max_candidates=2) is None

    def test_max_candidates_bounds_the_search(self):
        # The simple path sits beyond the candidate cap, so it stays unseen.
        router = _StubRouter([self.NON_SIMPLE, self.SIMPLE])
        assert _coverable(router, ["a", "b"], max_candidates=1) is None

    def test_routing_error_returns_none(self):
        router = _StubRouter(RoutingError("unreachable"))
        assert _coverable(router, ["a", "b"], max_candidates=3) is None


class TestMergeByBlocker:
    def test_same_blocker_merged(self, chip):
        clusters = [
            WashCluster("w1", [req("s12", source="t1", blocker="b1")]),
            WashCluster("w2", [req("s13", source="t2", blocker="b1")]),
            WashCluster("w3", [req("s3", source="t3", blocker="b2")]),
        ]
        out = merge_by_blocker(
            chip, clusters, {"w1": "b1", "w2": "b1", "w3": "b2"}
        )
        assert len(out) == 2
        assert frozenset({"s12", "s13"}) in {c.targets for c in out}

    def test_uncoverable_union_not_merged(self, chip):
        clusters = [
            WashCluster("w1", [req("s12", blocker="b1")]),
            WashCluster("w2", [req("s13", blocker="b1")]),
        ]
        out = merge_by_blocker(
            chip, clusters, {"w1": "b1", "w2": "b1"}, max_path_mm=0.1
        )
        assert len(out) == 2
