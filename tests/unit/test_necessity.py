"""Unit tests for the Type 1/2/3 wash-necessity analysis (Section II-A)."""

import pytest

from repro.arch import ChipBuilder, DeviceKind
from repro.contam import (
    ContaminationTracker,
    NecessityPolicy,
    wash_requirements,
)
from repro.schedule import Schedule, ScheduledTask, TaskKind


@pytest.fixture
def chip():
    b = ChipBuilder("line")
    b.add_flow_port("in1").add_waste_port("out1")
    b.add_device("mixer", DeviceKind.MIXER)
    b.add_junctions("a", "b")
    b.connect("in1", "a", "mixer", "b", "out1")
    return b.build()


def flow(tid, start, path, fluid, kind=TaskKind.TRANSPORT, edge=None):
    return ScheduledTask(
        id=tid, kind=kind, start=start, duration=2, path=tuple(path),
        fluid_type=fluid, edge=edge,
    )


def analyze(chip, tasks, policy=NecessityPolicy.PDW):
    tracker = ContaminationTracker(chip, Schedule(tasks))
    return wash_requirements(tracker, policy=policy)


class TestType1:
    def test_never_reused_node_is_exempt(self, chip):
        report = analyze(chip, [
            flow("t1", 0, ("in1", "a", "mixer"), "dye", edge=("r1", "o1")),
        ])
        assert report.required == []
        assert report.type1_exempt == 2  # a and mixer


class TestType2:
    def test_same_fluid_reuse_is_exempt(self, chip):
        # Distinct lineages (r1 vs r9) but the same fluid type.
        report = analyze(chip, [
            flow("t1", 0, ("in1", "a"), "dye", edge=("r1", "o1")),
            flow("t2", 5, ("in1", "a"), "dye", edge=("r9", "o2")),
        ])
        assert report.required == []
        assert report.type2_exempt == 1

    def test_different_fluid_reuse_requires_wash(self, chip):
        report = analyze(chip, [
            flow("t1", 0, ("in1", "a"), "dye", edge=("r1", "o1")),
            flow("t2", 5, ("in1", "a"), "ink", edge=("r2", "o2")),
        ])
        assert len(report.required) == 1
        req = report.required[0]
        assert req.node == "a"
        assert req.contaminated_at == 2
        assert req.deadline == 5
        assert req.blocking_task == "t2"


class TestType3:
    def test_waste_reuse_is_exempt(self, chip):
        report = analyze(chip, [
            flow("t1", 0, ("in1", "a", "mixer", "b"), "dye", edge=("r1", "o1")),
            flow("t2", 5, ("mixer", "b", "out1"), "junk",
                 kind=TaskKind.WASTE, edge=("o9", "waste")),
        ])
        # b and mixer exempted by the waste flow; a never reused, and the
        # waste flow's own residues on b/mixer are never reused either.
        assert report.required == []
        assert report.type3_exempt == 2
        assert report.type1_exempt == 3

    def test_removal_reuse_is_exempt(self, chip):
        report = analyze(chip, [
            flow("t1", 0, ("in1", "a"), "dye", edge=("r1", "o1")),
            flow("t2", 5, ("in1", "a"), "excess",
                 kind=TaskKind.REMOVAL, edge=("r2", "o2")),
        ])
        assert report.type3_exempt == 1


class TestLineage:
    def test_consuming_operation_is_related(self, chip):
        report = analyze(chip, [
            flow("t1", 0, ("in1", "a", "mixer"), "dye", edge=("r1", "o1")),
            ScheduledTask(id="op:o1", kind=TaskKind.OPERATION, start=3, duration=4,
                          device="mixer", op_id="o1", fluid_type="mix-out"),
        ])
        # mixer residue consumed by o1; 'a' never reused
        assert report.required == []
        assert report.consumed == 1

    def test_co_input_same_op_is_related(self, chip):
        report = analyze(chip, [
            flow("t1", 0, ("in1", "a", "mixer"), "dye", edge=("r1", "o1")),
            flow("t2", 3, ("in1", "a", "mixer"), "ink", edge=("r2", "o1")),
        ])
        assert all(r.blocking_task != "t2" for r in report.required)


class TestPolicies:
    def tasks(self):
        # Same fluid type carried by unrelated lineages.
        return [
            flow("t1", 0, ("in1", "a"), "dye", edge=("r1", "o1")),
            flow("t2", 5, ("in1", "a"), "dye", edge=("r9", "o2")),
        ]

    def test_pdw_exempts_same_fluid(self, chip):
        report = analyze(chip, self.tasks(), NecessityPolicy.PDW)
        assert report.required == []

    def test_reuse_conflict_exempts_same_fluid(self, chip):
        report = analyze(chip, self.tasks(), NecessityPolicy.REUSE_CONFLICT)
        assert report.required == []

    def test_reuse_only_washes_same_fluid(self, chip):
        report = analyze(chip, self.tasks(), NecessityPolicy.REUSE_ONLY)
        assert len(report.required) == 1

    def test_reuse_conflict_does_not_tolerate_removals(self, chip):
        tasks = [
            flow("t1", 0, ("in1", "a"), "dye", edge=("r1", "o1")),
            flow("t2", 5, ("in1", "a"), "excess",
                 kind=TaskKind.REMOVAL, edge=("r2", "o2")),
        ]
        pdw = analyze(chip, tasks, NecessityPolicy.PDW)
        dawo = analyze(chip, tasks, NecessityPolicy.REUSE_CONFLICT)
        assert pdw.required == []
        assert len(dawo.required) == 1


class TestReport:
    def test_summary_mentions_counts(self, chip):
        report = analyze(chip, [
            flow("t1", 0, ("in1", "a"), "dye", edge=("r1", "o1")),
        ])
        assert "type-1" in report.summary()
        assert report.total_events == 1

    def test_demo_assay_requirements_cover_violations(
        self, demo_synthesis, demo_tracker
    ):
        from repro.contam import contamination_violations

        report = wash_requirements(demo_tracker, demo_synthesis.assay)
        required = {(r.node, r.blocking_task) for r in report.required}
        violations = contamination_violations(
            demo_synthesis.chip, demo_synthesis.schedule
        )
        assert {(v.node, v.task_id) for v in violations} <= required
