"""Unit tests for independent-component decomposition and its fallbacks."""

import pytest

from repro.ilp import LinExpr, Model, SolveStatus, SolverPortfolio
from repro.ilp import decompose


def _two_block_model():
    m = Model("sep", big_m=1000)
    x0 = m.add_integer_var("x0", 0, 10)
    x1 = m.add_integer_var("x1", 0, 10)
    m.add_constr(x0 + x1 >= 3)
    y0 = m.add_binary_var("y0")
    y1 = m.add_binary_var("y1")
    m.add_constr(y0 + y1 == 1)
    m.set_objective(x0 + 2 * x1 + 2 * y0 + 5 * y1, sense="min")
    return m


def _single_block_model():
    m = Model("mono", big_m=1000)
    x = m.add_integer_var("x", 0, 10)
    y = m.add_integer_var("y", 0, 10)
    m.add_constr(x + y >= 4)
    m.set_objective(x + 2 * y, sense="min")
    return m


class TestStitch:
    def test_two_blocks_stitch_to_monolith_optimum(self):
        m = _two_block_model()
        att = decompose.try_solve(m, SolverPortfolio(time_limit_s=15.0))
        assert att.components == 2
        assert att.reason == "stitched"
        sol = att.result.solution
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(
            m.solve(time_limit_s=10).objective, abs=1e-6
        )
        assert att.result.mode == "decompose"
        assert m.check_solution(sol, tol=1e-5) == []

    def test_coupled_makespan_certified_optimal(self):
        m = Model("coupled", big_m=1000)
        a = m.add_integer_var("a", 2, 10)
        b = m.add_integer_var("b", 3, 10)
        t = m.add_integer_var("T", 0, 100)
        m.add_constr(LinExpr.from_any(a) >= 2)
        m.add_constr(LinExpr.from_any(b) >= 3)
        m.add_constr(t - a >= 0)
        m.add_constr(t - b >= 0)
        m.set_objective(a + b + 0.4 * t, sense="min")
        att = decompose.try_solve(
            m, SolverPortfolio(time_limit_s=15.0), makespan_var=t
        )
        assert att.components == 2
        assert att.result is not None, att.reason
        assert att.result.solution.status is SolveStatus.OPTIMAL
        assert att.result.solution.objective == pytest.approx(
            m.solve(time_limit_s=10).objective, abs=1e-6
        )

    def test_infeasible_component_proves_monolith_infeasible(self):
        m = _two_block_model()
        z = m.add_binary_var("z")
        m.add_constr(LinExpr.from_any(z) >= 2)  # unsatisfiable block
        att = decompose.try_solve(m, SolverPortfolio(time_limit_s=15.0))
        assert att.components == 3
        assert att.result is not None
        assert att.result.solution.status is SolveStatus.INFEASIBLE


class TestFallbacks:
    def test_single_component_falls_back(self):
        att = decompose.try_solve(
            _single_block_model(), SolverPortfolio(time_limit_s=15.0)
        )
        assert att.result is None
        assert att.components == 1
        assert att.reason == "single-component"

    def test_forced_greedy_falls_back(self):
        att = decompose.try_solve(
            _two_block_model(),
            SolverPortfolio(time_limit_s=15.0, force="greedy"),
        )
        assert att.result is None
        assert att.reason == "forced-greedy"

    def test_coupled_max_sense_unsupported(self):
        m = Model("maxsense", big_m=1000)
        a = m.add_integer_var("a", 0, 5)
        b = m.add_integer_var("b", 0, 5)
        t = m.add_integer_var("T", 0, 100)
        m.add_constr(t - a >= 0)
        m.add_constr(t - b >= 0)
        m.set_objective(a + b - t, sense="max")
        att = decompose.try_solve(
            m, SolverPortfolio(time_limit_s=15.0), makespan_var=t
        )
        assert att.result is None
        assert att.reason == "unsupported-sense"

    def test_no_coo_buffers_fall_back(self):
        m = Model("empty", big_m=1000)
        m.add_integer_var("x", 0, 5)
        m.set_objective(LinExpr({}, 0.0), sense="min")
        att = decompose.try_solve(m, SolverPortfolio(time_limit_s=15.0))
        assert att.result is None
        assert att.components == 1
