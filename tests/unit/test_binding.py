"""Unit tests for operation-to-device binding."""

import pytest

from repro.arch import DeviceKind
from repro.errors import SynthesisError
from repro.synth.binding import (
    bind_operations,
    build_device_list,
    derive_inventory,
)


class TestDeriveInventory:
    def test_one_device_per_three_ops(self, demo_assay):
        inv = derive_inventory(demo_assay, ops_per_device=3)
        assert inv[DeviceKind.MIXER] == 1  # 3 mix ops
        assert inv[DeviceKind.DETECTOR] == 1
        assert inv[DeviceKind.HEATER] == 1

    def test_tighter_packing_gives_more_devices(self, demo_assay):
        inv = derive_inventory(demo_assay, ops_per_device=1)
        assert inv[DeviceKind.MIXER] == 3

    def test_rejects_bad_ratio(self, demo_assay):
        with pytest.raises(SynthesisError):
            derive_inventory(demo_assay, ops_per_device=0)


class TestBuildDeviceList:
    def test_names_are_indexed_by_kind(self):
        devices = build_device_list({DeviceKind.MIXER: 2, DeviceKind.HEATER: 1})
        assert [d.name for d in devices] == ["heater1", "mixer1", "mixer2"]

    def test_negative_count_rejected(self):
        with pytest.raises(SynthesisError):
            build_device_list({DeviceKind.MIXER: -1})


class TestBindOperations:
    def test_every_op_bound_to_compatible_device(self, demo_assay):
        devices = build_device_list({DeviceKind.MIXER: 2, DeviceKind.DETECTOR: 1,
                                     DeviceKind.HEATER: 1})
        binding = bind_operations(demo_assay, devices)
        assert set(binding) == {o.id for o in demo_assay.operations}
        by_name = {d.name: d for d in devices}
        for op in demo_assay.operations:
            assert by_name[binding[op.id]].can_execute(op.op_type)

    def test_load_balancing_across_mixers(self, demo_assay):
        devices = build_device_list({DeviceKind.MIXER: 3, DeviceKind.DETECTOR: 1,
                                     DeviceKind.HEATER: 1})
        binding = bind_operations(demo_assay, devices)
        mixers_used = {binding[o] for o in ("o1", "o2", "o5")}
        assert len(mixers_used) == 3

    def test_missing_device_kind_raises(self, demo_assay):
        devices = build_device_list({DeviceKind.MIXER: 1})
        with pytest.raises(SynthesisError):
            bind_operations(demo_assay, devices)

    def test_deterministic(self, demo_assay):
        devices = build_device_list({DeviceKind.MIXER: 2, DeviceKind.DETECTOR: 1,
                                     DeviceKind.HEATER: 1})
        assert bind_operations(demo_assay, devices) == bind_operations(
            demo_assay, devices
        )
