"""Unit tests for the virtual grid."""

import pytest

from repro.arch import Grid
from repro.errors import GridError


class TestGridBasics:
    def test_rejects_degenerate_dimensions(self):
        with pytest.raises(GridError):
            Grid(0, 5)
        with pytest.raises(GridError):
            Grid(5, -1)

    def test_contains(self):
        g = Grid(3, 2)
        assert g.contains((0, 0))
        assert g.contains((2, 1))
        assert not g.contains((3, 0))
        assert not g.contains((0, -1))

    def test_require_raises_outside(self):
        with pytest.raises(GridError):
            Grid(2, 2).require((5, 5))

    def test_size_and_iteration(self):
        g = Grid(3, 4)
        cells = list(g)
        assert g.size == 12
        assert len(cells) == 12
        assert cells[0] == (0, 0)
        assert cells[-1] == (2, 3)


class TestNeighbors:
    def test_interior_cell_has_four(self):
        g = Grid(5, 5)
        assert sorted(g.neighbors((2, 2))) == [(1, 2), (2, 1), (2, 3), (3, 2)]

    def test_corner_cell_has_two(self):
        assert sorted(Grid(5, 5).neighbors((0, 0))) == [(0, 1), (1, 0)]

    def test_edge_cell_has_three(self):
        assert len(Grid(5, 5).neighbors((2, 0))) == 3


class TestGeometry:
    def test_manhattan(self):
        assert Grid.manhattan((0, 0), (3, 4)) == 7
        assert Grid.manhattan((2, 2), (2, 2)) == 0

    def test_boundary_predicate(self):
        g = Grid(4, 4)
        assert g.is_boundary((0, 2))
        assert g.is_boundary((3, 1))
        assert not g.is_boundary((1, 1))

    def test_boundary_cells_form_closed_ring(self):
        g = Grid(4, 5)
        ring = g.boundary_cells()
        assert len(ring) == len(set(ring)) == 2 * (4 + 5) - 4
        for a, b in zip(ring, ring[1:] + ring[:1]):
            assert Grid.manhattan(a, b) == 1

    def test_boundary_cells_degenerate_rows(self):
        assert Grid(1, 3).boundary_cells() == [(0, 0), (0, 1), (0, 2)]
        assert Grid(3, 1).boundary_cells() == [(0, 0), (1, 0), (2, 0)]
