"""Unit tests for the exact cell-based wash-path ILP (Eqs. 12-15)."""

import pytest

from repro.arch import figure2_chip
from repro.arch.routing import is_simple
from repro.core.path_ilp import exact_wash_path
from repro.errors import WashError


@pytest.fixture(scope="module")
def chip():
    return figure2_chip()


class TestExactWashPath:
    def test_port_to_port_and_covering(self, chip):
        path = exact_wash_path(chip, ["s12", "s13"])
        assert path[0] in chip.flow_ports
        assert path[-1] in chip.waste_ports
        assert {"s12", "s13"} <= set(path)
        assert is_simple(path)

    def test_matches_paper_example_length(self, chip):
        # Section II-C: the optimal wash for {s16, s12, s13} from in4 has
        # six segments (in4 -> s13 -> s12 -> s16 -> s15 -> s11 -> out4; an
        # equally short route exits via s6 -> s5 -> out1 — conflict
        # avoidance between the two is the *scheduling* ILP's concern).
        path = exact_wash_path(chip, ["s16", "s12", "s13"])
        paper = ("in4", "s13", "s12", "s16", "s15", "s11", "out4")
        assert chip.path_length_mm(path) == chip.path_length_mm(paper)
        assert path[0] == "in4"

    def test_optimal_length_not_worse_than_greedy(self, chip):
        from repro.core.pathgen import candidate_paths

        targets = ["s3", "s15", "s16"]
        exact = exact_wash_path(chip, targets)
        greedy = candidate_paths(chip, targets)[0]
        assert chip.path_length_mm(exact) <= chip.path_length_mm(greedy)

    def test_single_target(self, chip):
        path = exact_wash_path(chip, ["s6"])
        assert "s6" in path and is_simple(path)

    def test_device_target(self, chip):
        path = exact_wash_path(chip, ["heater"])
        assert "heater" in path

    def test_forbidden_nodes_respected(self, chip):
        path = exact_wash_path(chip, ["s12", "s13"], forbidden=["s16"])
        assert "s16" not in path

    def test_empty_targets_rejected(self, chip):
        with pytest.raises(WashError):
            exact_wash_path(chip, [])

    def test_unknown_target_rejected(self, chip):
        with pytest.raises(WashError):
            exact_wash_path(chip, ["sX"])

    def test_port_target_rejected(self, chip):
        with pytest.raises(WashError):
            exact_wash_path(chip, ["in1"])

    def test_infeasible_targets_raise(self, chip):
        # Forbidding both neighbors of the heater strands it.
        with pytest.raises(WashError):
            exact_wash_path(chip, ["heater"], forbidden=["s13", "s14"])
