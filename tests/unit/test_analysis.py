"""Unit tests for volume accounting and chip-cost reporting."""

import pytest

from repro.analysis import VolumeModel, chip_cost, compare_plans
from repro.arch import figure2_chip


class TestVolumeModel:
    def test_path_volume(self):
        model = VolumeModel(cross_section_mm2=0.01)
        assert model.path_volume_ul(100.0) == pytest.approx(1.0)

    def test_flush_volume(self):
        model = VolumeModel(cross_section_mm2=0.01, flow_velocity_mm_s=10.0)
        assert model.flush_volume_ul(5.0) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            VolumeModel(cross_section_mm2=0)
        with pytest.raises(ValueError):
            VolumeModel(flow_velocity_mm_s=-1)
        with pytest.raises(ValueError):
            VolumeModel().path_volume_ul(-1)
        with pytest.raises(ValueError):
            VolumeModel().flush_volume_ul(-1)

    def test_wash_buffer_scales_with_duration(self, demo_pdw_plan):
        model = VolumeModel()
        total = model.wash_buffer_ul(demo_pdw_plan)
        expected = sum(
            model.flush_volume_ul(w.duration) for w in demo_pdw_plan.washes
        )
        assert total == pytest.approx(expected)
        assert total > 0

    def test_pdw_uses_less_buffer_than_dawo(self, demo_pdw_plan, demo_dawo_plan):
        model = VolumeModel()
        assert model.wash_buffer_ul(demo_pdw_plan) <= model.wash_buffer_ul(
            demo_dawo_plan
        )

    def test_reagent_volume_positive(self, demo_pdw_plan):
        assert VolumeModel().reagent_ul(demo_pdw_plan.schedule) > 0

    def test_plan_volumes_mapping(self, demo_pdw_plan):
        vols = VolumeModel().plan_volumes(demo_pdw_plan)
        assert set(vols) == {"wash_buffer_ul", "reagent_ul"}


class TestChipCost:
    def test_static_report_figure2(self):
        report = chip_cost(figure2_chip())
        assert report.devices == 5
        assert report.flow_ports == 4
        assert report.waste_ports == 4
        assert report.channel_segments == 37
        assert report.valves > 0
        assert report.control_ports is None

    def test_schedule_dependent_fields(self, demo_synthesis):
        report = chip_cost(demo_synthesis.chip, demo_synthesis.schedule)
        assert report.control_ports is not None
        assert report.valve_switches > 0
        assert report.control_ports <= report.valves

    def test_as_dict_round_trip(self, demo_synthesis):
        report = chip_cost(demo_synthesis.chip, demo_synthesis.schedule)
        data = report.as_dict()
        assert data["devices"] == report.devices
        assert "control_ports" in data
        data2 = chip_cost(figure2_chip()).as_dict()
        assert "control_ports" not in data2


class TestComparePlans:
    def test_renders_table(self, demo_pdw_plan, demo_dawo_plan):
        text = compare_plans([demo_pdw_plan, demo_dawo_plan])
        assert "PDW" in text and "DAWO" in text
        assert "wash_buffer_ul" in text
        assert "valve_switches" in text

    def test_empty_plans(self):
        assert "no plans" in compare_plans([])
