"""Unit tests for the LP-format writer."""

import io

import pytest

from repro.ilp import Model, write_lp


@pytest.fixture
def sample_model():
    m = Model("sample")
    x = m.add_integer_var("x", 0, 10)
    y = m.add_continuous_var("y", 1, 5)
    b = m.add_binary_var("flag")
    m.add_constr(x + 2 * y <= 8, "cap")
    m.add_constr(x - y >= -1, "floor")
    m.add_constr(x + b == 3, "link")
    m.set_objective(3 * x + y, sense="max")
    return m


class TestLpWriter:
    def test_sections_present(self, sample_model):
        text = write_lp(sample_model)
        for section in ("Maximize", "Subject To", "Bounds", "General", "Binary", "End"):
            assert section in text

    def test_objective_rendered(self, sample_model):
        assert "3 x + y" in write_lp(sample_model)

    def test_constraint_senses(self, sample_model):
        text = write_lp(sample_model)
        assert "cap: x + 2 y <= 8" in text
        assert "floor: x - y >= -1" in text
        assert "link: x + flag = 3" in text

    def test_bounds_rendered(self, sample_model):
        text = write_lp(sample_model)
        assert "0 <= x <= 10" in text
        assert "1 <= y <= 5" in text

    def test_binary_not_in_bounds(self, sample_model):
        bounds = write_lp(sample_model).split("Bounds")[1].split("General")[0]
        assert "flag" not in bounds

    def test_stream_output(self, sample_model):
        buf = io.StringIO()
        text = write_lp(sample_model, buf)
        assert buf.getvalue() == text

    def test_bracketed_names_sanitized(self):
        m = Model()
        v = m.add_binary_var("x[a,b]")
        m.add_constr(v <= 1)
        m.set_objective(v)
        text = write_lp(m)
        assert "[" not in text.split("\n", 1)[1]

    def test_minimize_header(self):
        m = Model()
        x = m.add_continuous_var("x")
        m.set_objective(x)
        assert write_lp(m).splitlines()[1] == "Minimize"

    def test_infinite_bounds(self):
        m = Model()
        m.add_continuous_var("free", lb=float("-inf"))
        m.set_objective(0 * m.variables[0])
        assert "-inf <= free <= +inf" in write_lp(m)
