"""Unit tests for scheduled-task records."""

import pytest

from repro.errors import SchedulingError
from repro.schedule import ScheduledTask, TaskKind


def op(start=0, duration=5, device="mixer1", op_id="o1"):
    return ScheduledTask(
        id=f"op:{op_id}", kind=TaskKind.OPERATION, start=start,
        duration=duration, device=device, op_id=op_id, fluid_type="f",
    )


def flow(start=0, duration=2, path=("in1", "a", "mixer1"), kind=TaskKind.TRANSPORT):
    return ScheduledTask(
        id=f"{kind.value}:{start}", kind=kind, start=start, duration=duration,
        path=tuple(path), fluid_type="f", edge=("r1", "o1"),
    )


class TestValidation:
    def test_negative_start_rejected(self):
        with pytest.raises(SchedulingError):
            op(start=-1)

    def test_negative_duration_rejected(self):
        with pytest.raises(SchedulingError):
            flow(duration=-2)

    def test_operation_cannot_carry_path(self):
        with pytest.raises(SchedulingError):
            ScheduledTask(
                id="x", kind=TaskKind.OPERATION, start=0, duration=1,
                path=("a", "b"), device="d", op_id="o",
            )

    def test_operation_needs_device_and_op(self):
        with pytest.raises(SchedulingError):
            ScheduledTask(id="x", kind=TaskKind.OPERATION, start=0, duration=1)

    def test_flow_needs_path(self):
        with pytest.raises(SchedulingError):
            ScheduledTask(id="x", kind=TaskKind.TRANSPORT, start=0, duration=1)


class TestSemantics:
    def test_end_exclusive(self):
        assert op(start=3, duration=4).end == 7

    def test_occupied_nodes(self):
        assert op().occupied_nodes == ("mixer1",)
        assert flow().occupied_nodes == ("in1", "a", "mixer1")

    def test_kind_is_flow(self):
        assert TaskKind.WASH.is_flow
        assert TaskKind.REMOVAL.is_flow
        assert not TaskKind.OPERATION.is_flow

    def test_shift_and_retime(self):
        t = op(start=5)
        assert t.shifted(3).start == 8
        assert t.at(0).start == 0
        assert t.at(0).id == t.id


class TestConflicts:
    def test_time_overlap(self):
        assert flow(start=0, duration=3).overlaps_time(flow(start=2, duration=3))
        assert not flow(start=0, duration=2).overlaps_time(flow(start=2, duration=2))

    def test_back_to_back_tasks_do_not_conflict(self):
        a, b = flow(start=0, duration=2), flow(start=2, duration=2)
        assert not a.conflicts_with(b)

    def test_shared_node_overlap_conflicts(self):
        a = flow(start=0, duration=3, path=("in1", "a", "b"))
        b = flow(start=1, duration=3, path=("b", "c", "out1"))
        assert a.conflicts_with(b)

    def test_disjoint_paths_never_conflict(self):
        a = flow(start=0, duration=3, path=("in1", "a"))
        b = flow(start=0, duration=3, path=("c", "out1"))
        assert not a.conflicts_with(b)

    def test_operation_vs_flow_through_device(self):
        o = op(start=0, duration=5, device="mixer1")
        t = flow(start=2, duration=2, path=("in1", "a", "mixer1"))
        assert o.conflicts_with(t)
