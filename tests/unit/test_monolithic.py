"""Unit tests for the free-ordering relaxation and its bound."""

import pytest

from repro.contam import ContaminationTracker, NecessityPolicy, wash_requirements
from repro.core import PDWConfig, optimize_washes
from repro.core.monolithic import BoundComparison, objective_lower_bound
from repro.core.pathgen import candidate_paths
from repro.core.targets import cluster_requirements


@pytest.fixture(scope="module")
def problem(demo_synthesis):
    chip, baseline = demo_synthesis.chip, demo_synthesis.schedule
    tracker = ContaminationTracker(chip, baseline)
    report = wash_requirements(tracker, demo_synthesis.assay, NecessityPolicy.PDW)
    clusters = cluster_requirements(chip, report.required, max_path_mm=33.0)
    candidates = {
        c.id: candidate_paths(chip, sorted(c.targets), 4) for c in clusters
    }
    return chip, baseline, clusters, candidates


class TestBound:
    def test_relaxation_never_worse(self, problem):
        chip, baseline, clusters, candidates = problem
        cmp = objective_lower_bound(
            chip, baseline, clusters, candidates, PDWConfig(time_limit_s=60)
        )
        assert isinstance(cmp, BoundComparison)
        assert cmp.relaxed_bound <= cmp.decomposed_objective + 1e-6
        assert cmp.gap >= -1e-6
        assert 0.0 <= cmp.gap_percent <= 100.0

    def test_decomposition_gap_is_small_here(self, problem):
        chip, baseline, clusters, candidates = problem
        cmp = objective_lower_bound(
            chip, baseline, clusters, candidates, PDWConfig(time_limit_s=60)
        )
        # On the demo assay the fixed-order decomposition costs < 20 % of
        # the objective (empirically ~0-10 %); a blowup here means the
        # decomposition regressed.
        assert cmp.gap_percent < 20.0


class TestDelayInvariant:
    def test_pdw_never_repacks_below_baseline(self, demo_synthesis):
        plan = optimize_washes(demo_synthesis, PDWConfig(time_limit_s=30))
        assert plan.t_delay >= 0
        for task in demo_synthesis.schedule:
            if task.id in plan.schedule:
                assert plan.schedule.get(task.id).start >= task.start

    def test_no_merge_variant_nonnegative_delay(self, demo_synthesis):
        plan = optimize_washes(
            demo_synthesis, PDWConfig(time_limit_s=30, merge_clusters=False)
        )
        assert plan.t_delay >= 0
