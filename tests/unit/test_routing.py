"""Unit tests for the router."""

import pytest

from repro.arch import Router, figure2_chip
from repro.arch.routing import is_simple
from repro.errors import RoutingError


@pytest.fixture(scope="module")
def chip():
    return figure2_chip()


@pytest.fixture(scope="module")
def router(chip):
    return Router(chip)


class TestShortestPath:
    def test_simple_route(self, router):
        path = router.shortest_path("in1", "s3")
        assert path[0] == "in1" and path[-1] == "s3"
        assert is_simple(path)

    def test_route_respects_avoid(self, router):
        direct = router.shortest_path("s5", "s4")
        assert "mixer" in direct
        detour = router.shortest_path("s5", "s4", avoid={"mixer"})
        assert "mixer" not in detour
        assert detour == ("s5", "s6", "s16", "s15", "s3", "s4")

    def test_no_route_raises(self, router):
        with pytest.raises(RoutingError):
            router.shortest_path("in1", "s4", avoid={"s1", "s2"})

    def test_unknown_node_raises(self, router):
        with pytest.raises(RoutingError):
            router.shortest_path("in1", "nowhere")

    def test_ports_never_transited(self, router):
        # out1 sits between s4 and s5; a route must go around it.
        path = router.shortest_path("s4", "s5")
        assert "out1" not in path

    def test_distance_matches_path_length(self, router, chip):
        path = router.shortest_path("in1", "out4")
        assert router.distance_mm("in1", "out4") == pytest.approx(
            chip.path_length_mm(path)
        )


class TestKShortest:
    def test_returns_increasing_lengths(self, router, chip):
        paths = router.k_shortest_paths("in1", "out1", k=3)
        lengths = [chip.path_length_mm(p) for p in paths]
        assert lengths == sorted(lengths)
        assert len(paths) == 3

    def test_all_simple(self, router):
        for path in router.k_shortest_paths("in2", "out4", k=4):
            assert is_simple(path)


class TestPathThrough:
    def test_covers_all_targets(self, router):
        targets = ["s12", "s13", "s16"]
        path = router.path_through("in4", targets, "out4")
        assert set(targets) <= set(path)
        assert path[0] == "in4" and path[-1] == "out4"

    def test_reproduces_paper_wash_path_w3(self, router):
        # Section II-C: washing s16-s12-s13 from in4 to out4 gives
        # in4 -> s13 -> s12 -> s16 -> s15 -> s11 -> out4.
        path = router.path_through("in4", ["s16", "s12", "s13"], "out4")
        assert path == ("in4", "s13", "s12", "s16", "s15", "s11", "out4")

    def test_prefers_simple_paths(self, router):
        # det1 is a two-ended device; a naive greedy tour doubles back.
        path = router.path_through("in3", ["det1", "s10", "s11"], "out4")
        assert is_simple(path)

    def test_empty_targets_is_plain_route(self, router):
        path = router.path_through("in1", [], "out2")
        assert path == router.shortest_path("in1", "out2")

    def test_unreachable_target_raises(self, router):
        with pytest.raises(RoutingError):
            router.path_through("in1", ["s3"], "out2", avoid={"s2", "s15", "s4"})


class TestPortSelection:
    def test_nearest_ports(self, router):
        assert router.nearest_flow_port("s13") == "in4"
        assert router.nearest_waste_port("s8") == "out3"

    def test_port_to_port_candidates_sorted(self, router, chip):
        cands = router.port_to_port_candidates(["s12", "s13"], max_candidates=4)
        lengths = [chip.path_length_mm(p) for p in cands]
        assert lengths == sorted(lengths)
        assert 1 <= len(cands) <= 4
        for path in cands:
            assert path[0] in chip.flow_ports
            assert path[-1] in chip.waste_ports

    def test_chain_order_detection(self, router):
        # s12-s13 plus s16 form a chain s13-s12-s16 in the network.
        order = router._chain_order(["s12", "s13", "s16"])
        assert order in (["s13", "s12", "s16"], ["s16", "s12", "s13"])

    def test_chain_order_rejects_disconnected(self, router):
        assert router._chain_order(["s1", "s13"]) is None
