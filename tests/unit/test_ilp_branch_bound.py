"""Unit tests for the pure-Python branch-and-bound fallback solver."""

import pytest

from repro.ilp import BranchAndBoundSolver, LinExpr, Model, SolveStatus


@pytest.fixture
def solver():
    return BranchAndBoundSolver(time_limit_s=20.0)


class TestBranchAndBound:
    def test_matches_highs_on_knapsack(self, solver):
        m = Model()
        x = m.add_integer_var("x", 0, 10)
        y = m.add_integer_var("y", 0, 10)
        m.add_constr(x + y <= 7)
        m.add_constr(2 * x - y >= -2)
        m.set_objective(3 * x + 2 * y, sense="max")
        highs = m.solve()
        bb = solver(m)
        assert bb.status is SolveStatus.OPTIMAL
        assert bb.objective == pytest.approx(highs.objective)

    def test_pure_lp_no_branching(self, solver):
        m = Model()
        x = m.add_continuous_var("x", 0, 4)
        m.add_constr(2 * x >= 3)
        m.set_objective(x)
        sol = solver(m)
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(1.5)

    def test_fractional_lp_relaxation_gets_branched(self, solver):
        m = Model()
        x = m.add_integer_var("x", 0, 10)
        m.add_constr(2 * x >= 5)
        m.set_objective(x)
        sol = solver(m)
        assert sol.objective == pytest.approx(3.0)

    def test_infeasible(self, solver):
        m = Model()
        x = m.add_integer_var("x", 0, 1)
        m.add_constr(LinExpr.from_any(x) >= 2)
        assert solver(m).status is SolveStatus.INFEASIBLE

    def test_binary_logic_model(self, solver):
        m = Model()
        bs = [m.add_binary_var(f"b{i}") for i in range(4)]
        m.add_constr(LinExpr.sum(bs) == 2)
        m.add_constr(bs[0] + bs[1] <= 1)
        m.set_objective(bs[0] * 4 + bs[1] * 3 + bs[2] * 2 + bs[3] * 1, sense="max")
        sol = solver(m)
        assert sol.objective == pytest.approx(6.0)  # b0 + b2

    def test_empty_model(self, solver):
        m = Model()
        m.objective = LinExpr({}, 7.0)
        sol = solver(m)
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(7.0)

    def test_equality_constraints(self, solver):
        m = Model()
        x = m.add_integer_var("x", 0, 20)
        y = m.add_integer_var("y", 0, 20)
        m.add_constr(x + 2 * y == 11)
        m.set_objective(x + y)
        sol = solver(m)
        assert sol.objective == pytest.approx(6.0)  # x=1, y=5

    def test_node_limit_is_respected(self):
        tight = BranchAndBoundSolver(time_limit_s=20.0, max_nodes=1)
        m = Model()
        x = m.add_integer_var("x", 0, 100)
        y = m.add_integer_var("y", 0, 100)
        m.add_constr(3 * x + 7 * y <= 50)
        m.set_objective(x + y, sense="max")
        sol = tight.solve(m)
        # With one node it cannot prove optimality.
        assert sol.status is not SolveStatus.OPTIMAL


class TestBestEffortStatuses:
    def _fractional_binary_model(self) -> Model:
        m = Model()
        x = m.add_binary_var("x")
        y = m.add_binary_var("y")
        m.add_constr(2 * x + 2 * y <= 3)  # LP optimum x + y = 1.5
        m.set_objective(x + y, sense="max")
        return m

    def test_incumbent_on_node_limit_is_feasible(self):
        # Two nodes: the fractional root, then one integral child — an
        # incumbent exists but open nodes remain, so the result is a
        # best-effort FEASIBLE, not OPTIMAL and not an error.
        tight = BranchAndBoundSolver(time_limit_s=20.0, max_nodes=2)
        sol = tight.solve(self._fractional_binary_model())
        assert sol.status is SolveStatus.FEASIBLE
        assert sol.status.has_solution
        assert sol.objective == pytest.approx(1.0)

    def test_node_limit_reports_gap_from_heap_bound(self):
        # On a limit-hit FEASIBLE the open heap's smallest relaxation
        # bound is the honest lower bound: here the incumbent is 1.0 but
        # the open node still admits the LP value 1.5 (max-sense, so the
        # internal minimization bound is -1.5), giving a 50% gap.
        tight = BranchAndBoundSolver(time_limit_s=20.0, max_nodes=2)
        sol = tight.solve(self._fractional_binary_model())
        assert sol.status is SolveStatus.FEASIBLE
        assert sol.mip_gap == pytest.approx(0.5)

    def test_optimal_solve_has_no_gap(self):
        sol = BranchAndBoundSolver(time_limit_s=20.0).solve(
            self._fractional_binary_model()
        )
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.mip_gap is None

    def test_timeout_without_incumbent_is_error(self):
        expired = BranchAndBoundSolver(time_limit_s=0.0)
        sol = expired.solve(self._fractional_binary_model())
        assert sol.status is SolveStatus.ERROR
        assert not sol.status.has_solution
        assert "no incumbent" in sol.message
