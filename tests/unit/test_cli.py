"""Unit tests for the pdw command-line interface."""

import json

import pytest

from repro.assay import graph_to_json
from repro.cli import main


class TestCliList:
    def test_lists_benchmarks(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "PCR" in out and "Synthetic3" in out


class TestCliRun:
    def test_run_pcr_pdw(self, capsys):
        assert main(["run", "PCR", "--time-limit", "30"]) == 0
        out = capsys.readouterr().out
        assert "method:      PDW" in out
        assert "n_wash:" in out

    def test_run_dawo(self, capsys):
        assert main(["run", "PCR", "--method", "dawo"]) == 0
        assert "DAWO" in capsys.readouterr().out

    def test_run_with_gantt_and_chip(self, capsys):
        assert main(["run", "PCR", "--gantt", "--chip", "--time-limit", "30"]) == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "I=flow port" in out

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "NotThere"])


class TestCliCostAndSimulate:
    def test_cost_report(self, capsys):
        assert main(["cost", "PCR", "--time-limit", "30"]) == 0
        out = capsys.readouterr().out
        assert "valves" in out
        assert "wash_buffer_ul" in out

    def test_simulate_ok(self, capsys):
        assert main(["simulate", "PCR", "--time-limit", "30"]) == 0
        out = capsys.readouterr().out
        assert "execution OK" in out

    def test_simulate_full_event_log(self, capsys):
        assert main(["simulate", "PCR", "--time-limit", "30", "--events"]) == 0
        out = capsys.readouterr().out
        assert "operation_run" in out


class TestCliExport:
    def test_export_plan_json(self, tmp_path, capsys):
        out = tmp_path / "plan.json"
        assert main(["export", "PCR", "--what", "plan", "--time-limit", "30",
                     "--out", str(out)]) == 0
        data = json.loads(out.read_text())
        assert data["method"] == "PDW"

    def test_export_actuation_csv(self, capsys):
        assert main(["export", "PCR", "--what", "actuation",
                     "--time-limit", "30"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# valve program")
        assert "tick," in out

    def test_export_svg(self, tmp_path, capsys):
        out = tmp_path / "chip.svg"
        assert main(["export", "PCR", "--what", "svg", "--time-limit", "30",
                     "--out", str(out)]) == 0
        assert out.read_text().startswith("<svg")


class TestCliAssay:
    def test_optimizes_user_assay_file(self, tmp_path, capsys, demo_assay):
        path = tmp_path / "assay.json"
        path.write_text(graph_to_json(demo_assay))
        assert main(["assay", str(path), "--time-limit", "30"]) == 0
        assert "n_wash:" in capsys.readouterr().out

    def test_optimizes_dsl_assay_file(self, tmp_path, capsys):
        path = tmp_path / "assay.dsl"
        path.write_text(
            "assay t\n"
            "reagent r1 : serum\n"
            "reagent r2 : dye\n"
            "m = mix(r1, r2)\n"
            "d = detect(m)\n"
        )
        assert main(["assay", str(path), "--time-limit", "30"]) == 0
        assert "n_wash:" in capsys.readouterr().out

    def test_malformed_file_exits_cleanly(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"nope": 1}))
        # Library errors surface as a one-line message + exit 2, never a
        # traceback.
        assert main(["assay", str(path)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("pdw: error:")
