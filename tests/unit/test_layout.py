"""Unit tests for layout generation."""

import pytest

from repro.arch import NodeKind
from repro.arch.device import Device, DeviceKind
from repro.errors import SynthesisError
from repro.synth.layout import ArchSpec, generate_layout


def devices(n):
    return [Device(f"mixer{i}", DeviceKind.MIXER) for i in range(1, n + 1)]


class TestArchSpec:
    def test_needs_ports(self):
        with pytest.raises(SynthesisError):
            ArchSpec(flow_ports=0)
        with pytest.raises(SynthesisError):
            ArchSpec(waste_ports=0)


class TestGenerateLayout:
    @pytest.mark.parametrize("n", [1, 2, 5, 9, 18])
    def test_scales_with_device_count(self, n):
        chip = generate_layout(devices(n))
        assert len(chip.devices) == n
        assert chip.graph.number_of_nodes() > n

    def test_empty_device_list_rejected(self):
        with pytest.raises(SynthesisError):
            generate_layout([])

    def test_port_counts(self):
        chip = generate_layout(devices(4), ArchSpec(flow_ports=3, waste_ports=5))
        assert len(chip.flow_ports) == 3
        assert len(chip.waste_ports) == 5

    def test_devices_have_exactly_two_channel_ends(self):
        chip = generate_layout(devices(6))
        for name in chip.devices:
            assert chip.graph.degree(name) == 2

    def test_ports_on_chip_boundary(self):
        chip = generate_layout(devices(4))
        xs = [chip.position(n)[0] for n in chip.graph.nodes]
        ys = [chip.position(n)[1] for n in chip.graph.nodes]
        for port in chip.flow_ports + chip.waste_ports:
            x, y = chip.position(port)
            assert x in (min(xs), max(xs)) or y in (min(ys), max(ys))

    def test_network_connected_and_validated(self):
        # Chip.__init__ validates connectivity; construction succeeding is
        # the assertion.
        chip = generate_layout(devices(7))
        assert chip.stats()["nodes"] == chip.graph.number_of_nodes()

    def test_deterministic(self):
        a = generate_layout(devices(5))
        b = generate_layout(devices(5))
        assert sorted(a.graph.nodes) == sorted(b.graph.nodes)
        assert sorted(map(sorted, a.graph.edges)) == sorted(map(sorted, b.graph.edges))

    def test_mixed_device_kinds(self):
        mixed = [
            Device("mixer1", DeviceKind.MIXER),
            Device("heater1", DeviceKind.HEATER),
            Device("detector1", DeviceKind.DETECTOR),
        ]
        chip = generate_layout(mixed)
        assert chip.kind_of("heater1") is NodeKind.DEVICE
