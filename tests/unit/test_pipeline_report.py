"""Unit tests for per-stage instrumentation and the pipeline runner."""

from repro.pipeline import ArtifactCache, PipelineRun, RunReport, Stage, StageBase


class CountingStage(StageBase):
    """A toy stage that counts its own compute() invocations."""

    name = "toy"
    version = "1"

    def __init__(self, cacheable: bool = True):
        self.cacheable = cacheable
        self.computed = 0

    def key(self, ctx):
        return ("toy-key", ctx["seed"]) if self.cacheable else None

    def compute(self, ctx):
        self.computed += 1
        return {"value": ctx["seed"] * 2}

    def counters(self, artifact):
        return {"value": float(artifact["value"])}


class TestRunReport:
    def test_record_and_query(self):
        report = RunReport(label="t")
        report.record("a", wall_s=0.5, counters={"n": 3.0})
        report.record("b", wall_s=0.25, cached=True)
        assert report.stage_names() == ["a", "b"]
        assert report.get("a").counters == {"n": 3.0}
        assert report.get("missing") is None
        assert report.total_wall_s == 0.75
        assert report.cache_hits == 1

    def test_flat_keys(self):
        report = RunReport()
        report.record("ilp", wall_s=1.0, cached=False, counters={"solve_time_s": 0.9})
        flat = report.flat()
        assert flat["stage.ilp.wall_s"] == 1.0
        assert flat["stage.ilp.cached"] == 0.0
        assert flat["stage.ilp.solve_time_s"] == 0.9

    def test_extend_with_prefix(self):
        child = RunReport(label="pdw")
        child.record("replay", wall_s=0.1)
        parent = RunReport(label="bench")
        parent.extend(child, prefix="pdw.")
        assert parent.stage_names() == ["pdw.replay"]
        # Records are copied, not aliased.
        child.stages[0].counters["x"] = 1.0
        assert parent.get("pdw.replay").counters == {}

    def test_render_contains_stages_and_total(self):
        report = RunReport(label="demo")
        report.record("replay", wall_s=0.01, counters={"events": 4.0})
        text = report.render()
        assert "demo" in text
        assert "replay" in text
        assert "events=4" in text
        assert "total" in text

    def test_as_dict_shape(self):
        report = RunReport(label="x")
        report.record("a", wall_s=0.2, cached=True, detail="fine")
        data = report.as_dict()
        assert data["label"] == "x"
        assert data["cache_hits"] == 1
        assert data["stages"][0]["detail"] == "fine"


class TestPipelineRun:
    def test_stage_protocol(self):
        assert isinstance(CountingStage(), Stage)

    def test_cold_then_warm(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        stage = CountingStage()
        ctx = {"seed": 21}

        cold = PipelineRun(label="cold", cache=cache)
        a = cold.run_stage(stage, ctx)
        warm = PipelineRun(label="warm", cache=cache)
        b = warm.run_stage(stage, ctx)

        assert a == b == {"value": 42}
        assert stage.computed == 1
        assert cold.report.get("toy").cached is False
        warm_rec = warm.report.get("toy")
        assert warm_rec.cached is True
        assert warm_rec.origin == "cache"
        # Cache hits record the lookup time, not 0.0, so the timings
        # report can show (and exclude) it honestly.
        assert warm_rec.counters["value"] == 42.0
        assert warm_rec.counters["cache_lookup_s"] >= 0.0
        assert warm_rec.wall_s > 0.0

    def test_key_change_invalidates(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        stage = CountingStage()
        run = PipelineRun(cache=cache)
        run.run_stage(stage, {"seed": 1})
        run.run_stage(stage, {"seed": 2})
        assert stage.computed == 2

    def test_version_bump_invalidates(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        stage = CountingStage()
        PipelineRun(cache=cache).run_stage(stage, {"seed": 5})
        stage.version = "2"
        PipelineRun(cache=cache).run_stage(stage, {"seed": 5})
        assert stage.computed == 2

    def test_uncacheable_stage_always_computes(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        stage = CountingStage(cacheable=False)
        run = PipelineRun(cache=cache)
        run.run_stage(stage, {"seed": 3})
        run.run_stage(stage, {"seed": 3})
        assert stage.computed == 2
        assert cache.stats() == (0, 0)

    def test_no_cache_still_instrumented(self):
        stage = CountingStage()
        run = PipelineRun(label="nocache", cache=None)
        run.run_stage(stage, {"seed": 7})
        assert stage.computed == 1
        assert run.report.get("toy").counters == {"value": 14.0}

    def test_provided_records_shared_stage(self):
        run = PipelineRun(label="shared")
        run.provided("replay", {"events": 9.0})
        rec = run.report.get("replay")
        assert rec.cached is True
        assert rec.wall_s == 0.0
        assert rec.counters == {"events": 9.0, "shared": 1.0}

    def test_timed_adhoc_step(self):
        run = PipelineRun(label="adhoc")
        result = run.timed("synthesis", lambda: 123, counters=lambda r: {"r": float(r)})
        assert result == 123
        rec = run.report.get("synthesis")
        assert rec.cached is False
        assert rec.counters == {"r": 123.0}
        assert rec.wall_s >= 0.0
