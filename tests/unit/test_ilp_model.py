"""Unit tests for Model construction and the big-M helper patterns."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.ilp import LinExpr, Model, SolveStatus
from repro.ilp.solver import _build_matrices


class TestModelConstruction:
    def test_rejects_nonpositive_big_m(self):
        with pytest.raises(ModelError):
            Model(big_m=0)

    def test_add_constr_rejects_plain_bool(self):
        m = Model()
        with pytest.raises(ModelError):
            m.add_constr(True)  # type: ignore[arg-type]

    def test_add_constr_rejects_foreign_variable(self):
        m1, m2 = Model("a"), Model("b")
        x = m1.add_continuous_var("x")
        with pytest.raises(ModelError):
            m2.add_constr(x >= 0)

    def test_objective_sense_validation(self):
        m = Model()
        x = m.add_continuous_var("x")
        with pytest.raises(ModelError):
            m.set_objective(x, sense="sideways")

    def test_stats_counts(self):
        m = Model("s")
        m.add_binary_var("b")
        m.add_continuous_var("c")
        m.add_constr(m.variables[0] + m.variables[1] <= 1)
        assert "2 vars" in m.stats()
        assert "1 bin" in m.stats()
        assert "1 constrs" in m.stats()

    def test_add_constrs_prefix_names(self):
        m = Model()
        x = m.add_continuous_var("x")
        cs = m.add_constrs([x >= 0, x <= 5], prefix="p")
        assert [c.name for c in cs] == ["p_0", "p_1"]


def _matrices(model):
    """Dense (c, integrality, lb, ub, A, lo, hi) of a model."""
    c, integrality, bounds, lin = _build_matrices(model)
    a = lin.A
    if hasattr(a, "toarray"):
        a = a.toarray()
    return c, integrality, bounds.lb, bounds.ub, np.asarray(a), lin.lb, lin.ub


def assert_same_matrices(m1, m2):
    for left, right in zip(_matrices(m1), _matrices(m2)):
        np.testing.assert_allclose(left, right)


class TestAddLinearConstraint:
    def _twin_models(self):
        ms = []
        for name in ("op", "batch"):
            m = Model(name)
            x = m.add_continuous_var("x", 0, 10)
            y = m.add_integer_var("y", 0, 5)
            z = m.add_binary_var("z")
            m.set_objective(x + 2 * y + 3 * z)
            ms.append((m, x, y, z))
        return ms

    def test_matches_operator_constraints_exactly(self):
        (m_op, x1, y1, z1), (m_b, x2, y2, z2) = self._twin_models()
        m_op.add_constr(x1 + 2 * y1 <= 5, "c0")
        m_op.add_constr(3 * x1 - y1 + z1 >= -2, "c1")
        m_op.add_constr(LinExpr.from_any(z1) == 1, "c2")
        m_b.add_linear_constraint([(x2, 1.0), (y2, 2.0)], "<=", 5, "c0")
        m_b.add_linear_constraint([(x2, 3.0), (y2, -1.0), (z2, 1.0)], ">=", -2, "c1")
        m_b.add_linear_constraint([(z2, 1.0)], "==", 1, "c2")
        assert_same_matrices(m_op, m_b)
        for c_op, c_b in zip(m_op.constraints, m_b.constraints):
            assert c_op.sense == c_b.sense
            assert c_op.expr.constant == c_b.expr.constant
            assert {v.name: k for v, k in c_op.expr.terms.items()} == {
                v.name: k for v, k in c_b.expr.terms.items()
            }

    def test_fast_path_matches_python_fallback(self):
        (m, x, y, z), _ = self._twin_models()
        m.add_linear_constraint([(x, 1.0), (y, 2.0)], "<=", 5)
        m.add_constr(3 * x - y + z >= -2)
        m.add_linear_constraint({z: 1.0}, "==", 1)
        assert m.constraint_arrays() is not None
        fast = _matrices(m)
        m.constraint_arrays = lambda: None  # force the Python loop
        slow = _matrices(m)
        for left, right in zip(fast, slow):
            np.testing.assert_allclose(left, right)

    def test_duplicate_coefficients_merge(self):
        m = Model()
        x = m.add_continuous_var("x")
        c = m.add_linear_constraint([(x, 1.0), (x, 2.0)], "<=", 6)
        assert c.expr.terms == {x: 3.0}

    def test_cancelled_coefficients_drop(self):
        m = Model()
        x = m.add_continuous_var("x")
        y = m.add_continuous_var("y")
        c = m.add_linear_constraint([(x, 1.0), (x, -1.0), (y, 2.0)], "<=", 6)
        assert c.expr.terms == {y: 2.0}

    def test_unknown_sense_rejected(self):
        m = Model()
        x = m.add_continuous_var("x")
        with pytest.raises(ModelError):
            m.add_linear_constraint([(x, 1.0)], "<", 1)

    def test_foreign_variable_rejected(self):
        m1, m2 = Model("a"), Model("b")
        x = m1.add_continuous_var("x")
        with pytest.raises(ModelError):
            m2.add_linear_constraint([(x, 1.0)], "<=", 1)

    def test_mapping_accepted(self):
        m = Model()
        x = m.add_continuous_var("x")
        c = m.add_linear_constraint({x: 2.0}, ">=", 4)
        assert c.expr.terms == {x: 2.0}
        assert c.expr.constant == -4.0

    def test_mixed_adds_keep_arrays_consistent(self):
        m = Model()
        x = m.add_continuous_var("x", 0, 10)
        m.add_constr(x <= 7)
        m.add_linear_constraint([(x, 1.0)], ">=", 2)
        arrays = m.constraint_arrays()
        assert arrays is not None
        _, _, _, senses, rhs = arrays
        assert list(senses) == [0, 1]
        assert list(rhs) == [7.0, 2.0]


class TestDisjunction:
    def test_two_tasks_cannot_overlap(self):
        m = Model(big_m=100)
        a_s = m.add_continuous_var("a_s", 0, 50)
        b_s = m.add_continuous_var("b_s", 0, 50)
        a_e, b_e = a_s + 3, b_s + 4
        m.add_disjunction((a_e, b_s), (b_e, a_s))
        mk = m.add_continuous_var("mk", 0, 100)
        m.add_max_lower_bound(mk, [a_e, b_e])
        m.set_objective(mk)
        sol = m.solve()
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(7.0)

    def test_disjunction_returns_ordering_binary(self):
        m = Model(big_m=100)
        a = m.add_continuous_var("a", 0, 10)
        b = m.add_continuous_var("b", 0, 10)
        flag = m.add_binary_var  # count before
        order = m.add_disjunction((a + 1, b), (b + 1, a))
        assert order.is_integral


class TestIndicators:
    @pytest.mark.parametrize(
        "values, expected_or, expected_and",
        [
            ((0, 0, 0), 0, 0),
            ((1, 0, 0), 1, 0),
            ((1, 1, 1), 1, 1),
            ((0, 1, 1), 1, 0),
        ],
    )
    def test_or_and_match_truth_table(self, values, expected_or, expected_and):
        m = Model()
        bs = [m.add_binary_var(f"b{i}") for i in range(3)]
        o = m.add_or_indicator(bs)
        a = m.add_and_indicator(bs)
        for b, v in zip(bs, values):
            m.add_constr(LinExpr.from_any(b) == v)
        m.set_objective(LinExpr.sum([o, a]))
        sol = m.solve()
        assert sol.rounded(o) == expected_or
        assert sol.rounded(a) == expected_and

    def test_empty_or_is_false_and_empty_and_is_true(self):
        m = Model()
        o = m.add_or_indicator([])
        a = m.add_and_indicator([])
        m.set_objective(LinExpr.from_any(o) - LinExpr.from_any(a))
        sol = m.solve()
        assert sol.rounded(o) == 0
        assert sol.rounded(a) == 1

    def test_implication_active_when_binary_set(self):
        m = Model(big_m=100)
        b = m.add_binary_var("b")
        x = m.add_continuous_var("x", 0, 50)
        m.add_implication(b, x >= 10)
        m.add_constr(LinExpr.from_any(b) == 1)
        m.set_objective(x)
        assert m.solve().objective == pytest.approx(10.0)

    def test_implication_inert_when_binary_clear(self):
        m = Model(big_m=100)
        b = m.add_binary_var("b")
        x = m.add_continuous_var("x", 0, 50)
        m.add_implication(b, x >= 10)
        m.add_constr(LinExpr.from_any(b) == 0)
        m.set_objective(x)
        assert m.solve().objective == pytest.approx(0.0)


class TestSolutionChecking:
    def test_check_solution_flags_violations(self):
        m = Model()
        x = m.add_integer_var("x", 0, 10)
        c = m.add_constr(x <= 5, "cap")
        sol = m.solve()
        assert m.check_solution(sol) == []
        sol.values[x] = 9.0
        assert m.check_solution(sol) == ["cap"]

    def test_constraint_violation_amount(self):
        m = Model()
        x = m.add_continuous_var("x", 0, 10)
        c = m.add_constr(x <= 5)
        sol = m.solve()
        sol.values[x] = 8.0
        assert c.violation(sol) == pytest.approx(3.0, abs=1e-5)
