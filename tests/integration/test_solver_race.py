"""End-to-end acceptance of concurrent rung racing and warm re-solve.

The racing bar mirrors the resilience suite's: with ``solver_mode="race"``
a full PDW run must complete, pick its winner deterministically, replay
cleanly through the independent :mod:`repro.sim.validate` gauntlet, and —
with a crash injected into the HiGHS rungs — let the concurrent
branch-and-bound rung win while the losers are visibly cancelled and no
subprocess lingers.
"""

import multiprocessing
import time

import pytest

from repro.core import PDWConfig, optimize_washes
from repro.ilp import faults
from repro.obs import metrics
from repro.pipeline import ArtifactCache
from repro.sim.validate import validation_problems

RACE_CFG = PDWConfig(time_limit_s=30.0, solver_mode="race")


def _no_orphans(timeout_s: float = 5.0) -> bool:
    """Whether every race subprocess is gone (reaped) shortly after a run."""
    deadline = time.perf_counter() + timeout_s
    while time.perf_counter() < deadline:
        if not multiprocessing.active_children():
            return True
        time.sleep(0.01)
    return False


class TestRacedRuns:
    def test_raced_plan_is_valid_and_reports_race(self, demo_synthesis):
        plan = optimize_washes(demo_synthesis, RACE_CFG)
        assert plan.solver_status in ("optimal", "feasible")
        assert validation_problems(plan, demo_synthesis) == []
        assert "ilp.race" in plan.report.stage_names()
        assert _no_orphans()

    def test_race_winner_and_plan_are_deterministic(self, demo_synthesis):
        runs = [optimize_washes(demo_synthesis, RACE_CFG) for _ in range(3)]
        winners = {p.solver_rung for p in runs}
        assert len(winners) == 1
        starts = {
            tuple(sorted((w.id, w.start) for w in p.washes)) for p in runs
        }
        assert len(starts) == 1

    def test_raced_plan_matches_ladder_washes(self, demo_synthesis):
        # Healthy environment: HiGHS wins the race, so the raced plan
        # must schedule the same washes the serial ladder produces.
        ladder = optimize_washes(demo_synthesis, PDWConfig(time_limit_s=30.0))
        raced = optimize_washes(demo_synthesis, RACE_CFG)
        assert raced.solver_rung == ladder.solver_rung == "highs"
        assert [(w.id, w.start, w.path) for w in raced.washes] == [
            (w.id, w.start, w.path) for w in ladder.washes
        ]

    def test_env_variable_flips_the_suite_to_racing(self, demo_synthesis, monkeypatch):
        monkeypatch.setenv(faults.ENV_MODE, "race")
        plan = optimize_washes(demo_synthesis, PDWConfig(time_limit_s=30.0))
        assert "ilp.race" in plan.report.stage_names()


class TestCrashedPrimaryRace:
    def test_concurrent_rung_wins_and_losers_are_cancelled(
        self, demo_synthesis, solver_fault
    ):
        solver_fault("crash")
        cancelled_before = _cancelled_total()
        plan = optimize_washes(demo_synthesis, RACE_CFG)
        # Both HiGHS rungs crash (FAULT_TARGET_RUNGS), so the concurrent
        # branch-and-bound rung must take the race.
        assert plan.solver_rung == "branch_bound"
        assert plan.solver_status in ("optimal", "feasible")
        assert validation_problems(plan, demo_synthesis) == []
        # The journal of attempts shows the crashed rungs...
        rung_stages = plan.report.stage_names()
        assert "ilp.rung.highs" in rung_stages
        assert "ilp.rung.highs-relaxed" in rung_stages
        # ... and nothing lingers as an orphan subprocess.
        assert _no_orphans()
        assert _cancelled_total() >= cancelled_before


def _cancelled_total() -> float:
    total = 0.0
    reg = metrics.registry()
    for line in reg.render_prometheus().splitlines():
        if line.startswith("pdw_solver_race_cancelled_total"):
            total += float(line.rsplit(" ", 1)[1])
    return total


class TestWarmResolve:
    def test_weight_sweep_reuses_model_and_incumbent(self, demo_synthesis, tmp_path):
        cache = ArtifactCache(tmp_path / "warm")
        cold = optimize_washes(
            demo_synthesis, PDWConfig(alpha=0.3, beta=0.3, gamma=0.4), cache=cache
        )
        warm = optimize_washes(
            demo_synthesis, PDWConfig(alpha=0.7, beta=0.2, gamma=0.1), cache=cache
        )
        assert cold.notes.get("stage.ilp.warm_started") is None
        assert warm.notes.get("stage.ilp.warm_started") == 1.0
        assert warm.notes.get("stage.ilp.model_reused") == 1.0
        assert validation_problems(warm, demo_synthesis) == []

    def test_warm_resolve_plan_equals_cold_plan(self, demo_synthesis, tmp_path):
        # Priming only helps branch-and-bound prune; with HiGHS healthy
        # the warm plan must be identical to a cold solve of the same
        # weights in a fresh process.
        cache = ArtifactCache(tmp_path / "warm")
        weights = PDWConfig(alpha=0.7, beta=0.2, gamma=0.1)
        optimize_washes(demo_synthesis, PDWConfig(), cache=cache)
        warm = optimize_washes(demo_synthesis, weights, cache=cache)
        cold = optimize_washes(demo_synthesis, weights)
        assert [(w.id, w.start, w.path) for w in warm.washes] == [
            (w.id, w.start, w.path) for w in cold.washes
        ]
