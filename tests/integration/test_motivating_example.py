"""Integration test of the paper's motivating example (Fig. 1-3, Table I)."""

import pytest

from repro.arch import figure2_chip
from repro.arch.presets import FIGURE2_FLOW_PATHS
from repro.baselines import dawo_plan
from repro.contam import contamination_violations
from repro.core import PDWConfig, optimize_washes
from repro.synth import synthesize

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "examples"))
from motivating_example import BINDING, REAGENT_PORTS, build_figure1_assay  # noqa: E402


@pytest.fixture(scope="module")
def synthesis():
    return synthesize(
        build_figure1_assay(),
        chip=figure2_chip(),
        binding=BINDING,
        reagent_ports=REAGENT_PORTS,
    )


@pytest.fixture(scope="module")
def pdw(synthesis):
    return optimize_washes(synthesis, PDWConfig(time_limit_s=60.0))


class TestFigure2Reconstruction:
    def test_assay_shape_matches_fig1c(self):
        assay = build_figure1_assay()
        assert assay.operation_count == 7
        assert len(assay.reagents) == 2

    def test_all_table1_paths_walk_the_chip(self):
        chip = figure2_chip()
        for path in FIGURE2_FLOW_PATHS.values():
            chip.check_path(path)

    def test_binding_uses_all_five_devices(self):
        assert set(BINDING.values()) == {"filter", "mixer", "heater", "det1", "det2"}

    def test_baseline_completion_near_paper(self, synthesis):
        # The paper's wash-free schedule completes in 30 s; our rebuilt
        # substrate should land in the same range.
        assert 25 <= synthesis.baseline_makespan <= 45

    def test_pdw_plan_verified(self, synthesis, pdw):
        assert pdw.schedule.conflicts() == []
        assert contamination_violations(synthesis.chip, pdw.schedule) == []

    def test_small_wash_delay_like_fig3(self, pdw):
        # Fig. 3: efficient washes delay the assay by only one second.
        assert pdw.t_delay <= 3

    def test_few_washes_like_fig3(self, pdw):
        # Fig. 3 needs only three wash operations.
        assert 1 <= pdw.n_wash <= 4

    def test_dawo_no_better_than_pdw(self, synthesis, pdw):
        dawo = dawo_plan(synthesis)
        assert pdw.n_wash <= dawo.n_wash
        assert pdw.t_assay <= dawo.t_assay

    def test_wash_paths_use_table1_style_routes(self, pdw):
        chip = figure2_chip()
        for wash in pdw.washes:
            assert wash.path[0] in chip.flow_ports
            assert wash.path[-1] in chip.waste_ports
            chip.check_path(wash.path)
