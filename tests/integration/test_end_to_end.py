"""End-to-end pipeline tests on real Table II benchmarks.

These exercise the full flow — benchmark assay, synthesis, both wash
optimizers — and assert the paper's qualitative result: PDW dominates DAWO
on every reported metric while both plans stay physically valid.
"""

import pytest

from repro.bench import benchmark
from repro.contam import contamination_violations
from repro.core import PDWConfig
from repro.experiments.runner import run_benchmark

#: Small/medium benchmarks keep the integration suite fast; the full suite
#: runs in benchmarks/.
NAMES = ("PCR", "IVD", "Kinase-act-1")

CFG = PDWConfig(time_limit_s=60.0)


@pytest.fixture(scope="module", params=NAMES)
def run(request):
    return run_benchmark(request.param, CFG)


class TestPipeline:
    def test_synthesis_matches_spec(self, run):
        spec = benchmark(run.name)
        assert run.synthesis.device_count == spec.expected_devices
        assert run.synthesis.assay.operation_count == spec.expected_ops

    def test_baseline_schedule_valid(self, run):
        run.synthesis.schedule.validate()

    def test_pdw_plan_verified(self, run):
        assert run.pdw.schedule.conflicts() == []
        assert contamination_violations(run.pdw.chip, run.pdw.schedule) == []

    def test_dawo_plan_verified(self, run):
        assert run.dawo.schedule.conflicts() == []
        assert contamination_violations(run.dawo.chip, run.dawo.schedule) == []

    def test_pdw_solved_to_proven_quality(self, run):
        assert run.pdw.solver_status in ("optimal", "feasible")

    def test_pdw_dominates_dawo(self, run):
        """The paper's headline: PDW improves all four Table II metrics."""
        assert run.pdw.n_wash <= run.dawo.n_wash
        assert run.pdw.l_wash_mm <= run.dawo.l_wash_mm
        assert run.pdw.t_delay <= run.dawo.t_delay
        assert run.pdw.t_assay <= run.dawo.t_assay

    def test_fig4_fig5_directions(self, run):
        assert run.pdw.average_waiting_time <= run.dawo.average_waiting_time
        assert run.pdw.total_wash_time <= run.dawo.total_wash_time

    def test_delays_non_negative(self, run):
        assert run.pdw.t_delay >= 0
        assert run.dawo.t_delay >= 0

    def test_improvement_helper(self, run):
        if run.dawo.n_wash:
            expected = 100.0 * (run.dawo.n_wash - run.pdw.n_wash) / run.dawo.n_wash
            assert run.improvement("n_wash") == pytest.approx(expected)

    def test_wash_windows_respected_in_final_schedule(self, run):
        """No transport crosses a wash while it runs (Eq. 19 end to end)."""
        washes = [t for t in run.pdw.schedule if t.id.startswith("wash:")]
        others = [t for t in run.pdw.schedule if not t.id.startswith("wash:")]
        for wash in washes:
            for task in others:
                assert not wash.conflicts_with(task), (wash.id, task.id)


class TestPdwInternals:
    def test_integration_happens_somewhere(self):
        """ψ-integration fires on at least one of the benchmarks."""
        total = sum(
            run_benchmark(name, CFG).pdw.integrated_removals for name in NAMES
        )
        assert total >= 1

    def test_necessity_analysis_reduces_requirements(self):
        for name in NAMES:
            run = run_benchmark(name, CFG)
            pdw_reqs = run.pdw.notes.get("requirements", 0)
            dawo_reqs = run.dawo.notes.get("requirements", 0)
            assert pdw_reqs <= dawo_reqs
