"""Regression bands guarding the reproduction claims.

These pin the measured Table II behaviour inside tolerance bands wide
enough to absorb solver tie-breaking but tight enough that a regression in
necessity analysis, clustering, routing or the ILP shows up immediately.
The exact measured values live in EXPERIMENTS.md.
"""

import pytest

from repro.core import PDWConfig
from repro.experiments.runner import run_benchmark

CFG = PDWConfig(time_limit_s=90.0)

#: name -> (pdw_n_wash band, pdw_l_wash band (mm), pdw max delay s)
PDW_BANDS = {
    "PCR": ((2, 4), (40.0, 90.0), 10),
    "IVD": ((5, 9), (100.0, 200.0), 15),
    "Kinase-act-1": ((1, 2), (6.0, 25.0), 3),
}


@pytest.fixture(scope="module", params=list(PDW_BANDS))
def run(request):
    return run_benchmark(request.param, CFG)


class TestPdwBands:
    def test_wash_count_in_band(self, run):
        lo, hi = PDW_BANDS[run.name][0]
        assert lo <= run.pdw.n_wash <= hi

    def test_wash_length_in_band(self, run):
        lo, hi = PDW_BANDS[run.name][1]
        assert lo <= run.pdw.l_wash_mm <= hi

    def test_delay_bounded(self, run):
        assert 0 <= run.pdw.t_delay <= PDW_BANDS[run.name][2]

    def test_optimal_within_budget(self, run):
        assert run.pdw.solver_status == "optimal"
        assert run.pdw.solve_time_s < 90.0


class TestPaperShape:
    """The three shape claims of the paper's abstract, end to end."""

    def test_fewer_wash_operations(self, run):
        if run.dawo.n_wash > 1:  # degenerate ties excluded (Kinase-act-1)
            assert run.pdw.n_wash < run.dawo.n_wash

    def test_more_efficient_wash_paths(self, run):
        assert run.pdw.l_wash_mm <= run.dawo.l_wash_mm

    def test_shorter_assay_completion(self, run):
        assert run.pdw.t_assay <= run.dawo.t_assay
