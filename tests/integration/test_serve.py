"""Live-server integration tests for ``pdw serve`` (repro.serve).

Covers the issue's concurrency contract end-to-end against a real
listening server: N concurrent submissions of the same payload converge
on one job and one underlying run (the journal shows a single
``node_attempt`` chain), every reader observes byte-identical canonical
plan JSON, distinct configs past the queue cap are rejected with 429 +
``Retry-After``, and a SIGTERM'd ``pdw serve`` subprocess exits cleanly
with no orphaned children.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.sched import journal as sched_journal
from repro.serve import JobServer

REPO_ROOT = Path(__file__).resolve().parents[2]


class Client:
    """Tiny urllib wrapper returning ``(status, body_bytes)``."""

    def __init__(self, host: str, port: int):
        self.base = f"http://{host}:{port}"

    def request(self, method: str, path: str, payload=None, timeout=60.0):
        data = json.dumps(payload).encode() if payload is not None else None
        req = urllib.request.Request(self.base + path, data=data, method=method)
        try:
            with urllib.request.urlopen(req, timeout=timeout) as resp:
                return resp.status, resp.read(), dict(resp.headers)
        except urllib.error.HTTPError as exc:
            return exc.code, exc.read(), dict(exc.headers)

    def json(self, method: str, path: str, payload=None):
        code, body, _ = self.request(method, path, payload)
        return code, json.loads(body)

    def wait_done(self, job_id: str, timeout_s: float = 180.0) -> dict:
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            code, status = self.json("GET", f"/v1/jobs/{job_id}")
            assert code == 200
            if status["state"] in ("done", "failed", "cancelled"):
                return status
            time.sleep(0.2)
        raise AssertionError(f"job {job_id} did not finish within {timeout_s}s")


@pytest.fixture
def server(tmp_path):
    srv = JobServer(
        port=0, workers=2, queue_cap=8,
        cache_dir=str(tmp_path / "cache"), job_timeout_s=120.0,
    )
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    thread.join(timeout=10.0)
    assert not thread.is_alive()


@pytest.fixture
def client(server):
    return Client(server.host, server.port)


PCR_JOB = {"benchmark": "PCR", "config": {"time_limit_s": 20}}


class TestEndpoints:
    def test_healthz_and_metrics(self, client):
        code, health = client.json("GET", "/healthz")
        assert code == 200
        assert health["status"] == "ok"
        assert health["workers"] == 2
        code, raw, headers = client.request("GET", "/metrics")
        assert code == 200
        assert headers["Content-Type"].startswith("text/plain")

    def test_unknown_route_404_wrong_method_405(self, client):
        assert client.request("GET", "/nope")[0] == 404
        assert client.request("DELETE", "/healthz")[0] == 405

    def test_submit_poll_plan_roundtrip(self, client, server):
        code, body = client.json("POST", "/v1/jobs", PCR_JOB)
        assert code == 201 and not body["deduped"]
        status = client.wait_done(body["id"])
        assert status["state"] == "done"
        assert status["target"] == "PCR"
        code, plan, _ = client.request("GET", f"/v1/jobs/{body['id']}/plan")
        assert code == 200
        parsed = json.loads(plan)
        assert parsed["method"] == "PDW"
        assert "solve_time_s" not in json.dumps(parsed), "plan must be canonical"
        # The /metrics scrape reflects the finished job.
        _, raw, _ = client.request("GET", "/metrics")
        assert b'pdw_serve_jobs_total{outcome="done"} 1' in raw

    def test_plan_before_done_is_409(self, client, server):
        gate = threading.Event()
        server._execute = lambda job: gate.wait(30.0)  # hold the job in running
        try:
            code, body = client.json("POST", "/v1/jobs", PCR_JOB)
            jid = body["id"]
            code, _, _ = client.request("GET", f"/v1/jobs/{jid}/plan")
            assert code == 409
        finally:
            gate.set()

    def test_invalid_submission_is_400(self, client):
        code, body = client.json("POST", "/v1/jobs", {"benchmark": "bogus"})
        assert code == 400 and "unknown benchmark" in body["error"]

    def test_cancel_queued_job(self, client, server):
        gate = threading.Event()
        server._execute = lambda job: gate.wait(30.0)
        try:
            # Fill both workers, then queue one more and cancel it.
            for limit in (31, 32):
                client.json("POST", "/v1/jobs",
                            {"benchmark": "PCR", "config": {"time_limit_s": limit}})
            time.sleep(0.3)
            code, queued = client.json(
                "POST", "/v1/jobs",
                {"benchmark": "PCR", "config": {"time_limit_s": 33}},
            )
            code, body = client.json("DELETE", f"/v1/jobs/{queued['id']}")
            assert code == 200 and body["state"] == "cancelled"
            # Cancelling again (terminal) is a 409.
            code, _, _ = client.request("DELETE", f"/v1/jobs/{queued['id']}")
            assert code == 409
        finally:
            gate.set()


class TestConcurrency:
    def test_concurrent_identical_submits_share_one_run(self, client, server, tmp_path):
        n = 6
        results = [None] * n
        barrier = threading.Barrier(n)

        def submit(i):
            barrier.wait()
            results[i] = client.json("POST", "/v1/jobs", PCR_JOB)

        threads = [threading.Thread(target=submit, args=(i,)) for i in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)

        ids = {body["id"] for _, body in results}
        assert len(ids) == 1, "identical payloads must dedup onto one job"
        deduped = sum(1 for _, body in results if body["deduped"])
        assert deduped == n - 1

        job_id = ids.pop()
        assert client.wait_done(job_id)["state"] == "done"

        # One underlying run: the journal's node_attempt chain for PCR has
        # each stage node exactly once.
        records = sched_journal.read_records(server.journal_path)
        attempts = [r for r in records
                    if r.get("event") == "node_attempt" and r.get("benchmark") == "PCR"]
        nodes = [r["node"] for r in attempts]
        assert len(nodes) == len(set(nodes)), f"stage re-ran: {nodes}"
        assert len(nodes) == 11

        # Every reader sees byte-identical canonical plan JSON.
        plans = {client.request("GET", f"/v1/jobs/{job_id}/plan")[1] for _ in range(n)}
        assert len(plans) == 1

    def test_saturation_returns_429_with_retry_after(self, client, server):
        gate = threading.Event()
        server._execute = lambda job: gate.wait(60.0)
        try:
            # 2 workers running + 8 queued fills the admission bound; the
            # next distinct config must be rejected, not buffered.
            accepted = 0
            for limit in range(40, 40 + 2 + server.queue.capacity):
                code, body = client.json(
                    "POST", "/v1/jobs",
                    {"benchmark": "PCR", "config": {"time_limit_s": limit}},
                )
                assert code == 201
                accepted += 1
                time.sleep(0.05)  # let workers drain the first two into running
            code, body, headers = client.request(
                "POST", "/v1/jobs",
                payload={"benchmark": "PCR", "config": {"time_limit_s": 999}},
            )
            assert code == 429
            assert int(headers["Retry-After"]) >= 1
            # A duplicate of an *admitted* job still dedups fine at capacity.
            code, body = client.json(
                "POST", "/v1/jobs",
                {"benchmark": "PCR", "config": {"time_limit_s": 40}},
            )
            assert code == 200 and body["deduped"]
        finally:
            gate.set()


class TestShutdown:
    def test_sigterm_subprocess_exits_cleanly(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
        env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--port", "0", "--workers", "1"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env,
        )
        try:
            line = proc.stdout.readline()
            assert "pdw serve listening on" in line
            port = int(line.rsplit(":", 1)[1])
            cli = Client("127.0.0.1", port)
            code, health = cli.json("GET", "/healthz")
            assert code == 200
            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=30.0)
            assert proc.returncode == 0, f"stderr: {err}"
            assert "shut down cleanly" in out
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
