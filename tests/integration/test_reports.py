"""Integration tests for the auxiliary experiment reports."""

import pytest

from repro.core import PDWConfig
from repro.experiments.necessity_stats import necessity_report, necessity_rows
from repro.experiments.pareto import pareto_points, pareto_report

SUBSET = ["PCR", "Kinase-act-1"]


class TestNecessityStats:
    @pytest.fixture(scope="class")
    def rows(self):
        return necessity_rows(SUBSET)

    def test_classification_partitions_events(self, rows):
        for row in rows:
            assert (
                row.required + row.type1 + row.type2 + row.type3 + row.consumed
                == row.events
            )

    def test_minority_of_events_require_wash(self, rows):
        """The paper's Section II-A claim, quantified."""
        for row in rows:
            assert row.required_pct < 50.0

    def test_report_renders(self):
        text = necessity_report(SUBSET)
        assert "Total" in text
        assert "req %" in text


class TestParetoSweep:
    @pytest.fixture(scope="class")
    def points(self):
        return pareto_points("PCR", base=PDWConfig(time_limit_s=40.0))

    def test_all_sweep_points_solved(self, points):
        assert len(points) == 4

    def test_length_only_minimizes_length(self, points):
        by_label = {p.label: p for p in points}
        assert by_label["length-only"].l_wash_mm <= by_label["time-only"].l_wash_mm

    def test_time_only_minimizes_time(self, points):
        by_label = {p.label: p for p in points}
        assert by_label["time-only"].t_assay <= by_label["length-only"].t_assay

    def test_report_renders(self):
        text = pareto_report("PCR", base=PDWConfig(time_limit_s=40.0))
        assert "paper" in text
        assert "Objective sweep" in text
