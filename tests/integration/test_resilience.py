"""End-to-end solver resilience: faults, forced rungs, validation.

The acceptance bar for the degradation ladder: with a fault injected into
every HiGHS attempt, a full PDW run must still complete through a lower
rung, the produced plan must replay cleanly through the independent
:mod:`repro.sim.validate` gauntlet, and the degraded rung must be visible
in the run report and the CLI output.
"""

import pytest

from repro.cli import main
from repro.core import PDWConfig, optimize_washes
from repro.errors import InfeasibleError
from repro.ilp import faults
from repro.sim.validate import validate_plan, validation_problems


CFG = PDWConfig(time_limit_s=30.0)


class TestFaultedRunsComplete:
    @pytest.mark.parametrize("kind", ["crash", "timeout", "no_incumbent"])
    def test_pdw_completes_via_lower_rung(self, demo_synthesis, solver_fault, kind):
        solver_fault(kind)
        plan = optimize_washes(demo_synthesis, CFG)
        assert plan.solver_rung in ("branch_bound", "greedy")
        assert plan.solver_status in ("optimal", "feasible")
        # Both HiGHS rungs must be on record as failed attempts.
        rung_stages = [
            s for s in plan.report.stage_names() if s.startswith("ilp.rung.")
        ]
        assert "ilp.rung.highs" in rung_stages
        assert "ilp.rung.highs-relaxed" in rung_stages
        assert validation_problems(plan, demo_synthesis) == []

    def test_faulted_plan_matches_clean_metrics_structure(
        self, demo_synthesis, solver_fault
    ):
        clean = optimize_washes(demo_synthesis, CFG)
        solver_fault("crash")
        degraded = optimize_washes(demo_synthesis, CFG)
        # Same washes are demanded either way; only quality may differ.
        assert degraded.n_wash >= 1
        assert set(degraded.metrics()) == set(clean.metrics())

    def test_faulted_outcome_does_not_poison_clean_cache(
        self, demo_synthesis, solver_fault, tmp_path
    ):
        from repro.pipeline import ArtifactCache

        cache = ArtifactCache(tmp_path)
        solver_fault("crash")
        degraded = optimize_washes(demo_synthesis, CFG, cache=cache)
        assert degraded.solver_rung != "highs"
        faults.reset()
        import os

        os.environ.pop(faults.ENV_FAULT, None)
        clean = optimize_washes(demo_synthesis, CFG, cache=cache)
        assert clean.solver_rung == "highs"
        assert clean.report.get("ilp").cached is False


class TestForcedRungs:
    def test_forced_branch_bound_validates(self, demo_synthesis, monkeypatch):
        monkeypatch.setenv(faults.ENV_FORCE, "branch_bound")
        plan = optimize_washes(demo_synthesis, CFG)
        assert plan.solver_rung == "branch_bound"
        validate_plan(plan, demo_synthesis)

    def test_config_greedy_skips_the_ilp(self, demo_synthesis):
        plan = optimize_washes(demo_synthesis, PDWConfig(time_limit_s=30.0, solver="greedy"))
        assert plan.solver_rung == "greedy"
        assert plan.solver_status == "feasible"
        validate_plan(plan, demo_synthesis)


class TestCliResilience:
    def test_run_under_crash_fault_shows_degraded_rung(self, solver_fault, capsys):
        solver_fault("crash")
        assert main(["run", "PCR", "--time-limit", "30", "--stats", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "via branch_bound" in out or "via greedy" in out
        assert "ilp.rung.highs" in out  # failed attempts shown in --stats

    def test_run_with_forced_solver_flag(self, capsys):
        assert main(
            ["run", "PCR", "--time-limit", "30", "--solver", "branch_bound",
             "--no-cache"]
        ) == 0
        assert "via branch_bound" in capsys.readouterr().out

    def test_infeasible_ilp_is_a_clean_cli_error(self, monkeypatch, capsys):
        from repro.core import schedule_ilp

        def explode(self, portfolio=None):
            raise InfeasibleError("PDW scheduling ILP is infeasible (forced)")

        monkeypatch.setattr(schedule_ilp.WashScheduleIlp, "solve", explode)
        assert main(["run", "PCR", "--time-limit", "30", "--no-cache"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("pdw: error:")
        assert "infeasible" in err
