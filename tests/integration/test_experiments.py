"""Integration tests for the experiment harness (Table II, Fig. 4, Fig. 5)."""

import pytest

from repro.core import PDWConfig
from repro.experiments import (
    ablation_report,
    fig4_report,
    fig5_report,
    table2_report,
)
from repro.experiments.fig4 import fig4_series
from repro.experiments.fig5 import fig5_series
from repro.experiments.runner import run_benchmark, run_suite
from repro.experiments.table2 import table2_rows

SUBSET = ["PCR", "Kinase-act-1"]
CFG = PDWConfig(time_limit_s=60.0)


@pytest.fixture(scope="module")
def runs():
    return run_suite(SUBSET, CFG)


class TestRunner:
    def test_cache_returns_same_object(self):
        a = run_benchmark("PCR", CFG)
        b = run_benchmark("PCR", CFG)
        assert a is b

    def test_sizes_string(self, runs):
        assert runs[0].sizes == "7/5/15"

    def test_wall_time_recorded(self, runs):
        assert all(r.wall_time_s > 0 for r in runs)


class TestTable2:
    def test_rows_carry_measured_and_paper(self, runs):
        rows = table2_rows(runs)
        assert len(rows) == len(SUBSET)
        for row in rows:
            assert set(row.improvements) == {
                "n_wash", "l_wash_mm", "t_delay_s", "t_assay_s",
            }
            assert set(row.paper_improvements) == set(row.improvements)

    def test_report_renders(self, runs):
        text = table2_report(SUBSET, CFG)
        assert "Table II" in text
        assert "PCR" in text
        assert "Average" in text
        assert "paper Im(%)" in text


class TestFigures:
    def test_fig4_series_shapes(self, runs):
        series = fig4_series(runs)
        assert set(series) == {"DAWO", "PDW"}
        assert len(series["PDW"]) == len(SUBSET)
        for d, p in zip(series["DAWO"], series["PDW"]):
            assert p <= d

    def test_fig5_series_shapes(self, runs):
        series = fig5_series(runs)
        for d, p in zip(series["DAWO"], series["PDW"]):
            assert p <= d

    def test_fig_reports_render(self, runs):
        assert "Fig. 4" in fig4_report(SUBSET, CFG)
        assert "Fig. 5" in fig5_report(SUBSET, CFG)


class TestAblation:
    def test_report_lists_all_variants(self):
        text = ablation_report(["PCR"], PDWConfig(time_limit_s=40.0))
        for variant in ("full", "no-necessity", "no-integration", "no-merge", "eager"):
            assert variant in text

    def test_full_variant_not_worse_than_ablations(self):
        from repro.experiments.ablation import run_ablation

        plans = run_ablation("PCR", PDWConfig(time_limit_s=40.0))
        full = plans["full"]
        assert full.n_wash <= plans["no-necessity"].n_wash
        assert full.n_wash <= plans["no-merge"].n_wash
        assert full.t_assay <= plans["eager"].t_assay
        assert full.integrated_removals >= plans["no-integration"].integrated_removals
        assert plans["no-integration"].integrated_removals == 0


class TestCliModule:
    def test_experiments_main(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["table2", "--benchmarks", "PCR", "--time-limit", "40"]) == 0
        assert "Table II" in capsys.readouterr().out
