"""Integration tests: online detect→replan repair and the degrade matrix."""

import json

import pytest

from repro.cli import main
from repro.core import PDWConfig, optimize_washes
from repro.degrade.repair import (
    detect_first_violation,
    pick_online_fault,
    repair_plan,
)
from repro.degrade.suite import SUCCESS_OUTCOMES, run_degrade_matrix
from repro.errors import DegradationError
from repro.export.plan_json import plan_to_dict
from repro.sim.events import SimEventKind
from repro.sim.validate import degraded_validation_problems
from repro.synth import synthesize

from tests.conftest import build_demo_assay


@pytest.fixture(scope="module")
def demo_synthesis():
    return synthesize(build_demo_assay())


@pytest.fixture(scope="module")
def healthy_plan(demo_synthesis):
    return optimize_washes(demo_synthesis, PDWConfig())


def test_auto_fault_violates_only_wash_intervals(demo_synthesis, healthy_plan):
    fault = pick_online_fault(healthy_plan, demo_synthesis)
    assert fault is not None

    event = detect_first_violation(healthy_plan, demo_synthesis, fault)
    assert event is not None
    assert event.kind is SimEventKind.DEAD_NODE_TRAVERSED
    assert event.task_id.startswith("wash:")
    assert event.node == fault.node


def test_repair_loop_converges_to_validator_clean_plan(demo_synthesis, healthy_plan):
    fault = pick_online_fault(healthy_plan, demo_synthesis)
    result = repair_plan(healthy_plan, demo_synthesis, PDWConfig(), fault)

    assert result.status in ("repaired", "degraded")
    assert result.records, "a real fault must take at least one repair round"
    assert result.records[0].node == fault.node
    assert result.plan.repairs == result.records

    # The repaired plan never sends a wash through the failed node after
    # the failure tick, and the degraded validator finds nothing.
    uncovered = set()
    info = result.plan.degradation
    if info is not None:
        uncovered = set(info.uncovered_targets)
        assert fault.node in info.dead
    problems, _ = degraded_validation_problems(
        result.plan, demo_synthesis, {fault.node: fault.time}, uncovered
    )
    assert not problems


def test_repaired_plan_json_carries_repair_rounds(demo_synthesis, healthy_plan):
    result = repair_plan(healthy_plan, demo_synthesis, PDWConfig())
    payload = plan_to_dict(result.plan)
    assert payload["repairs"]
    record = payload["repairs"][0]
    assert record["outcome"] == "replanned"
    assert record["node"] == result.failure.node
    assert "wall_s" in record


def test_degrade_matrix_static_rows(tmp_path):
    journal = tmp_path / "journal.jsonl"
    result = run_degrade_matrix(
        names=["PCR"], scenarios="light,moderate", journal_path=journal
    )
    assert len(result.rows) == 2
    assert result.ok
    for row in result.rows:
        assert row.outcome in SUCCESS_OUTCOMES
        assert row.benchmark == "PCR"
        assert 0.0 <= row.coverage <= 1.0
        assert len(row.dead) >= 1
    scenarios = [row.scenario for row in result.rows]
    assert scenarios == ["channels=1:seed=0", "channels=2:valves=1:seed=0"]

    records = [json.loads(line) for line in journal.read_text().splitlines()]
    assert [r["event"] for r in records] == ["degrade", "degrade"]
    assert {r["scenario"] for r in records} == set(scenarios)


def test_degrade_matrix_online_repair(tmp_path):
    result = run_degrade_matrix(
        names=["PCR"],
        scenarios="",
        online="auto",
        journal_path=tmp_path / "journal.jsonl",
    )
    assert len(result.rows) == 1
    row = result.rows[0]
    assert row.scenario == "none+online"
    assert row.outcome in ("REPAIRED", "DEGRADED")
    assert row.repair_rounds >= 1


def test_degrade_matrix_rejects_preset_config():
    with pytest.raises(DegradationError):
        run_degrade_matrix(names=["PCR"], config=PDWConfig(degrade="light"))


def test_statically_dead_used_node_exits_three(capsys):
    # A baseline-used node that dies before execution makes the *assay*
    # infeasible: the matrix reports INFEASIBLE_DEGRADED and exits 3.
    from repro.bench.library import benchmark, load_benchmark

    spec = benchmark("PCR")
    synthesis = synthesize(load_benchmark("PCR"), inventory=spec.inventory)
    used = sorted(
        n
        for task in synthesis.schedule.tasks()
        for n in (task.path or ())
        if not synthesis.chip.is_port(n)
    )
    code = main(["suite", "PCR", "--degrade", f"dead={used[0]}"])
    out = capsys.readouterr().out
    assert code == 3
    assert "INFEASIBLE_DEGRADED" in out


def test_suite_cli_online_repair_exits_zero(capsys):
    code = main(["suite", "PCR", "--degrade-online"])
    out = capsys.readouterr().out
    assert code == 0
    assert "REPAIRED" in out or "DEGRADED" in out
