"""Fault-tolerant suite execution: supervisor, journals, resume, CLI.

Chaos-driven tests pin a unique ``PDWConfig`` per test: the in-process
memo deliberately ignores armed stage faults (see
``repro.experiments.runner``), so a memo hit from an earlier test would
otherwise bypass the injection point entirely.
"""

from __future__ import annotations

import pytest

from repro.cli import main as cli_main
from repro.core import PDWConfig
from repro.experiments.runner import (
    BenchmarkRun,
    SuiteResult,
    _worker_count,
    run_benchmark,
    run_suite,
)
from repro.experiments.supervisor import (
    RunBudget,
    SuiteSupervisor,
    _read_journal,
    failures_report,
)
from repro.experiments.table2 import table2_report
from repro.pipeline import ArtifactCache

SUITE = ["PCR", "Kinase-act-1"]


def _supervisor(tmp_path, **kwargs):
    cache = kwargs.pop("cache", None) or ArtifactCache(tmp_path / "store")
    return SuiteSupervisor(cache=cache, **kwargs), cache


class TestSupervisor:
    def test_all_success(self, tmp_path):
        sup, cache = _supervisor(tmp_path, budget=RunBudget(timeout_s=300.0))
        result = sup.run(SUITE, PDWConfig(time_limit_s=41.0))
        assert isinstance(result, SuiteResult)
        assert result.ok
        assert [run.name for run in result.runs] == SUITE
        assert all(isinstance(run, BenchmarkRun) for run in result)
        events = {r["event"] for r in _read_journal(result.journal_path)}
        assert events == {"attempt", "success", "metrics"}

    def test_crashed_benchmark_does_not_abort_the_suite(self, tmp_path, stage_fault):
        stage_fault("pathgen:crash@PCR")
        sup, _ = _supervisor(tmp_path)
        result = sup.run(SUITE, PDWConfig(time_limit_s=42.0))
        assert not result.ok
        assert len(result) == 2
        (failure,) = result.failures
        assert failure.name == "PCR"
        assert failure.kind == "crash"
        assert failure.label == "FAILED(crash)"
        (run,) = result.runs
        assert run.name == "Kinase-act-1"

    def test_retry_recovers_a_transient_crash(self, tmp_path, stage_fault):
        stage_fault("pathgen:crash:1@PCR")  # only the first trip fires
        sup, _ = _supervisor(
            tmp_path,
            budget=RunBudget(retries=1, backoff_base_s=0.01, backoff_cap_s=0.05),
        )
        result = sup.run(["PCR"], PDWConfig(time_limit_s=43.0))
        assert result.ok
        records = _read_journal(result.journal_path)
        attempts = [r for r in records if r["event"] == "attempt"]
        assert [r["attempt"] for r in attempts] == [1, 2]
        assert any(r["event"] == "retry" for r in records)
        assert records[-1]["event"] == "success"

    def test_hang_is_killed_on_the_wall_clock_budget(self, tmp_path, stage_fault):
        stage_fault("synthesis:hang:60@PCR")
        sup, _ = _supervisor(tmp_path, budget=RunBudget(timeout_s=1.0))
        result = sup.run(["PCR"], PDWConfig(time_limit_s=44.0))
        (failure,) = result.failures
        assert failure.kind == "timeout"
        assert "wall-clock" in failure.message

    def test_worker_death_is_classified_as_crash(self, tmp_path, stage_fault):
        stage_fault("replay:exit@PCR")  # os._exit: no goodbye over the pipe
        sup, _ = _supervisor(tmp_path)
        result = sup.run(["PCR"], PDWConfig(time_limit_s=45.0))
        (failure,) = result.failures
        assert failure.kind == "crash"
        assert "exited with code 13" in failure.message

    def test_resume_skips_journaled_successes(self, tmp_path, stage_fault, monkeypatch):
        from repro.pipeline import chaos

        cfg = PDWConfig(time_limit_s=46.0)
        stage_fault("pathgen:crash@PCR")
        sup, cache = _supervisor(tmp_path)
        first = sup.run(SUITE, cfg)
        assert [f.name for f in first.failures] == ["PCR"]

        monkeypatch.delenv(chaos.ENV_STAGE_FAULT, raising=False)
        chaos.reset()
        sup2, _ = _supervisor(tmp_path, cache=cache, resume=True)
        second = sup2.run(SUITE, cfg)
        assert second.ok
        assert second.resumed == ("Kinase-act-1",)
        # Resume never re-executed the journaled success.
        attempts = [
            r for r in _read_journal(second.journal_path)
            if r["event"] == "attempt" and r["benchmark"] == "Kinase-act-1"
        ]
        assert len(attempts) == 1

    def test_failures_report_renders_the_journal(self, tmp_path, stage_fault):
        stage_fault("pathgen:crash@PCR")
        sup, _ = _supervisor(tmp_path)
        result = sup.run(["PCR"], PDWConfig(time_limit_s=47.0))
        text = failures_report(result.journal_path)
        assert "PCR" in text
        assert "crash" in text
        assert "FAILED(crash)" in text


class TestRunSuite:
    def test_custom_cache_reaches_the_workers(self, tmp_path):
        cache = ArtifactCache(tmp_path / "custom")
        result = run_suite(["PCR"], PDWConfig(time_limit_s=48.0), cache=cache)
        assert result.ok
        assert len(list(cache.entries())) > 0

    def test_process_pool_matches_thread_pool_on_warm_cache(self, tmp_path):
        from repro.experiments import runner

        cfg = PDWConfig(time_limit_s=49.0)
        cache = ArtifactCache(tmp_path / "shared")
        warm = run_suite(SUITE, cfg, cache=cache, workers=2, executor="thread")
        runner.clear_cache()
        cold_memo = run_suite(SUITE, cfg, cache=cache, workers=2, executor="process")
        assert cold_memo.ok
        for a, b in zip(warm.runs, cold_memo.runs):
            assert a.name == b.name
            assert a.pdw.metrics() == b.pdw.metrics()
            assert a.dawo.metrics() == b.dawo.metrics()
        assert all(run.from_cache for run in cold_memo.runs)

    def test_process_pool_results_are_memo_adopted(self, tmp_path):
        from repro.experiments import runner

        cfg = PDWConfig(time_limit_s=50.0)
        cache = ArtifactCache(tmp_path / "adopt")
        runner.clear_cache()
        result = run_suite(["PCR"], cfg, cache=cache, workers=2, executor="process")
        assert run_benchmark("PCR", cfg, cache=cache) is result[0]

    def test_unsupervised_suite_captures_repro_errors(self, stage_fault):
        stage_fault("pathgen:crash@PCR")
        result = run_suite(SUITE, PDWConfig(time_limit_s=51.0), use_cache=False)
        assert [f.name for f in result.failures] == ["PCR"]
        assert [r.name for r in result.runs] == ["Kinase-act-1"]

    def test_malformed_worker_env_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_SUITE_WORKERS", "three")
        with pytest.warns(RuntimeWarning, match="REPRO_SUITE_WORKERS"):
            assert _worker_count(["a", "b"], None) >= 1


class TestReports:
    def test_table2_renders_failed_rows(self, stage_fault):
        stage_fault("pathgen:crash@PCR")
        text = table2_report(SUITE, PDWConfig(time_limit_s=52.0))
        assert "FAILED(crash)" in text
        assert "Kinase-act-1" in text
        assert "1 of 2 benchmarks failed" in text


class TestCli:
    def test_suite_exit_0_on_success(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        code = cli_main(["suite", "PCR", "--time-limit", "53"])
        out = capsys.readouterr().out
        assert code == 0
        assert "1/1 benchmarks succeeded" in out

    def test_suite_exit_3_on_partial_failure(
        self, tmp_path, monkeypatch, stage_fault, capsys
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        stage_fault("pathgen:crash@PCR")
        code = cli_main(["suite", "PCR", "Kinase-act-1", "--time-limit", "54"])
        out = capsys.readouterr().out
        assert code == 3
        assert "FAILED(crash)" in out
        assert "1/2 benchmarks succeeded" in out

        code = cli_main(["report", "failures"])
        out = capsys.readouterr().out
        assert code == 0
        assert "PCR" in out

    def test_cache_verify_reports_corruption(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert cli_main(["run", "PCR", "--time-limit", "55"]) == 0
        capsys.readouterr()
        assert cli_main(["cache", "verify"]) == 0
        assert "0 quarantined" in capsys.readouterr().out

        cache = ArtifactCache(tmp_path / "cache")
        victim = next(iter(cache.entries()))
        data = bytearray(victim.read_bytes())
        data[-1] ^= 0xFF
        victim.write_bytes(bytes(data))
        assert cli_main(["cache", "verify"]) == 1
        assert "checksum-mismatch" in capsys.readouterr().out
        # The store healed: a second verify is clean.
        assert cli_main(["cache", "verify"]) == 0
