"""The shipped example scripts must run end to end."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name, capsys, argv=("example",)):
    sys.path.insert(0, str(EXAMPLES))
    old_argv = sys.argv
    sys.argv = list(argv)
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv
        sys.path.remove(str(EXAMPLES))
    return capsys.readouterr().out


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "PDW solver status" in out
        assert "makespan" in out

    def test_motivating_example(self, capsys):
        out = run_example("motivating_example.py", capsys)
        assert "Table I transport paths" in out
        assert "PDW wash operations" in out

    def test_custom_chip(self, capsys):
        out = run_example("custom_chip.py", capsys)
        assert "custom" in out.lower()

    def test_method_comparison(self, capsys):
        out = run_example("method_comparison.py", capsys, argv=("example", "PCR"))
        assert "DAWO" in out and "PDW" in out
        assert "necessity analysis" in out

    def test_weight_sweep(self, capsys):
        out = run_example("weight_sweep.py", capsys, argv=("example", "PCR"))
        assert "paper (.3/.3/.4)" in out
        assert "cap" in out
