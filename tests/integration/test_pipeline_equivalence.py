"""Cache-equivalence and parallel-suite regression tests.

The acceptance bar for the staged pipeline: plans built from cached
artifacts (warm disk cache, shared replay tracker) must be metric-identical
to plans computed from scratch, and the parallel suite runner must return
the same results as the sequential one.
"""

import pytest

from repro.baselines import dawo_plan
from repro.contam import ContaminationTracker
from repro.core import PDWConfig, optimize_washes
from repro.experiments.runner import clear_cache, run_benchmark, run_suite
from repro.pipeline import ArtifactCache

PDW_STAGES = ["replay", "necessity", "clusters", "pathgen", "ilp", "assemble"]


@pytest.fixture
def cache(tmp_path):
    return ArtifactCache(tmp_path)


class TestPdwCacheEquivalence:
    def test_warm_run_metric_identical(self, demo_synthesis, cache):
        cfg = PDWConfig(time_limit_s=30.0)
        cold = optimize_washes(demo_synthesis, cfg, cache=cache)
        warm = optimize_washes(demo_synthesis, cfg, cache=cache)
        assert warm.metrics() == cold.metrics()
        assert [w.path for w in warm.washes] == [w.path for w in cold.washes]
        assert cold.report.cache_hits == 0
        # Everything except the (never-cached) assemble stage is served.
        assert warm.report.cache_hits == len(PDW_STAGES) - 1

    def test_report_exposes_all_stages(self, demo_synthesis, cache):
        plan = optimize_washes(demo_synthesis, PDWConfig(time_limit_s=30.0), cache=cache)
        names = plan.report.stage_names()
        # Presolve, model-build and solver-ladder rung records ride along
        # after the ilp stage.
        assert [
            n
            for n in names
            if not n.startswith(("ilp.rung.", "ilp.build", "ilp.presolve"))
        ] == PDW_STAGES
        assert any(n.startswith("ilp.rung.") for n in names)
        assert "ilp.build" in names
        assert "ilp.presolve" in names
        ilp = plan.report.get("ilp")
        for stat in (
            "solve_time_s",
            "build_time_s",
            "objective",
            "variables",
            "binaries",
            "constraints",
        ):
            assert stat in ilp.counters
        assert plan.notes["stage.ilp.variables"] == ilp.counters["variables"]

    def test_config_change_misses_config_dependent_stages(self, demo_synthesis, cache):
        optimize_washes(demo_synthesis, PDWConfig(time_limit_s=30.0), cache=cache)
        plan = optimize_washes(
            demo_synthesis, PDWConfig(time_limit_s=30.0, beta=0.9), cache=cache
        )
        # replay/necessity/clusters/pathgen don't depend on β; the ILP does.
        assert plan.report.get("replay").cached is True
        assert plan.report.get("ilp").cached is False


class TestDawoSharesArtifacts:
    def test_replay_shared_through_cache(self, demo_synthesis, cache):
        scratch_dawo = dawo_plan(demo_synthesis)
        pdw = optimize_washes(demo_synthesis, PDWConfig(time_limit_s=30.0), cache=cache)
        assert pdw.report.get("replay").cached is False
        cached_dawo = dawo_plan(demo_synthesis, cache=cache)
        # DAWO's replay stage is keyed identically to PDW's, so PDW's
        # artifact is reused — and the plan is unchanged by the sharing.
        assert cached_dawo.report.get("replay").cached is True
        assert cached_dawo.metrics() == scratch_dawo.metrics()

    def test_replay_shared_through_tracker(self, demo_synthesis, demo_tracker):
        scratch = dawo_plan(demo_synthesis)
        shared = dawo_plan(demo_synthesis, tracker=demo_tracker)
        assert shared.metrics() == scratch.metrics()
        rec = shared.report.get("replay")
        assert rec.counters.get("shared") == 1.0
        assert rec.wall_s == 0.0

    def test_pdw_with_shared_tracker_metric_identical(self, demo_synthesis):
        cfg = PDWConfig(time_limit_s=30.0)
        scratch = optimize_washes(demo_synthesis, cfg)
        tracker = ContaminationTracker(demo_synthesis.chip, demo_synthesis.schedule)
        shared = optimize_washes(demo_synthesis, cfg, tracker=tracker)
        assert shared.metrics() == scratch.metrics()


class TestRunnerDiskCache:
    def test_warm_benchmark_run_identical(self, cache):
        cfg = PDWConfig(time_limit_s=55.0)
        cold = run_benchmark("PCR", cfg, cache=cache)
        assert cold.from_cache is False
        clear_cache()  # drop the in-process memo: force the disk path
        warm = run_benchmark("PCR", cfg, cache=cache)
        assert warm.from_cache is True
        assert warm.pdw.metrics() == cold.pdw.metrics()
        assert warm.dawo.metrics() == cold.dawo.metrics()
        assert warm.sizes == cold.sizes
        clear_cache()

    def test_run_report_covers_both_methods(self, cache):
        cfg = PDWConfig(time_limit_s=55.0)
        clear_cache()
        run = run_benchmark("PCR", cfg, cache=cache)
        names = run.report.stage_names()
        assert "synthesis" in names
        assert "replay" in names
        for stage in ("pdw.necessity", "pdw.pathgen", "pdw.ilp", "dawo.sweepline"):
            assert stage in names
        assert "solve_time_s" in run.report.get("pdw.ilp").counters
        clear_cache()


class TestParallelSuite:
    SUBSET = ["PCR", "Kinase-act-1"]
    CFG = PDWConfig(time_limit_s=60.0)

    def test_thread_parallel_matches_sequential(self):
        seq = run_suite(self.SUBSET, self.CFG, workers=1)
        par = run_suite(self.SUBSET, self.CFG, workers=2, executor="thread")
        assert [r.name for r in par] == [r.name for r in seq]
        for a, b in zip(seq, par):
            assert a.pdw.metrics() == b.pdw.metrics()
            assert a.dawo.metrics() == b.dawo.metrics()

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError):
            run_suite(self.SUBSET, self.CFG, workers=2, executor="mpi")
