"""Stage-DAG suite execution: node-scoped chaos, retries, resume, CLI.

The companion of tests/integration/test_suite_execution.py for the
:mod:`repro.sched` executor.  Chaos-driven tests pin a unique
``PDWConfig`` per test for the same reason documented there: the
in-process memo ignores armed stage faults, so a memo hit from an
earlier test would bypass the injection point.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main as cli_main
from repro.core import PDWConfig
from repro.experiments.supervisor import RunBudget
from repro.pipeline import ArtifactCache
from repro.sched import journal as sched_journal
from repro.sched.executor import DagExecutor

SUITE = ["PCR", "Kinase-act-1"]


def _executor(tmp_path, **kwargs):
    cache = kwargs.pop("cache", None) or ArtifactCache(tmp_path / "store")
    journal = kwargs.pop("journal_path", tmp_path / "journal.jsonl")
    return DagExecutor(cache=cache, journal_path=journal, **kwargs), cache


class TestDagExecutor:
    def test_all_success_journals_every_node(self, tmp_path):
        ex, _ = _executor(tmp_path, workers=2)
        result = ex.run(SUITE, PDWConfig(time_limit_s=61.5))
        assert result.ok
        assert [run.name for run in result.runs] == SUITE
        records = sched_journal.read_records(ex.journal_path)
        # 11 nodes per benchmark, one attempt + one success each.
        assert len(sched_journal.node_attempts(records)) == 22
        successes = [r for r in records if r["event"] == "node_success"]
        assert len(successes) == 22
        # Benchmark-level events stay supervisor-compatible (journaled in
        # completion order — small benchmarks finish first).
        assert {
            r["benchmark"] for r in records if r["event"] == "success"
        } == set(SUITE)
        # Every stage record carries its scheduler queue wait.
        for run in result.runs:
            rec = run.report.get("pdw.ilp")
            assert rec is not None
            assert rec.counters.get("queue_wait_s") is not None

    def test_ilp_crash_kills_only_its_node_and_dependents(
        self, tmp_path, stage_fault
    ):
        stage_fault("ilp:crash@PCR")
        ex, _ = _executor(tmp_path, workers=2)
        result = ex.run(SUITE, PDWConfig(time_limit_s=62.0))
        (failure,) = result.failures
        assert failure.name == "PCR"
        assert failure.kind == "crash"
        (run,) = result.runs
        assert run.name == "Kinase-act-1"  # sibling benchmark completes

        records = sched_journal.read_records(ex.journal_path)
        cancelled = {r["node"] for r in records if r["event"] == "node_cancelled"}
        assert cancelled == {"PCR/pdw/assemble", "PCR/run/collect"}
        # PCR's DAWO chain is not downstream of the crashed ILP: it finished.
        dawo_done = {
            r["node"]
            for r in records
            if r["event"] == "node_success"
            and r["benchmark"] == "PCR"
            and r["method"] == "dawo"
        }
        assert dawo_done == {
            "PCR/dawo/necessity", "PCR/dawo/clusters", "PCR/dawo/sweepline"
        }
        # The crash never rewound upstream work.
        assert len(sched_journal.node_attempts(records, "PCR", "pathgen")) == 1

    def test_retry_rewinds_only_the_crashed_node(self, tmp_path, stage_fault):
        stage_fault("ilp:crash:1@PCR")  # only the first trip fires
        ex, _ = _executor(
            tmp_path,
            budget=RunBudget(retries=1, backoff_base_s=0.01, backoff_cap_s=0.05),
        )
        result = ex.run(["PCR"], PDWConfig(time_limit_s=63.0))
        assert result.ok
        records = sched_journal.read_records(ex.journal_path)
        assert len(sched_journal.node_attempts(records, "PCR", "ilp")) == 2
        assert len(sched_journal.node_attempts(records, "PCR", "pathgen")) == 1
        retries = [r for r in records if r["event"] == "node_retry"]
        assert [r["stage"] for r in retries] == ["ilp"]

    def test_resume_replays_at_node_granularity(
        self, tmp_path, stage_fault, monkeypatch
    ):
        from repro.pipeline import chaos

        cfg = PDWConfig(time_limit_s=64.0)
        stage_fault("ilp:crash@PCR")
        ex, cache = _executor(tmp_path)
        first = ex.run(SUITE, cfg)
        assert [f.name for f in first.failures] == ["PCR"]

        monkeypatch.delenv(chaos.ENV_STAGE_FAULT, raising=False)
        chaos.reset()
        before = len(sched_journal.read_records(ex.journal_path))
        ex2, _ = _executor(tmp_path, cache=cache, resume=True)
        second = ex2.run(SUITE, cfg)
        assert second.ok
        # The journaled success replays without any re-execution.
        assert second.resumed == ("Kinase-act-1",)
        fresh = sched_journal.read_records(ex2.journal_path)[before:]
        assert not [r for r in fresh if r.get("benchmark") == "Kinase-act-1"]
        # Within PCR, stages that finished before the crash come back from
        # the per-stage artifact cache; only the crashed node recomputes.
        origins = {
            r["stage"]: r["origin"]
            for r in fresh
            if r["event"] == "node_success" and r["benchmark"] == "PCR"
        }
        assert origins["pathgen"] == "cache"
        assert origins["ilp"] == "computed"

    def test_malformed_worker_env_warns_and_falls_back(self, monkeypatch):
        from repro.sched.executor import WORKERS_ENV

        monkeypatch.setenv(WORKERS_ENV, "three")
        ex = DagExecutor(use_cache=False)
        with pytest.warns(RuntimeWarning, match=WORKERS_ENV):
            assert ex._resolve_workers(2) == 2


class TestTimingsReport:
    def test_queue_wait_table_appears_for_dag_runs(self, tmp_path, monkeypatch):
        from repro.experiments.timings import timings_report

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        text = timings_report(
            ["Kinase-act-1"], PDWConfig(time_limit_s=65.0), sched_workers=2
        )
        assert "Scheduler queue waits" in text

    def test_queue_wait_table_absent_for_serial_runs(self, tmp_path, monkeypatch):
        from repro.experiments.timings import timings_report

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        text = timings_report(["Kinase-act-1"], PDWConfig(time_limit_s=65.5))
        assert "Scheduler queue waits" not in text


class TestCli:
    def test_suite_sched_workers_exit_0(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        code = cli_main(
            ["suite", "Kinase-act-1", "--sched-workers", "2", "--time-limit", "66"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "1/1 benchmarks succeeded" in out

    def test_suite_sched_workers_exit_3_on_partial_failure(
        self, tmp_path, monkeypatch, stage_fault, capsys
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        stage_fault("ilp:crash@PCR")
        code = cli_main(
            ["suite", "PCR", "Kinase-act-1", "--sched-workers", "2",
             "--time-limit", "67"]
        )
        out = capsys.readouterr().out
        assert code == 3
        assert "FAILED(crash)" in out
        assert "1/2 benchmarks succeeded" in out

    def test_bench_records_the_suite_section(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        out_file = tmp_path / "bench.json"
        code = cli_main(
            ["bench", "--quick", "--sched-workers", "2", "--out", str(out_file)]
        )
        capsys.readouterr()
        assert code == 0
        payload = json.loads(out_file.read_text(encoding="utf-8"))
        suite = payload["suite"]
        assert suite["sched_workers"] == 2
        assert suite["failures"] == 0
        assert suite["wall_s"] > 0.0
        assert suite["serial_sum_s"] > 0.0
