"""Shared fixtures: a small demo assay and its synthesis artifacts.

Expensive artifacts (synthesis, wash plans) are session-scoped: the demo
assay is small enough that PDW solves it to optimality in well under a
second, and reusing the plans keeps the suite fast.
"""

from __future__ import annotations

import pytest

from repro.assay import Operation, Reagent, SequencingGraph
from repro.baselines import dawo_plan
from repro.contam import ContaminationTracker
from repro.core import PDWConfig, optimize_washes
from repro.synth import synthesize


@pytest.fixture(scope="session", autouse=True)
def _isolated_artifact_cache(tmp_path_factory):
    """Point the on-disk artifact cache at a throwaway per-session dir.

    Keeps the suite hermetic: tests never read from or write to the
    user's real ``~/.cache/repro-pdw``.
    """
    import os

    old = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("artifact-cache"))
    yield
    if old is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = old


def build_demo_assay() -> SequencingGraph:
    """A 6-op assay exercising mixing, detection and heating."""
    g = SequencingGraph("demo")
    for i, fluid in enumerate(["sample", "enzyme", "dye", "salt"], start=1):
        g.add_reagent(Reagent(f"r{i}", fluid))
    g.add_operation(Operation("o1", "mix"), ["r1", "r2"])
    g.add_operation(Operation("o2", "mix"), ["r3", "r4"])
    g.add_operation(Operation("o3", "detect"), ["o1"])
    g.add_operation(Operation("o4", "heat"), ["o2"])
    g.add_operation(Operation("o5", "mix"), ["o3", "o4"])
    g.add_operation(Operation("o6", "detect"), ["o5"])
    return g


@pytest.fixture
def demo_assay() -> SequencingGraph:
    return build_demo_assay()


@pytest.fixture
def solver_fault(monkeypatch):
    """Arm a solver fault for the duration of one test.

    Usage: ``solver_fault("crash")`` — sets ``REPRO_INJECT_SOLVER_FAULT``
    and rewinds the deterministic flaky stream so tests are reproducible.
    """
    from repro.ilp import faults

    def arm(kind: str, seed: str | None = None):
        monkeypatch.setenv(faults.ENV_FAULT, kind)
        if seed is not None:
            monkeypatch.setenv(faults.ENV_SEED, seed)
        faults.reset()

    yield arm
    faults.reset()


@pytest.fixture
def stage_fault(monkeypatch, tmp_path):
    """Arm a pipeline-wide stage fault for the duration of one test.

    Usage: ``stage_fault("pathgen:crash")`` — sets
    ``REPRO_INJECT_STAGE_FAULT`` and points the chaos counter state at a
    throwaway directory so count-limited faults start fresh per test.
    """
    from repro.pipeline import chaos

    def arm(spec: str):
        monkeypatch.setenv(chaos.ENV_STAGE_FAULT, spec)
        monkeypatch.setenv(chaos.ENV_STATE_DIR, str(tmp_path / "chaos-state"))
        chaos.reset()

    yield arm
    chaos.reset()


@pytest.fixture(scope="session")
def demo_synthesis():
    return synthesize(build_demo_assay())


@pytest.fixture(scope="session")
def demo_tracker(demo_synthesis):
    return ContaminationTracker(demo_synthesis.chip, demo_synthesis.schedule)


@pytest.fixture(scope="session")
def demo_pdw_plan(demo_synthesis):
    return optimize_washes(demo_synthesis, PDWConfig(time_limit_s=30.0))


@pytest.fixture(scope="session")
def demo_dawo_plan(demo_synthesis):
    return dawo_plan(demo_synthesis)
