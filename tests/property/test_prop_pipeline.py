"""Property tests: the full pipeline on randomly generated assays.

These are the library's strongest invariants: for *any* valid assay the
synthesis produces a conflict-free schedule, and both wash optimizers
produce verified (conflict- and contamination-free) plans with PDW never
worse than DAWO on the objective metrics it optimizes.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import dawo_plan
from repro.bench.synthetic import synthetic_assay
from repro.contam import contamination_violations
from repro.core import PDWConfig, optimize_washes
from repro.errors import BenchmarkError
from repro.synth import synthesize

FAST = PDWConfig(time_limit_s=20.0, mip_gap=0.05)


def build(seed, n_ops, slack):
    try:
        return synthetic_assay(f"rand{seed}", n_ops, n_ops + slack, seed)
    except BenchmarkError:
        return None


@given(
    seed=st.integers(min_value=0, max_value=300),
    n_ops=st.integers(min_value=2, max_value=7),
    slack=st.integers(min_value=2, max_value=6),
)
@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_synthesis_schedules_are_conflict_free(seed, n_ops, slack):
    assay = build(seed, n_ops, slack)
    if assay is None:
        return
    result = synthesize(assay)
    result.schedule.validate()
    assert result.schedule.makespan > 0


@given(
    seed=st.integers(min_value=0, max_value=120),
    n_ops=st.integers(min_value=3, max_value=6),
)
@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_both_optimizers_produce_verified_plans(seed, n_ops):
    assay = build(seed, n_ops, 4)
    if assay is None:
        return
    result = synthesize(assay)
    pdw = optimize_washes(result, FAST)   # verify=True raises on violation
    dawo = dawo_plan(result)
    assert contamination_violations(result.chip, pdw.schedule) == []
    assert contamination_violations(result.chip, dawo.schedule) == []
    assert pdw.n_wash <= dawo.n_wash
    # Washes can only delay an assay, never speed it up.
    assert pdw.t_delay >= 0
    assert dawo.t_delay >= 0


@given(
    seed=st.integers(min_value=0, max_value=100),
    n_ops=st.integers(min_value=3, max_value=6),
)
@settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_simulated_execution_is_anomaly_free(seed, n_ops):
    """The discrete-event executor accepts every PDW plan operationally."""
    from repro.sim import SimEventKind, simulate_plan

    assay = build(seed, n_ops, 4)
    if assay is None:
        return
    result = synthesize(assay)
    plan = optimize_washes(result, FAST)
    report = simulate_plan(plan, result)
    assert report.ok, [str(a) for a in report.anomalies]
    assert report.count(SimEventKind.OPERATION_RUN) == assay.operation_count
    assert report.count(SimEventKind.WASH_RUN) == plan.n_wash
