"""Properties of the suite stage DAG and its executor.

The load-bearing guarantee of :mod:`repro.sched` is *determinism*: the
DAG executor must produce byte-identical wash plans to serial execution
for any worker count — the workers only overlap independent work, they
never change a decision.  These tests pin that property for worker
counts 1, 2 and 8 on cold (cache-bypassing) runs, anchored against the
serial ``run_suite`` path, plus the structural invariants of the derived
graph itself.
"""

from __future__ import annotations

import pytest

from repro.core import PDWConfig
from repro.export import canonical_plan_json
from repro.sched.graph import RUN, SHARED, benchmark_nodes, build_graph

SUITE = ["Kinase-act-1", "PCR"]
NODES_PER_BENCHMARK = 11  # synthesis + replay + 5 pdw + 3 dawo + collect


def _canonical_rows(result) -> list:
    """(name, pdw plan bytes, dawo plan bytes) per run, in result order."""
    return [
        (run.name, canonical_plan_json(run.pdw), canonical_plan_json(run.dawo))
        for run in result.runs
    ]


class TestWorkerCountInvariance:
    def test_plans_byte_identical_for_any_worker_count(self):
        """Cold DAG runs at 1, 2 and 8 workers = cold serial, byte for byte."""
        from repro.experiments.runner import run_suite
        from repro.sched.executor import DagExecutor

        cfg = PDWConfig(time_limit_s=61.0)
        serial = run_suite(SUITE, cfg, use_cache=False, workers=1)
        assert serial.ok
        baseline = _canonical_rows(serial)
        assert [name for name, _, _ in baseline] == SUITE

        for workers in (1, 2, 8):
            result = DagExecutor(use_cache=False, workers=workers).run(SUITE, cfg)
            assert result.ok
            rows = _canonical_rows(result)
            # Identically ordered rows *and* byte-identical plan JSON.
            assert rows == baseline, f"workers={workers} diverged from serial"


class TestGraphShape:
    @pytest.mark.parametrize("name", ["PCR", "IVD"])
    def test_derived_edges_are_topological(self, name):
        nodes = benchmark_nodes(name)
        assert len(nodes) == NODES_PER_BENCHMARK
        ids = [node.id for node in nodes]
        assert len(set(ids)) == len(ids)
        seen: set = set()
        for node in nodes:
            assert set(node.deps) <= seen, f"{node.id} depends on a later node"
            seen.add(node.id)

    @pytest.mark.parametrize("name", ["PCR", "IVD"])
    def test_shared_replay_is_a_single_node(self, name):
        nodes = benchmark_nodes(name)
        replays = [n for n in nodes if n.stage == "replay"]
        assert len(replays) == 1
        assert replays[0].method == SHARED
        # Both method chains hang off the shared node.
        consumers = {
            n.method for n in nodes if replays[0].id in n.deps
        }
        assert consumers == {"pdw", "dawo"}

    @pytest.mark.parametrize("name", ["PCR", "IVD"])
    def test_collect_joins_both_plan_chains(self, name):
        nodes = benchmark_nodes(name)
        (collect,) = [n for n in nodes if n.method == RUN]
        assert collect.deps == (f"{name}/dawo/sweepline", f"{name}/pdw/assemble")

    @pytest.mark.parametrize("name", ["PCR", "IVD"])
    def test_priorities_are_critical_path_lengths(self, name):
        nodes = benchmark_nodes(name)
        by_id = {n.id: n for n in nodes}
        for node in nodes:
            for dep in node.deps:
                # A provider's critical path strictly contains its consumer's.
                assert by_id[dep].priority > node.priority

    def test_build_graph_is_deterministic(self):
        a = build_graph(SUITE)
        b = build_graph(SUITE)
        assert a == b
        assert len(a) == NODES_PER_BENCHMARK * len(SUITE)
        # Suite position breaks priority ties deterministically.
        assert [n.bench_index for n in a] == [0] * 11 + [1] * 11
