"""Property tests: degraded planning never routes through dead hardware."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import Router, figure2_chip
from repro.core import PDWConfig, optimize_washes
from repro.export.plan_json import canonical_plan_json
from repro.pipeline.cache import ArtifactCache
from repro.sim.validate import degraded_validation_problems
from repro.synth import synthesize

from tests.conftest import build_demo_assay

CHIP = figure2_chip()
INTERIOR = sorted(CHIP.washable_nodes)
SYNTH = synthesize(build_demo_assay())

nodes = st.sampled_from(INTERIOR)


@given(st.sets(nodes, min_size=1, max_size=4), nodes, nodes)
@settings(max_examples=60, deadline=None)
def test_base_avoid_is_a_hard_ban(banned, a, b):
    if a == b or a in banned or b in banned:
        return
    router = Router(CHIP, base_avoid=banned)
    try:
        path = router.shortest_path(a, b)
    except Exception:
        return  # the ban may disconnect the pair; refusing is correct
    assert not (set(path) & banned)
    assert path[0] == a and path[-1] == b


specs = st.builds(
    lambda c, v, d, s: f"channels={c}:valves={v}:devices={d}:seed={s}",
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=0, max_value=2),
    st.integers(min_value=0, max_value=1),
    st.integers(min_value=0, max_value=4),
)


@given(specs)
@settings(max_examples=10, deadline=None)
def test_degraded_plans_are_validator_clean(spec):
    plan = optimize_washes(SYNTH, PDWConfig(degrade=spec))
    info = plan.degradation
    assert info is not None

    # No wash ever touches a dead node.
    for wash in plan.washes:
        assert not (set(wash.path) & info.dead)

    # The degraded validator (dead from tick -1, coverage gaps waived at
    # exactly the reported uncovered targets) finds nothing to flag.
    problems, _waived = degraded_validation_problems(
        plan,
        SYNTH,
        {node: -1 for node in info.dead},
        set(info.uncovered_targets),
    )
    assert not problems

    # Every required target is either washed or reported uncovered.
    washed = {t for w in plan.washes for t in w.targets}
    assert info.required_targets == len(washed) + len(info.uncovered_targets)


def test_degraded_plan_is_deterministic_across_worker_counts(tmp_path):
    token = "channels=2:valves=1:seed=0"
    rendered = []
    for workers, sub in ((1, "a"), (4, "b")):
        config = PDWConfig(degrade=token, pathgen_workers=workers)
        cache = ArtifactCache(tmp_path / sub)
        plan = optimize_washes(SYNTH, config, cache=cache)
        rendered.append(canonical_plan_json(plan))
    assert rendered[0] == rendered[1]
