"""Property tests: control-layer invariants.

The central theorem: a node-disjoint (conflict-free) set of concurrent
flows is always valve-consistent — no valve is demanded open and closed at
once.  The schedule substrate guarantees node-disjointness, so every valid
schedule must actuate.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.arch import Router, figure2_chip
from repro.arch.control import ControlLayer
from repro.errors import RoutingError
from repro.schedule import Schedule, ScheduledTask, TaskKind

CHIP = figure2_chip()
LAYER = ControlLayer(CHIP)
ROUTER = Router(CHIP)
INTERIOR = sorted(CHIP.washable_nodes)


@st.composite
def random_paths(draw):
    """A handful of routed paths between random endpoint pairs."""
    n = draw(st.integers(min_value=1, max_value=4))
    paths = []
    for _ in range(n):
        a = draw(st.sampled_from(INTERIOR))
        b = draw(st.sampled_from(INTERIOR))
        if a == b:
            continue
        try:
            paths.append(ROUTER.shortest_path(a, b))
        except RoutingError:
            continue
    return paths


@given(random_paths())
@settings(max_examples=80, deadline=None)
def test_path_valve_sets_are_disjoint(paths):
    for path in paths:
        open_v, closed_v = LAYER.path_valves(path)
        assert not (open_v & closed_v)
        # every gated segment of the path is in the open set
        for a, b in zip(path, path[1:]):
            valve = LAYER.valve_on(a, b)
            if valve is not None:
                assert valve in open_v


@given(random_paths())
@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_conflict_free_schedules_always_actuate(paths):
    schedule = Schedule()
    t = 0
    for i, path in enumerate(paths):
        # Serialize all flows: trivially conflict-free.
        schedule.add(
            ScheduledTask(
                id=f"t{i}", kind=TaskKind.TRANSPORT, start=t, duration=2,
                path=path, fluid_type="f",
            )
        )
        t += 2
    assert schedule.conflicts() == []
    table = LAYER.actuation_table(schedule)  # must not raise
    assert table.horizon == t


@given(random_paths())
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_concurrent_node_disjoint_flows_actuate(paths):
    schedule = Schedule()
    used = set()
    kept = 0
    for i, path in enumerate(paths):
        if set(path) & used:
            continue
        used.update(path)
        schedule.add(
            ScheduledTask(
                id=f"t{i}", kind=TaskKind.TRANSPORT, start=0, duration=3,
                path=path, fluid_type="f",
            )
        )
        kept += 1
    assert schedule.conflicts() == []
    LAYER.actuation_table(schedule)  # node-disjoint => valve-consistent


@given(random_paths())
@settings(max_examples=40, deadline=None)
def test_control_port_grouping_partitions_valves(paths):
    schedule = Schedule()
    for i, path in enumerate(paths):
        schedule.add(
            ScheduledTask(
                id=f"t{i}", kind=TaskKind.TRANSPORT, start=3 * i, duration=2,
                path=path, fluid_type="f",
            )
        )
    table = LAYER.actuation_table(schedule)
    groups = table.control_port_groups()
    all_valves = [v for group in groups for v in group]
    assert len(all_valves) == LAYER.valve_count
    assert len(set(all_valves)) == LAYER.valve_count
