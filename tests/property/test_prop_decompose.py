"""Property tests: component decomposition equals the monolithic solve.

Random separable MILPs (disjoint variable blocks, chained rows inside
each block) must split into exactly one component per block, solve to the
monolith's optimum, and produce the same component count no matter which
child-execution path (subprocess or thread fallback) runs them.
"""

from unittest import mock

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ilp import LinExpr, Model, SolveStatus, SolverPortfolio
from repro.ilp import decompose

small_int = st.integers(min_value=-4, max_value=4)


@st.composite
def separable_milp(draw):
    """A model of 2-3 disjoint blocks, each internally chained.

    Chaining (one row per adjacent variable pair) guarantees each block
    is exactly one connected component, so the expected component count
    is known by construction.
    """
    n_blocks = draw(st.integers(min_value=2, max_value=3))
    m = Model("sep", big_m=1000)
    obj_terms = {}
    for b in range(n_blocks):
        n_vars = draw(st.integers(min_value=1, max_value=3))
        vs = []
        for i in range(n_vars):
            kind = draw(st.sampled_from(["int", "bin"]))
            name = f"b{b}v{i}"
            if kind == "bin":
                vs.append(m.add_binary_var(name))
            else:
                vs.append(m.add_integer_var(name, 0, 6))
        # Anchor every variable in a row: a >= row for the block head,
        # then one chaining row per adjacent pair.
        m.add_constr(LinExpr.from_any(vs[0]) >= draw(st.integers(0, 1)))
        for a, c in zip(vs, vs[1:]):
            rhs = draw(st.integers(min_value=1, max_value=8))
            m.add_constr(a + c <= rhs)
        for v in vs:
            coef = draw(small_int)
            if coef:
                obj_terms[v] = float(coef)
    m.set_objective(LinExpr(obj_terms, 0.0), sense="min")
    return m, n_blocks


@given(separable_milp())
@settings(max_examples=15, deadline=None)
def test_decomposed_solve_matches_monolith(case):
    model, n_blocks = case
    att = decompose.try_solve(model, SolverPortfolio(time_limit_s=15.0))
    assert att.components == n_blocks
    assert att.result is not None, att.reason
    sol = att.result.solution
    mono = model.solve(time_limit_s=10)
    assert sol.status is SolveStatus.OPTIMAL
    assert mono.status is SolveStatus.OPTIMAL
    assert sol.objective == pytest.approx(mono.objective, abs=1e-5)
    assert model.check_solution(sol, tol=1e-5) == []
    assert att.result.mode == "decompose"


@given(separable_milp())
@settings(max_examples=6, deadline=None)
def test_component_count_deterministic_across_worker_paths(case):
    """Process children and the daemonic thread fallback agree exactly."""
    model, n_blocks = case
    pf = SolverPortfolio(time_limit_s=15.0)
    via_procs = decompose.try_solve(model, pf)
    with mock.patch.object(decompose, "in_daemon_process", return_value=True):
        via_threads = decompose.try_solve(model, pf)
    assert via_procs.components == via_threads.components == n_blocks
    assert (via_procs.result is None) == (via_threads.result is None)
    if via_procs.result is not None:
        assert via_procs.result.solution.objective == pytest.approx(
            via_threads.result.solution.objective, abs=1e-5
        )
    # And repeated runs on the same path are stable too.
    again = decompose.try_solve(model, pf)
    assert again.components == via_procs.components
