"""Property tests: the synthetic-assay generator and assay invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assay.operations import is_transformative
from repro.bench.synthetic import synthetic_assay
from repro.errors import BenchmarkError


@given(
    n_ops=st.integers(min_value=2, max_value=25),
    slack=st.integers(min_value=1, max_value=30),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=80, deadline=None)
def test_generator_hits_exact_counts(n_ops, slack, seed):
    n_edges = n_ops + slack
    try:
        g = synthetic_assay("prop", n_ops, n_edges, seed)
    except BenchmarkError:
        # Some (size, seed) combinations cannot absorb the edge budget,
        # e.g. all ops ended up pass-through; the generator must say so.
        return
    assert g.operation_count == n_ops
    assert g.edge_count == n_edges
    g.validate()


@given(
    n_ops=st.integers(min_value=2, max_value=20),
    slack=st.integers(min_value=2, max_value=20),
    seed=st.integers(min_value=0, max_value=500),
)
@settings(max_examples=60, deadline=None)
def test_generated_assays_are_dags_with_consumed_reagents(n_ops, slack, seed):
    try:
        g = synthetic_assay("prop", n_ops, n_ops + slack, seed)
    except BenchmarkError:
        return
    assert g.issues() == []
    for reagent in g.reagents:
        assert g.consumers_of(reagent.id)


@given(
    n_ops=st.integers(min_value=2, max_value=15),
    slack=st.integers(min_value=2, max_value=15),
    seed=st.integers(min_value=0, max_value=500),
)
@settings(max_examples=50, deadline=None)
def test_fluid_types_defined_for_all_nodes(n_ops, slack, seed):
    try:
        g = synthetic_assay("prop", n_ops, n_ops + slack, seed)
    except BenchmarkError:
        return
    types = g.fluid_types()
    for op in g.operations:
        assert op.id in types
        if not is_transformative(op.op_type):
            assert types[op.id] == types[g.inputs_of(op.id)[0]]


@given(seed=st.integers(min_value=0, max_value=2_000))
@settings(max_examples=40, deadline=None)
def test_pass_through_ops_have_single_input(seed):
    try:
        g = synthetic_assay("prop", 12, 22, seed)
    except BenchmarkError:
        return
    for op in g.operations:
        if not is_transformative(op.op_type):
            assert len(g.inputs_of(op.id)) == 1
