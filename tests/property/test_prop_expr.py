"""Property tests: linear-expression algebra is a vector space."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ilp import LinExpr, Model

coeffs = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


def make_exprs(coef_lists):
    """Build expressions over a shared variable pool."""
    m = Model("prop")
    n = max((len(c) for c in coef_lists), default=0)
    vs = [m.add_continuous_var(f"v{i}") for i in range(n)]
    out = []
    for coefs in coef_lists:
        expr = LinExpr()
        for v, c in zip(vs, coefs):
            expr = expr + c * v
        out.append(expr)
    return out


def assert_equal_expr(a: LinExpr, b: LinExpr, tol=1e-6):
    diff = (a - b).simplified(tol)
    assert diff.terms == {}, (a, b)
    assert abs(diff.constant) <= tol


@given(st.lists(coeffs, min_size=1, max_size=6), st.lists(coeffs, min_size=1, max_size=6))
@settings(max_examples=100)
def test_addition_commutes(ca, cb):
    a, b = make_exprs([ca, cb])
    assert_equal_expr(a + b, b + a)


@given(
    st.lists(coeffs, min_size=1, max_size=5),
    st.lists(coeffs, min_size=1, max_size=5),
    st.lists(coeffs, min_size=1, max_size=5),
)
@settings(max_examples=60)
def test_addition_associates(ca, cb, cc):
    a, b, c = make_exprs([ca, cb, cc])
    assert_equal_expr((a + b) + c, a + (b + c))


@given(st.lists(coeffs, min_size=1, max_size=6), coeffs, coeffs)
@settings(max_examples=100)
def test_scalar_distributes(ca, s, t):
    (a,) = make_exprs([ca])
    assert_equal_expr((s + t) * a, s * a + t * a, tol=1e-4 * (1 + abs(s) + abs(t)))


@given(st.lists(coeffs, min_size=1, max_size=6))
@settings(max_examples=100)
def test_subtraction_is_additive_inverse(ca):
    (a,) = make_exprs([ca])
    assert_equal_expr(a - a, LinExpr())


@given(st.lists(coeffs, min_size=1, max_size=6), coeffs)
@settings(max_examples=100)
def test_negation_is_scaling_by_minus_one(ca, k):
    (a,) = make_exprs([ca])
    assert_equal_expr(-(a + k), (-1.0) * a - k)
