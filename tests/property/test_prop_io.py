"""Property tests: serialization round-trips on randomly generated artifacts."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.device import Device, DeviceKind
from repro.arch.io import chip_from_json, chip_to_json
from repro.assay import graph_from_json, graph_to_json
from repro.assay.dsl import format_assay, parse_assay
from repro.bench.synthetic import synthetic_assay
from repro.errors import BenchmarkError
from repro.synth.layout import ArchSpec, generate_layout


def random_graph(seed, n_ops, slack):
    try:
        return synthetic_assay(f"g{seed}", n_ops, n_ops + slack, seed)
    except BenchmarkError:
        return None


@given(
    seed=st.integers(min_value=0, max_value=500),
    n_ops=st.integers(min_value=2, max_value=12),
    slack=st.integers(min_value=2, max_value=10),
)
@settings(max_examples=40, deadline=None)
def test_assay_json_round_trip(seed, n_ops, slack):
    graph = random_graph(seed, n_ops, slack)
    if graph is None:
        return
    restored = graph_from_json(graph_to_json(graph))
    assert restored.operation_count == graph.operation_count
    assert restored.edge_count == graph.edge_count
    assert restored.fluid_types() == graph.fluid_types()


@given(
    seed=st.integers(min_value=0, max_value=500),
    n_ops=st.integers(min_value=2, max_value=12),
    slack=st.integers(min_value=2, max_value=10),
)
@settings(max_examples=40, deadline=None)
def test_assay_dsl_round_trip(seed, n_ops, slack):
    graph = random_graph(seed, n_ops, slack)
    if graph is None:
        return
    restored = parse_assay(format_assay(graph))
    assert restored.operation_count == graph.operation_count
    assert sorted(r.id for r in restored.reagents) == sorted(
        r.id for r in graph.reagents
    )
    for op in graph.operations:
        assert restored.inputs_of(op.id) == graph.inputs_of(op.id)


@given(
    n_devices=st.integers(min_value=1, max_value=10),
    flow_ports=st.integers(min_value=1, max_value=5),
    waste_ports=st.integers(min_value=1, max_value=5),
)
@settings(max_examples=30, deadline=None)
def test_chip_json_round_trip(n_devices, flow_ports, waste_ports):
    devices = [Device(f"mixer{i}", DeviceKind.MIXER) for i in range(1, n_devices + 1)]
    chip = generate_layout(devices, ArchSpec(flow_ports, waste_ports))
    restored = chip_from_json(chip_to_json(chip))
    assert restored.stats() == chip.stats()
    assert sorted(restored.graph.nodes) == sorted(chip.graph.nodes)
    assert restored.flow_ports == chip.flow_ports
    for a, b in chip.graph.edges:
        assert restored.edge_length_mm(a, b) == chip.edge_length_mm(a, b)
