"""Property tests: routing invariants on the Fig. 2 chip."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import Router, figure2_chip
from repro.arch.routing import is_simple

CHIP = figure2_chip()
ROUTER = Router(CHIP)
INTERIOR = sorted(CHIP.washable_nodes)
PORTS = CHIP.flow_ports + CHIP.waste_ports

nodes = st.sampled_from(INTERIOR)


@given(nodes, nodes)
@settings(max_examples=100, deadline=None)
def test_shortest_path_endpoints_and_simplicity(a, b):
    if a == b:
        return
    path = ROUTER.shortest_path(a, b)
    assert path[0] == a and path[-1] == b
    assert is_simple(path)
    CHIP.check_path(path)


@given(nodes, nodes)
@settings(max_examples=100, deadline=None)
def test_shortest_path_is_symmetric_in_length(a, b):
    if a == b:
        return
    assert ROUTER.distance_mm(a, b) == pytest.approx(ROUTER.distance_mm(b, a))


@given(nodes, nodes)
@settings(max_examples=100, deadline=None)
def test_no_port_transit(a, b):
    if a == b:
        return
    path = ROUTER.shortest_path(a, b)
    assert not (set(path[1:-1]) & set(PORTS))


@given(st.lists(nodes, min_size=1, max_size=4, unique=True))
@settings(max_examples=60, deadline=None)
def test_path_through_covers_and_terminates_at_ports(targets):
    try:
        path = ROUTER.path_through("in1", targets, "out3")
    except Exception:
        return  # some target sets are not reachable from this port pair
    assert set(targets) <= set(path)
    assert path[0] == "in1" and path[-1] == "out3"
    CHIP.check_path(path)


@given(st.lists(nodes, min_size=1, max_size=3, unique=True))
@settings(max_examples=60, deadline=None)
def test_port_to_port_candidates_valid(targets):
    from repro.errors import RoutingError

    try:
        candidates = ROUTER.port_to_port_candidates(targets, max_candidates=4)
    except RoutingError:
        return
    for path in candidates:
        assert path[0] in CHIP.flow_ports
        assert path[-1] in CHIP.waste_ports
        assert set(targets) <= set(path)
        CHIP.check_path(path)
