"""Property tests: the presolve reduction layer is invisible in results.

The reduced model must reach the same optimal objective as the raw one
and its schedules must satisfy the same contamination-window semantics —
on randomized micro-instances, not just the shipped benchmarks.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import ChipBuilder, DeviceKind
from repro.contam.events import WashRequirement
from repro.core.config import PDWConfig
from repro.core.schedule_ilp import WashScheduleIlp
from repro.core.targets import WashCluster
from repro.ilp import SolveStatus
from repro.schedule import Schedule, ScheduledTask, TaskKind


def _chip():
    builder = ChipBuilder("micro")
    builder.add_flow_port("in1").add_flow_port("in2")
    builder.add_waste_port("out1")
    builder.add_device("mixer", DeviceKind.MIXER)
    builder.add_junctions("a", "b", "c")
    builder.connect("in1", "a", "b", "out1")
    builder.connect("in2", "c", "b")
    builder.add_channel("a", "mixer")
    return builder.build()


CHIP = _chip()

PATHS = (
    ("in1", "a", "b", "out1"),
    ("in2", "c", "b", "a", "b", "out1"),
    ("in1", "a", "b", "c", "b", "out1"),
)


@st.composite
def random_instance(draw):
    """A randomized single-node wash micro-instance.

    The baseline chain (transport -> removal -> op, then a later blocking
    transport) is the smallest shape that exercises every presolve rule:
    precedence bound propagation, window-disjoint binary fixing, big-M
    tightening and candidate domination.
    """
    d_tr = draw(st.integers(min_value=1, max_value=4))
    d_rm = draw(st.integers(min_value=1, max_value=4))
    d_op = draw(st.integers(min_value=1, max_value=5))
    gap = draw(st.integers(min_value=0, max_value=12))
    t0 = d_tr
    t1 = t0 + d_rm
    t2 = t1 + d_op + gap
    baseline = Schedule([
        ScheduledTask(
            id="tr:r1->o1", kind=TaskKind.TRANSPORT, start=0, duration=d_tr,
            path=("in1", "a", "mixer"), edge=("r1", "o1"), fluid_type="dye",
        ),
        ScheduledTask(
            id="rm:r1->o1", kind=TaskKind.REMOVAL, start=t0, duration=d_rm,
            path=("in1", "a", "b", "out1"), edge=("r1", "o1"),
            fluid_type="dye",
        ),
        ScheduledTask(
            id="op:o1", kind=TaskKind.OPERATION, start=t1, duration=d_op,
            device="mixer", op_id="o1", fluid_type="mix-out",
        ),
        ScheduledTask(
            id="tr:r2->o2", kind=TaskKind.TRANSPORT, start=t2, duration=2,
            path=("in2", "c", "b"), edge=("r2", "o2"), fluid_type="ink",
        ),
    ])
    clusters = [
        WashCluster("w1", [
            WashRequirement(
                node="a", fluid_type="dye", contaminated_at=t1, deadline=t2,
                source_task="rm:r1->o1", blocking_task="tr:r2->o2",
            )
        ])
    ]
    n_cands = draw(st.integers(min_value=1, max_value=len(PATHS)))
    candidates = {"w1": list(draw(st.permutations(PATHS))[:n_cands])}
    config = PDWConfig(
        alpha=draw(st.sampled_from([0.1, 0.3, 1.0])),
        beta=draw(st.sampled_from([0.1, 0.3])),
        gamma=draw(st.sampled_from([0.1, 0.4])),
        time_limit_s=20.0,
        enable_integration=draw(st.booleans()),
    )
    return baseline, clusters, candidates, config


def _solve(presolve, baseline, clusters, candidates, config):
    import dataclasses

    cfg = dataclasses.replace(config, presolve=presolve)
    ilp = WashScheduleIlp(CHIP, baseline, clusters, candidates, cfg)
    return ilp, ilp.solve()


def _check_schedule(baseline, clusters, outcome):
    """The contamination-window semantics every valid schedule obeys."""
    durations = {t.id: t.duration for t in baseline.tasks()}
    absorbed = set(outcome.absorbed)
    for cl in clusters:
        ws = outcome.wash_starts[cl.id]
        we = ws + outcome.wash_durations[cl.id]
        for req in cl.requirements:
            if req.source_task not in absorbed:
                assert ws >= outcome.starts[req.source_task] + durations[req.source_task]
            assert we <= outcome.starts[req.blocking_task]
    # Baseline precedence: removal after its transport, op after removal
    # (an absorbed removal's timing folds into the wash instead).
    s = outcome.starts
    if "rm:r1->o1" not in absorbed:
        assert s["rm:r1->o1"] >= s["tr:r1->o1"] + durations["tr:r1->o1"]
        assert s["op:o1"] >= s["rm:r1->o1"] + durations["rm:r1->o1"]


@given(random_instance())
@settings(max_examples=25, deadline=None)
def test_presolve_preserves_objective_and_validity(instance):
    baseline, clusters, candidates, config = instance
    on_ilp, on = _solve("on", baseline, clusters, candidates, config)
    off_ilp, off = _solve("off", baseline, clusters, candidates, config)
    assert on.status is SolveStatus.OPTIMAL
    assert off.status is SolveStatus.OPTIMAL
    assert on.objective == pytest.approx(off.objective, abs=1e-5)
    _check_schedule(baseline, clusters, on)
    _check_schedule(baseline, clusters, off)
    # The reduction only ever removes: never more rows/binaries than raw.
    assert on.n_constraints <= off.n_constraints
    assert on.n_binaries <= off.n_binaries


@given(random_instance())
@settings(max_examples=10, deadline=None)
def test_presolved_plans_match_raw_plans(instance):
    """With the drift tie-break, reduced and raw models agree exactly."""
    baseline, clusters, candidates, config = instance
    _, on = _solve("on", baseline, clusters, candidates, config)
    _, off = _solve("off", baseline, clusters, candidates, config)
    assert on.starts == off.starts
    assert on.wash_starts == off.wash_starts
    assert on.wash_paths == off.wash_paths
    assert on.absorbed == off.absorbed
