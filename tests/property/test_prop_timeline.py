"""Property tests: timeline occupancy invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schedule import Timeline, intervals_overlap

occupation = st.tuples(
    st.sampled_from(["a", "b", "c"]),          # node
    st.integers(min_value=0, max_value=50),    # start
    st.integers(min_value=1, max_value=10),    # duration
)


@given(st.lists(occupation, max_size=20), st.integers(0, 60), st.integers(1, 8))
@settings(max_examples=150)
def test_earliest_fit_is_free_and_minimal(occupations, ready, duration):
    tl = Timeline()
    for node, start, dur in occupations:
        tl.occupy([node], start, dur)
    nodes = ["a", "b"]
    t = tl.earliest_fit(nodes, ready, duration)
    assert t >= ready
    assert tl.is_free(nodes, t, duration)
    # minimality: no earlier feasible start in [ready, t)
    for earlier in range(ready, t):
        assert not tl.is_free(nodes, earlier, duration)


@given(st.lists(occupation, max_size=20))
@settings(max_examples=100)
def test_busy_intervals_sorted(occupations):
    tl = Timeline()
    for node, start, dur in occupations:
        tl.occupy([node], start, dur)
    for node in ("a", "b", "c"):
        intervals = tl.busy_intervals(node)
        assert intervals == sorted(intervals)


@given(
    st.tuples(st.integers(0, 30), st.integers(1, 10)),
    st.tuples(st.integers(0, 30), st.integers(1, 10)),
)
@settings(max_examples=150)
def test_interval_overlap_symmetric(a, b):
    ia = (a[0], a[0] + a[1])
    ib = (b[0], b[0] + b[1])
    assert intervals_overlap(ia, ib) == intervals_overlap(ib, ia)


@given(st.lists(occupation, max_size=15), st.integers(0, 40), st.integers(1, 6))
@settings(max_examples=100)
def test_occupying_the_found_slot_never_conflicts(occupations, ready, duration):
    tl = Timeline()
    placed = []
    for node, start, dur in occupations:
        tl.occupy([node], start, dur)
        placed.append((node, start, start + dur))
    t = tl.earliest_fit(["a", "c"], ready, duration)
    window = (t, t + duration)
    for node, s, e in placed:
        if node in ("a", "c"):
            assert not intervals_overlap(window, (s, e))
