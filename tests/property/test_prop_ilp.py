"""Property tests: the two MILP backends agree on random small models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LadderExhausted
from repro.ilp import BranchAndBoundSolver, LinExpr, Model, SolveStatus

small_int = st.integers(min_value=-5, max_value=5)


@st.composite
def random_milp(draw):
    """A small random MILP with bounded integer variables."""
    n_vars = draw(st.integers(min_value=1, max_value=4))
    n_cons = draw(st.integers(min_value=1, max_value=5))
    m = Model("rand", big_m=1000)
    vs = []
    for i in range(n_vars):
        kind = draw(st.sampled_from(["int", "bin", "cont"]))
        if kind == "bin":
            vs.append(m.add_binary_var(f"v{i}"))
        elif kind == "int":
            vs.append(m.add_integer_var(f"v{i}", 0, 8))
        else:
            vs.append(m.add_continuous_var(f"v{i}", 0, 8))
    for _ in range(n_cons):
        coefs = [draw(small_int) for _ in vs]
        rhs = draw(st.integers(min_value=0, max_value=30))
        expr = LinExpr.sum(c * v for c, v in zip(coefs, vs))
        sense = draw(st.sampled_from(["<=", ">="]))
        m.add_constr(expr <= rhs if sense == "<=" else expr >= -rhs)
    obj = LinExpr.sum(draw(small_int) * v for v in vs)
    m.set_objective(obj, sense=draw(st.sampled_from(["min", "max"])))
    return m


@given(random_milp())
@settings(max_examples=40, deadline=None)
def test_highs_and_branch_bound_agree(model):
    highs = model.solve(time_limit_s=10)
    bb = BranchAndBoundSolver(time_limit_s=20)(model)
    assert (highs.status is SolveStatus.INFEASIBLE) == (
        bb.status is SolveStatus.INFEASIBLE
    )
    if highs.status is SolveStatus.OPTIMAL and bb.status is SolveStatus.OPTIMAL:
        assert highs.objective == pytest.approx(bb.objective, abs=1e-5)


@given(random_milp())
@settings(max_examples=40, deadline=None)
def test_solutions_satisfy_all_constraints(model):
    sol = model.solve(time_limit_s=10)
    if sol.status.has_solution:
        assert model.check_solution(sol) == []
        for var in model.variables:
            value = sol.values[var]
            assert var.lb - 1e-6 <= value <= var.ub + 1e-6
            if var.is_integral:
                assert value == int(value)


@given(random_milp())
@settings(max_examples=8, deadline=None)
def test_race_is_deterministic_and_agrees_with_ladder(model):
    """Racing the rungs twice picks the same winner and a valid solution.

    The grace window is generous (1s) relative to these toy solves, so
    the higher-priority rung always gets its chance and the selection
    rule — not OS scheduling — decides the winner.
    """
    from repro.ilp import SolverPortfolio

    first = None
    try:
        first = SolverPortfolio(
            time_limit_s=15.0, mode="race", race_grace_s=1.0
        ).solve(model)
    except LadderExhausted:
        pass
    second = None
    try:
        second = SolverPortfolio(
            time_limit_s=15.0, mode="race", race_grace_s=1.0
        ).solve(model)
    except LadderExhausted:
        pass
    assert (first is None) == (second is None)
    if first is None:
        return
    assert first.rung == second.rung
    if first.solution.status.has_solution:
        assert model.check_solution(first.solution) == []
        ladder = SolverPortfolio(time_limit_s=15.0).solve(model)
        if (
            first.solution.status is SolveStatus.OPTIMAL
            and ladder.solution.status is SolveStatus.OPTIMAL
        ):
            assert first.solution.objective == pytest.approx(
                ladder.solution.objective, abs=1e-5
            )
