"""Property tests: Schedule container invariants over random task sets."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schedule import Schedule, ScheduledTask, TaskKind

NODES = ["a", "b", "c", "d", "e"]


@st.composite
def random_flow_task(draw, index):
    start = draw(st.integers(min_value=0, max_value=30))
    duration = draw(st.integers(min_value=1, max_value=6))
    size = draw(st.integers(min_value=2, max_value=4))
    path = tuple(draw(st.permutations(NODES))[:size])
    kind = draw(st.sampled_from([TaskKind.TRANSPORT, TaskKind.REMOVAL, TaskKind.WASTE]))
    return ScheduledTask(
        id=f"t{index}", kind=kind, start=start, duration=duration,
        path=path, fluid_type="f",
    )


@st.composite
def random_schedule(draw):
    n = draw(st.integers(min_value=0, max_value=10))
    return Schedule([draw(random_flow_task(i)) for i in range(n)])


@given(random_schedule())
@settings(max_examples=120)
def test_conflicts_match_pairwise_definition(schedule):
    tasks = list(schedule)
    reported = set(schedule.conflicts())
    expected = set()
    for i, a in enumerate(tasks):
        for b in tasks[i + 1:]:
            if a.conflicts_with(b):
                expected.add(tuple(sorted((a.id, b.id))))
    assert {tuple(sorted(p)) for p in reported} == expected


@given(random_schedule())
@settings(max_examples=100)
def test_tasks_sorted_and_makespan_is_max_end(schedule):
    ordered = schedule.tasks()
    assert [t.start for t in ordered] == sorted(t.start for t in ordered)
    assert schedule.makespan == max((t.end for t in ordered), default=0)


@given(random_schedule(), st.integers(min_value=0, max_value=20))
@settings(max_examples=80)
def test_uniform_shift_preserves_conflicts(schedule, delta):
    shifted = schedule.mapped(lambda t: t.shifted(delta))
    def norm(pairs):
        return {tuple(sorted(p)) for p in pairs}
    assert norm(shifted.conflicts()) == norm(schedule.conflicts())


@given(random_schedule())
@settings(max_examples=80)
def test_copy_equivalence(schedule):
    clone = schedule.copy()
    assert len(clone) == len(schedule)
    for task in schedule:
        assert clone.get(task.id) is task
