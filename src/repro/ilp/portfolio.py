"""Budgeted degradation ladder over the ILP backends.

The paper's results are best-effort solves under a global 15-minute cap;
this module makes a single solve equally best-effort at the backend level.
A :class:`SolverPortfolio` runs the ladder

1. ``highs`` — the primary HiGHS backend with a slice of the budget,
2. ``highs-relaxed`` — one retry with a relaxed MIP gap and presolve
   disabled (the cheap knobs that rescue numerically unhappy models),
3. ``branch_bound`` — the pure-Python
   :class:`~repro.ilp.branch_bound.BranchAndBoundSolver` on the remaining
   budget,

stopping at the first rung that produces a usable incumbent.  A *proven*
``INFEASIBLE``/``UNBOUNDED`` outcome stops the ladder immediately — lower
rungs cannot fix a broken model, only a broken backend.  When every rung
fails, :class:`~repro.errors.LadderExhausted` carries the per-rung
:class:`RungAttempt` records so the caller (the PDW scheduling stage) can
fall back to greedy plan assembly and still report what was tried.

Fault injection (:mod:`repro.ilp.faults`) hooks the HiGHS rungs, making
every path through the ladder deterministically testable.

Under ``mode="race"`` (``PDWConfig.solver_mode`` / ``--solver-mode`` /
``REPRO_SOLVER_MODE``) the same rungs run *concurrently* instead, each
with the full budget, and the first acceptable incumbent wins under the
deterministic grace-window rule of :mod:`repro.ilp.race`; the serial
ladder remains the default so existing plans stay byte-identical.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import LadderExhausted, SolverError
from repro.ilp import faults
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.ilp.branch_bound import BranchAndBoundSolver
from repro.ilp.model import Model
from repro.ilp.solution import Solution, SolveStatus
from repro.ilp.solver import HighsOptions, solve as highs_solve


@dataclass(frozen=True)
class RungAttempt:
    """Structured record of one ladder rung attempt.

    Plain data (strings and floats) so it pickles into the artifact cache
    and flattens into :class:`~repro.pipeline.RunReport` counters.
    """

    rung: str
    status: str
    wall_s: float
    mip_gap: Optional[float] = None
    objective: Optional[float] = None
    message: str = ""

    @property
    def succeeded(self) -> bool:
        """Whether this attempt produced a usable incumbent."""
        return self.status in (SolveStatus.OPTIMAL.value, SolveStatus.FEASIBLE.value)


@dataclass
class PortfolioResult:
    """The winning solution plus the full attempt history."""

    solution: Solution
    rung: str
    attempts: Tuple[RungAttempt, ...] = ()
    #: How the portfolio executed: ``"ladder"`` (serial) or ``"race"``.
    mode: str = "ladder"
    #: Wall-clock of the whole race (0.0 for ladder runs).
    race_wall_s: float = 0.0


def _publish_attempt(attempt: RungAttempt) -> None:
    """Emit one ladder-rung attempt into the central metrics registry."""
    reg = obs_metrics.registry()
    reg.counter(
        "pdw_solver_rung_attempts_total", rung=attempt.rung, status=attempt.status
    ).inc()
    reg.histogram("pdw_solver_rung_wall_seconds", rung=attempt.rung).observe(
        attempt.wall_s
    )


class SolverPortfolio:
    """Run the degradation ladder against one model under a time budget.

    Parameters
    ----------
    time_limit_s:
        Global wall-clock budget shared by all rungs.  The first HiGHS
        attempt gets :data:`PRIMARY_SHARE` of it, the relaxed retry half
        of the remainder, branch-and-bound everything left.  Each rung's
        share is floored at ``min_rung_budget_s`` but clamped to the time
        actually remaining on the global deadline; once the deadline is
        exhausted the ladder stops (the first rung is always granted the
        floor, so a tiny budget still gets one genuine attempt).
    mip_gap:
        Relative gap for the primary rung; the retry relaxes it.
    force:
        Pin the ladder to one rung (``highs`` | ``branch_bound`` |
        ``greedy``).  ``None`` consults ``REPRO_FORCE_SOLVER``; ``greedy``
        skips every backend and raises :class:`LadderExhausted` so the
        caller's last-resort assembly takes over.
    mode:
        ``"ladder"`` (default) walks the rungs serially with sliced
        budgets; ``"race"`` runs them concurrently in subprocesses via
        :mod:`repro.ilp.race`, each with the full budget, and takes the
        first acceptable incumbent under the deterministic grace-window
        rule.  ``None`` consults ``REPRO_SOLVER_MODE``.  A forced single
        rung has nothing to race, so ``force`` implies ladder execution.
    race_grace_s:
        The fixed grace window: once the first acceptable incumbent
        arrives, higher-priority rungs get this long to beat it.
    incumbent:
        Optional warm-start solution (from an earlier structurally
        identical solve).  HiGHS via ``scipy.optimize.milp`` cannot
        accept a starting point, so healthy primary-rung outputs stay
        byte-identical; the branch-and-bound rung is primed with it to
        prune from the first node.
    """

    #: Fraction of the budget granted to the primary HiGHS attempt.
    PRIMARY_SHARE = 0.5
    #: Relaxed-gap floor used by the retry rung.
    RELAXED_GAP = 0.05
    #: Default grace window of the race's selection rule (seconds).
    RACE_GRACE_S = 0.25

    def __init__(
        self,
        time_limit_s: float = 60.0,
        mip_gap: Optional[float] = None,
        force: Optional[str] = None,
        bb_max_nodes: int = 200_000,
        min_rung_budget_s: float = 1.0,
        mode: Optional[str] = None,
        race_grace_s: float = RACE_GRACE_S,
        incumbent: Optional[Solution] = None,
    ):
        if time_limit_s <= 0:
            raise SolverError("portfolio time budget must be positive")
        self.time_limit_s = float(time_limit_s)
        self.mip_gap = mip_gap
        self.force = force if force is not None else faults.forced_solver()
        if self.force is not None and self.force not in faults.FORCE_CHOICES:
            raise SolverError(
                f"unknown forced solver {self.force!r}; expected one of "
                f"{faults.FORCE_CHOICES}"
            )
        self.mode = mode if mode is not None else faults.resolve_solver_mode()
        if self.mode not in faults.MODE_CHOICES:
            raise SolverError(
                f"unknown solver mode {self.mode!r}; expected one of "
                f"{faults.MODE_CHOICES}"
            )
        self.race_grace_s = float(race_grace_s)
        self.bb_max_nodes = bb_max_nodes
        self.min_rung_budget_s = min_rung_budget_s
        self.incumbent = incumbent

    @classmethod
    def from_config(cls, config, incumbent: Optional[Solution] = None) -> "SolverPortfolio":
        """Build a portfolio from a :class:`~repro.core.config.PDWConfig`."""
        solver = getattr(config, "solver", "auto")
        return cls(
            time_limit_s=config.time_limit_s,
            mip_gap=config.mip_gap,
            force=None if solver == "auto" else solver,
            mode=faults.resolve_solver_mode(getattr(config, "solver_mode", "ladder")),
            incumbent=incumbent,
        )

    # -- ladder ------------------------------------------------------------------

    def _rungs(self) -> Sequence[Tuple[str, Callable[[Model, float], Solution]]]:
        highs = ("highs", self._run_highs)
        relaxed = ("highs-relaxed", self._run_highs_relaxed)
        branch = ("branch_bound", self._run_branch_bound)
        if self.force == "highs":
            return (highs, relaxed)
        if self.force == "branch_bound":
            return (branch,)
        if self.force == "greedy":
            return ()
        return (highs, relaxed, branch)

    def _run_highs(self, model: Model, budget_s: float) -> Solution:
        opts = HighsOptions(time_limit_s=budget_s, mip_gap=self.mip_gap)
        return highs_solve(model, options=opts)

    def _run_highs_relaxed(self, model: Model, budget_s: float) -> Solution:
        gap = max(self.RELAXED_GAP, 5.0 * (self.mip_gap or 0.01))
        opts = HighsOptions(time_limit_s=budget_s, mip_gap=gap, presolve=False)
        return highs_solve(model, options=opts)

    def _run_branch_bound(self, model: Model, budget_s: float) -> Solution:
        solver = BranchAndBoundSolver(
            time_limit_s=budget_s, max_nodes=self.bb_max_nodes
        )
        return solver.solve(model, incumbent=self.incumbent)

    def _slice(self, rung: str, deadline: float) -> float:
        """Wall-clock slice granted to one rung.

        Shares are floored at ``min_rung_budget_s`` so late rungs get a
        real shot, but never above the time actually left on the global
        deadline — a rung that overran its slice (HiGHS's time limit is
        soft) eats into the followers instead of extending the budget.
        Returns ``0.0`` once the deadline has passed.
        """
        remaining = deadline - time.perf_counter()
        if remaining <= 0.0:
            return 0.0
        share = remaining
        if rung == "highs":
            share *= self.PRIMARY_SHARE
        elif rung == "highs-relaxed":
            share *= 0.5
        return min(remaining, max(self.min_rung_budget_s, share))

    def solve(self, model: Model) -> PortfolioResult:
        """Solve via the configured mode (serial ladder or concurrent race).

        Raises :class:`LadderExhausted` (carrying the attempt records)
        when no rung produces a usable solution.  A forced rung always
        executes as a (single-rung) ladder — there is nothing to race.
        """
        if self.mode == "race" and self.force is None:
            return self._solve_race(model)
        return self._solve_ladder(model)

    def _solve_race(self, model: Model) -> PortfolioResult:
        from repro.ilp.race import run_race

        started = time.perf_counter()
        rungs = [rung for rung, _ in self._rungs()]
        solution, winner, attempts = run_race(
            model,
            rungs,
            time_limit_s=self.time_limit_s,
            grace_s=self.race_grace_s,
            mip_gap=self.mip_gap,
            relaxed_gap=self.RELAXED_GAP,
            bb_max_nodes=self.bb_max_nodes,
        )
        return PortfolioResult(
            solution,
            winner,
            attempts,
            mode="race",
            race_wall_s=time.perf_counter() - started,
        )

    def _solve_ladder(self, model: Model) -> PortfolioResult:
        """Walk the ladder until a rung yields a usable solution."""
        deadline = time.perf_counter() + self.time_limit_s
        attempts: List[RungAttempt] = []
        for rung, runner in self._rungs():
            started = time.perf_counter()
            budget = self._slice(rung, deadline)
            if budget <= 0.0:
                # Deadline exhausted (an earlier rung overran its soft
                # limit).  The first rung is always granted the floor so
                # a tiny budget still produces one genuine attempt.
                if attempts:
                    break
                budget = self.min_rung_budget_s
            with span(f"ilp.rung.{rung}", budget_s=round(budget, 3)) as sp:
                try:
                    solution = faults.maybe_inject(rung)
                    if solution is None:
                        solution = runner(model, budget)
                except SolverError as exc:
                    attempt = RungAttempt(
                        rung=rung,
                        status=SolveStatus.ERROR.value,
                        wall_s=time.perf_counter() - started,
                        message=str(exc),
                    )
                    attempts.append(attempt)
                    sp.set("status", attempt.status)
                    _publish_attempt(attempt)
                    continue
                attempt = RungAttempt(
                    rung=rung,
                    status=solution.status.value,
                    wall_s=time.perf_counter() - started,
                    mip_gap=solution.mip_gap,
                    objective=solution.objective,
                    message=solution.message,
                )
                attempts.append(attempt)
                sp.set("status", attempt.status)
                _publish_attempt(attempt)
            if solution.status in (SolveStatus.INFEASIBLE, SolveStatus.UNBOUNDED):
                # Proven: lower rungs cannot change a broken model.
                return PortfolioResult(solution, rung, tuple(attempts))
            if solution.status.has_solution:
                return PortfolioResult(solution, rung, tuple(attempts))
        raise LadderExhausted(
            "every solver rung failed"
            if attempts
            else "solver ladder empty (forced to greedy)",
            attempts=attempts,
        )
