"""A pure-Python branch-and-bound MILP solver.

This is the fallback/teaching backend: LP relaxations are solved with
``scipy.optimize.linprog`` (HiGHS simplex) and integrality is enforced by
branching on the most fractional variable.  It is exact but much slower than
:func:`repro.ilp.solver.solve`; the test suite uses it to cross-check the
primary backend on small models, and it keeps the library functional on
SciPy builds without ``milp``.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.ilp.model import Model
from repro.ilp.solution import Solution, SolveStatus

#: Tolerance under which a relaxation value counts as integral.
_INT_TOL = 1e-6


@dataclass(order=True)
class _Node:
    """A branch-and-bound node ordered by its relaxation bound."""

    bound: float
    counter: int
    lower: np.ndarray = None  # type: ignore[assignment]
    upper: np.ndarray = None  # type: ignore[assignment]


class BranchAndBoundSolver:
    """Best-first branch-and-bound over LP relaxations.

    Parameters
    ----------
    time_limit_s:
        Wall-clock budget; on expiry the best incumbent (if any) is
        returned with :attr:`SolveStatus.FEASIBLE`.
    max_nodes:
        Hard cap on explored nodes, as a runaway guard.
    """

    def __init__(self, time_limit_s: float = 60.0, max_nodes: int = 200_000):
        self.time_limit_s = time_limit_s
        self.max_nodes = max_nodes

    # -- public API -------------------------------------------------------

    def __call__(self, model: Model) -> Solution:
        return self.solve(model)

    def solve(self, model: Model, incumbent: Optional[Solution] = None) -> Solution:
        """Solve ``model`` to optimality (or best effort within limits).

        ``incumbent`` optionally warm-starts the search: a known-feasible
        solution of the *same* model (e.g. from an earlier solve that
        differed only in objective weights) becomes the initial best, so
        every node whose relaxation bound cannot beat it is pruned from
        the first pop.  An incumbent that does not cover every variable
        is ignored — feasibility is the caller's contract (see
        :func:`repro.ilp.incremental.adopt_incumbent`, which verifies it
        against the constraints before passing it here).
        """
        started = time.perf_counter()
        n = len(model.variables)
        if n == 0:
            return Solution(SolveStatus.OPTIMAL, model.objective.constant, {})

        c, a_ub, b_ub, a_eq, b_eq = self._standard_form(model)
        sign = -1.0 if model.objective_sense == "max" else 1.0
        c = sign * c

        integral = np.array([v.is_integral for v in model.variables])
        root_lower = np.array([v.lb for v in model.variables])
        root_upper = np.array([v.ub for v in model.variables])

        counter = itertools.count()
        heap: List[_Node] = []
        root_bound = -math.inf
        heapq.heappush(_heap := heap, _Node(root_bound, next(counter), root_lower, root_upper))

        best_x: Optional[np.ndarray] = None
        best_obj = math.inf
        if incumbent is not None and incumbent.status.has_solution:
            warm = self._warm_point(model, incumbent)
            if warm is not None:
                best_x = warm
                best_obj = float(c @ warm)
        explored = 0
        proven_infeasible_root = False

        while heap:
            if time.perf_counter() - started > self.time_limit_s or explored >= self.max_nodes:
                break
            node = heapq.heappop(heap)
            if node.bound >= best_obj - 1e-9:
                continue
            explored += 1

            res = self._solve_lp(c, a_ub, b_ub, a_eq, b_eq, node.lower, node.upper)
            if res is None:
                if explored == 1:
                    proven_infeasible_root = True
                continue
            obj, x = res
            if obj >= best_obj - 1e-9:
                continue

            frac_idx = self._most_fractional(x, integral)
            if frac_idx is None:
                best_obj, best_x = obj, x
                continue

            value = x[frac_idx]
            down_upper = node.upper.copy()
            down_upper[frac_idx] = math.floor(value)
            up_lower = node.lower.copy()
            up_lower[frac_idx] = math.ceil(value)
            if node.lower[frac_idx] <= down_upper[frac_idx]:
                heapq.heappush(heap, _Node(obj, next(counter), node.lower.copy(), down_upper))
            if up_lower[frac_idx] <= node.upper[frac_idx]:
                heapq.heappush(heap, _Node(obj, next(counter), up_lower, node.upper.copy()))

        elapsed = time.perf_counter() - started
        if best_x is None:
            if proven_infeasible_root and not heap:
                return Solution(SolveStatus.INFEASIBLE, solve_time_s=elapsed)
            status = SolveStatus.INFEASIBLE if not heap else SolveStatus.ERROR
            return Solution(status, solve_time_s=elapsed, message="no incumbent found")

        status = SolveStatus.OPTIMAL if not heap else SolveStatus.FEASIBLE
        gap = None
        if heap:
            # Limit-hit: the smallest open relaxation bound is a valid
            # lower bound (in the minimization space ``c`` lives in) on
            # any solution still reachable, so the relative distance from
            # the incumbent to it is an honest optimality gap.
            remaining = min(node.bound for node in heap)
            lower = min(remaining, best_obj)
            if math.isfinite(lower):
                denom = max(abs(best_obj), 1e-9)
                gap = max(0.0, (best_obj - lower) / denom)
        values: Dict = {}
        for var in model.variables:
            raw = float(best_x[var.index])
            values[var] = float(round(raw)) if var.is_integral else raw
        objective = model.objective.constant + sum(
            coef * values[var] for var, coef in model.objective.terms.items()
        )
        return Solution(status, objective, values, solve_time_s=elapsed, mip_gap=gap)

    # -- internals ----------------------------------------------------------

    @staticmethod
    def _warm_point(model: Model, incumbent: Solution) -> Optional[np.ndarray]:
        """The incumbent as a dense point in this model's variable order."""
        x = np.zeros(len(model.variables))
        for var in model.variables:
            value = incumbent.values.get(var)
            if value is None:
                return None
            x[var.index] = float(value)
        return x

    @staticmethod
    def _standard_form(model: Model):
        """Split the constraints into A_ub x <= b_ub and A_eq x == b_eq."""
        n = len(model.variables)
        ub_rows: List[np.ndarray] = []
        ub_rhs: List[float] = []
        eq_rows: List[np.ndarray] = []
        eq_rhs: List[float] = []

        c = np.zeros(n)
        for var, coef in model.objective.terms.items():
            c[var.index] += coef

        for constr in model.constraints:
            row = np.zeros(n)
            for var, coef in constr.expr.terms.items():
                row[var.index] += coef
            rhs = -constr.expr.constant
            if constr.sense == "<=":
                ub_rows.append(row)
                ub_rhs.append(rhs)
            elif constr.sense == ">=":
                ub_rows.append(-row)
                ub_rhs.append(-rhs)
            else:
                eq_rows.append(row)
                eq_rhs.append(rhs)

        a_ub = np.vstack(ub_rows) if ub_rows else None
        b_ub = np.array(ub_rhs) if ub_rhs else None
        a_eq = np.vstack(eq_rows) if eq_rows else None
        b_eq = np.array(eq_rhs) if eq_rhs else None
        return c, a_ub, b_ub, a_eq, b_eq

    @staticmethod
    def _solve_lp(c, a_ub, b_ub, a_eq, b_eq, lower, upper) -> Optional[Tuple[float, np.ndarray]]:
        """Solve one LP relaxation; ``None`` if infeasible."""
        bounds = list(zip(lower, upper))
        res = linprog(
            c, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq,
            bounds=bounds, method="highs",
        )
        if not res.success:
            return None
        return float(res.fun), np.asarray(res.x)

    @staticmethod
    def _most_fractional(x: np.ndarray, integral: np.ndarray) -> Optional[int]:
        """Index of the integral variable farthest from an integer value."""
        best_idx, best_dist = None, _INT_TOL
        for i in np.nonzero(integral)[0]:
            dist = abs(x[i] - round(x[i]))
            if dist > best_dist:
                best_idx, best_dist = int(i), dist
        return best_idx
