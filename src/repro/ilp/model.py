"""The :class:`Model` container and constraint helpers.

A :class:`Model` owns variables and linear constraints and knows how to
encode the disjunctive ("either-or") patterns that the paper's formulation
uses heavily: Eqs. (2), (3), (8), (19) and (20) all take the big-M form

.. math::

    (1 - b) M + t_1 \\ge t_2  \\quad\\wedge\\quad  b M + t_3 \\ge t_4

with a fresh binary ``b`` ordering two tasks.  :meth:`Model.add_disjunction`
captures exactly that pattern.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import ModelError
from repro.ilp.expr import ExprLike, LinExpr, Variable, VarType
from repro.ilp.solution import Solution

#: Constraint senses as stored internally.
SENSES = ("<=", ">=", "==")

#: Compact sense encoding used by the triplet buffers.
SENSE_CODES = {"<=": 0, ">=": 1, "==": 2}

#: Coefficients accepted by :meth:`Model.add_linear_constraint`.
CoeffsLike = Union[Mapping[Variable, float], Iterable[Tuple[Variable, float]]]


@dataclass
class Constraint:
    """A linear constraint ``expr (<=|>=|==) 0`` with an optional name."""

    expr: LinExpr
    sense: str
    name: str = ""

    def __post_init__(self) -> None:
        if self.sense not in SENSES:
            raise ModelError(f"unknown constraint sense {self.sense!r}")

    def violation(self, solution: Solution, tol: float = 1e-6) -> float:
        """How much the constraint is violated under ``solution`` (0 if satisfied)."""
        lhs = solution.value(self.expr)
        if self.sense == "<=":
            return max(0.0, lhs - tol)
        if self.sense == ">=":
            return max(0.0, -lhs - tol)
        return max(0.0, abs(lhs) - tol)


class Model:
    """A mixed-integer linear program under construction.

    Variables are added through :meth:`add_var` (or the typed shortcuts
    :meth:`add_binary_var`, :meth:`add_integer_var`,
    :meth:`add_continuous_var`), constraints through :meth:`add_constr`,
    and the model is solved with :meth:`solve`, which dispatches to the
    HiGHS backend by default.
    """

    def __init__(self, name: str = "model", big_m: float = 10_000.0):
        if big_m <= 0:
            raise ModelError("big-M must be positive")
        self.name = name
        self.big_m = float(big_m)
        self.variables: List[Variable] = []
        self.constraints: List[Constraint] = []
        self.objective: LinExpr = LinExpr()
        self.objective_sense: str = "min"
        self._names: set[str] = set()
        # Triplet buffers mirroring `constraints` in sparse COO form, kept
        # in sync by both add paths so the solver can assemble its matrix
        # without re-walking every LinExpr (see `constraint_arrays`).
        self._rows = array("l")
        self._cols = array("l")
        self._vals = array("d")
        self._sense_codes = array("b")
        self._rhs = array("d")

    # ------------------------------------------------------------------
    # variables
    # ------------------------------------------------------------------

    def add_var(
        self,
        name: str,
        lb: float = 0.0,
        ub: float = float("inf"),
        vtype: VarType = VarType.CONTINUOUS,
    ) -> Variable:
        """Create and register a fresh decision variable."""
        if name in self._names:
            raise ModelError(f"duplicate variable name {name!r}")
        if vtype is VarType.BINARY:
            lb, ub = max(0.0, lb), min(1.0, ub)
        var = Variable(len(self.variables), name, lb, ub, vtype)
        self.variables.append(var)
        self._names.add(name)
        return var

    def add_binary_var(self, name: str) -> Variable:
        """Shortcut for a 0/1 variable."""
        return self.add_var(name, 0.0, 1.0, VarType.BINARY)

    def add_integer_var(self, name: str, lb: float = 0.0, ub: float = float("inf")) -> Variable:
        """Shortcut for a general integer variable."""
        return self.add_var(name, lb, ub, VarType.INTEGER)

    def add_continuous_var(self, name: str, lb: float = 0.0, ub: float = float("inf")) -> Variable:
        """Shortcut for a continuous variable."""
        return self.add_var(name, lb, ub, VarType.CONTINUOUS)

    # ------------------------------------------------------------------
    # constraints
    # ------------------------------------------------------------------

    def add_constr(self, relation: Tuple[LinExpr, str] | bool, name: str = "") -> Constraint:
        """Add a constraint produced by comparing expressions.

        ``relation`` is the ``(expr, sense)`` pair produced by ``lhs <= rhs``
        etc.  A bare ``bool`` (which Python produces when two *identical*
        plain numbers are compared) is rejected with a helpful error.
        """
        if isinstance(relation, bool):
            raise ModelError(
                "expected a linear relation; got a plain bool — "
                "at least one side must involve a Variable"
            )
        expr, sense = relation
        for var in expr.terms:
            if var.index >= len(self.variables) or self.variables[var.index] is not var:
                raise ModelError(f"variable {var.name!r} belongs to a different model")
        constr = Constraint(expr.simplified(), sense, name)
        self._append_row(constr.expr.terms, sense, -constr.expr.constant)
        self.constraints.append(constr)
        return constr

    def add_constrs(self, relations: Iterable[Tuple[LinExpr, str]], prefix: str = "") -> List[Constraint]:
        """Add several constraints, auto-naming them ``prefix_<i>``."""
        out = []
        for i, rel in enumerate(relations):
            out.append(self.add_constr(rel, f"{prefix}_{i}" if prefix else ""))
        return out

    def add_linear_constraint(
        self,
        coeffs: CoeffsLike,
        sense: str,
        rhs: float,
        name: str = "",
    ) -> Constraint:
        """Batch API: add ``sum(coef * var) <sense> rhs`` from raw coefficients.

        ``coeffs`` is a ``{var: coef}`` mapping or an iterable of
        ``(var, coef)`` pairs; repeated variables are summed and exact-zero
        coefficients dropped, matching what the operator-overloading path
        produces.  The row is appended straight into the model's triplet
        buffers, bypassing every intermediate :class:`LinExpr` the
        ``lhs <= rhs`` comparison chain would allocate — this is the hot
        path for the PDW formulation loops.  The equivalent
        :class:`Constraint` object is still recorded so diagnostics
        (``check_solution``), the branch-and-bound fallback, and the LP
        writer see an identical model.
        """
        if sense not in SENSES:
            raise ModelError(f"unknown constraint sense {sense!r}")
        items = coeffs.items() if isinstance(coeffs, Mapping) else coeffs
        variables = self.variables
        n_vars = len(variables)
        terms: Dict[Variable, float] = {}
        for var, coef in items:
            prev = terms.get(var)
            if prev is None:
                if var.index >= n_vars or variables[var.index] is not var:
                    raise ModelError(
                        f"variable {var.name!r} belongs to a different model"
                    )
                terms[var] = float(coef)
            else:
                terms[var] = prev + coef
        if 0.0 in terms.values():
            terms = {v: c for v, c in terms.items() if c != 0.0}
        rhs = float(rhs)
        self._append_row(terms, sense, rhs)
        constr = Constraint(LinExpr._raw(terms, -rhs), sense, name)
        self.constraints.append(constr)
        return constr

    def _append_row(self, terms: Mapping[Variable, float], sense: str, rhs: float) -> None:
        """Append one constraint row to the COO triplet buffers."""
        row = len(self.constraints)
        rows, cols, vals = self._rows, self._cols, self._vals
        for var, coef in terms.items():
            rows.append(row)
            cols.append(var.index)
            vals.append(coef)
        self._sense_codes.append(SENSE_CODES[sense])
        self._rhs.append(rhs)

    def constraint_arrays(self):
        """The constraint matrix in COO triplet form, or ``None``.

        Returns ``(rows, cols, vals, sense_codes, rhs)`` — ``array``-backed
        buffers suitable for zero-copy :func:`numpy.asarray` — when the
        buffers cover every recorded constraint.  Returns ``None`` when
        they fell out of sync (only possible if external code mutated
        ``constraints`` directly), in which case callers must rebuild from
        the :class:`Constraint` objects.
        """
        if len(self._rhs) != len(self.constraints):
            return None
        return self._rows, self._cols, self._vals, self._sense_codes, self._rhs

    # ------------------------------------------------------------------
    # big-M / indicator patterns (Eqs. 2, 3, 8, 19, 20)
    # ------------------------------------------------------------------

    def add_disjunction(
        self,
        before: Tuple[ExprLike, ExprLike],
        after: Tuple[ExprLike, ExprLike],
        name: str = "ord",
    ) -> Variable:
        """Encode "either A ends before B starts, or B ends before A starts".

        ``before = (end_a, start_b)`` activates ``start_b >= end_a`` when the
        returned binary is 1; ``after = (end_b, start_a)`` activates
        ``start_a >= end_b`` when it is 0.  This is the paper's recurring

        .. math::

            (1-b) M + s_b \\ge e_a, \\qquad b M + s_a \\ge e_b

        pattern.  Returns the ordering binary.
        """
        b = self.add_binary_var(f"{name}[{len(self.variables)}]")
        end_a, start_b = before
        end_b, start_a = after
        #   start_b + (1-b)M >= end_a
        self.add_constr(
            LinExpr.from_any(start_b) + self.big_m * (1 - LinExpr.from_any(b) * 1.0) >= end_a,
            f"{name}_fwd",
        )
        #   start_a + bM >= end_b
        self.add_constr(
            LinExpr.from_any(start_a) + self.big_m * LinExpr.from_any(b) >= end_b,
            f"{name}_bwd",
        )
        return b

    def add_implication(
        self,
        binary: Variable,
        relation: Tuple[LinExpr, str],
        name: str = "impl",
    ) -> Constraint:
        """Add ``binary == 1  =>  relation`` via big-M relaxation.

        For ``expr <= 0`` the encoding is ``expr <= M (1 - binary)``;
        for ``expr >= 0`` it is ``expr >= -M (1 - binary)``.
        Equalities are split into both directions.
        """
        expr, sense = relation
        slack = self.big_m * (1 - LinExpr.from_any(binary) * 1.0)
        if sense == "<=":
            return self.add_constr(expr <= slack, name)
        if sense == ">=":
            return self.add_constr(expr >= -1.0 * slack, name)
        self.add_constr(expr <= slack, f"{name}_le")
        return self.add_constr(expr >= -1.0 * slack, f"{name}_ge")

    def add_max_lower_bound(self, target: ExprLike, terms: Sequence[ExprLike], name: str = "max") -> None:
        """Constrain ``target >= max(terms)`` (used for ``T_assay`` in Eq. 22)."""
        for i, term in enumerate(terms):
            self.add_constr(LinExpr.from_any(target) >= term, f"{name}_{i}")

    def add_or_indicator(self, binaries: Sequence[Variable], name: str = "or") -> Variable:
        """Return a binary equal to the logical OR of ``binaries``.

        Encodes ``y >= b_i`` for all i and ``y <= sum(b_i)`` — exact for 0/1
        inputs.  This implements Eq. (24): a path needs washing iff *any*
        of its cells needs washing.
        """
        y = self.add_binary_var(f"{name}[{len(self.variables)}]")
        for i, b in enumerate(binaries):
            self.add_constr(y >= b, f"{name}_ge_{i}")
        if binaries:
            self.add_constr(LinExpr.from_any(y) <= LinExpr.sum(binaries), f"{name}_le")
        else:
            self.add_constr(LinExpr.from_any(y) <= 0, f"{name}_zero")
        return y

    def add_and_indicator(self, binaries: Sequence[Variable], name: str = "and") -> Variable:
        """Return a binary equal to the logical AND of ``binaries``.

        Used for Eq. (11): a cell must be washed iff *none* of the Type 1/2/3
        exemptions hold, i.e. ``r = AND(not a1, not a2, not a3)``.
        """
        y = self.add_binary_var(f"{name}[{len(self.variables)}]")
        for i, b in enumerate(binaries):
            self.add_constr(y <= b, f"{name}_le_{i}")
        n = len(binaries)
        if n:
            self.add_constr(
                LinExpr.from_any(y) >= LinExpr.sum(binaries) - (n - 1),
                f"{name}_ge",
            )
        else:
            self.add_constr(LinExpr.from_any(y) >= 1, f"{name}_one")
        return y

    # ------------------------------------------------------------------
    # objective / solving
    # ------------------------------------------------------------------

    def set_objective(self, expr: ExprLike, sense: str = "min") -> None:
        """Set the (linear) objective and its optimization direction."""
        if sense not in ("min", "max"):
            raise ModelError(f"objective sense must be 'min' or 'max', got {sense!r}")
        self.objective = LinExpr.from_any(expr)
        self.objective_sense = sense

    def solve(
        self,
        time_limit_s: float | None = None,
        mip_gap: float | None = None,
        backend: Optional[Callable[["Model"], Solution]] = None,
    ) -> Solution:
        """Solve the model; defaults to the HiGHS backend.

        ``backend`` may be any callable mapping a model to a
        :class:`~repro.ilp.solution.Solution` (e.g. a configured
        :class:`~repro.ilp.branch_bound.BranchAndBoundSolver`).
        """
        if backend is not None:
            return backend(self)
        from repro.ilp.solver import solve as highs_solve

        return highs_solve(self, time_limit_s=time_limit_s, mip_gap=mip_gap)

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------

    def check_solution(self, solution: Solution, tol: float = 1e-5) -> List[str]:
        """Names (or indices) of constraints violated by ``solution``."""
        bad = []
        for i, constr in enumerate(self.constraints):
            if constr.violation(solution, tol) > 0:
                bad.append(constr.name or f"constraint_{i}")
        return bad

    @property
    def num_binaries(self) -> int:
        """Number of 0/1 variables in the model."""
        return sum(1 for v in self.variables if v.vtype is VarType.BINARY)

    def stats(self) -> str:
        """One-line size summary, handy for logging."""
        return (
            f"{self.name}: {len(self.variables)} vars "
            f"({self.num_binaries} bin), {len(self.constraints)} constrs"
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Model({self.stats()})"
