"""Linear expressions over decision variables.

The classes here are deliberately minimal: a :class:`Variable` is an opaque
handle owned by a :class:`~repro.ilp.model.Model`, and a :class:`LinExpr` is
an immutable-by-convention mapping ``variable -> coefficient`` plus a
constant offset.  Arithmetic (`+`, `-`, `*` by scalars, `sum(...)`) and
comparisons (`<=`, `>=`, `==` produce constraints) follow the conventions of
mainstream modeling layers (PuLP, gurobipy), so the formulation code in
:mod:`repro.core` reads like the paper's equations.
"""

from __future__ import annotations

import enum
import math
from typing import Dict, Iterable, Mapping, Tuple, Union

from repro.errors import ModelError

Number = Union[int, float]


class VarType(enum.Enum):
    """Domain of a decision variable."""

    CONTINUOUS = "continuous"
    INTEGER = "integer"
    BINARY = "binary"


class Variable:
    """A single decision variable.

    Instances are created through :meth:`repro.ilp.model.Model.add_var` and
    compare/hash by identity, so they can key dictionaries cheaply.
    """

    __slots__ = ("index", "name", "lb", "ub", "vtype")

    def __init__(self, index: int, name: str, lb: float, ub: float, vtype: VarType):
        if math.isnan(lb) or math.isnan(ub):
            raise ModelError(f"variable {name!r}: NaN bound")
        if lb > ub:
            raise ModelError(f"variable {name!r}: lower bound {lb} exceeds upper bound {ub}")
        self.index = index
        self.name = name
        self.lb = float(lb)
        self.ub = float(ub)
        self.vtype = vtype

    @property
    def is_integral(self) -> bool:
        """Whether the variable must take integer values."""
        return self.vtype in (VarType.INTEGER, VarType.BINARY)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Variable({self.name!r}, [{self.lb}, {self.ub}], {self.vtype.value})"

    # -- arithmetic: delegate to LinExpr ---------------------------------

    def _as_expr(self) -> "LinExpr":
        return LinExpr({self: 1.0}, 0.0)

    def __add__(self, other: "ExprLike") -> "LinExpr":
        return self._as_expr() + other

    def __radd__(self, other: "ExprLike") -> "LinExpr":
        return self._as_expr() + other

    def __sub__(self, other: "ExprLike") -> "LinExpr":
        return self._as_expr() - other

    def __rsub__(self, other: "ExprLike") -> "LinExpr":
        return (-1.0) * self._as_expr() + other

    def __mul__(self, other: Number) -> "LinExpr":
        return self._as_expr() * other

    def __rmul__(self, other: Number) -> "LinExpr":
        return self._as_expr() * other

    def __neg__(self) -> "LinExpr":
        return self._as_expr() * -1.0

    def __le__(self, other: "ExprLike"):
        return self._as_expr() <= other

    def __ge__(self, other: "ExprLike"):
        return self._as_expr() >= other

    def __eq__(self, other):  # type: ignore[override]
        if isinstance(other, (Variable, LinExpr, int, float)):
            return self._as_expr() == other
        return NotImplemented

    def __hash__(self) -> int:
        return id(self)


ExprLike = Union[Variable, "LinExpr", Number]


class LinExpr:
    """A linear expression ``sum(coef_i * var_i) + constant``."""

    __slots__ = ("terms", "constant")

    def __init__(self, terms: Mapping[Variable, float] | None = None, constant: float = 0.0):
        self.terms: Dict[Variable, float] = dict(terms) if terms else {}
        self.constant = float(constant)

    # -- construction helpers -------------------------------------------

    @classmethod
    def _raw(cls, terms: Dict[Variable, float], constant: float) -> "LinExpr":
        """Internal constructor adopting ``terms`` without copying.

        The caller hands over ownership of the dict — used by the
        arithmetic fast paths and :class:`LinExprBuilder` so building an
        N-term expression allocates one dict, not N.
        """
        out = cls.__new__(cls)
        out.terms = terms
        out.constant = constant
        return out

    @staticmethod
    def from_any(value: ExprLike) -> "LinExpr":
        """Coerce a variable, number, or expression into a :class:`LinExpr`."""
        if isinstance(value, LinExpr):
            return value
        if isinstance(value, Variable):
            return value._as_expr()
        if isinstance(value, (int, float)):
            return LinExpr({}, float(value))
        raise TypeError(f"cannot build a linear expression from {type(value).__name__}")

    @staticmethod
    def sum(items: Iterable[ExprLike]) -> "LinExpr":
        """Sum an iterable of expression-likes in linear time.

        Unlike built-in ``sum`` (or the pre-optimization version of this
        method), no intermediate expressions are allocated: a single
        :class:`LinExprBuilder` accumulates every term in place, so
        summing N expressions costs O(total terms), not O(N^2) dict
        copies.
        """
        builder = LinExprBuilder()
        for item in items:
            builder.add(item)
        return builder.build()

    def copy(self) -> "LinExpr":
        return LinExpr(dict(self.terms), self.constant)

    # -- arithmetic ------------------------------------------------------

    def __add__(self, other: ExprLike) -> "LinExpr":
        # Fast paths: one dict copy, no intermediate LinExpr wrappers.
        if isinstance(other, Variable):
            terms = dict(self.terms)
            terms[other] = terms.get(other, 0.0) + 1.0
            return LinExpr._raw(terms, self.constant)
        if isinstance(other, (int, float)):
            return LinExpr._raw(dict(self.terms), self.constant + other)
        rhs = LinExpr.from_any(other)
        terms = dict(self.terms)
        for var, coef in rhs.terms.items():
            terms[var] = terms.get(var, 0.0) + coef
        return LinExpr._raw(terms, self.constant + rhs.constant)

    def __radd__(self, other: ExprLike) -> "LinExpr":
        return self + other

    def __sub__(self, other: ExprLike) -> "LinExpr":
        return self + (LinExpr.from_any(other) * -1.0)

    def __rsub__(self, other: ExprLike) -> "LinExpr":
        return (self * -1.0) + other

    def __mul__(self, scalar: Number) -> "LinExpr":
        if not isinstance(scalar, (int, float)):
            raise TypeError("linear expressions can only be scaled by numbers")
        return LinExpr({v: c * scalar for v, c in self.terms.items()}, self.constant * scalar)

    def __rmul__(self, scalar: Number) -> "LinExpr":
        return self * scalar

    def __neg__(self) -> "LinExpr":
        return self * -1.0

    # -- comparisons build constraints -----------------------------------

    def __le__(self, other: ExprLike) -> Tuple["LinExpr", str]:
        return (self - LinExpr.from_any(other), "<=")

    def __ge__(self, other: ExprLike) -> Tuple["LinExpr", str]:
        return (self - LinExpr.from_any(other), ">=")

    def __eq__(self, other):  # type: ignore[override]
        if isinstance(other, (Variable, LinExpr, int, float)):
            return (self - LinExpr.from_any(other), "==")
        return NotImplemented

    def __hash__(self) -> int:
        return id(self)

    # -- introspection ----------------------------------------------------

    def simplified(self, tol: float = 0.0) -> "LinExpr":
        """Return a copy with near-zero coefficients dropped."""
        return LinExpr(
            {v: c for v, c in self.terms.items() if abs(c) > tol},
            self.constant,
        )

    def variables(self) -> Tuple[Variable, ...]:
        """Variables appearing with a (possibly zero) coefficient."""
        return tuple(self.terms)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        parts = [f"{c:+g}*{v.name}" for v, c in sorted(self.terms.items(), key=lambda t: t[0].index)]
        if self.constant or not parts:
            parts.append(f"{self.constant:+g}")
        return " ".join(parts)


class LinExprBuilder:
    """In-place accumulator for building a :class:`LinExpr` from many parts.

    ``LinExpr.__add__`` returns a fresh expression per call, so folding N
    expressions through it copies the growing term dict N times.  The
    builder keeps one mutable dict, merges each added item into it, and
    hands the dict over to the final expression via :meth:`build` —
    :meth:`LinExpr.sum` and the hot formulation loops use it to stay
    linear in the total number of terms.
    """

    __slots__ = ("_terms", "_constant")

    def __init__(self) -> None:
        self._terms: Dict[Variable, float] = {}
        self._constant = 0.0

    def add(self, item: ExprLike, scale: float = 1.0) -> "LinExprBuilder":
        """Accumulate ``scale * item``; returns self for chaining."""
        terms = self._terms
        if isinstance(item, Variable):
            terms[item] = terms.get(item, 0.0) + scale
        elif isinstance(item, LinExpr):
            if scale == 1.0:
                for var, coef in item.terms.items():
                    terms[var] = terms.get(var, 0.0) + coef
                self._constant += item.constant
            else:
                for var, coef in item.terms.items():
                    terms[var] = terms.get(var, 0.0) + coef * scale
                self._constant += item.constant * scale
        elif isinstance(item, (int, float)):
            self._constant += item * scale
        else:
            raise TypeError(
                f"cannot accumulate {type(item).__name__} into a linear expression"
            )
        return self

    def build(self) -> LinExpr:
        """Finish and return the accumulated expression.

        The builder resets afterwards, so it can be reused; the returned
        expression owns the term dict (no copy).
        """
        out = LinExpr._raw(self._terms, float(self._constant))
        self._terms = {}
        self._constant = 0.0
        return out
