"""Warm-started incremental re-solve for structurally identical models.

Two PDW scheduling jobs that differ only in objective weights (the Pareto
sweep's alpha/beta/gamma points) or in nothing at all share the *entire*
constraint system: the same variables in the same order, the same rows in
the same COO triplet buffers.  Rebuilding the model per job is pure waste,
and the previous job's incumbent is a feasible point of the new one (the
feasible region is weight-independent).

This module provides the two halves of exploiting that:

* **structure identity** — :func:`structure_digest` hashes exactly the
  inputs that shape the constraint system: the synthesis digest plus the
  candidate-affecting config knobs (the same fields the pathgen stage
  keys on) plus the solver-altering environment.  Objective weights,
  budgets and solver/mode selections are deliberately excluded.
* **incumbent reuse** — :func:`store_incumbent` /
  :func:`load_incumbent` persist the winning assignment (keyed by
  variable *name*, digest-addressed in the artifact cache) and
  :func:`adopt_incumbent` re-keys it onto a freshly built or reweighted
  model, **verifying it against every constraint** before anyone trusts
  it.  The adopted solution warm-starts the branch-and-bound rung
  (pruning from the first node); HiGHS via ``scipy.optimize.milp``
  accepts no starting point, so healthy primary-rung solves remain
  byte-identical with or without a warm incumbent.
* **model memoization** — :class:`ModelMemo`, a small checkout/checkin
  store for built model wrappers.  ``checkout`` *removes* the entry, so
  concurrent DAG-executor threads can never share (and concurrently
  mutate) one model; a second thread simply misses and builds fresh.

Every reuse decision is observable through the
``pdw_ilp_warm_start_total{outcome=...}`` counter.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.ilp import faults
from repro.ilp.model import Model
from repro.ilp.solution import Solution, SolveStatus
from repro.obs import metrics as obs_metrics

#: Bump to invalidate every stored incumbent (payload format changes).
INCUMBENT_VERSION = "1"

#: Constraint-violation tolerance when vetting a stored incumbent.
ADOPT_TOL = 1e-5


def observe(outcome: str) -> None:
    """Count one warm-start decision (``pdw_ilp_warm_start_total``)."""
    obs_metrics.registry().counter(
        "pdw_ilp_warm_start_total", outcome=outcome
    ).inc()


def structure_key(synthesis_digest: str, config: Any) -> Tuple:
    """Cache-key material covering the model *structure* only.

    Mirrors the pathgen stage key — everything that shapes clusters,
    candidate pools and therefore the constraint system — plus the
    solver-altering environment.  Weights (alpha/beta/gamma), budgets
    (``time_limit_s``, ``mip_gap``) and solver/mode pins are excluded:
    jobs differing only in those share one structure.
    """
    necessity = getattr(config, "necessity", None)
    return (
        synthesis_digest,
        getattr(necessity, "value", str(necessity)),
        getattr(config, "merge_clusters", True),
        getattr(config, "max_wash_path_mm", 0.0),
        getattr(config, "max_candidates", 0),
        getattr(config, "path_mode", ""),
        getattr(config, "enable_integration", True),
        getattr(config, "integration_window_s", 0.0),
        # The degradation token reshapes clusters and candidate pools, so
        # repaired/degraded incumbents never collide with healthy ones.
        getattr(config, "degrade", ""),
        # Presolve reshapes variable bounds and the candidate pool, so
        # reduced and raw structures must never share an incumbent slot.
        faults.resolve_presolve(getattr(config, "presolve", "on")),
        faults.environment_token(),
    )


def structure_digest(synthesis_digest: str, config: Any) -> str:
    """Stable digest of :func:`structure_key` (artifact-cache addressable)."""
    from repro.pipeline.cache import stable_digest

    return stable_digest(
        "ilp-incumbent",
        INCUMBENT_VERSION,
        structure_key(synthesis_digest, config),
    )


def store_incumbent(cache, digest: str, solution: Solution, config: Any) -> bool:
    """Persist a solve's winning assignment for future structural twins.

    Stores plain data only (variable *names*, not :class:`Variable`
    objects, which hash by identity and would be useless cross-process).
    Returns whether anything was written.
    """
    if cache is None or not solution.status.has_solution:
        return False
    payload = {
        "version": INCUMBENT_VERSION,
        "values": {name: float(v) for name, v in solution.as_name_map().items()},
        "objective": solution.objective,
        "weights": (
            getattr(config, "alpha", None),
            getattr(config, "beta", None),
            getattr(config, "gamma", None),
        ),
    }
    cache.put(digest, payload)
    observe("stored")
    return True


def load_incumbent(cache, digest: str) -> Optional[Dict[str, Any]]:
    """The stored incumbent payload for this structure, or ``None``."""
    if cache is None:
        return None
    payload = cache.get(digest)
    if not isinstance(payload, dict) or payload.get("version") != INCUMBENT_VERSION:
        return None
    values = payload.get("values")
    if not isinstance(values, dict):
        return None
    return payload


def adopt_incumbent(model: Model, values_by_name: Mapping[str, float]) -> Optional[Solution]:
    """Re-key a stored assignment onto ``model``, vetting it first.

    Returns a :class:`Solution` (status ``FEASIBLE``, objective evaluated
    under the model's *current* weights) suitable for priming the
    branch-and-bound rung — or ``None`` when the assignment does not
    cover every variable (a candidate delta changed the variable set) or
    violates any variable bound or constraint (it was never a feasible
    point of this structure — presolve may have tightened bounds since).
    Rejection is always safe: the solve proceeds cold.
    """
    values: Dict = {}
    for var in model.variables:
        stored = values_by_name.get(var.name)
        if stored is None:
            observe("rejected")
            return None
        value = float(stored)
        if value < var.lb - ADOPT_TOL or value > var.ub + ADOPT_TOL:
            observe("rejected")
            return None
        values[var] = value
    candidate = Solution(SolveStatus.FEASIBLE, values=values)
    if model.check_solution(candidate, tol=ADOPT_TOL):
        observe("rejected")
        return None
    candidate.objective = candidate.value(model.objective)
    observe("primed")
    return candidate


class ModelMemo:
    """Bounded in-process checkout/checkin store for built models.

    ``checkout(key)`` removes and returns the entry (or ``None``), so an
    entry is only ever used by one caller at a time — a concurrent
    second caller misses and builds fresh instead of sharing a mutable
    model across threads.  ``checkin(key, obj)`` returns it, evicting
    the least recently used entry past ``capacity``.
    """

    def __init__(self, capacity: int = 4):
        if capacity < 1:
            raise ValueError("memo capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, Any]" = OrderedDict()

    def checkout(self, key: str) -> Optional[Any]:
        with self._lock:
            return self._entries.pop(key, None)

    def checkin(self, key: str, obj: Any) -> None:
        with self._lock:
            self._entries[key] = obj
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
