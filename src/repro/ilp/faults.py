"""Deterministic fault injection for the solver degradation ladder.

The portfolio (:mod:`repro.ilp.portfolio`) consults this module before every
HiGHS rung attempt, which makes the fallback ladder testable without a
genuinely misbehaving backend.  Faults are armed through the
``REPRO_INJECT_SOLVER_FAULT`` environment variable:

``timeout``
    The rung reports a time limit hit without an incumbent (``ERROR``).
``crash``
    The rung raises :class:`~repro.errors.SolverError`.
``no_incumbent``
    The rung returns ``ERROR`` ("no incumbent available").
``flaky:<p>``
    Each attempt crashes with probability ``p`` drawn from a deterministic
    pseudo-random stream (seeded by ``REPRO_FAULT_SEED``, default 0), so a
    given sequence of attempts fails identically across runs.

Faults target the HiGHS rungs only (:data:`FAULT_TARGET_RUNGS`): the
pure-Python fallback rungs stay healthy, so every ladder terminates — the
degraded-but-alive behaviour the ladder exists to provide.  Tests arm
faults through the ``solver_fault`` fixture (``tests/conftest.py``).

``REPRO_FORCE_SOLVER`` (``highs`` | ``branch_bound`` | ``greedy``)
independently pins the ladder to a single rung; CI uses it to keep the
fallback rungs exercised.  Because both variables change what the ILP
stage produces without appearing in :class:`~repro.core.config.PDWConfig`,
:func:`environment_token` must be folded into every cache key covering a
solve (stage keys, whole-run digests, in-process memos) so degraded
outcomes never masquerade as healthy ones.

This module injects faults *inside* the solver only.  The pipeline-wide
harness — crashing, hanging or corrupting any stage or a cache read, to
exercise the suite supervisor and the self-verifying cache — is
:mod:`repro.pipeline.chaos` (``REPRO_INJECT_STAGE_FAULT``).  The two are
deliberately separate: solver faults alter the produced artifact (hence
the digest folding above), stage faults only prevent production, so
chaos is *excluded* from cache keys.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass
from typing import Optional

from repro.errors import SolverError
from repro.ilp.solution import Solution, SolveStatus

#: Environment variable arming an injected fault.
ENV_FAULT = "REPRO_INJECT_SOLVER_FAULT"
#: Environment variable pinning the portfolio to one rung.
ENV_FORCE = "REPRO_FORCE_SOLVER"
#: Environment variable seeding the ``flaky`` pseudo-random stream.
ENV_SEED = "REPRO_FAULT_SEED"
#: Environment variable selecting the portfolio execution mode.
ENV_MODE = "REPRO_SOLVER_MODE"
#: Environment variable toggling ILP model reduction (presolve + decompose).
ENV_PRESOLVE = "REPRO_PRESOLVE"

#: Valid ``REPRO_SOLVER_MODE`` / ``PDWConfig.solver_mode`` values.
MODE_CHOICES = ("ladder", "race")

#: Valid ``REPRO_PRESOLVE`` / ``PDWConfig.presolve`` values.
PRESOLVE_CHOICES = ("on", "off")

#: Rungs the injected faults apply to (the primary backend's attempts).
FAULT_TARGET_RUNGS = ("highs", "highs-relaxed")

#: Valid ``REPRO_FORCE_SOLVER`` values.
FORCE_CHOICES = ("highs", "branch_bound", "greedy")

_KINDS = ("timeout", "crash", "no_incumbent", "flaky")

#: Monotonic attempt counter feeding the deterministic ``flaky`` stream.
_attempt_index = 0


@dataclass(frozen=True)
class FaultSpec:
    """Parsed form of ``REPRO_INJECT_SOLVER_FAULT``."""

    kind: str
    probability: float = 1.0

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse ``timeout|crash|no_incumbent|flaky:<p>`` (raises on junk)."""
        spec = text.strip()
        if spec.startswith("flaky"):
            _, _, prob = spec.partition(":")
            try:
                p = float(prob) if prob else 1.0
            except ValueError as exc:
                raise SolverError(f"bad flaky probability {prob!r} in {ENV_FAULT}") from exc
            if not 0.0 <= p <= 1.0:
                raise SolverError(f"flaky probability must be in [0, 1], got {p}")
            return cls("flaky", p)
        if spec not in _KINDS:
            raise SolverError(
                f"unknown {ENV_FAULT} value {text!r}; "
                f"expected one of {', '.join(_KINDS[:-1])} or flaky:<p>"
            )
        return cls(spec)


def active_fault() -> Optional[FaultSpec]:
    """The armed fault, or ``None`` when the environment is clean."""
    raw = os.environ.get(ENV_FAULT, "").strip()
    return FaultSpec.parse(raw) if raw else None


def forced_solver() -> Optional[str]:
    """The pinned rung from ``REPRO_FORCE_SOLVER``, or ``None``."""
    raw = os.environ.get(ENV_FORCE, "").strip()
    if not raw:
        return None
    if raw not in FORCE_CHOICES:
        raise SolverError(
            f"unknown {ENV_FORCE} value {raw!r}; expected one of {FORCE_CHOICES}"
        )
    return raw


def env_solver_mode() -> Optional[str]:
    """The portfolio mode from ``REPRO_SOLVER_MODE``, or ``None``."""
    raw = os.environ.get(ENV_MODE, "").strip()
    if not raw:
        return None
    if raw not in MODE_CHOICES:
        raise SolverError(
            f"unknown {ENV_MODE} value {raw!r}; expected one of {MODE_CHOICES}"
        )
    return raw


def resolve_solver_mode(config_mode: str = "ladder") -> str:
    """Effective portfolio mode: config wins unless left at the default.

    Mirrors the ``pathgen_workers`` convention — an explicit
    ``PDWConfig.solver_mode`` (or ``--solver-mode``) beats the
    environment; ``REPRO_SOLVER_MODE`` only overrides the ``"ladder"``
    default, so a suite can be flipped to racing without touching configs.
    """
    if config_mode != "ladder":
        return config_mode
    return env_solver_mode() or config_mode


def env_presolve() -> Optional[str]:
    """The presolve toggle from ``REPRO_PRESOLVE``, or ``None``."""
    raw = os.environ.get(ENV_PRESOLVE, "").strip()
    if not raw:
        return None
    if raw not in PRESOLVE_CHOICES:
        raise SolverError(
            f"unknown {ENV_PRESOLVE} value {raw!r}; expected one of {PRESOLVE_CHOICES}"
        )
    return raw


def resolve_presolve(config_presolve: str = "on") -> str:
    """Effective presolve toggle: config wins unless left at the default.

    Same convention as :func:`resolve_solver_mode` — an explicit
    ``PDWConfig.presolve`` (or ``--presolve``) beats the environment;
    ``REPRO_PRESOLVE`` only overrides the ``"on"`` default, so a suite can
    be flipped to raw models without touching configs.
    """
    if config_presolve != "on":
        return config_presolve
    return env_presolve() or config_presolve


def environment_token() -> str:
    """Cache-key token covering the solver-altering environment.

    Empty in a clean environment, so existing digests are unchanged when
    no variable is set.  ``REPRO_SOLVER_MODE`` is covered because a raced
    solve may legitimately select a different rung's incumbent than the
    serial ladder would, and that outcome must not masquerade as the
    ladder's in any solve-covering cache.  ``REPRO_PRESOLVE`` is covered
    for the same reason: presolved and raw models are meant to agree, but
    that equivalence is an invariant under test, not an assumption caches
    may bake in — presolved and raw artifacts must never collide.
    """
    fault = os.environ.get(ENV_FAULT, "").strip()
    force = os.environ.get(ENV_FORCE, "").strip()
    mode = os.environ.get(ENV_MODE, "").strip()
    presolve = os.environ.get(ENV_PRESOLVE, "").strip()
    if not fault and not force and not mode and not presolve:
        return ""
    return f"fault={fault};force={force};mode={mode};presolve={presolve}"


def reset() -> None:
    """Rewind the deterministic ``flaky`` stream (used by tests)."""
    global _attempt_index
    _attempt_index = 0


def maybe_inject(rung: str) -> Optional[Solution]:
    """Apply the armed fault to one rung attempt.

    Returns ``None`` when the attempt should proceed normally, a degraded
    :class:`Solution` for ``timeout`` / ``no_incumbent``, and raises
    :class:`SolverError` for ``crash`` (and firing ``flaky`` draws).
    """
    global _attempt_index
    spec = active_fault()
    if spec is None or rung not in FAULT_TARGET_RUNGS:
        return None
    if spec.kind == "crash":
        raise SolverError(f"injected crash on rung {rung!r}")
    if spec.kind == "flaky":
        seed = os.environ.get(ENV_SEED, "0")
        draw = random.Random(f"{seed}:{_attempt_index}").random()
        _attempt_index += 1
        if draw < spec.probability:
            raise SolverError(f"injected flaky crash on rung {rung!r} (p={spec.probability})")
        return None
    if spec.kind == "timeout":
        return Solution(
            SolveStatus.ERROR,
            message=f"injected fault: time limit reached without incumbent on {rung!r}",
        )
    return Solution(
        SolveStatus.ERROR,
        message=f"injected fault: no incumbent available on {rung!r}",
    )
