"""A small, self-contained (M)ILP modeling layer.

The paper solves its formulation with Gurobi; this package provides the
equivalent substrate without proprietary dependencies:

* :class:`~repro.ilp.expr.Variable` / :class:`~repro.ilp.expr.LinExpr` —
  linear expressions with natural operator overloading,
* :class:`~repro.ilp.model.Model` — constraint container with big-M /
  indicator helpers used by the scheduling formulation (Eqs. 1-26),
* :func:`~repro.ilp.solver.solve` — exact solve via ``scipy.optimize.milp``
  (the HiGHS solver), with time limits and best-effort status reporting,
* :class:`~repro.ilp.branch_bound.BranchAndBoundSolver` — a pure-Python
  branch-and-bound fallback (LP relaxations via ``scipy.optimize.linprog``),
  useful for testing and for environments without HiGHS,
* :class:`~repro.ilp.portfolio.SolverPortfolio` — the budgeted degradation
  ladder (HiGHS → relaxed retry → branch-and-bound) with per-rung
  :class:`~repro.ilp.portfolio.RungAttempt` instrumentation and
  deterministic fault injection (:mod:`repro.ilp.faults`), the concurrent
  rung race (:mod:`repro.ilp.race`) and warm-started incremental re-solve
  (:mod:`repro.ilp.incremental`),
* :func:`~repro.ilp.lpwriter.write_lp` — CPLEX LP-format export for
  debugging models offline.

Example
-------
>>> from repro.ilp import Model
>>> m = Model("toy")
>>> x = m.add_integer_var("x", lb=0, ub=10)
>>> y = m.add_integer_var("y", lb=0, ub=10)
>>> m.add_constr(x + y <= 7)
>>> m.set_objective(3 * x + 2 * y, sense="max")
>>> sol = m.solve()
>>> sol.objective
21.0
"""

from repro.ilp.expr import LinExpr, LinExprBuilder, Variable, VarType
from repro.ilp.model import Constraint, Model
from repro.ilp.solution import Solution, SolveStatus
from repro.ilp.solver import HighsOptions, solve
from repro.ilp.branch_bound import BranchAndBoundSolver
from repro.ilp.faults import FaultSpec
from repro.ilp.portfolio import PortfolioResult, RungAttempt, SolverPortfolio
from repro.ilp.lpwriter import write_lp

__all__ = [
    "BranchAndBoundSolver",
    "Constraint",
    "FaultSpec",
    "HighsOptions",
    "LinExpr",
    "LinExprBuilder",
    "Model",
    "PortfolioResult",
    "RungAttempt",
    "Solution",
    "SolveStatus",
    "VarType",
    "Variable",
    "SolverPortfolio",
    "solve",
    "write_lp",
]
