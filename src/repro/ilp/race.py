"""Concurrent solver-rung racing: first acceptable incumbent wins.

The degradation ladder (:mod:`repro.ilp.portfolio`) walks its rungs
serially, so a doomed primary attempt burns its whole budget slice before
the fallback even starts.  Under ``solver_mode="race"`` the portfolio
instead launches every rung *concurrently* — each in its own subprocess
via the same fork-preferred context, kill and reap helpers the suite
supervisor uses (:mod:`repro.procutil`) — and selects a winner under a
deterministic rule:

1. A rung that proves ``INFEASIBLE``/``UNBOUNDED`` wins immediately: the
   model is broken, no rung can fix it.
2. The first *acceptable* incumbent (``OPTIMAL``/``FEASIBLE``) opens a
   fixed grace window.  If every higher-priority rung has already failed
   terminally, the incumbent wins on the spot; otherwise the race waits
   out the window for a higher-priority result, then takes the
   best-priority acceptable incumbent seen.  Priorities are the ladder
   order (``highs`` before ``highs-relaxed`` before ``branch_bound``), so
   ties break identically run-to-run.
3. Losers are cancelled (killed and reaped), recorded as ``cancelled``
   attempts, and counted in ``pdw_solver_race_cancelled_total`` — they
   never linger as orphan subprocesses.

Each rung receives the *full* portfolio budget rather than a ladder
slice — overlapping the rungs in time is exactly the point.  Fault
injection (:mod:`repro.ilp.faults`) still applies: children inherit the
environment and consult :func:`~repro.ilp.faults.maybe_inject` before
solving, so an injected crash on the primary rung lets a concurrent rung
win without serial waiting.

Children ship only plain data over the pipe (status string, objective,
``{variable name: value}``); the parent rebuilds the
:class:`~repro.ilp.solution.Solution` against its own model, because
:class:`~repro.ilp.expr.Variable` hashes by identity and a child's copies
would never match the parent's extraction lookups.

Daemonic worker processes (the suite supervisor's benchmark isolation)
may not fork children of their own, so inside one the race degrades to
daemon *threads* running the same selection rule in-process — losers
then finish or die with the worker instead of being killed, which the
``strategy`` span attribute and journaled attempts make visible.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import LadderExhausted, SolverError
from repro.ilp import faults
from repro.ilp.branch_bound import BranchAndBoundSolver
from repro.ilp.model import Model
from repro.ilp.solution import Solution, SolveStatus
from repro.ilp.solver import HighsOptions, solve as highs_solve
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.procutil import MP, in_daemon_process, reap, safe_send, terminate

#: Selection priority per rung: lower wins ties (the ladder order).
RUNG_PRIORITY = {"highs": 0, "highs-relaxed": 1, "branch_bound": 2}

#: Extra seconds the parent waits past the budget for a child that is
#: finishing right at its own (soft) time limit to report.
_REAP_MARGIN_S = 0.5

#: Poll interval of the selection loop.
_POLL_S = 0.005


def _run_rung(
    model: Model,
    rung: str,
    budget_s: float,
    mip_gap: Optional[float],
    relaxed_gap: float,
    bb_max_nodes: int,
) -> Solution:
    """One rung's solve, identical to the ladder's runner for that rung."""
    if rung == "highs":
        return highs_solve(model, options=HighsOptions(time_limit_s=budget_s, mip_gap=mip_gap))
    if rung == "highs-relaxed":
        gap = max(relaxed_gap, 5.0 * (mip_gap or 0.01))
        return highs_solve(
            model,
            options=HighsOptions(time_limit_s=budget_s, mip_gap=gap, presolve=False),
        )
    if rung == "branch_bound":
        return BranchAndBoundSolver(
            time_limit_s=budget_s, max_nodes=bb_max_nodes
        ).solve(model)
    raise SolverError(f"unknown race rung {rung!r}")


def _child_solve(
    conn,
    model: Model,
    rung: str,
    budget_s: float,
    mip_gap: Optional[float],
    relaxed_gap: float,
    bb_max_nodes: int,
) -> None:
    """Race-child body: solve one rung, report plain data over the pipe."""
    try:
        solution = faults.maybe_inject(rung)
        if solution is None:
            solution = _run_rung(model, rung, budget_s, mip_gap, relaxed_gap, bb_max_nodes)
        safe_send(
            conn,
            (
                "solution",
                solution.status.value,
                solution.objective,
                dict(solution.as_name_map()),
                solution.solve_time_s,
                solution.mip_gap,
                solution.message,
            ),
        )
    except SolverError as exc:
        safe_send(conn, ("error", str(exc)))
    except BaseException as exc:  # noqa: BLE001 — a racer must always report
        safe_send(conn, ("error", f"{type(exc).__name__}: {exc}"))
    finally:
        try:
            conn.close()
        except (OSError, AttributeError):
            pass


class _ProcessRacer:
    """One rung running in a subprocess (the normal strategy)."""

    def __init__(self, model: Model, rung: str, args: tuple):
        parent_conn, child_conn = MP.Pipe(duplex=False)
        self.conn = parent_conn
        self.proc = MP.Process(
            target=_child_solve,
            args=(child_conn, model, rung, *args),
            daemon=True,
        )
        self.proc.start()
        child_conn.close()  # parent keeps only the read end

    def poll(self) -> Optional[tuple]:
        if self.conn.poll(0):
            try:
                return self.conn.recv()
            except (EOFError, OSError):
                return ("error", "race worker died mid-send")
        return None

    def finished_silently(self) -> bool:
        return not self.proc.is_alive()

    def exit_note(self) -> str:
        return f"race worker exited with code {self.proc.exitcode} before reporting"

    def cancel(self) -> None:
        terminate(self.proc)

    def close(self) -> None:
        reap(self.proc)
        try:
            self.conn.close()
        except OSError:
            pass


class _ThreadRacer:
    """One rung on a daemon thread (fallback inside daemonic workers).

    Cancellation is cooperative only: a losing solve cannot be killed
    mid-flight, but its result is discarded and the daemon thread dies
    with the (short-lived) worker process that hosts the race.
    """

    def __init__(self, model: Model, rung: str, args: tuple):
        self._payload: Optional[tuple] = None
        self._lock = threading.Lock()

        def body() -> None:
            payload: Optional[tuple] = None
            try:
                solution = faults.maybe_inject(rung)
                if solution is None:
                    solution = _run_rung(model, rung, *args)
                payload = (
                    "solution",
                    solution.status.value,
                    solution.objective,
                    dict(solution.as_name_map()),
                    solution.solve_time_s,
                    solution.mip_gap,
                    solution.message,
                )
            except SolverError as exc:
                payload = ("error", str(exc))
            except BaseException as exc:  # noqa: BLE001
                payload = ("error", f"{type(exc).__name__}: {exc}")
            with self._lock:
                self._payload = payload

        self.thread = threading.Thread(
            target=body, name=f"ilp-race-{rung}", daemon=True
        )
        self.thread.start()

    def poll(self) -> Optional[tuple]:
        with self._lock:
            payload, self._payload = self._payload, None
            return payload

    def finished_silently(self) -> bool:
        return not self.thread.is_alive()

    def exit_note(self) -> str:
        return "race thread exited before reporting"

    def cancel(self) -> None:
        pass  # cooperative: the daemon thread dies with the process

    def close(self) -> None:
        self.thread.join(timeout=0.05)


def run_race(
    model: Model,
    rungs: Sequence[str],
    time_limit_s: float,
    grace_s: float,
    mip_gap: Optional[float] = None,
    relaxed_gap: float = 0.05,
    bb_max_nodes: int = 200_000,
) -> Tuple[Solution, str, Tuple["RungAttempt", ...]]:
    """Race ``rungs`` concurrently; return ``(solution, winner, attempts)``.

    Raises :class:`LadderExhausted` (with the attempt records) when no
    rung produced a usable incumbent within the budget.
    """
    from repro.ilp.portfolio import RungAttempt, _publish_attempt

    reg = obs_metrics.registry()
    priorities = {rung: RUNG_PRIORITY.get(rung, len(RUNG_PRIORITY)) for rung in rungs}
    ordered = sorted(rungs, key=lambda r: priorities[r])
    use_threads = in_daemon_process()
    racer_cls = _ThreadRacer if use_threads else _ProcessRacer
    args = (time_limit_s, mip_gap, relaxed_gap, bb_max_nodes)

    started = time.perf_counter()
    deadline = started + time_limit_s + _REAP_MARGIN_S
    with span(
        "ilp.race",
        rungs=len(ordered),
        budget_s=round(time_limit_s, 3),
        strategy="threads" if use_threads else "processes",
    ) as sp:
        active: Dict[str, object] = {}
        for rung in ordered:
            active[rung] = racer_cls(model, rung, args)
            reg.counter("pdw_solver_race_launched_total", rung=rung).inc()

        attempts: Dict[str, RungAttempt] = {}
        solutions: Dict[str, Solution] = {}
        first_acceptable_at: Optional[float] = None
        winner: Optional[str] = None
        proven: Optional[str] = None

        def settle(rung: str, attempt: RungAttempt) -> None:
            attempts[rung] = attempt
            _publish_attempt(attempt)

        while active and proven is None and winner is None:
            progressed = False
            for rung in list(active):
                racer = active[rung]
                payload = racer.poll()
                if payload is None:
                    if racer.finished_silently():
                        payload = ("error", racer.exit_note())
                    else:
                        continue
                progressed = True
                del active[rung]
                racer.close()
                wall = time.perf_counter() - started
                if payload[0] == "error":
                    settle(
                        rung,
                        RungAttempt(
                            rung=rung,
                            status=SolveStatus.ERROR.value,
                            wall_s=wall,
                            message=payload[1],
                        ),
                    )
                    continue
                _, status_value, objective, by_name, solve_time_s, gap, message = payload
                status = SolveStatus(status_value)
                solution = _rebuild(model, status, objective, by_name, solve_time_s, gap, message)
                settle(
                    rung,
                    RungAttempt(
                        rung=rung,
                        status=solution.status.value,
                        wall_s=wall,
                        mip_gap=solution.mip_gap,
                        objective=solution.objective,
                        message=solution.message,
                    ),
                )
                if solution.status in (SolveStatus.INFEASIBLE, SolveStatus.UNBOUNDED):
                    solutions[rung] = solution
                    proven = rung
                    break
                if solution.status.has_solution:
                    solutions[rung] = solution
                    if first_acceptable_at is None:
                        first_acceptable_at = time.perf_counter()

            if proven is not None:
                break
            now = time.perf_counter()
            if solutions:
                best = min(solutions, key=lambda r: priorities[r])
                higher_still_racing = any(
                    priorities[r] < priorities[best] for r in active
                )
                if not higher_still_racing or now >= (first_acceptable_at or now) + grace_s:
                    winner = best
                    break
            if now > deadline:
                break
            if not progressed and active:
                time.sleep(_POLL_S)

        # Whatever is still running lost (or timed out): kill, reap, record.
        for rung, racer in active.items():
            racer.cancel()
            racer.close()
            cause = (
                f"lost the race to {proven or winner!r}"
                if (proven or winner)
                else "race budget exhausted"
            )
            settle(
                rung,
                RungAttempt(
                    rung=rung,
                    status="cancelled",
                    wall_s=time.perf_counter() - started,
                    message=cause,
                ),
            )
            reg.counter("pdw_solver_race_cancelled_total", rung=rung).inc()

        total_wall = time.perf_counter() - started
        reg.histogram("pdw_solver_race_wall_seconds").observe(total_wall)
        # Attempts in priority order: deterministic regardless of OS timing.
        record = tuple(attempts[r] for r in ordered if r in attempts)

        chosen = proven or winner
        if chosen is None and solutions:
            # Deadline hit while a grace window was still open.
            chosen = min(solutions, key=lambda r: priorities[r])
        if chosen is None:
            sp.set("status", "exhausted")
            raise LadderExhausted(
                "every racing solver rung failed", attempts=list(record)
            )
        sp.set("status", "won")
        sp.set("winner", chosen)
        reg.counter("pdw_solver_race_winner_total", rung=chosen).inc()
        return solutions[chosen], chosen, record


def _rebuild(
    model: Model,
    status: SolveStatus,
    objective,
    by_name,
    solve_time_s,
    gap,
    message,
) -> Solution:
    """Re-key a child's ``{name: value}`` map onto the parent's variables."""
    values = {}
    if status.has_solution:
        mapping = by_name if isinstance(by_name, dict) else {}
        for var in model.variables:
            if var.name not in mapping:
                return Solution(
                    SolveStatus.ERROR,
                    solve_time_s=solve_time_s,
                    message=f"race result missing variable {var.name!r}",
                )
            values[var] = float(mapping[var.name])
    return Solution(
        status=status,
        objective=objective,
        values=values,
        solve_time_s=solve_time_s,
        mip_gap=gap,
        message=message,
    )
