"""Solve results returned by the ILP backends."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Mapping

from repro.ilp.expr import ExprLike, LinExpr, Variable


class SolveStatus(enum.Enum):
    """Outcome of a solve call.

    ``OPTIMAL``
        A provably optimal solution was found.
    ``FEASIBLE``
        A feasible (best-effort) solution was found but optimality was not
        proven — typically because the time limit was hit.  This mirrors the
        paper's 15-minute best-effort runs.
    ``INFEASIBLE`` / ``UNBOUNDED``
        The model was proven infeasible / unbounded.
    ``ERROR``
        The backend failed for another reason.
    """

    OPTIMAL = "optimal"
    FEASIBLE = "feasible"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ERROR = "error"

    @property
    def has_solution(self) -> bool:
        """Whether variable values are available."""
        return self in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE)


@dataclass
class Solution:
    """Variable assignment plus solve metadata."""

    status: SolveStatus
    objective: float | None = None
    values: Dict[Variable, float] = field(default_factory=dict)
    solve_time_s: float = 0.0
    mip_gap: float | None = None
    message: str = ""

    def __getitem__(self, var: Variable) -> float:
        return self.values[var]

    def value(self, expr: ExprLike) -> float:
        """Evaluate a variable or linear expression under this solution."""
        lin = LinExpr.from_any(expr)
        total = lin.constant
        for var, coef in lin.terms.items():
            total += coef * self.values[var]
        return total

    def rounded(self, var: Variable) -> int:
        """Integer value of an integral variable (guards tiny solver noise)."""
        return int(round(self.values[var]))

    def as_name_map(self) -> Mapping[str, float]:
        """Solution keyed by variable name, for logging/serialization."""
        return {v.name: x for v, x in self.values.items()}
