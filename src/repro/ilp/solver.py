"""HiGHS backend: solve a :class:`~repro.ilp.model.Model` exactly.

``scipy.optimize.milp`` wraps the HiGHS mixed-integer solver, which plays the
role Gurobi plays in the paper.  The adapter below converts our model into
the sparse matrix form scipy expects, maps statuses back, and honours a
wall-clock time limit so runs stay within the paper's 15-minute best-effort
budget.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.errors import SolverError
from repro.ilp.model import Model
from repro.ilp.solution import Solution, SolveStatus

#: Largest deviation from an integer an "integral" incumbent may show.
#: HiGHS's own MIP feasibility tolerance is 1e-6; anything beyond it is a
#: numerically broken incumbent, not rounding noise.
_INT_TOL = 1e-6

#: Map from ``scipy.optimize.milp`` status codes to ours.
_STATUS_MAP = {
    0: SolveStatus.OPTIMAL,
    1: SolveStatus.FEASIBLE,   # iteration/time limit with incumbent
    2: SolveStatus.INFEASIBLE,
    3: SolveStatus.UNBOUNDED,
    4: SolveStatus.ERROR,
}


@dataclass(frozen=True)
class HighsOptions:
    """Solver options forwarded to HiGHS."""

    time_limit_s: float | None = None
    mip_gap: float | None = None
    presolve: bool = True
    node_limit: int | None = None


def _build_matrices(model: Model):
    """Convert the model into (c, integrality, bounds, constraints)."""
    n = len(model.variables)
    c = np.zeros(n)
    for var, coef in model.objective.terms.items():
        c[var.index] += coef
    if model.objective_sense == "max":
        c = -c

    integrality = np.array(
        [1 if v.is_integral else 0 for v in model.variables], dtype=np.int8
    )
    lower = np.array([v.lb for v in model.variables])
    upper = np.array([v.ub for v in model.variables])

    arrays = model.constraint_arrays()
    if arrays is not None:
        # Fast path: the model kept COO triplet buffers in sync, so the
        # sparse matrix assembles in C instead of a Python loop over every
        # LinExpr term (sense codes: 0 "<=", 1 ">=", 2 "==").
        buf_rows, buf_cols, buf_vals, buf_senses, buf_rhs = arrays
        coo_rows = np.asarray(buf_rows)
        coo_cols = np.asarray(buf_cols)
        coo_vals = np.asarray(buf_vals)
        senses = np.asarray(buf_senses)
        rhs = np.asarray(buf_rhs)
        lo = np.where(senses == 0, -np.inf, rhs)
        hi = np.where(senses == 1, np.inf, rhs)
        a = sparse.csr_matrix(
            (coo_vals, (coo_rows, coo_cols)), shape=(len(rhs), n)
        )
        return c, integrality, Bounds(lower, upper), LinearConstraint(a, lo, hi)

    rows, cols, data, lo, hi = [], [], [], [], []
    for i, constr in enumerate(model.constraints):
        rhs = -constr.expr.constant
        for var, coef in constr.expr.terms.items():
            rows.append(i)
            cols.append(var.index)
            data.append(coef)
        if constr.sense == "<=":
            lo.append(-np.inf)
            hi.append(rhs)
        elif constr.sense == ">=":
            lo.append(rhs)
            hi.append(np.inf)
        else:
            lo.append(rhs)
            hi.append(rhs)

    a = sparse.csr_matrix(
        (data, (rows, cols)), shape=(len(model.constraints), n)
    )
    return c, integrality, Bounds(lower, upper), LinearConstraint(a, lo, hi)


def solve(
    model: Model,
    time_limit_s: float | None = None,
    mip_gap: float | None = None,
    options: HighsOptions | None = None,
) -> Solution:
    """Solve ``model`` with HiGHS and return a :class:`Solution`.

    An empty model (no variables) solves trivially to its constant
    objective.  Statuses map directly: HiGHS "time limit with incumbent"
    becomes :attr:`SolveStatus.FEASIBLE`, matching the paper's best-effort
    runs.
    """
    # Caller-supplied scalar overrides win over the corresponding fields
    # of ``options``, symmetrically — a ``mip_gap`` override must not be
    # dropped just because the time limits happened to agree.
    opts = options or HighsOptions(time_limit_s=time_limit_s, mip_gap=mip_gap)
    overrides = {}
    if time_limit_s is not None and opts.time_limit_s != time_limit_s:
        overrides["time_limit_s"] = time_limit_s
    if mip_gap is not None and opts.mip_gap != mip_gap:
        overrides["mip_gap"] = mip_gap
    if overrides:
        opts = replace(opts, **overrides)

    if not model.variables:
        obj = model.objective.constant
        return Solution(SolveStatus.OPTIMAL, objective=obj, values={}, message="empty model")

    c, integrality, bounds, constraints = _build_matrices(model)

    milp_options: dict = {"disp": False}
    if opts.time_limit_s is not None:
        milp_options["time_limit"] = float(opts.time_limit_s)
    if opts.mip_gap is not None:
        milp_options["mip_rel_gap"] = float(opts.mip_gap)
    if opts.node_limit is not None:
        milp_options["node_limit"] = int(opts.node_limit)
    if not opts.presolve:
        milp_options["presolve"] = False

    started = time.perf_counter()
    try:
        result = milp(
            c=c,
            integrality=integrality,
            bounds=bounds,
            constraints=() if constraints.A.shape[0] == 0 else constraints,
            options=milp_options,
        )
    except Exception as exc:  # pragma: no cover - backend failure
        raise SolverError(f"HiGHS backend failed: {exc}") from exc
    elapsed = time.perf_counter() - started

    status = _STATUS_MAP.get(result.status, SolveStatus.ERROR)
    if status.has_solution and result.x is None:
        # HiGHS hit a limit without an incumbent.
        status = SolveStatus.ERROR

    values = {}
    objective = None
    gap = getattr(result, "mip_gap", None)
    if status.has_solution:
        x = np.asarray(result.x)
        for var in model.variables:
            raw = float(x[var.index])
            if var.is_integral:
                if abs(raw - round(raw)) > _INT_TOL:
                    # A fractional "integral" incumbent must not be silently
                    # repaired by rounding: the rounded point may violate
                    # constraints the solver never checked it against.
                    return Solution(
                        status=SolveStatus.ERROR,
                        solve_time_s=elapsed,
                        message=(
                            f"integrality violated: {var.name}={raw!r} is "
                            f"{abs(raw - round(raw)):.3e} from an integer "
                            f"(tolerance {_INT_TOL:g})"
                        ),
                    )
                values[var] = float(round(raw))
            else:
                values[var] = raw
        objective = model.objective.constant + sum(
            coef * values[var] for var, coef in model.objective.terms.items()
        )

    return Solution(
        status=status,
        objective=objective,
        values=values,
        solve_time_s=elapsed,
        mip_gap=float(gap) if gap is not None else None,
        message=str(getattr(result, "message", "")),
    )
