"""Independent-component decomposition of a built ILP.

The PDW objective (Eq. 26) is a separable sum, so when the
variable-interaction graph of the built model — variables as nodes, one
clique per constraint row — is disconnected, each connected component is
an independent MILP: solving them separately and concatenating the
per-component assignments is exactly equivalent to solving the monolith.
The one shared variable is the makespan ``T_assay``, which every task
couples to; :func:`try_solve` therefore ignores it while splitting and
gives each component its *own* local copy of the makespan (same name,
same bounds, same rows), stitching with ``T = max(local T)`` afterwards.

That stitch is only *certified optimal* when every child proved
optimality and a combinatorial support bound closes the gap the local
makespan copies may open (a non-bottleneck component might trade path
length for a makespan reduction that does not matter globally).  When
the certificate fails — or a child errors, or the stitched point fails
:meth:`~repro.ilp.model.Model.check_solution` — :func:`try_solve`
returns no result and the caller falls back to the monolithic portfolio
solve, counted in ``pdw_ilp_decompose_fallback_total``.  A fully
separable model (no makespan coupling, e.g. batched independent
instances) needs no certificate: child statuses combine directly.

Components solve concurrently through the same fork-preferred subprocess
machinery as the rung race (:mod:`repro.procutil`), each child running
the serial portfolio ladder with the full budget; children ship plain
``{variable name: value}`` data and the parent re-keys against its own
model, exactly like :mod:`repro.ilp.race`.  Inside a daemonic suite
worker the children degrade to threads.  The component count is exported
as the ``pdw_ilp_components`` gauge either way.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import LadderExhausted
from repro.ilp import incremental
from repro.ilp.model import Model
from repro.ilp.race import RUNG_PRIORITY
from repro.ilp.solution import Solution, SolveStatus
from repro.ilp.expr import LinExpr, Variable, VarType
from repro.obs import metrics as obs_metrics
from repro.procutil import MP, in_daemon_process, reap, safe_send, terminate

#: Numeric slack of the stitch-optimality certificate.
_CERT_TOL = 1e-6

#: Extra seconds the parent waits past the budget for children to report.
_REAP_MARGIN_S = 5.0


@dataclass
class DecomposeAttempt:
    """Outcome of one decomposition attempt.

    ``result is None`` means "solve the monolith instead" — either the
    model is a single component (the common case for the paper's
    benchmarks) or the decomposed solve could not be certified.
    """

    result: Optional[object]  # PortfolioResult, or None for fallback
    components: int
    reason: str = ""
    wall_s: float = 0.0


def _union_find_components(
    model: Model, skip: Optional[int]
) -> Optional[Tuple[List[List[int]], List[List[int]], List[int], bool]]:
    """Split variables/rows into components, ignoring variable ``skip``.

    Returns ``(var_groups, row_groups, orphans, coupled)`` where the
    groups are parallel lists ordered by smallest member variable,
    ``orphans`` are variables appearing in no row, and ``coupled`` says
    whether any row references ``skip``.  ``None`` when the COO buffers
    are unavailable or the model has an unsupported shape (a row with no
    variables, or a row referencing only ``skip``).
    """
    arrays = model.constraint_arrays()
    if arrays is None:
        return None
    rows, cols, _vals, _senses, _rhs = arrays
    n = len(model.variables)
    parent = list(range(n))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    row_vars: Dict[int, List[int]] = {}
    coupled = False
    for r, c in zip(rows, cols):
        if c == skip:
            coupled = True
            continue
        row_vars.setdefault(r, []).append(c)
    for r in range(len(model.constraints)):
        vs = row_vars.get(r)
        if not vs:
            # A row with no variables besides (possibly) the makespan:
            # nothing anchors it to a component.  Unsupported.
            return None
        root = find(vs[0])
        for v in vs[1:]:
            rv = find(v)
            if rv != root:
                parent[rv] = root

    var_groups: Dict[int, List[int]] = {}
    orphans: List[int] = []
    seen = {c for vs in row_vars.values() for c in vs}
    for idx in range(n):
        if idx == skip:
            continue
        if idx not in seen:
            orphans.append(idx)
            continue
        var_groups.setdefault(find(idx), []).append(idx)
    row_groups: Dict[int, List[int]] = {}
    for r, vs in row_vars.items():
        row_groups.setdefault(find(vs[0]), []).append(r)

    order = sorted(var_groups, key=lambda root: var_groups[root][0])
    return (
        [sorted(var_groups[root]) for root in order],
        [sorted(row_groups.get(root, [])) for root in order],
        orphans,
        coupled,
    )


def _build_submodel(
    model: Model, k: int, var_idx: Sequence[int], row_idx: Sequence[int], skip: Optional[int]
) -> Tuple[Model, bool]:
    """One component as a standalone model (same names, bounds, rows).

    When a component row references the makespan variable, the submodel
    gets a local copy of it (same name and bounds).  Returns the model
    and whether that copy was added.
    """
    sub = Model(f"{model.name}:c{k}", big_m=model.big_m)
    local: Dict[int, Variable] = {}
    for idx in var_idx:
        v = model.variables[idx]
        local[idx] = sub.add_var(v.name, v.lb, v.ub, v.vtype)
    needs_t = skip is not None and any(
        skip in (var.index for var in model.constraints[r].expr.terms)
        for r in row_idx
    )
    if needs_t:
        t = model.variables[skip]
        local[skip] = sub.add_var(t.name, t.lb, t.ub, t.vtype)
    for r in row_idx:
        constr = model.constraints[r]
        sub.add_linear_constraint(
            [(local[var.index], coef) for var, coef in constr.expr.terms.items()],
            constr.sense,
            -constr.expr.constant,
            constr.name,
        )
    obj_terms = {
        local[var.index]: coef
        for var, coef in model.objective.terms.items()
        if var.index in local
    }
    sub.set_objective(LinExpr(obj_terms, 0.0), sense=model.objective_sense)
    return sub, needs_t


def _child_solve(conn, sub: Model, params: dict, inc_map: Optional[dict]) -> None:
    """Child body: run the serial ladder on one component, ship plain data."""
    try:
        incumbent = None
        if inc_map:
            incumbent = incremental.adopt_incumbent(sub, inc_map)
        from repro.ilp.portfolio import SolverPortfolio

        pf = SolverPortfolio(
            time_limit_s=params["time_limit_s"],
            mip_gap=params["mip_gap"],
            force=params["force"],
            bb_max_nodes=params["bb_max_nodes"],
            min_rung_budget_s=params["min_rung_budget_s"],
            mode="ladder",
            incumbent=incumbent,
        )
        result = pf.solve(sub)
        sol = result.solution
        safe_send(
            conn,
            (
                "solution",
                sol.status.value,
                sol.objective,
                dict(sol.as_name_map()) if sol.status.has_solution else {},
                sol.solve_time_s,
                sol.mip_gap,
                result.rung,
                [
                    (a.rung, a.status, a.wall_s, a.mip_gap, a.objective, a.message)
                    for a in result.attempts
                ],
            ),
        )
    except LadderExhausted as exc:
        safe_send(
            conn,
            (
                "exhausted",
                [
                    (a.rung, a.status, a.wall_s, a.mip_gap, a.objective, a.message)
                    for a in getattr(exc, "attempts", ())
                ],
            ),
        )
    except BaseException as exc:  # noqa: BLE001 — a child must always report
        safe_send(conn, ("error", f"{type(exc).__name__}: {exc}"))
    finally:
        try:
            conn.close()
        except (OSError, AttributeError):
            pass


class _Box:
    """In-process stand-in for a pipe end (thread fallback)."""

    def __init__(self) -> None:
        self.payload: Optional[tuple] = None
        self._lock = threading.Lock()

    def send(self, payload: tuple) -> None:
        with self._lock:
            self.payload = payload

    def close(self) -> None:
        pass


def _solve_children(
    subs: Sequence[Model], params: dict, inc_map: Optional[dict], deadline: float
) -> List[Optional[tuple]]:
    """Solve every component concurrently; one payload (or None) each."""
    if MP is not None and not in_daemon_process():
        workers = []
        for sub in subs:
            parent_conn, child_conn = MP.Pipe(duplex=False)
            proc = MP.Process(
                target=_child_solve, args=(child_conn, sub, params, inc_map), daemon=True
            )
            proc.start()
            child_conn.close()
            workers.append((parent_conn, proc))
        payloads: List[Optional[tuple]] = []
        for parent_conn, proc in workers:
            remaining = max(0.0, deadline - time.perf_counter())
            payload: Optional[tuple] = None
            try:
                if parent_conn.poll(remaining):
                    payload = parent_conn.recv()
            except (EOFError, OSError):
                payload = None
            payloads.append(payload)
        for parent_conn, proc in workers:
            terminate(proc)
            reap(proc)
            try:
                parent_conn.close()
            except OSError:
                pass
        return payloads

    # Daemonic worker (or no multiprocessing): degrade to threads.
    boxes = [_Box() for _ in subs]
    threads = [
        threading.Thread(
            target=_child_solve, args=(box, sub, params, inc_map), daemon=True
        )
        for box, sub in zip(boxes, subs)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=max(0.0, deadline - time.perf_counter()) + _REAP_MARGIN_S)
    return [box.payload for box in boxes]


def _support_lower_bound(sub: Model, t_name: Optional[str]) -> float:
    """Combinatorial lower bound of the sub-objective *excluding* its
    makespan term, from GUB rows (``sum of binaries == 1``) and variable
    bounds alone.  Valid for any point satisfying the sub's constraints.
    """
    obj = {var: coef for var, coef in sub.objective.terms.items()}
    t_var = next((v for v in sub.variables if v.name == t_name), None)
    used: set = set()
    bound = 0.0
    for constr in sub.constraints:
        if constr.sense != "==" or constr.expr.constant != -1.0:
            continue
        members = list(constr.expr.terms)
        if t_var is not None and t_var in members:
            continue
        if any(
            coef != 1.0
            or var.vtype is not VarType.BINARY
            or var.lb != 0.0
            or var.ub != 1.0
            or var in used
            for var, coef in constr.expr.terms.items()
        ):
            continue
        bound += min(obj.get(var, 0.0) for var in members)
        used.update(members)
    for var in sub.variables:
        if var is t_var or var in used:
            continue
        coef = obj.get(var, 0.0)
        if coef == 0.0:
            continue
        bound += coef * (var.lb if coef > 0.0 else var.ub)
    return bound


def try_solve(model: Model, portfolio, makespan_var: Optional[Variable] = None):
    """Attempt a decomposed solve; ``result=None`` means fall back.

    ``portfolio`` supplies the per-child budgets/knobs (each child runs
    the serial ladder with the *full* budget — components overlap in
    wall-clock, which is the point).  ``makespan_var`` is excluded from
    the interaction graph and stitched as the max of the local copies.
    """
    from repro.ilp.portfolio import PortfolioResult, RungAttempt

    started = time.perf_counter()
    reg = obs_metrics.registry()

    def fallback(ncomp: int, reason: str) -> DecomposeAttempt:
        if ncomp > 1:
            reg.counter("pdw_ilp_decompose_fallback_total", reason=reason).inc()
        return DecomposeAttempt(
            None, ncomp, reason, wall_s=time.perf_counter() - started
        )

    if getattr(portfolio, "force", None) == "greedy":
        return fallback(1, "forced-greedy")
    skip = makespan_var.index if makespan_var is not None else None
    split = _union_find_components(model, skip)
    if split is None:
        return fallback(1, "unsupported-structure")
    var_groups, row_groups, orphans, coupled = split
    ncomp = len(var_groups)
    reg.gauge("pdw_ilp_components").set(float(max(1, ncomp)))
    if ncomp <= 1:
        return fallback(max(1, ncomp), "single-component")
    if coupled and model.objective_sense != "min":
        return fallback(ncomp, "unsupported-sense")

    built = [
        _build_submodel(model, k, vg, rg, skip)
        for k, (vg, rg) in enumerate(zip(var_groups, row_groups))
    ]
    subs = [sub for sub, _ in built]
    has_t = [needs_t for _, needs_t in built]
    if coupled and not any(has_t):
        return fallback(ncomp, "unsupported-structure")

    params = {
        "time_limit_s": portfolio.time_limit_s,
        "mip_gap": portfolio.mip_gap,
        "force": portfolio.force,
        "bb_max_nodes": portfolio.bb_max_nodes,
        "min_rung_budget_s": portfolio.min_rung_budget_s,
    }
    inc_map = (
        dict(portfolio.incumbent.as_name_map())
        if getattr(portfolio, "incumbent", None) is not None
        else None
    )
    deadline = started + portfolio.time_limit_s + _REAP_MARGIN_S
    payloads = _solve_children(subs, params, inc_map, deadline)

    attempts: List[RungAttempt] = []
    statuses: List[SolveStatus] = []
    objectives: List[float] = []
    name_maps: List[Dict[str, float]] = []
    rungs: List[str] = []
    gaps: List[Optional[float]] = []
    solve_time = 0.0
    for k, payload in enumerate(payloads):
        if payload is None:
            return fallback(ncomp, "child-timeout")
        kind = payload[0]
        if kind == "exhausted":
            attempts.extend(RungAttempt(*row) for row in payload[1])
            return fallback(ncomp, "child-exhausted")
        if kind != "solution":
            return fallback(ncomp, "child-error")
        _, status_value, objective, name_map, child_time, gap, rung, attempt_rows = payload
        status = SolveStatus(status_value)
        attempts.extend(RungAttempt(*row) for row in attempt_rows)
        if status in (SolveStatus.INFEASIBLE, SolveStatus.UNBOUNDED):
            # A broken component proves the monolith broken too.
            solution = Solution(status, message=f"component {subs[k].name}")
            return DecomposeAttempt(
                PortfolioResult(solution, rung, tuple(attempts), mode="decompose"),
                ncomp,
                "component-" + status.value,
                wall_s=time.perf_counter() - started,
            )
        if not status.has_solution:
            return fallback(ncomp, "child-failed")
        statuses.append(status)
        objectives.append(float(objective))
        name_maps.append(dict(name_map))
        rungs.append(rung)
        gaps.append(gap)
        solve_time = max(solve_time, float(child_time))

    # -- stitch ----------------------------------------------------------
    t_name = model.variables[skip].name if skip is not None else None
    values: Dict[Variable, float] = {}
    t_hat = model.variables[skip].lb if skip is not None else 0.0
    for k, name_map in enumerate(name_maps):
        if t_name is not None and t_name in name_map:
            t_hat = max(t_hat, float(name_map[t_name]))
        for idx in var_groups[k]:
            var = model.variables[idx]
            if var.name not in name_map:
                return fallback(ncomp, "missing-variable")
            values[var] = float(name_map[var.name])
    for idx in orphans:
        var = model.variables[idx]
        coef = model.objective.terms.get(var, 0.0)
        if model.objective_sense == "max":
            coef = -coef
        best = var.lb if coef >= 0.0 else var.ub
        if best in (float("inf"), float("-inf")):
            return fallback(ncomp, "unbounded-orphan")
        values[var] = best
    if skip is not None:
        values[model.variables[skip]] = t_hat

    objective_value = model.objective.constant + sum(
        coef * values[var] for var, coef in model.objective.terms.items()
    )
    stitched = Solution(
        SolveStatus.FEASIBLE,
        objective=objective_value,
        values=values,
        solve_time_s=solve_time,
    )
    if model.check_solution(stitched, tol=1e-5):
        return fallback(ncomp, "stitch-violation")

    all_optimal = all(s is SolveStatus.OPTIMAL for s in statuses)
    if coupled:
        # The local makespan copies may have let a non-bottleneck
        # component pay objective for a makespan cut that does not matter
        # globally; certify optimality with a support bound, else punt.
        if not all_optimal:
            return fallback(ncomp, "uncertified-feasible")
        tcoef = model.objective.terms.get(model.variables[skip], 0.0)
        g_total = 0.0
        flbs = []
        for k in range(ncomp):
            t_k = float(name_maps[k].get(t_name, 0.0)) if has_t[k] else 0.0
            g_total += objectives[k] - tcoef * t_k
            flbs.append(_support_lower_bound(subs[k], t_name if has_t[k] else None))
        upper = g_total + tcoef * t_hat
        flb_sum = sum(flbs)
        lower = max(
            objectives[k] + flb_sum - flbs[k] for k in range(ncomp)
        )
        if upper > lower + _CERT_TOL:
            return fallback(ncomp, "certificate-gap")
        stitched.status = SolveStatus.OPTIMAL
    elif all_optimal:
        stitched.status = SolveStatus.OPTIMAL
    if stitched.status is not SolveStatus.OPTIMAL:
        stitched.mip_gap = max((g for g in gaps if g is not None), default=None)

    worst_rung = max(rungs, key=lambda r: RUNG_PRIORITY.get(r, len(RUNG_PRIORITY)))
    return DecomposeAttempt(
        PortfolioResult(stitched, worst_rung, tuple(attempts), mode="decompose"),
        ncomp,
        "stitched",
        wall_s=time.perf_counter() - started,
    )
