"""Solver-independent model reduction for the PDW scheduling ILP.

The monolithic model stays tractable only because the baseline order is
fixed (see :mod:`repro.core.schedule_ilp`), and that fixed order is also
an untapped source of *implied* structure: if task ``p`` precedes (by a
chain of kept precedence/order rows) a source task of wash cluster ``c``,
then ``tw_c >= end(p)`` is already entailed by the model — the whole
big-M disjunction pair for ``(c, p)`` and its ordering binary ``mu`` are
dead weight.  This module computes that structure once, before the model
is built, so :class:`~repro.core.schedule_ilp.WashScheduleIlp` can skip
the dead rows and binaries instead of emitting them.

Reduction rules (each preserves the feasible region's projection onto the
surviving variables, hence the optimal plans — see DESIGN.md §16):

1. **Bound tightening** — earliest/latest-start windows per task and per
   wash via longest-path propagation over the precedence/order DAG,
   plus a tightened lower bound (``t_floor``) for ``T_assay``.
2. **Ordering-binary fixing** — a wash/task or wash/wash pair whose
   relative order is provable (by DAG reachability through the wash's
   source/blocking tasks, or numerically: latest end of A <= earliest
   start of B) needs no ``mu``/``eta`` binary and no big-M rows.
3. **Per-row big-M tightening** — surviving disjunction rows use the
   smallest M the propagated windows support instead of the global
   horizon.
4. **Transitive reduction** — a precedence/order row entailed by a chain
   of other kept rows (``a -> m -> ... -> b``) is dropped; duplicates
   (the same pair emitted by both the precedence and the baseline-order
   pass) collapse to one row.
5. **Dominated-candidate elimination** — a candidate wash path that is
   strictly longer than a same-cluster alternative with a node subset,
   no worse wash time and no smaller removal coverage can never appear
   in an optimal plan (only applied while ``beta > 0``, so objective
   ties cannot change which plan is reported).

Everything here is advisory: :func:`analyze` returns a
:class:`PresolveInfo` and the model builder consults it row by row.  With
presolve disabled (``--presolve off`` / ``REPRO_PRESOLVE=off``) the
builder emits the unreduced constraint system, and the reduced and raw
models must produce byte-identical canonical plans — an invariant CI
checks on every suite run.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.obs import metrics as obs_metrics
from repro.schedule.tasks import ScheduledTask, TaskKind

#: An ordered pair of tasks whose row reads ``t[succ] >= end(pred)``.
OrderPair = Tuple[ScheduledTask, ScheduledTask, str]


# ---------------------------------------------------------------------------
# precedence / baseline-order pair generation (shared with the model builder)
# ---------------------------------------------------------------------------

def precedence_pairs(tasks: Sequence[ScheduledTask]) -> Iterator[OrderPair]:
    """Yield the Eq. 2/4/5 precedence rows as ``(pred, succ, name)``.

    This is the single source of truth for the precedence structure: the
    model builder emits exactly these rows and the presolve DAG is built
    from exactly these pairs, so the two can never drift apart.
    """
    op_task: Dict[str, ScheduledTask] = {
        t.op_id: t for t in tasks if t.kind is TaskKind.OPERATION
    }
    by_edge: Dict[Tuple[str, str], Dict[TaskKind, ScheduledTask]] = {}
    for task in tasks:
        if task.edge is not None:
            by_edge.setdefault(task.edge, {})[task.kind] = task

    for edge, group in by_edge.items():
        src, dst = edge
        transport = group.get(TaskKind.TRANSPORT)
        removal = group.get(TaskKind.REMOVAL)
        waste = group.get(TaskKind.WASTE)
        producer = op_task.get(src)
        if transport is not None and producer is not None:
            yield producer, transport, f"prec_tr[{transport.id}]"
        if removal is not None and transport is not None:
            yield transport, removal, f"prec_rm[{removal.id}]"
        consumer = op_task.get(dst)
        if consumer is not None:
            if removal is not None:
                yield removal, consumer, f"prec_op_rm[{consumer.id},{removal.id}]"
            elif transport is not None:
                yield transport, consumer, f"prec_op_tr[{consumer.id},{transport.id}]"
            elif producer is not None:
                yield producer, consumer, f"prec_op_op[{consumer.id},{producer.id}]"
        if waste is not None and producer is not None:
            yield producer, waste, f"prec_ws[{waste.id}]"


def baseline_order_pairs(tasks: Sequence[ScheduledTask]) -> Iterator[OrderPair]:
    """Yield the fixed baseline-order rows (Eqs. 3, 8) as ``(a, b, name)``."""
    ordered = sorted(tasks, key=lambda t: (t.start, t.end, t.id))
    node_sets = [set(t.occupied_nodes) for t in ordered]
    for i, a in enumerate(ordered):
        nodes_a = node_sets[i]
        for j in range(i + 1, len(ordered)):
            b = ordered[j]
            if a.kind is TaskKind.OPERATION and b.kind is TaskKind.OPERATION:
                if a.device != b.device:
                    continue
            elif not (nodes_a & node_sets[j]):
                continue
            yield a, b, f"order[{a.id},{b.id}]"


# ---------------------------------------------------------------------------
# the presolve result
# ---------------------------------------------------------------------------

@dataclass
class PresolveInfo:
    """Propagated bounds + provable structure, consumed by the builder.

    The reduction counters (``fixed_binaries``, ``dropped_constraints``,
    ``dropped_candidates``) are incremented *while building* — presolve
    proves what may be skipped, the builder records what actually was.
    """

    horizon: int
    est: Dict[str, int] = field(default_factory=dict)
    lst: Dict[str, int] = field(default_factory=dict)
    #: Full (unabsorbed) duration per task, for latest-end computations.
    duration: Dict[str, int] = field(default_factory=dict)
    wash_est: Dict[str, int] = field(default_factory=dict)
    wash_lst: Dict[str, int] = field(default_factory=dict)
    min_wash: Dict[str, float] = field(default_factory=dict)
    max_wash: Dict[str, float] = field(default_factory=dict)
    #: Surviving candidate indices per cluster (original pool positions,
    #: so ``x[cluster,i]`` names and plan extraction stay aligned).
    survivors: Dict[str, List[int]] = field(default_factory=dict)
    #: Removal-task ids a wash can legally absorb (psi may be 1).
    absorbable: Set[str] = field(default_factory=set)
    #: Precedence/order pairs entailed by a chain of other kept rows.
    redundant_pairs: Set[Tuple[str, str]] = field(default_factory=set)
    #: cluster id -> task ids provably ordered before / after its wash.
    before_wash: Dict[str, FrozenSet[str]] = field(default_factory=dict)
    after_wash: Dict[str, FrozenSet[str]] = field(default_factory=dict)
    #: (a_id, b_id) pairs (model emission order) with a provable wash
    #: order; the eta binary and every ww row of the pair are dead.
    wash_order: Set[Tuple[str, str]] = field(default_factory=set)
    #: Tightened lower bound for ``T_assay``.
    t_floor: int = 0
    fixed_binaries: int = 0
    dropped_constraints: int = 0
    dropped_candidates: int = 0
    presolve_time_s: float = 0.0

    # -- latest-end / big-M helpers (all capped by the global horizon so a
    # -- degenerate window can never yield a *looser* row than before) ----

    def lend(self, task_id: str) -> int:
        """Latest end of a task, using its full (unabsorbed) duration."""
        return self.lst[task_id] + self.duration[task_id]

    def m_wash_after_task(self, cluster_id: str, task_id: str) -> float:
        """M for ``w_after``: covers ``lst(task) + d - est(wash)``."""
        return min(float(self.horizon), float(self.lend(task_id) - self.wash_est[cluster_id]))

    def m_task_after_wash(self, cluster_id: str, task_id: str) -> float:
        """M for ``w_before``/``psi_before``: the wash may end as late as
        ``wash_lst + max_wash`` while the task starts no earlier than est."""
        return min(
            float(self.horizon),
            self.wash_lst[cluster_id] + self.max_wash[cluster_id] - self.est[task_id],
        )

    def m_wash_after_wash(self, first_id: str, second_id: str) -> float:
        """M for a ww row enforcing ``tw(second) >= tw(first) + dur(first)``."""
        return min(
            float(self.horizon),
            self.wash_lst[first_id] + self.max_wash[first_id] - self.wash_est[second_id],
        )


def trivial_info(horizon: int, tasks: Sequence[ScheduledTask],
                 cluster_ids: Sequence[str]) -> PresolveInfo:
    """A no-reduction :class:`PresolveInfo` (defensive fallback)."""
    info = PresolveInfo(horizon=horizon)
    for t in tasks:
        info.est[t.id] = int(t.start)
        info.lst[t.id] = horizon
        info.duration[t.id] = int(t.duration)
    for cid in cluster_ids:
        info.wash_est[cid] = 0
        info.wash_lst[cid] = horizon
    info.t_floor = 0
    return info


# ---------------------------------------------------------------------------
# analysis
# ---------------------------------------------------------------------------

def _toposort(ids: List[str], edges: Set[Tuple[str, str]]) -> Optional[List[str]]:
    """Kahn toposort; ``None`` if the pair graph has a cycle."""
    indeg = {i: 0 for i in ids}
    succs: Dict[str, List[str]] = {i: [] for i in ids}
    for a, b in edges:
        succs[a].append(b)
        indeg[b] += 1
    ready = sorted(i for i in ids if indeg[i] == 0)
    out: List[str] = []
    while ready:
        node = ready.pop()
        out.append(node)
        for s in succs[node]:
            indeg[s] -= 1
            if indeg[s] == 0:
                ready.append(s)
        ready.sort()
    return out if len(out) == len(ids) else None


def analyze(
    chip,
    tasks: Sequence[ScheduledTask],
    clusters: Sequence,
    candidates: Dict[str, List],
    config,
    horizon: int,
) -> PresolveInfo:
    """Compute bounds, provable orders and surviving candidates.

    Pure analysis over the same inputs the model builder sees; nothing
    here touches a :class:`~repro.ilp.model.Model`.
    """
    started = time.perf_counter()
    cluster_ids = [c.id for c in clusters]
    info = PresolveInfo(horizon=int(horizon))
    for t in tasks:
        info.duration[t.id] = int(t.duration)

    # -- 5. dominated candidates (strict length improvement only, and only
    # while the length weight can break the tie in the survivor's favour).
    removals = [t for t in tasks if t.kind is TaskKind.REMOVAL]
    rm_nodes = {rm.id: set(rm.path or ()) for rm in removals}
    for cluster in clusters:
        pool = candidates[cluster.id]
        traits = []
        for cand in pool:
            nodes = set(cand)
            cover = frozenset(r for r, rn in rm_nodes.items() if rn <= nodes)
            traits.append((nodes, cover, chip.wash_time_s(cand), chip.path_length_mm(cand)))
        survivors = list(range(len(pool)))
        if getattr(config, "beta", 0.0) > 0.0 and len(pool) > 1:
            kept = []
            for bi, (bn, bcov, bwt, blen) in enumerate(traits):
                dominated = any(
                    ai != bi and an <= bn and acov >= bcov and awt <= bwt and alen < blen
                    for ai, (an, acov, awt, alen) in enumerate(traits)
                )
                if not dominated:
                    kept.append(bi)
            # Never empty: strict-length domination cannot be cyclic.
            survivors = kept
            info.dropped_candidates += len(pool) - len(kept)
        info.survivors[cluster.id] = survivors
        times = [traits[i][2] for i in survivors]
        info.min_wash[cluster.id] = min(times)
        info.max_wash[cluster.id] = max(times)

    # -- which removals a wash may legally absorb (mirrors the psi rules:
    # a surviving covering candidate must exist and the removal's edge
    # must carry both a transport and a consumer, else psi is forced 0).
    if getattr(config, "enable_integration", True):
        op_task = {t.op_id: t for t in tasks if t.kind is TaskKind.OPERATION}
        by_edge: Dict[Tuple[str, str], Dict[TaskKind, ScheduledTask]] = {}
        for t in tasks:
            if t.edge is not None:
                by_edge.setdefault(t.edge, {})[t.kind] = t
        for rm in removals:
            nodes = rm_nodes[rm.id]
            covered = any(
                nodes <= set(candidates[c.id][i])
                for c in clusters
                for i in info.survivors[c.id]
            )
            if not covered:
                continue
            group = by_edge.get(rm.edge or ("", ""), {})
            transport = group.get(TaskKind.TRANSPORT)
            consumer = op_task.get(rm.edge[1]) if rm.edge else None
            if transport is not None and consumer is not None:
                info.absorbable.add(rm.id)

    # Minimum effective duration: an absorbable removal may shrink to 0.
    mindur = {
        t.id: (0 if t.id in info.absorbable else int(t.duration)) for t in tasks
    }

    # -- the precedence/order DAG (deduplicated pair set) -----------------
    pairs: Set[Tuple[str, str]] = set()
    for a, b, _ in precedence_pairs(tasks):
        pairs.add((a.id, b.id))
    for a, b, _ in baseline_order_pairs(tasks):
        pairs.add((a.id, b.id))
    ids = [t.id for t in tasks]
    topo = _toposort(ids, pairs)
    if topo is None:  # defensive: a cyclic pair graph proves nothing
        fallback = trivial_info(int(horizon), tasks, cluster_ids)
        fallback.survivors = info.survivors
        fallback.min_wash = info.min_wash
        fallback.max_wash = info.max_wash
        fallback.absorbable = info.absorbable
        fallback.dropped_candidates = info.dropped_candidates
        fallback.presolve_time_s = time.perf_counter() - started
        return fallback

    task_by_id = {t.id: t for t in tasks}
    succs: Dict[str, List[str]] = {i: [] for i in ids}
    preds: Dict[str, List[str]] = {i: [] for i in ids}
    for a, b in pairs:
        succs[a].append(b)
        preds[b].append(a)

    # -- 1. bound propagation --------------------------------------------
    # est: any feasible point has t >= baseline start, and each pair row
    # forces t[succ] >= t[pred] + effective duration (>= mindur).
    est = {i: int(task_by_id[i].start) for i in ids}
    for node in topo:
        for s in succs[node]:
            est[s] = max(est[s], est[node] + mindur[node])
    # lst: T_assay <= horizon and T_assay >= t + mindur cap every start;
    # pair rows propagate the cap backwards.
    lst = {i: int(horizon) - mindur[i] for i in ids}
    for node in reversed(topo):
        for p in preds[node]:
            lst[p] = min(lst[p], lst[node] - mindur[p])
    info.est, info.lst = est, lst

    # -- reachability bitsets over topo positions ------------------------
    pos = {tid: k for k, tid in enumerate(topo)}
    desc = {tid: 0 for tid in topo}
    for tid in reversed(topo):
        acc = 0
        for s in succs[tid]:
            acc |= desc[s] | (1 << pos[s])
        desc[tid] = acc
    anc = {tid: 0 for tid in topo}
    for tid in topo:
        acc = 0
        for p in preds[tid]:
            acc |= anc[p] | (1 << pos[p])
        anc[tid] = acc

    # -- 4. transitive reduction -----------------------------------------
    for a, b in pairs:
        target = 1 << pos[b]
        for m in succs[a]:
            if m != b and (desc[m] | (1 << pos[m])) & target:
                info.redundant_pairs.add((a, b))
                break

    # -- wash windows ------------------------------------------------------
    for cluster in clusters:
        cid = cluster.id
        w_est = 0
        for sid in cluster.source_tasks:
            if sid in est:
                w_est = max(w_est, est[sid] + mindur[sid])
        w_lst = float(horizon) - info.min_wash[cid]
        for bid in cluster.blocking_tasks:
            if bid in lst:
                w_lst = min(w_lst, lst[bid] - info.min_wash[cid])
        info.wash_est[cid] = int(w_est)
        info.wash_lst[cid] = int(math.floor(w_lst))

    # Defensive: a crossed window would mean the propagated bounds proved
    # the baseline infeasible, which the always-feasible formulation rules
    # out — treat it as a propagation bug and keep only the safe parts.
    crossed = any(est[i] > lst[i] for i in ids) or any(
        info.wash_est[cid] > info.wash_lst[cid] for cid in cluster_ids
    )
    if crossed:
        fallback = trivial_info(int(horizon), tasks, cluster_ids)
        fallback.survivors = info.survivors
        fallback.min_wash = info.min_wash
        fallback.max_wash = info.max_wash
        fallback.absorbable = info.absorbable
        fallback.dropped_candidates = info.dropped_candidates
        fallback.presolve_time_s = time.perf_counter() - started
        return fallback

    # -- T_assay floor -----------------------------------------------------
    t_floor = 0
    for tid in ids:
        t_floor = max(t_floor, est[tid] + mindur[tid])
    for cid in cluster_ids:
        t_floor = max(t_floor, int(math.ceil(info.wash_est[cid] + info.min_wash[cid])))
    info.t_floor = min(t_floor, int(horizon))

    # -- 2. provable wash/task orders -------------------------------------
    for cluster in clusters:
        cid = cluster.id
        before_mask = 0
        for sid in cluster.source_tasks:
            if sid in pos:
                before_mask |= anc[sid] | (1 << pos[sid])
        after_mask = 0
        for bid in cluster.blocking_tasks:
            if bid in pos:
                after_mask |= desc[bid] | (1 << pos[bid])
        before: Set[str] = set()
        after: Set[str] = set()
        for tid in ids:
            bit = 1 << pos[tid]
            reach_before = bool(before_mask & bit) or (
                info.lend(tid) <= info.wash_est[cid]
            )
            reach_after = bool(after_mask & bit) or (
                est[tid] >= info.wash_lst[cid] + info.max_wash[cid]
            )
            if reach_before and reach_after:
                continue  # contradictory proof — leave the pair alone
            if reach_before:
                before.add(tid)
            elif reach_after:
                after.add(tid)
        info.before_wash[cid] = frozenset(before)
        info.after_wash[cid] = frozenset(after)

    # -- 2. provable wash/wash orders --------------------------------------
    def wash_provably_before(first, second) -> bool:
        # A blocker of `first` that precedes (or is) a source of `second`
        # chains tw(second) >= end(source) >= t(blocker) >= tw(first)+dur.
        for blk in first.blocking_tasks:
            if blk not in pos:
                continue
            blk_bit = 1 << pos[blk]
            for src in second.source_tasks:
                if blk == src or (src in anc and anc[src] & blk_bit):
                    return True
        # Numeric windows: first cannot end after second may start.
        return info.wash_lst[first.id] + info.max_wash[first.id] <= info.wash_est[second.id]

    for a_idx, a in enumerate(clusters):
        for b in clusters[a_idx + 1:]:
            ab = wash_provably_before(a, b)
            ba = wash_provably_before(b, a)
            if ab != ba:  # exactly one provable direction
                info.wash_order.add((a.id, b.id))

    info.presolve_time_s = time.perf_counter() - started
    return info


def publish(info: PresolveInfo) -> None:
    """Export the reduction counters to the metrics registry."""
    reg = obs_metrics.registry()
    if info.fixed_binaries:
        reg.counter("pdw_ilp_presolve_fixed_binaries_total").inc(info.fixed_binaries)
    if info.dropped_constraints:
        reg.counter("pdw_ilp_presolve_dropped_constraints_total").inc(
            info.dropped_constraints
        )
    if info.dropped_candidates:
        reg.counter("pdw_ilp_presolve_dropped_candidates_total").inc(
            info.dropped_candidates
        )
