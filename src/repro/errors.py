"""Exception hierarchy for the PathDriver-Wash reproduction.

Every error raised by this library derives from :class:`ReproError`, so
downstream users can catch a single base class.  Sub-hierarchies mirror the
package layout: modeling errors (:class:`IlpError`), architecture errors
(:class:`ArchitectureError`), assay errors (:class:`AssayError`), synthesis
errors (:class:`SynthesisError`) and wash-optimization errors
(:class:`WashError`).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class IlpError(ReproError):
    """Base class for ILP modeling/solving errors."""


class ModelError(IlpError):
    """An ILP model was built inconsistently (bad bounds, unknown variable...)."""


class SolverError(IlpError):
    """The backend solver failed or returned an unusable status."""


class InfeasibleError(SolverError):
    """The model was proven infeasible."""

    def __init__(self, message: str = "model is infeasible") -> None:
        super().__init__(message)


class UnboundedError(SolverError):
    """The model was proven unbounded."""

    def __init__(self, message: str = "model is unbounded") -> None:
        super().__init__(message)


class LadderExhausted(SolverError):
    """Every rung of the solver degradation ladder failed to solve.

    Carries the per-rung attempt records
    (:class:`~repro.ilp.portfolio.RungAttempt`) so callers falling back to
    a last-resort heuristic can still report what was tried.
    """

    def __init__(self, message: str = "every solver rung failed", attempts=()) -> None:
        super().__init__(message)
        self.attempts = tuple(attempts)


class ArchitectureError(ReproError):
    """Invalid chip architecture (overlapping devices, detached ports...)."""


class GridError(ArchitectureError):
    """A grid coordinate is out of range or otherwise invalid."""


class RoutingError(ArchitectureError):
    """No route could be established on the channel network."""


class AssayError(ReproError):
    """Invalid bioassay specification (cycles, dangling edges...)."""


class SynthesisError(ReproError):
    """Architectural synthesis failed (unbindable op, unplaceable device...)."""


class SchedulingError(ReproError):
    """A schedule is inconsistent (overlap on a device, negative times...)."""


class WashError(ReproError):
    """Wash optimization failed (no feasible wash path, deadline violated...)."""


class DegradationError(WashError):
    """A chip-degradation spec is malformed or names unknown nodes."""


class DegradedInfeasibleError(WashError):
    """Wash planning is impossible on the degraded chip.

    Raised (and classified as ``infeasible_degraded`` by the suite
    layers) when a degradation leaves no repairable plan — e.g. a failed
    channel sits on a baseline transport that cannot be rerouted, or the
    scheduling ILP is proven infeasible under the degraded candidate
    pools.  Distinct from :class:`DegradationError` (a bad *spec*) and
    from a partial-coverage plan (which is still produced, just reported
    as ``DEGRADED``).
    """


class BenchmarkError(ReproError):
    """Unknown benchmark name or malformed benchmark definition."""
