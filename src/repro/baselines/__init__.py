"""Baseline wash methods the paper compares against.

* :class:`~repro.baselines.dawo.DelayAwareWashOptimizer` — the DAWO method
  of [10] as described in Section IV: per-spot wash operations, BFS wash
  paths, sweep-line time-interval assignment, no necessity analysis and no
  removal integration.
* :func:`~repro.baselines.immediate.immediate_wash_plan` — a naive
  wash-everything-immediately policy, used by the ablation benches as a
  lower anchor.
"""

from repro.baselines.dawo import DelayAwareWashOptimizer, dawo_plan
from repro.baselines.immediate import immediate_wash_plan

__all__ = ["DelayAwareWashOptimizer", "dawo_plan", "immediate_wash_plan"]
