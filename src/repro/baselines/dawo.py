"""The DAWO baseline [10], re-implemented per the paper's description.

"In this method, wash operations are first introduced based on the
positions of contaminated spots.  Next, the breadth-first-search algorithm
is employed to compute wash paths on the chip.  Moreover, a sweep-line
method is used to assign wash operations to appropriate time intervals."
(Section IV.)

Concretely:

* **no necessity analysis** — any contaminated spot that is reused must be
  washed (no Type 2/3 exemptions),
* **no resource sharing** — one wash operation per contaminating task's
  spot group; clusters are never merged,
* **BFS paths** — the wash path runs from the nearest flow port through the
  spots to the nearest waste port, without global optimization over port
  pairs,
* **sweep-line timing** — tasks are replayed in baseline order; each wash
  is inserted at the earliest conflict-free interval before its blocking
  task, delaying the blocked task (and transitively the assay) whenever the
  chip is busy,
* **no removal integration** — excess removals always execute separately.

The generic :class:`SweepLineReplayer` is shared with the eager
wash-immediately ablation baseline (:mod:`repro.baselines.immediate`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.arch.chip import FlowPath
from repro.arch.routing import Router
from repro.contam import ContaminationTracker, NecessityPolicy
from repro.core.config import PDWConfig
from repro.core.plan import WashOperation, WashPlan
from repro.core.stages import NECESSITY_STAGE, REPLAY_STAGE, PDWContext
from repro.core.targets import WashCluster, cluster_requirements, merge_by_blocker
from repro.errors import RoutingError, WashError
from repro.obs.trace import span
from repro.pipeline import ArtifactCache, PipelineRun, StageBase
from repro.schedule.schedule import Schedule
from repro.schedule.tasks import ScheduledTask, TaskKind
from repro.schedule.timeline import Timeline
from repro.synth.synthesis import SynthesisResult


class SweepLineReplayer:
    """Replay a baseline schedule inserting washes heuristically.

    ``eager=False`` (DAWO): each wash is placed as late as the sweep allows,
    just before its first blocking task.  ``eager=True`` (IMMEDIATE): each
    wash is placed as soon as its residues exist.
    """

    def __init__(
        self,
        synthesis: SynthesisResult,
        clusters: Sequence[WashCluster],
        eager: bool = False,
        wash_paths: Optional[Dict[str, FlowPath]] = None,
    ):
        self.synthesis = synthesis
        self.chip = synthesis.chip
        self.router = Router(synthesis.chip)
        self.clusters = list(clusters)
        self.eager = eager
        # Callers with pre-routed paths (the greedy solver fallback) pass
        # them in; DAWO itself routes per its BFS recipe.
        self.wash_paths: Dict[str, FlowPath] = (
            dict(wash_paths)
            if wash_paths is not None
            else {c.id: self._bfs_path(sorted(c.targets)) for c in self.clusters}
        )

    # -- wash construction ---------------------------------------------------------

    def _bfs_path(self, targets: List[str]) -> FlowPath:
        """Nearest flow port -> spots -> nearest waste port (hop-count BFS)."""
        anchor = targets[0]
        fp = self.router.nearest_flow_port(anchor)
        wp = self.router.nearest_waste_port(anchor)
        try:
            return self.router.path_through(fp, targets, wp)
        except RoutingError as exc:
            raise WashError(f"cannot route a wash over {targets}") from exc

    # -- replay -----------------------------------------------------------------------

    def run(self, method: str) -> WashPlan:
        """Rebuild the schedule with washes inserted; return the plan."""
        baseline = self.synthesis.schedule
        order = sorted(baseline.tasks(), key=lambda t: (t.start, t.end, t.id))
        predecessors = _precedence_map(baseline)

        by_blocker: Dict[str, List[WashCluster]] = {}
        by_last_source: Dict[str, List[WashCluster]] = {}
        for cluster in self.clusters:
            first_blocker = min(
                cluster.blocking_tasks, key=lambda b: baseline.get(b).start
            )
            by_blocker.setdefault(first_blocker, []).append(cluster)
            last_source = max(
                cluster.source_tasks, key=lambda s: baseline.get(s).end
            )
            by_last_source.setdefault(last_source, []).append(cluster)

        timeline = Timeline()
        schedule = Schedule()
        actual_end: Dict[str, int] = {}
        wash_span: Dict[str, Tuple[int, int]] = {}
        placed: Set[str] = set()
        # Baseline relative order on every chip node is preserved: the
        # necessity analysis was computed against that order, and the
        # sweep-line may only *delay* tasks, never reorder them.
        node_release: Dict[str, int] = {}

        for task in order:
            if not self.eager:
                for cluster in by_blocker.get(task.id, ()):
                    self._place_wash(
                        cluster, actual_end, timeline, schedule,
                        wash_span, placed, node_release,
                    )
            ready = 0
            for pred in predecessors.get(task.id, ()):
                ready = max(ready, actual_end[pred])
            for node in task.occupied_nodes:
                ready = max(ready, node_release.get(node, 0))
            for cluster in self.clusters:
                if task.id in cluster.blocking_tasks and cluster.id in placed:
                    ready = max(ready, wash_span[cluster.id][1])
            start = timeline.earliest_fit(task.occupied_nodes, ready, task.duration)
            timeline.occupy(task.occupied_nodes, start, task.duration)
            schedule.add(task.at(start))
            actual_end[task.id] = start + task.duration
            for node in task.occupied_nodes:
                node_release[node] = max(node_release.get(node, 0), start + task.duration)
            if self.eager:
                for cluster in by_last_source.get(task.id, ()):
                    self._place_wash(
                        cluster, actual_end, timeline, schedule,
                        wash_span, placed, node_release,
                    )

        for cluster in self.clusters:  # defensive: orphaned clusters run last
            self._place_wash(
                cluster, actual_end, timeline, schedule, wash_span, placed,
                node_release,
            )

        washes = [
            WashOperation(
                id=c.id,
                targets=c.targets,
                path=self.wash_paths[c.id],
                start=wash_span[c.id][0],
                duration=wash_span[c.id][1] - wash_span[c.id][0],
            )
            for c in self.clusters
        ]
        return WashPlan(
            method=method,
            chip=self.chip,
            schedule=schedule,
            washes=washes,
            baseline_schedule=baseline,
            solver_status="heuristic",
            solver_rung="heuristic",
        )

    def _place_wash(
        self,
        cluster: WashCluster,
        actual_end: Dict[str, int],
        timeline: Timeline,
        schedule: Schedule,
        wash_span: Dict[str, Tuple[int, int]],
        placed: Set[str],
        node_release: Dict[str, int],
    ) -> None:
        if cluster.id in placed:
            return
        path = self.wash_paths[cluster.id]
        ready = 0
        for source in cluster.source_tasks:
            # Sources precede their blockers in baseline order, so they
            # have been replayed before the wash is demanded.
            ready = max(ready, actual_end[source])
        for node in path:
            ready = max(ready, node_release.get(node, 0))
        duration = self.chip.wash_time_s(path)
        start = timeline.earliest_fit(path, ready, duration)
        timeline.occupy(path, start, duration)
        schedule.add(
            ScheduledTask(
                id=f"wash:{cluster.id}",
                kind=TaskKind.WASH,
                start=start,
                duration=duration,
                path=path,
            )
        )
        for node in path:
            node_release[node] = max(node_release.get(node, 0), start + duration)
        wash_span[cluster.id] = (start, start + duration)
        placed.add(cluster.id)


class DawoClusterStage(StageBase):
    """DAWO's demand-driven grouping: one cluster per first blocking task."""

    name = "clusters"
    version = "1"
    requires = ("necessity",)
    provides = "clusters"

    def key(self, ctx: PDWContext):
        return (ctx.synthesis_digest, "dawo", ctx.config.necessity.value)

    def compute(self, ctx: PDWContext) -> List[WashCluster]:
        baseline = ctx.synthesis.schedule
        clusters = cluster_requirements(
            ctx.synthesis.chip, ctx.necessity.required, merge=False
        )
        first_blocker = {
            c.id: min(c.blocking_tasks, key=lambda b: baseline.get(b).start)
            for c in clusters
        }
        return merge_by_blocker(ctx.synthesis.chip, clusters, first_blocker)

    def counters(self, clusters: List[WashCluster]) -> Dict[str, float]:
        return {
            "clusters": float(len(clusters)),
            "targets": float(sum(len(c.targets) for c in clusters)),
        }


class SweepLineStage(StageBase):
    """BFS wash paths + sweep-line placement, assembling the DAWO plan."""

    name = "sweepline"
    version = "1"
    requires = ("clusters",)
    provides = "plan"

    def key(self, ctx: PDWContext):
        return (ctx.synthesis_digest, "dawo", ctx.config.necessity.value)

    def compute(self, ctx: PDWContext) -> WashPlan:
        replayer = SweepLineReplayer(ctx.synthesis, ctx.clusters, eager=False)
        return replayer.run(method="DAWO")

    def counters(self, plan: WashPlan) -> Dict[str, float]:
        return {
            "washes": float(plan.n_wash),
            "t_assay_s": float(plan.t_assay),
        }


DAWO_CLUSTER_STAGE = DawoClusterStage()
SWEEPLINE_STAGE = SweepLineStage()

#: The DAWO method as an ordered stage chain (replay/necessity are shared
#: with PDW); consumed by the suite DAG alongside
#: :data:`repro.core.stages.PDW_PIPELINE`.
DAWO_PIPELINE = (
    REPLAY_STAGE,
    NECESSITY_STAGE,
    DAWO_CLUSTER_STAGE,
    SWEEPLINE_STAGE,
)

#: Config carrier for the DAWO pipeline: only the necessity policy matters.
DAWO_CONFIG = PDWConfig(necessity=NecessityPolicy.REUSE_CONFLICT)
_DAWO_CONFIG = DAWO_CONFIG


class DelayAwareWashOptimizer:
    """DAWO: demand-driven washes with BFS paths and sweep-line timing.

    Rebased onto the same staged pipeline as PDW: the contamination
    *replay* artifact is keyed identically to PDW's, so the two methods
    share it (in-process via ``tracker=``, across processes via ``cache``)
    instead of each re-replaying the baseline schedule.
    """

    def __init__(
        self,
        synthesis: SynthesisResult,
        cache: Optional[ArtifactCache] = None,
        tracker: Optional[ContaminationTracker] = None,
    ):
        self.synthesis = synthesis
        self.cache = cache
        self.tracker = tracker

    def run(self) -> WashPlan:
        """Build the DAWO wash plan."""
        with span("dawo", assay=self.synthesis.assay.name):
            return self._run()

    def _run(self) -> WashPlan:
        ctx = PDWContext(synthesis=self.synthesis, config=_DAWO_CONFIG)
        run = PipelineRun(label=f"DAWO:{self.synthesis.assay.name}", cache=self.cache)

        if self.tracker is not None:
            ctx.tracker = self.tracker
            run.provided(REPLAY_STAGE.name, REPLAY_STAGE.counters(self.tracker))
        else:
            ctx.tracker = run.run_stage(REPLAY_STAGE, ctx)
        ctx.necessity = run.run_stage(NECESSITY_STAGE, ctx)
        ctx.clusters = run.run_stage(DAWO_CLUSTER_STAGE, ctx)
        plan = run.run_stage(SWEEPLINE_STAGE, ctx)

        plan.notes["necessity_events"] = float(ctx.necessity.total_events)
        plan.notes["requirements"] = float(len(ctx.necessity.required))
        plan.report = run.report
        plan.notes.update(run.report.flat())
        return plan


def _precedence_map(schedule: Schedule) -> Dict[str, List[str]]:
    """Structural predecessors of each task (Eqs. 2, 4, 5 analogs)."""
    op_task: Dict[str, ScheduledTask] = {
        t.op_id: t for t in schedule.tasks() if t.kind is TaskKind.OPERATION
    }
    by_edge: Dict[Tuple[str, str], Dict[TaskKind, ScheduledTask]] = {}
    for task in schedule.tasks():
        if task.edge is not None:
            by_edge.setdefault(task.edge, {})[task.kind] = task

    preds: Dict[str, List[str]] = {}

    def add(task: Optional[ScheduledTask], pred: Optional[ScheduledTask]) -> None:
        if task is not None and pred is not None:
            preds.setdefault(task.id, []).append(pred.id)

    for (src, dst), group in by_edge.items():
        transport = group.get(TaskKind.TRANSPORT)
        removal = group.get(TaskKind.REMOVAL)
        waste = group.get(TaskKind.WASTE)
        producer = op_task.get(src)
        consumer = op_task.get(dst)
        add(transport, producer)
        add(removal, transport)
        if removal is not None:
            add(consumer, removal)
        elif transport is not None:
            add(consumer, transport)
        else:
            add(consumer, producer)
        add(waste, producer)
    return preds


def dawo_plan(
    synthesis: SynthesisResult,
    verify: bool = True,
    cache: Optional[ArtifactCache] = None,
    tracker: Optional[ContaminationTracker] = None,
) -> WashPlan:
    """Convenience wrapper: run DAWO on a synthesis result."""
    plan = DelayAwareWashOptimizer(synthesis, cache=cache, tracker=tracker).run()
    if verify:
        from repro.core.pdw import verify_plan
        from repro.sim.validate import validate_plan

        verify_plan(plan)
        validate_plan(plan, synthesis)
    return plan
