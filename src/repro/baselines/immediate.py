"""A wash-immediately baseline for ablation studies.

Section II-A motivates necessity analysis by observing that washing "all
the contaminated resources ... immediately during assay execution" occupies
many channels and delays the assay.  This baseline quantifies that: it uses
PDW's own necessity analysis (so it washes no dead spots) but places each
wash *eagerly* — as soon as the residues exist — instead of choosing an
optimized time window, and performs no removal integration and no cluster
merging.
"""

from __future__ import annotations

from typing import Optional

from repro.contam import ContaminationTracker, NecessityPolicy, wash_requirements
from repro.core.plan import WashPlan
from repro.core.targets import cluster_requirements
from repro.synth.synthesis import SynthesisResult


def immediate_wash_plan(
    synthesis: SynthesisResult,
    verify: bool = True,
    tracker: Optional[ContaminationTracker] = None,
) -> WashPlan:
    """Eager-wash plan: necessary washes executed as early as possible.

    ``tracker`` optionally shares a pre-computed contamination replay of
    the same synthesis (see :mod:`repro.pipeline`).
    """
    from repro.baselines.dawo import SweepLineReplayer

    if tracker is None:
        tracker = ContaminationTracker(synthesis.chip, synthesis.schedule)
    report = wash_requirements(tracker, synthesis.assay, NecessityPolicy.PDW)
    clusters = cluster_requirements(synthesis.chip, report.required, merge=False)

    replayer = SweepLineReplayer(synthesis, clusters, eager=True)
    plan = replayer.run(method="IMMEDIATE")
    plan.notes["necessity_events"] = float(report.total_events)
    if verify:
        from repro.core.pdw import verify_plan
        from repro.sim.validate import validate_plan

        verify_plan(plan)
        validate_plan(plan, synthesis)
    return plan
