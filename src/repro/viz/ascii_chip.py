"""ASCII rendering of chip layouts.

Nodes are drawn at their layout coordinates (when present): flow ports as
``I``, waste ports as ``O``, devices by the first letter of their kind, and
channel junctions as ``+``; channel segments appear as ``-``/``|`` runs.
Optionally a flow path is highlighted with ``*``.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.arch.chip import Chip, NodeKind

#: characters per grid cell on the canvas (room for segment glyphs).
_SCALE = 2


def _glyph(chip: Chip, node: str) -> str:
    kind = chip.kind_of(node)
    if kind is NodeKind.FLOW_PORT:
        return "I"
    if kind is NodeKind.WASTE_PORT:
        return "O"
    if kind is NodeKind.DEVICE:
        return chip.devices[node].kind.value[0].upper()
    return "+"


def render_chip(chip: Chip, highlight: Optional[Sequence[str]] = None) -> str:
    """Render ``chip`` as ASCII art; returns a placeholder without positions."""
    positions: Dict[str, Tuple[float, float]] = {}
    for node in chip.graph.nodes:
        pos = chip.position(node)
        if pos is not None:
            positions[node] = pos
    if not positions:
        return f"(chip {chip.name!r}: no layout coordinates to draw)\n"

    xs = [int(round(p[0])) for p in positions.values()]
    ys = [int(round(p[1])) for p in positions.values()]
    min_x, min_y = min(xs), min(ys)
    width = (max(xs) - min_x) * _SCALE + 1
    height = (max(ys) - min_y) * _SCALE + 1
    canvas = [[" "] * width for _ in range(height)]
    marked = set(highlight or ())

    def cell(node: str) -> Tuple[int, int]:
        px, py = positions[node]
        return (
            (int(round(px)) - min_x) * _SCALE,
            (int(round(py)) - min_y) * _SCALE,
        )

    # channel segments first, then node glyphs on top
    for a, b in chip.graph.edges:
        if a not in positions or b not in positions:
            continue
        ax, ay = cell(a)
        bx, by = cell(b)
        mx, my = (ax + bx) // 2, (ay + by) // 2
        glyph = "-" if ay == by else ("|" if ax == bx else ".")
        canvas[my][mx] = glyph
    for node in positions:
        x, y = cell(node)
        canvas[y][x] = "*" if node in marked else _glyph(chip, node)

    legend = (
        "I=flow port  O=waste port  +=junction  "
        "M/H/D/F/S=device kinds" + ("  *=highlighted" if marked else "")
    )
    body = "\n".join("".join(row).rstrip() for row in canvas)
    return f"chip {chip.name!r}\n{body}\n{legend}\n"
