"""SVG rendering of chip layouts and wash paths.

Produces standalone SVG documents (no dependencies) for papers, docs and
debugging: channels as lines, junctions as small dots, devices as rounded
rectangles labeled by name, flow ports as green triangles and waste ports
as red squares.  Wash paths (or any flow path) can be drawn as colored
overlays.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.chip import Chip, FlowPath, NodeKind

#: Drawing scale: layout units to SVG pixels.
_SCALE = 48.0
_MARGIN = 40.0

#: Overlay colors cycled across highlighted paths.
_PATH_COLORS = ("#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b")


def _positions(chip: Chip) -> Dict[str, Tuple[float, float]]:
    positions = {}
    for node in chip.graph.nodes:
        pos = chip.position(node)
        if pos is not None:
            positions[node] = pos
    return positions


def render_svg(
    chip: Chip,
    paths: Optional[Sequence[FlowPath]] = None,
    labels: bool = True,
) -> str:
    """Render ``chip`` (plus optional path overlays) as an SVG document.

    Nodes without layout coordinates are skipped; a chip with no
    coordinates at all yields a document with an explanatory comment.
    """
    positions = _positions(chip)
    if not positions:
        return (
            '<svg xmlns="http://www.w3.org/2000/svg" width="10" height="10">'
            f"<!-- chip {chip.name!r} has no layout coordinates --></svg>"
        )

    min_x = min(p[0] for p in positions.values())
    min_y = min(p[1] for p in positions.values())

    def xy(node: str) -> Tuple[float, float]:
        px, py = positions[node]
        return (
            _MARGIN + (px - min_x) * _SCALE,
            _MARGIN + (py - min_y) * _SCALE,
        )

    width = _MARGIN * 2 + (max(p[0] for p in positions.values()) - min_x) * _SCALE
    height = _MARGIN * 2 + (max(p[1] for p in positions.values()) - min_y) * _SCALE

    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0f}" '
        f'height="{height:.0f}" viewBox="0 0 {width:.0f} {height:.0f}">',
        f"<!-- chip {chip.name} -->",
        '<rect width="100%" height="100%" fill="white"/>',
    ]

    # channels
    for a, b in chip.graph.edges:
        if a not in positions or b not in positions:
            continue
        (x1, y1), (x2, y2) = xy(a), xy(b)
        parts.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" y2="{y2:.1f}" '
            'stroke="#999" stroke-width="4" stroke-linecap="round"/>'
        )

    # path overlays
    for i, path in enumerate(paths or ()):
        color = _PATH_COLORS[i % len(_PATH_COLORS)]
        points = " ".join(
            f"{xy(n)[0]:.1f},{xy(n)[1]:.1f}" for n in path if n in positions
        )
        parts.append(
            f'<polyline points="{points}" fill="none" stroke="{color}" '
            'stroke-width="7" stroke-opacity="0.55" stroke-linecap="round" '
            'stroke-linejoin="round"/>'
        )

    # nodes on top
    for node in positions:
        x, y = xy(node)
        kind = chip.kind_of(node)
        if kind is NodeKind.DEVICE:
            parts.append(
                f'<rect x="{x - 16:.1f}" y="{y - 12:.1f}" width="32" height="24" '
                'rx="6" fill="#ffd966" stroke="#7f6000" stroke-width="2"/>'
            )
            if labels:
                parts.append(
                    f'<text x="{x:.1f}" y="{y - 16:.1f}" font-size="11" '
                    f'text-anchor="middle" font-family="sans-serif">{node}</text>'
                )
        elif kind is NodeKind.FLOW_PORT:
            parts.append(
                f'<polygon points="{x - 9:.1f},{y + 7:.1f} {x + 9:.1f},{y + 7:.1f} '
                f'{x:.1f},{y - 9:.1f}" fill="#6aa84f" stroke="#274e13" '
                'stroke-width="2"/>'
            )
            if labels:
                parts.append(
                    f'<text x="{x:.1f}" y="{y + 22:.1f}" font-size="11" '
                    f'text-anchor="middle" font-family="sans-serif">{node}</text>'
                )
        elif kind is NodeKind.WASTE_PORT:
            parts.append(
                f'<rect x="{x - 8:.1f}" y="{y - 8:.1f}" width="16" height="16" '
                'fill="#e06666" stroke="#660000" stroke-width="2"/>'
            )
            if labels:
                parts.append(
                    f'<text x="{x:.1f}" y="{y + 22:.1f}" font-size="11" '
                    f'text-anchor="middle" font-family="sans-serif">{node}</text>'
                )
        else:
            parts.append(
                f'<circle cx="{x:.1f}" cy="{y:.1f}" r="4" fill="#444"/>'
            )

    parts.append("</svg>")
    return "\n".join(parts)
