"""Text visualization helpers used by the examples."""

from repro.viz.ascii_chip import render_chip
from repro.schedule.gantt import render_gantt

__all__ = ["render_chip", "render_gantt"]
