"""Seeded random sequencing-graph generator for the synthetic benchmarks.

The generator targets exact |O| and |E| counts (|E| per the Table II
convention: reagent-input edges + operation-operation edges + terminal
output edges).  It first wires a random layered DAG where every operation
has one producer, then adds extra reagent inputs until the edge budget is
met — deterministic for a given seed.
"""

from __future__ import annotations

import random
from typing import List

from repro.assay.graph import Operation, Reagent, SequencingGraph
from repro.errors import BenchmarkError

#: Operation types the generator draws from (weighted toward mixing, like
#: real assays).
_OP_POOL = ["mix", "mix", "mix", "dilute", "heat", "detect", "incubate"]

#: Reagent fluid types to cycle through.
_FLUID_POOL = [
    "sample", "reagent-a", "reagent-b", "enzyme", "buffer-salt",
    "dye", "primer", "substrate", "acid", "base",
]


def synthetic_assay(name: str, n_ops: int, n_edges: int, seed: int) -> SequencingGraph:
    """Generate a synthetic assay with exactly ``n_ops`` and ``n_edges``.

    Raises :class:`BenchmarkError` when the edge budget is infeasible for
    the operation count (each op needs >= 1 input; pass-through ops take
    exactly one).
    """
    if n_ops < 1:
        raise BenchmarkError("need at least one operation")
    rng = random.Random(seed)
    graph = SequencingGraph(name)

    ops: List[Operation] = []
    reagent_count = 0

    def new_reagent() -> str:
        nonlocal reagent_count
        reagent_count += 1
        fluid = _FLUID_POOL[(reagent_count - 1) % len(_FLUID_POOL)]
        rid = f"r{reagent_count}"
        graph.add_reagent(Reagent(rid, f"{fluid}-{reagent_count}"))
        return rid

    # Spanning pass: each op consumes one producer.  The open-output count
    # is steered toward ``target_terminals`` so the minimum edge total
    # (one input per op + one terminal edge per open output) stays within
    # the requested budget.
    slack = n_edges - n_ops
    if slack < 1:
        raise BenchmarkError(f"{name}: edge budget {n_edges} < |O|+1")
    target_terminals = max(1, min(slack, max(1, n_ops // 5)))
    for i in range(1, n_ops + 1):
        op_type = rng.choice(_OP_POOL)
        op = Operation(f"o{i}", op_type)
        open_ops = [o.id for o in ops if not graph.consumers_of(o.id)]
        if open_ops and (
            len(open_ops) >= target_terminals or rng.random() < 0.35
        ):
            producer = rng.choice(open_ops)
        else:
            producer = new_reagent()
        graph.add_operation(op, inputs=[producer])
        ops.append(op)

    # Top-up pass: add reagent inputs to transformative ops until the edge
    # budget (dependency edges + terminal outputs) is met.
    def current_edges() -> int:
        return graph.edge_count

    if current_edges() > n_edges:
        raise BenchmarkError(
            f"{name}: minimum edge count {current_edges()} exceeds target {n_edges}"
        )
    eligible = [
        op.id for op in ops if op.op_type not in ("detect", "store")
    ]
    if not eligible and current_edges() < n_edges:
        raise BenchmarkError(f"{name}: no operation can take extra inputs")
    i = 0
    while current_edges() < n_edges:
        # Adding a reagent edge never changes the terminal count, so each
        # addition moves the total by exactly one.
        target = eligible[i % len(eligible)]
        graph.add_input(target, new_reagent())
        i += 1

    graph.validate()
    if graph.operation_count != n_ops or graph.edge_count != n_edges:
        raise BenchmarkError(
            f"{name}: generator produced |O|={graph.operation_count}, "
            f"|E|={graph.edge_count}, wanted {n_ops}/{n_edges}"
        )
    return graph
