"""The eight Table II benchmarks.

Each benchmark carries a sequencing-graph factory, the device inventory of
its library (|D| devices), and the paper's published Table II numbers for
DAWO and PDW, used by the experiment harness when reporting
paper-vs-measured comparisons.

Sizes follow Table II column 2 exactly (|E| per the convention documented
in :mod:`repro.assay.graph`):

=============  ====  ====  ====
benchmark      |O|   |D|   |E|
=============  ====  ====  ====
PCR              7     5    15
IVD             12     9    24
ProteinSplit    14    11    27
Kinase act-1     4     9    16
Kinase act-2    12     9    48
Synthetic1      10    12    15
Synthetic2      15    13    24
Synthetic3      20    18    28
=============  ====  ====  ====
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.arch.device import DeviceKind
from repro.assay.graph import Operation, Reagent, SequencingGraph
from repro.bench.synthetic import synthetic_assay
from repro.errors import BenchmarkError

#: Published Table II rows: (N_wash, L_wash mm, T_delay s, T_assay s).
PaperRow = Tuple[int, int, int, int]


@dataclass(frozen=True)
class BenchmarkSpec:
    """One benchmark: assay factory + device inventory + paper numbers."""

    name: str
    build: Callable[[], SequencingGraph]
    inventory: Dict[DeviceKind, int]
    expected_ops: int
    expected_devices: int
    expected_edges: int
    paper_dawo: PaperRow
    paper_pdw: PaperRow

    @property
    def device_total(self) -> int:
        """|D| — total devices in the inventory."""
        return sum(self.inventory.values())


# ---------------------------------------------------------------------------
# real-life assays
# ---------------------------------------------------------------------------

def build_pcr() -> SequencingGraph:
    """PCR master-mix preparation: a binary mixing tree over 8 reagents."""
    g = SequencingGraph("PCR")
    reagents = [
        "primer-f", "primer-r", "template", "polymerase",
        "dntp", "mg-cl2", "kcl", "gelatin",
    ]
    for i, fluid in enumerate(reagents, start=1):
        g.add_reagent(Reagent(f"r{i}", fluid))
    for i in range(4):  # first mixing level
        g.add_operation(Operation(f"o{i + 1}", "mix"), [f"r{2 * i + 1}", f"r{2 * i + 2}"])
    g.add_operation(Operation("o5", "mix"), ["o1", "o2"])
    g.add_operation(Operation("o6", "mix"), ["o3", "o4"])
    g.add_operation(Operation("o7", "mix"), ["o5", "o6"])
    return g


def build_ivd() -> SequencingGraph:
    """In-vitro diagnostics: four sample/reagent chains (mix-dilute-detect)."""
    g = SequencingGraph("IVD")
    for i in range(1, 5):
        g.add_reagent(Reagent(f"s{i}", f"serum-{i}"))
        g.add_reagent(Reagent(f"g{i}", f"glucose-agent-{i}"))
        g.add_reagent(Reagent(f"b{i}", f"diluent-{i}"))
    for i in range(1, 5):
        g.add_operation(Operation(f"mix{i}", "mix"), [f"s{i}", f"g{i}"])
        g.add_operation(Operation(f"dil{i}", "dilute"), [f"mix{i}", f"b{i}"])
        g.add_operation(Operation(f"det{i}", "detect"), [f"dil{i}"])
    return g


def build_protein_split() -> SequencingGraph:
    """Protein dilution: split tree with exponential dilution and detection."""
    g = SequencingGraph("ProteinSplit")
    g.add_reagent(Reagent("r1", "protein-sample"))
    g.add_reagent(Reagent("r2", "assay-buffer"))
    for i in range(3, 9):
        g.add_reagent(Reagent(f"r{i}", f"diluent-{i}"))
    g.add_reagent(Reagent("r9", "salt-a"))
    g.add_reagent(Reagent("r10", "salt-b"))
    g.add_operation(Operation("o1", "mix"), ["r1", "r2"])
    g.add_operation(Operation("o2", "split"), ["o1"])
    g.add_operation(Operation("o3", "dilute"), ["o2", "r3", "r9"])
    g.add_operation(Operation("o4", "dilute"), ["o2", "r4", "r10"])
    g.add_operation(Operation("o5", "split"), ["o3"])
    g.add_operation(Operation("o6", "split"), ["o4"])
    g.add_operation(Operation("o7", "dilute"), ["o5", "r5"])
    g.add_operation(Operation("o8", "dilute"), ["o5", "r6"])
    g.add_operation(Operation("o9", "dilute"), ["o6", "r7"])
    g.add_operation(Operation("o10", "dilute"), ["o6", "r8"])
    for i, src in enumerate(("o7", "o8", "o9", "o10"), start=11):
        g.add_operation(Operation(f"o{i}", "detect"), [src])
    return g


def build_kinase1() -> SequencingGraph:
    """Kinase activity (single batch): two large mixes, incubation, readout."""
    g = SequencingGraph("Kinase-act-1")
    for i in range(1, 7):
        g.add_reagent(Reagent(f"r{i}", f"kinase-buffer-{i}"))
    for i in range(7, 12):
        g.add_reagent(Reagent(f"r{i}", f"substrate-{i}"))
    g.add_reagent(Reagent("r12", "atp"))
    g.add_operation(Operation("o1", "mix"), [f"r{i}" for i in range(1, 7)])
    g.add_operation(Operation("o2", "mix"), ["o1"] + [f"r{i}" for i in range(7, 12)])
    g.add_operation(Operation("o3", "incubate"), ["o2", "r12"])
    g.add_operation(Operation("o4", "detect"), ["o3"])
    return g


def build_kinase2() -> SequencingGraph:
    """Kinase activity (three replicates sharing one reagent library)."""
    g = SequencingGraph("Kinase-act-2")
    for i in range(1, 7):
        g.add_reagent(Reagent(f"r{i}", f"kinase-buffer-{i}"))
    for i in range(7, 12):
        g.add_reagent(Reagent(f"r{i}", f"substrate-{i}"))
    g.add_reagent(Reagent("r12", "atp"))
    for k in range(1, 4):
        g.add_operation(Operation(f"mixA{k}", "mix"), [f"r{i}" for i in range(1, 7)])
        g.add_operation(
            Operation(f"mixB{k}", "mix"),
            [f"mixA{k}"] + [f"r{i}" for i in range(7, 12)],
        )
        g.add_operation(Operation(f"inc{k}", "incubate"), [f"mixB{k}", "r12"])
        g.add_operation(Operation(f"det{k}", "detect"), [f"inc{k}"])
    return g


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

BENCHMARKS: Dict[str, BenchmarkSpec] = {
    spec.name: spec
    for spec in (
        BenchmarkSpec(
            name="PCR",
            build=build_pcr,
            inventory={DeviceKind.MIXER: 4, DeviceKind.DETECTOR: 1},
            expected_ops=7, expected_devices=5, expected_edges=15,
            paper_dawo=(4, 110, 10, 33), paper_pdw=(3, 80, 7, 30),
        ),
        BenchmarkSpec(
            name="IVD",
            build=build_ivd,
            inventory={DeviceKind.MIXER: 4, DeviceKind.DETECTOR: 4, DeviceKind.HEATER: 1},
            expected_ops=12, expected_devices=9, expected_edges=24,
            paper_dawo=(10, 200, 21, 51), paper_pdw=(6, 150, 16, 46),
        ),
        BenchmarkSpec(
            name="ProteinSplit",
            build=build_protein_split,
            inventory={
                DeviceKind.MIXER: 4,
                DeviceKind.SEPARATOR: 3,
                DeviceKind.DETECTOR: 4,
            },
            expected_ops=14, expected_devices=11, expected_edges=27,
            paper_dawo=(12, 220, 15, 110), paper_pdw=(10, 160, 7, 102),
        ),
        BenchmarkSpec(
            name="Kinase-act-1",
            build=build_kinase1,
            inventory={
                DeviceKind.MIXER: 3,
                DeviceKind.INCUBATOR: 2,
                DeviceKind.DETECTOR: 2,
                DeviceKind.HEATER: 1,
                DeviceKind.STORAGE: 1,
            },
            expected_ops=4, expected_devices=9, expected_edges=16,
            paper_dawo=(3, 80, 5, 38), paper_pdw=(3, 60, 3, 36),
        ),
        BenchmarkSpec(
            name="Kinase-act-2",
            build=build_kinase2,
            inventory={
                DeviceKind.MIXER: 3,
                DeviceKind.INCUBATOR: 3,
                DeviceKind.DETECTOR: 3,
            },
            expected_ops=12, expected_devices=9, expected_edges=48,
            paper_dawo=(17, 250, 33, 87), paper_pdw=(13, 190, 25, 79),
        ),
        BenchmarkSpec(
            name="Synthetic1",
            build=lambda: synthetic_assay("Synthetic1", n_ops=10, n_edges=15, seed=101),
            inventory={
                DeviceKind.MIXER: 5,
                DeviceKind.HEATER: 3,
                DeviceKind.DETECTOR: 2,
                DeviceKind.INCUBATOR: 2,
            },
            expected_ops=10, expected_devices=12, expected_edges=15,
            paper_dawo=(10, 290, 19, 58), paper_pdw=(8, 220, 13, 52),
        ),
        BenchmarkSpec(
            name="Synthetic2",
            build=lambda: synthetic_assay("Synthetic2", n_ops=15, n_edges=24, seed=202),
            inventory={
                DeviceKind.MIXER: 6,
                DeviceKind.HEATER: 3,
                DeviceKind.DETECTOR: 2,
                DeviceKind.INCUBATOR: 2,
            },
            expected_ops=15, expected_devices=13, expected_edges=24,
            paper_dawo=(16, 300, 29, 78), paper_pdw=(16, 260, 21, 70),
        ),
        BenchmarkSpec(
            name="Synthetic3",
            build=lambda: synthetic_assay("Synthetic3", n_ops=20, n_edges=28, seed=303),
            inventory={
                DeviceKind.MIXER: 8,
                DeviceKind.HEATER: 4,
                DeviceKind.DETECTOR: 3,
                DeviceKind.INCUBATOR: 3,
            },
            expected_ops=20, expected_devices=18, expected_edges=28,
            paper_dawo=(18, 460, 35, 92), paper_pdw=(15, 320, 23, 80),
        ),
    )
}


def benchmark_names() -> List[str]:
    """The eight benchmark names in Table II order."""
    return list(BENCHMARKS)


def benchmark(name: str) -> BenchmarkSpec:
    """Look up a benchmark spec by name."""
    try:
        return BENCHMARKS[name]
    except KeyError:
        raise BenchmarkError(
            f"unknown benchmark {name!r}; known: {', '.join(BENCHMARKS)}"
        ) from None


def load_benchmark(name: str) -> SequencingGraph:
    """Build the sequencing graph of a named benchmark (validated)."""
    spec = benchmark(name)
    graph = spec.build()
    graph.validate()
    if graph.operation_count != spec.expected_ops:
        raise BenchmarkError(
            f"{name}: |O|={graph.operation_count}, expected {spec.expected_ops}"
        )
    if graph.edge_count != spec.expected_edges:
        raise BenchmarkError(
            f"{name}: |E|={graph.edge_count}, expected {spec.expected_edges}"
        )
    if spec.device_total != spec.expected_devices:
        raise BenchmarkError(
            f"{name}: inventory has {spec.device_total} devices, "
            f"expected {spec.expected_devices}"
        )
    return graph
