"""The paper's benchmark suite (Table II, column 2).

Five real-life bioassays — PCR, IVD, ProteinSplit, Kinase act-1/2 — plus
three synthetic benchmarks, each matching the published
|O| (operations) / |D| (devices) / |E| (edges) sizes.  See
:mod:`repro.bench.library` for the assay constructions and
:mod:`repro.bench.synthetic` for the seeded random-DAG generator.
"""

from repro.bench.library import (
    BENCHMARKS,
    BenchmarkSpec,
    benchmark,
    benchmark_names,
    load_benchmark,
)
from repro.bench.synthetic import synthetic_assay

__all__ = [
    "BENCHMARKS",
    "BenchmarkSpec",
    "benchmark",
    "benchmark_names",
    "load_benchmark",
    "synthetic_assay",
]
