"""PathDriver-style architectural synthesis.

The paper obtains chip architectures and assay schedules from the
PathDriver+ synthesis tool [12]; this package rebuilds that substrate:

1. **binding** — assign each biochemical operation to a compatible device
   (:mod:`repro.synth.binding`),
2. **placement + channel routing** — place the devices and ports on the
   virtual grid and etch a channel network connecting them
   (:mod:`repro.synth.layout`),
3. **scheduling** — a conflict-aware list scheduler that times operations,
   reagent injections, intermediate transports (:math:`p_{j,i,1}`), excess
   removals (:math:`p_{j,i,2}`) and waste disposals
   (:mod:`repro.synth.scheduler`),
4. **orchestration** — :func:`~repro.synth.synthesis.synthesize` runs the
   whole flow and returns a :class:`~repro.synth.synthesis.SynthesisResult`
   that the wash optimizers consume.
"""

from repro.synth.binding import Binding, bind_operations, derive_inventory
from repro.synth.layout import ArchSpec, generate_layout
from repro.synth.scheduler import ListScheduler
from repro.synth.synthesis import SynthesisResult, synthesize

__all__ = [
    "ArchSpec",
    "Binding",
    "ListScheduler",
    "SynthesisResult",
    "bind_operations",
    "derive_inventory",
    "generate_layout",
    "synthesize",
]
