"""Device placement and channel routing on the virtual grid.

The generated layouts follow a regular template that keeps every synthesis
run routable and deterministic:

* devices sit on interior grid cells, four cells apart, row-major;
* each device column gets two full-height vertical channel corridors, one
  cell to the left and one to the right of the device, and the device
  attaches to them through its two horizontal neighbors — so, like the
  paper's devices, every device has exactly two channel ends (fill + air
  release) and is never crossed by through-traffic;
* one horizontal corridor runs two rows below each device row, turning the
  corridor set into a mesh with junction cells where corridors cross;
* the grid boundary is a channel *ring* carrying all flow and waste ports.

All occupied cells become nodes of the chip flow network; adjacent occupied
cells are connected by channel segments of one cell pitch.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import networkx as nx

from repro.arch.chip import Chip, NodeKind
from repro.arch.device import Device
from repro.arch.grid import Cell, Grid
from repro.errors import SynthesisError
from repro.units import PhysicalParameters, DEFAULT_PARAMETERS

#: Cell spacing of the placement template (see module docstring).
_PITCH = 4


@dataclass(frozen=True)
class ArchSpec:
    """Sizing knobs for layout generation."""

    flow_ports: int = 4
    waste_ports: int = 4

    def __post_init__(self) -> None:
        if self.flow_ports < 1 or self.waste_ports < 1:
            raise SynthesisError("layouts need at least one flow and one waste port")


def _device_positions(n_devices: int) -> Tuple[Grid, List[Cell]]:
    """Grid dimensions and interior device cells for ``n_devices``."""
    cols = max(1, math.ceil(math.sqrt(n_devices)))
    rows = math.ceil(n_devices / cols)
    width = max(_PITCH * cols + 1, 7)
    height = max(_PITCH * rows + 2, 7)
    grid = Grid(width, height)
    cells = []
    for i in range(n_devices):
        r, c = divmod(i, cols)
        cells.append(grid.require((2 + _PITCH * c, 2 + _PITCH * r)))
    return grid, cells


def _spread_indices(total: int, count: int, offset: int) -> List[int]:
    """``count`` indices spread evenly around a ring of ``total`` positions."""
    if count > total:
        raise SynthesisError(f"cannot place {count} ports on a ring of {total} cells")
    step = total / count
    return sorted({(offset + round(i * step)) % total for i in range(count)})


def generate_layout(
    devices: Sequence[Device],
    spec: ArchSpec = ArchSpec(),
    name: str = "synth",
    parameters: PhysicalParameters = DEFAULT_PARAMETERS,
) -> Chip:
    """Place ``devices`` and route the channel network; returns the chip."""
    if not devices:
        raise SynthesisError("cannot generate a layout without devices")

    grid, device_cells = _device_positions(len(devices))
    occupied: Dict[Cell, Tuple[str, NodeKind]] = {}

    for device, cell in zip(devices, device_cells):
        occupied[cell] = (device.name, NodeKind.DEVICE)

    # Boundary ring with ports.  Flow ports start near the top-left corner,
    # waste ports are offset so inlets and outlets interleave.
    ring = grid.boundary_cells()
    flow_idx = _spread_indices(len(ring), spec.flow_ports, offset=1)
    waste_idx = _spread_indices(
        len(ring), spec.waste_ports, offset=1 + round(len(ring) / (2 * spec.waste_ports))
    )
    waste_idx = [i for i in waste_idx if i not in set(flow_idx)]
    shortfall = spec.waste_ports - len(waste_idx)
    if shortfall:
        free = [i for i in range(len(ring)) if i not in set(flow_idx) | set(waste_idx)]
        waste_idx.extend(free[:shortfall])
    flow_names, waste_names = [], []
    for n, idx in enumerate(flow_idx, start=1):
        occupied[ring[idx]] = (f"in{n}", NodeKind.FLOW_PORT)
        flow_names.append(f"in{n}")
    for n, idx in enumerate(sorted(waste_idx), start=1):
        occupied[ring[idx]] = (f"out{n}", NodeKind.WASTE_PORT)
        waste_names.append(f"out{n}")
    for cell in ring:
        occupied.setdefault(cell, (f"c{cell[0]}_{cell[1]}", NodeKind.CHANNEL))

    def etch(cell: Cell) -> None:
        occupied.setdefault(cell, (f"c{cell[0]}_{cell[1]}", NodeKind.CHANNEL))

    # Vertical corridors flanking every device column.
    device_cols = sorted({cell[0] for cell in device_cells})
    device_rows = sorted({cell[1] for cell in device_cells})
    for x in device_cols:
        for corridor_x in (x - 1, x + 1):
            for y in range(1, grid.height - 1):
                etch((corridor_x, y))

    # Horizontal corridors two rows below each device row (never adjacent to
    # a device cell, so devices keep exactly two channel ends).
    for y_dev in device_rows:
        y = min(y_dev + 2, grid.height - 2)
        for x in range(1, grid.width - 1):
            etch((x, y))

    # Assemble the graph: adjacent occupied cells are channel segments.
    graph = nx.Graph()
    for cell, (node, kind) in occupied.items():
        graph.add_node(node, kind=kind, pos=(float(cell[0]), float(cell[1])))
    for cell, (node, _) in occupied.items():
        for neighbor in grid.neighbors(cell):
            if neighbor in occupied:
                graph.add_edge(node, occupied[neighbor][0], length_mm=parameters.cell_pitch_mm)

    chip = Chip(
        name=name,
        graph=graph,
        devices={d.name: d for d in devices},
        flow_ports=flow_names,
        waste_ports=waste_names,
        parameters=parameters,
    )
    _check_device_ends(chip)
    return chip


def _check_device_ends(chip: Chip) -> None:
    """Every generated device must have exactly two channel ends."""
    for name in chip.devices:
        degree = chip.graph.degree(name)
        if degree != 2:
            raise SynthesisError(
                f"layout bug: device {name!r} has {degree} channel ends (expected 2)"
            )
