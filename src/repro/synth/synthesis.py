"""End-to-end synthesis: assay in, (chip, binding, schedule) out."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.arch.chip import Chip
from repro.arch.device import DeviceKind
from repro.assay.graph import SequencingGraph
from repro.errors import SynthesisError
from repro.schedule.schedule import Schedule
from repro.synth.binding import Binding, bind_operations, build_device_list, derive_inventory
from repro.synth.layout import ArchSpec, generate_layout
from repro.synth.scheduler import ListScheduler, assign_reagent_ports
from repro.units import PhysicalParameters, DEFAULT_PARAMETERS


@dataclass
class SynthesisResult:
    """Everything the wash optimizers need about an assay execution.

    Attributes
    ----------
    chip:
        The generated (or user-provided) architecture.
    assay:
        The input sequencing graph.
    binding:
        op id -> device name.
    reagent_ports:
        reagent id -> flow port used for its injection.
    schedule:
        The wash-free baseline schedule (the analog of Fig. 2(b)).
    fluid_types:
        node id -> contamination type of its output fluid.
    """

    chip: Chip
    assay: SequencingGraph
    binding: Binding
    reagent_ports: Dict[str, str]
    schedule: Schedule
    fluid_types: Dict[str, str] = field(default_factory=dict)

    @property
    def baseline_makespan(self) -> int:
        """:math:`T_{assay}` of the wash-free schedule."""
        return self.schedule.makespan

    @property
    def device_count(self) -> int:
        """|D| — devices on the chip."""
        return len(self.chip.devices)


def _check_binding(assay: SequencingGraph, chip: Chip, binding: Binding) -> None:
    """Validate a user-supplied binding against the chip's devices."""
    for op in assay.operations:
        device_name = binding.get(op.id)
        if device_name is None:
            raise SynthesisError(f"binding misses operation {op.id!r}")
        device = chip.devices.get(device_name)
        if device is None:
            raise SynthesisError(
                f"binding maps {op.id!r} to unknown device {device_name!r}"
            )
        if not device.can_execute(op.op_type):
            raise SynthesisError(
                f"device {device_name!r} ({device.kind.value}) cannot execute "
                f"{op.id!r} ({op.op_type})"
            )


def synthesize(
    assay: SequencingGraph,
    inventory: Optional[Dict[DeviceKind, int]] = None,
    spec: ArchSpec = ArchSpec(),
    chip: Optional[Chip] = None,
    binding: Optional[Binding] = None,
    reagent_ports: Optional[Dict[str, str]] = None,
    parameters: PhysicalParameters = DEFAULT_PARAMETERS,
) -> SynthesisResult:
    """Run the full synthesis flow.

    Either pass a pre-built ``chip`` (and optionally a ``binding`` and
    ``reagent_ports``), or let the flow derive a device inventory, generate
    a layout and bind the operations.  The returned schedule is validated
    conflict-free.
    """
    assay.validate()
    if chip is None:
        inv = inventory or derive_inventory(assay)
        devices = build_device_list(inv)
        chip = generate_layout(devices, spec, name=f"{assay.name}-chip", parameters=parameters)
    if binding is None:
        binding = bind_operations(assay, list(chip.devices.values()))
    else:
        _check_binding(assay, chip, binding)

    if reagent_ports is None:
        reagent_ports = assign_reagent_ports(chip, assay, binding)
    scheduler = ListScheduler(chip, assay, binding, reagent_ports)
    schedule = scheduler.run()
    schedule.validate()

    return SynthesisResult(
        chip=chip,
        assay=assay,
        binding=binding,
        reagent_ports=reagent_ports,
        schedule=schedule,
        fluid_types=assay.fluid_types(),
    )
