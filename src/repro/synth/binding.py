"""Operation-to-device binding.

Given a sequencing graph and a device inventory (how many devices of each
kind the chip carries — the paper's device library, sized ``|D|`` in
Table II), bind every operation to a concrete device.  The heuristic
balances load: each operation goes to the least-loaded compatible device,
which maximizes the parallelism the list scheduler can exploit.
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.arch.device import Device, DeviceKind
from repro.assay.graph import SequencingGraph
from repro.assay.operations import spec_for
from repro.errors import SynthesisError

#: op id -> device name
Binding = Dict[str, str]


def derive_inventory(assay: SequencingGraph, ops_per_device: int = 3) -> Dict[DeviceKind, int]:
    """A reasonable device inventory when none is specified.

    One device per ``ops_per_device`` operations of each kind (minimum 1),
    mirroring how the paper's benchmark libraries provide a few devices of
    each required type.
    """
    if ops_per_device < 1:
        raise SynthesisError("ops_per_device must be >= 1")
    counts: Dict[DeviceKind, int] = {}
    for op in assay.operations:
        kind = spec_for(op.op_type).device_kind
        counts[kind] = counts.get(kind, 0) + 1
    return {kind: max(1, math.ceil(n / ops_per_device)) for kind, n in counts.items()}


def build_device_list(inventory: Dict[DeviceKind, int]) -> List[Device]:
    """Materialize named devices from an inventory.

    Devices are named ``<kind><index>`` (``mixer1``, ``heater1``, ...), in
    deterministic kind order.
    """
    devices: List[Device] = []
    for kind in sorted(inventory, key=lambda k: k.value):
        count = inventory[kind]
        if count < 0:
            raise SynthesisError(f"negative device count for {kind.value}")
        for i in range(1, count + 1):
            devices.append(Device(f"{kind.value}{i}", kind))
    return devices


def bind_operations(assay: SequencingGraph, devices: List[Device]) -> Binding:
    """Bind each operation to the least-loaded compatible device.

    Operations are processed in topological order so producer/consumer
    pairs tend to land on different devices of the same kind, which lets
    them overlap in time.

    Raises
    ------
    SynthesisError
        If some operation type has no compatible device in the list.
    """
    by_kind: Dict[DeviceKind, List[Device]] = {}
    for device in devices:
        by_kind.setdefault(device.kind, []).append(device)

    load: Dict[str, int] = {d.name: 0 for d in devices}
    binding: Binding = {}
    for op_id in assay.topological_operations():
        op = assay.operation(op_id)
        kind = spec_for(op.op_type).device_kind
        candidates = by_kind.get(kind, [])
        compatible = [d for d in candidates if d.can_execute(op.op_type)]
        if not compatible:
            raise SynthesisError(
                f"no device of kind {kind.value!r} available for operation "
                f"{op_id!r} ({op.op_type})"
            )
        chosen = min(compatible, key=lambda d: (load[d.name], d.name))
        binding[op_id] = chosen.name
        load[chosen.name] += op.duration
    return binding
