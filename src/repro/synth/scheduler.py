"""Conflict-aware list scheduling of a bound assay onto a chip.

Produces the baseline execution procedure the wash optimizers start from —
the analog of the paper's Fig. 2(b): biochemical operations, reagent
injections and intermediate transports (:math:`p_{j,i,1}`), excess-fluid
removals (:math:`p_{j,i,2}`) and terminal waste disposals, all timed so that
no two concurrent tasks share a chip node.

Physical-consistency rules enforced beyond plain precedence:

* transports route *around* devices other than their endpoints, so a plug
  never flows through a foreign device;
* a device holding an unconsumed result does not accept new fluid — the
  ready-queue prefers operations that evacuate occupied devices, and
  deliveries into a device wait for its previous content to leave.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.arch.chip import Chip, FlowPath
from repro.arch.routing import Router
from repro.assay.graph import SequencingGraph
from repro.errors import RoutingError, SynthesisError
from repro.schedule.schedule import Schedule
from repro.schedule.tasks import ScheduledTask, TaskKind
from repro.schedule.timeline import Timeline
from repro.synth.binding import Binding


def assign_reagent_ports(
    chip: Chip, assay: SequencingGraph, binding: Binding
) -> Dict[str, str]:
    """Choose a flow port for every reagent.

    Each reagent is injected from the flow port nearest to its first
    consumer's device; ports are shared freely (injections are serialized by
    the timeline when needed).
    """
    router = Router(chip)
    ports: Dict[str, str] = {}
    for reagent in assay.reagents:
        consumers = assay.consumers_of(reagent.id)
        if not consumers:
            raise SynthesisError(f"reagent {reagent.id!r} has no consumer")
        device = binding[consumers[0]]
        ports[reagent.id] = router.nearest_flow_port(device)
    return ports


class ListScheduler:
    """Greedy earliest-fit scheduler over the chip timeline."""

    def __init__(
        self,
        chip: Chip,
        assay: SequencingGraph,
        binding: Binding,
        reagent_ports: Optional[Dict[str, str]] = None,
    ):
        assay.validate()
        self.chip = chip
        self.assay = assay
        self.binding = binding
        self.router = Router(chip)
        self.reagent_ports = reagent_ports or assign_reagent_ports(chip, assay, binding)
        self.fluid_types = assay.fluid_types()
        missing = [op for op in (o.id for o in assay.operations) if op not in binding]
        if missing:
            raise SynthesisError(f"operations without binding: {missing}")
        #: How many times each scheduling pass had to fall back to loading a
        #: still-occupied device (0 on all shipped benchmarks).
        self.eviction_fallbacks = 0

    # -- path construction ------------------------------------------------------

    def _avoiding_devices(self, src: str, dst: str) -> FlowPath:
        """Shortest path that detours around all devices except endpoints."""
        foreign = set(self.chip.devices) - {src, dst}
        try:
            return self.router.shortest_path(src, dst, avoid=foreign)
        except RoutingError:
            return self.router.shortest_path(src, dst)

    def transport_path(self, src: str, op_id: str) -> Optional[FlowPath]:
        """Flow path delivering ``src``'s output to ``op_id``'s device.

        ``None`` when producer and consumer share a device (no transport).
        """
        device = self.binding[op_id]
        origin = (
            self.reagent_ports[src]
            if self.assay.is_reagent(src)
            else self.binding[src]
        )
        if origin == device:
            return None
        return self._avoiding_devices(origin, device)

    def removal_path(self, device: str, transport: FlowPath) -> FlowPath:
        """Path flushing the excess fluid cached at the device entry.

        After a transport, excess fluid sits in the channel end adjacent to
        the device [7]; the removal flushes that cell from the nearest flow
        port to the nearest waste port, never entering any device.
        """
        entry = transport[-2]
        fp = self.router.nearest_flow_port(entry)
        wp = self.router.nearest_waste_port(entry)
        try:
            return self.router.path_through(fp, [entry], wp, avoid=set(self.chip.devices))
        except RoutingError:
            return self.router.path_through(fp, [entry], wp)

    def waste_path(self, device: str) -> FlowPath:
        """Disposal path carrying a terminal product off-chip."""
        return self._avoiding_devices(device, self.router.nearest_waste_port(device))

    # -- scheduling ----------------------------------------------------------------

    def run(self) -> Schedule:
        """Build the complete baseline schedule."""
        timeline = Timeline()
        schedule = Schedule()
        op_end: Dict[str, int] = {}
        #: op whose result currently sits in each device.
        content: Dict[str, Optional[str]] = {d: None for d in self.chip.devices}
        #: tick at which each device's previous content has fully left.
        clear_at: Dict[str, int] = {d: 0 for d in self.chip.devices}
        remaining_consumers = {
            op.id: len(self.assay.consumers_of(op.id)) for op in self.assay.operations
        }

        pending = list(self.assay.topological_operations())
        order = {op_id: i for i, op_id in enumerate(pending)}
        scheduled: Set[str] = set()

        terminal = set(self.assay.terminal_operations())
        while pending:
            op_id = self._pick_next(pending, scheduled, content, remaining_consumers, order)
            pending.remove(op_id)
            scheduled.add(op_id)
            self._schedule_operation(
                op_id, schedule, timeline, op_end, content, clear_at, remaining_consumers
            )
            if op_id in terminal:
                # Dispose terminal products eagerly so their device frees up.
                self._schedule_disposal(
                    schedule, timeline, op_id, op_end[op_id], content, clear_at
                )
        return schedule

    # -- op selection -----------------------------------------------------------

    def _pick_next(
        self,
        pending: List[str],
        scheduled: Set[str],
        content: Dict[str, Optional[str]],
        remaining_consumers: Dict[str, int],
        order: Dict[str, int],
    ) -> str:
        """Next ready op; prefer ones that do not load an occupied device."""
        ready = [
            op_id
            for op_id in pending
            if all(
                self.assay.is_reagent(src) or src in scheduled
                for src in self.assay.inputs_of(op_id)
            )
        ]
        if not ready:
            raise SynthesisError("scheduler stalled: no ready operation (cycle?)")

        def blocked(op_id: str) -> bool:
            device = self.binding[op_id]
            holder = content[device]
            if holder is not None and holder not in self.assay.inputs_of(op_id):
                return True
            # Consuming a same-device result in place requires being its
            # last consumer, otherwise the in-place op destroys the copies
            # other consumers still need.
            for src in self.assay.inputs_of(op_id):
                if (
                    not self.assay.is_reagent(src)
                    and self.binding[src] == device
                    and remaining_consumers[src] > 1
                ):
                    return True
            return False

        unblocked = [op_id for op_id in ready if not blocked(op_id)]
        if not unblocked:
            self.eviction_fallbacks += 1
            unblocked = ready
        return min(unblocked, key=lambda op_id: order[op_id])

    # -- task emission ---------------------------------------------------------------

    def _schedule_operation(
        self,
        op_id: str,
        schedule: Schedule,
        timeline: Timeline,
        op_end: Dict[str, int],
        content: Dict[str, Optional[str]],
        clear_at: Dict[str, int],
        remaining_consumers: Dict[str, int],
    ) -> None:
        op = self.assay.operation(op_id)
        device = self.binding[op_id]
        arrival = clear_at[device]
        for src in self.assay.inputs_of(op_id):
            ready = 0 if self.assay.is_reagent(src) else op_end[src]
            done = self._schedule_delivery(
                schedule, timeline, src, op_id, max(ready, clear_at[device]),
                content, clear_at, remaining_consumers,
            )
            arrival = max(arrival, done)

        start = timeline.earliest_fit([device], arrival, op.duration)
        timeline.occupy([device], start, op.duration)
        schedule.add(
            ScheduledTask(
                id=f"op:{op_id}",
                kind=TaskKind.OPERATION,
                start=start,
                duration=op.duration,
                device=device,
                fluid_type=self.fluid_types[op_id],
                op_id=op_id,
            )
        )
        op_end[op_id] = start + op.duration
        content[device] = op_id

    def _schedule_delivery(
        self,
        schedule: Schedule,
        timeline: Timeline,
        src: str,
        op_id: str,
        ready: int,
        content: Dict[str, Optional[str]],
        clear_at: Dict[str, int],
        remaining_consumers: Dict[str, int],
    ) -> int:
        """Schedule transport + excess removal for edge (src, op_id).

        Returns the tick at which the delivered input is fully in place
        (transport and removal complete, Eqs. 4-5).
        """
        device = self.binding[op_id]
        path = self.transport_path(src, op_id)
        if path is None:
            # Producer output stays in the shared device; mark it consumed.
            remaining_consumers[src] -= 1
            return ready

        duration = self.chip.transport_time_s(path)
        start = timeline.earliest_fit(path, ready, duration)
        timeline.occupy(path, start, duration)
        schedule.add(
            ScheduledTask(
                id=f"tr:{src}->{op_id}",
                kind=TaskKind.TRANSPORT,
                start=start,
                duration=duration,
                path=path,
                device=device,
                fluid_type=self.fluid_types[src],
                edge=(src, op_id),
            )
        )
        if not self.assay.is_reagent(src):
            origin_device = self.binding[src]
            remaining_consumers[src] -= 1
            if remaining_consumers[src] <= 0 and content.get(origin_device) == src:
                content[origin_device] = None
                clear_at[origin_device] = max(clear_at[origin_device], start + duration)

        removal = self.removal_path(device, path)
        r_duration = self.chip.transport_time_s(removal)
        r_start = timeline.earliest_fit(removal, start + duration, r_duration)
        timeline.occupy(removal, r_start, r_duration)
        schedule.add(
            ScheduledTask(
                id=f"rm:{src}->{op_id}",
                kind=TaskKind.REMOVAL,
                start=r_start,
                duration=r_duration,
                path=removal,
                device=device,
                fluid_type=self.fluid_types[src],
                edge=(src, op_id),
            )
        )
        return r_start + r_duration

    def _schedule_disposal(
        self,
        schedule: Schedule,
        timeline: Timeline,
        op_id: str,
        ready: int,
        content: Dict[str, Optional[str]],
        clear_at: Dict[str, int],
    ) -> None:
        """Move a terminal product to a waste port."""
        device = self.binding[op_id]
        path = self.waste_path(device)
        duration = self.chip.transport_time_s(path)
        start = timeline.earliest_fit(path, ready, duration)
        timeline.occupy(path, start, duration)
        schedule.add(
            ScheduledTask(
                id=f"ws:{op_id}",
                kind=TaskKind.WASTE,
                start=start,
                duration=duration,
                path=path,
                device=device,
                fluid_type=self.fluid_types[op_id],
                edge=(op_id, "waste"),
            )
        )
        if content.get(device) == op_id:
            content[device] = None
            clear_at[device] = max(clear_at[device], start + duration)