"""The static suite stage DAG: nodes, derived edges, critical-path priorities.

One :class:`StageNode` per ``(benchmark, method, stage)``.  Edges are
*derived* from the stages' declared ``requires``/``provides`` dataflow
(:class:`repro.pipeline.stage.StageBase`), never hardcoded: within each
method a provider map tracks which node fills each context attribute, so
a stage's dependencies are exactly the producers of its declared inputs.
A stage declared ``shared`` (the PDW↔DAWO contamination replay, keyed on
the synthesis alone) becomes a single node both methods' chains hang off.

Two synthetic nodes frame each benchmark: ``synthesis`` (the baseline
schedule both methods consume) and ``collect`` (merges both plans into
the :class:`~repro.experiments.runner.BenchmarkRun`).

Priorities are critical-path lengths over a static per-stage cost table
(Polyphony-style list scheduling): the scheduler pops the ready node with
the longest downstream chain first, so a benchmark's ILP solve is issued
before another benchmark's cheap necessity pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Method namespace of nodes shared between PDW and DAWO.
SHARED = "shared"
#: Method namespace of the per-benchmark collect node.
RUN = "run"

#: Static stage costs for critical-path priorities.  Units are arbitrary;
#: only the ordering they induce matters.  Rough shape from the committed
#: bench baselines: the ILP solve dominates, pathgen second, synthesis and
#: the replay next, everything else is noise.
STAGE_COSTS: Dict[str, float] = {
    "synthesis": 3.0,
    "replay": 2.0,
    "pathgen": 5.0,
    "ilp": 10.0,
    "sweepline": 2.0,
}
DEFAULT_COST = 1.0


@dataclass(frozen=True)
class StageNode:
    """One schedulable unit of suite work.

    ``id`` is ``<benchmark>/<method>/<stage>`` where method is ``pdw``,
    ``dawo``, ``shared`` (synthesis / replay) or ``run`` (collect).
    ``deps`` are node ids; ``priority`` is the critical-path length from
    this node to the end of its benchmark; ``order`` is a deterministic
    creation index used as the final tie-break.
    """

    id: str
    benchmark: str
    method: str
    stage: str
    deps: Tuple[str, ...]
    priority: float
    #: Suite position of the benchmark (earlier benchmarks win ties).
    bench_index: int
    order: int
    #: The :class:`~repro.pipeline.stage.Stage` to execute, or ``None``
    #: for the synthetic synthesis/collect nodes.
    stage_obj: Optional[Any] = None

    @property
    def sort_key(self) -> Tuple[float, int, int]:
        """Ready-queue ordering: longest critical path first, then suite
        position, then creation order — fully deterministic."""
        return (-self.priority, self.bench_index, self.order)


def _cost(stage: str) -> float:
    return STAGE_COSTS.get(stage, DEFAULT_COST)


def benchmark_nodes(
    benchmark: str,
    bench_index: int = 0,
    order_base: int = 0,
) -> List[StageNode]:
    """The stage nodes of one benchmark, edges derived from declarations."""
    from repro.baselines.dawo import DAWO_PIPELINE
    from repro.core.stages import PDW_PIPELINE

    draft: List[Tuple[str, str, str, Tuple[str, ...], Optional[Any]]] = []
    synth_id = f"{benchmark}/{SHARED}/synthesis"
    draft.append((synth_id, SHARED, "synthesis", (), None))

    shared_providers: Dict[str, str] = {"synthesis": synth_id}
    shared_nodes: Dict[str, str] = {}
    plan_nodes: List[str] = []
    for method, pipeline in (("pdw", PDW_PIPELINE), ("dawo", DAWO_PIPELINE)):
        providers = dict(shared_providers)
        for stage in pipeline:
            is_shared = bool(getattr(stage, "shared", False))
            if is_shared and stage.name in shared_nodes:
                # Already materialized by the other method's chain.
                if stage.provides:
                    providers[stage.provides] = shared_nodes[stage.name]
                continue
            owner = SHARED if is_shared else method
            node_id = f"{benchmark}/{owner}/{stage.name}"
            deps = tuple(
                sorted({providers[req] for req in stage.requires if req in providers})
            )
            draft.append((node_id, owner, stage.name, deps, stage))
            if stage.provides:
                providers[stage.provides] = node_id
            if is_shared:
                shared_nodes[stage.name] = node_id
                if stage.provides:
                    shared_providers[stage.provides] = node_id
        if "plan" in providers:
            plan_nodes.append(providers["plan"])

    collect_id = f"{benchmark}/{RUN}/collect"
    draft.append((collect_id, RUN, "collect", tuple(sorted(plan_nodes)), None))

    # Critical-path priorities: creation order is topological (providers
    # always precede consumers), so one reverse pass suffices.
    children: Dict[str, List[str]] = {}
    for node_id, _, _, deps, _ in draft:
        for dep in deps:
            children.setdefault(dep, []).append(node_id)
    priority: Dict[str, float] = {}
    for node_id, _, stage_name, _, _ in reversed(draft):
        downstream = max(
            (priority[child] for child in children.get(node_id, ())), default=0.0
        )
        priority[node_id] = _cost(stage_name) + downstream

    return [
        StageNode(
            id=node_id,
            benchmark=benchmark,
            method=method,
            stage=stage_name,
            deps=deps,
            priority=priority[node_id],
            bench_index=bench_index,
            order=order_base + offset,
            stage_obj=stage_obj,
        )
        for offset, (node_id, method, stage_name, deps, stage_obj) in enumerate(draft)
    ]


def build_graph(names: Sequence[str]) -> List[StageNode]:
    """The full suite DAG, one node list in deterministic order."""
    nodes: List[StageNode] = []
    for index, benchmark in enumerate(names):
        nodes.extend(benchmark_nodes(benchmark, index, order_base=len(nodes)))
    return nodes
