"""Append-only JSONL run journaling, shared by both suite executors.

The subprocess :class:`~repro.experiments.supervisor.SuiteSupervisor` and
the in-process :class:`~repro.sched.executor.DagExecutor` write the same
journal file (``<cache>/journal/suite.jsonl``) through these primitives,
so ``pdw report failures`` and ``--resume`` work identically under
either.  Benchmark-level events (``attempt``/``success``/``failure``/
``retry``/``metrics``) are common to both; the DAG executor additionally
records one event per stage node (``node_attempt``/``node_success``/
``node_retry``/``node_failure``/``node_cancelled``).

The file is append-only and reads are tolerant of a truncated final line
— the interruption resume exists to survive.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional

#: Serializes concurrent appends from the DAG executor's worker threads
#: (the supervisor appends from a single thread; sharing the lock is free).
_WRITE_LOCK = threading.Lock()


def append_record(path: Path, record: dict) -> None:
    """Append one timestamped JSONL record (one write per event)."""
    path = Path(path)
    payload = {"ts": time.time(), **record}
    line = json.dumps(payload, sort_keys=True) + "\n"
    with _WRITE_LOCK:
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("a", encoding="utf-8") as fh:
            fh.write(line)


def read_records(path: Path) -> List[dict]:
    """Parsed journal records, skipping malformed (truncated) lines."""
    records: List[dict] = []
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError:
        return records
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if isinstance(record, dict):
            records.append(record)
    return records


def journaled_successes(records: Iterable[dict]) -> Dict[str, str]:
    """Latest terminal outcome per benchmark: ``{name: digest}`` of
    successes, dropping names whose most recent terminal event is a
    failure."""
    done: Dict[str, str] = {}
    for record in records:
        event = record.get("event")
        name = record.get("benchmark")
        if not name:
            continue
        if event == "success":
            done[name] = record.get("digest", "")
        elif event == "failure":
            done.pop(name, None)
    return done


def node_attempts(
    records: Iterable[dict],
    benchmark: Optional[str] = None,
    stage: Optional[str] = None,
) -> List[dict]:
    """The ``node_attempt`` events, optionally filtered.

    The chaos tests and the CI ``dag-executor`` job assert retry scoping
    through this view — e.g. "an injected ILP crash leaves exactly one
    pathgen attempt for that benchmark".
    """
    out: List[dict] = []
    for record in records:
        if record.get("event") != "node_attempt":
            continue
        if benchmark is not None and record.get("benchmark") != benchmark:
            continue
        if stage is not None and record.get("stage") != stage:
            continue
        out.append(record)
    return out
