"""Stage-DAG suite execution (the Polyphony-style worklist scheduler).

Turns a suite run into an explicit DAG of ``(benchmark, method, stage)``
nodes — edges derived from the stages' declared ``requires``/``provides``
dataflow, the PDW↔DAWO shared replay artifact a single node — and
executes it with a priority-ordered ready-worklist scheduler over a
worker pool (:class:`DagExecutor`).  Entry points:

* :func:`repro.experiments.runner.run_suite` with ``sched_workers=``,
* ``pdw suite --sched-workers N`` / ``pdw bench --sched-workers N``,
* :func:`build_graph` for the static DAG alone.

The journal submodule (:mod:`repro.sched.journal`) carries the JSONL
append/read/replay primitives shared with the subprocess-based
:class:`~repro.experiments.supervisor.SuiteSupervisor`.
"""

from repro.sched.graph import StageNode, build_graph

__all__ = ["DagExecutor", "StageNode", "build_graph"]


def __getattr__(name):
    # DagExecutor imports the runner/supervisor layers; loading it lazily
    # keeps `import repro.sched.journal` (used by the supervisor) cycle-free.
    if name == "DagExecutor":
        from repro.sched.executor import DagExecutor

        return DagExecutor
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
