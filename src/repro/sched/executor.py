"""The priority-ordered ready-worklist scheduler over the suite stage DAG.

:class:`DagExecutor` duck-types :class:`~repro.experiments.supervisor.
SuiteSupervisor` (``run(names, config) -> SuiteResult``) but schedules at
*stage-node* granularity instead of benchmark granularity: the suite is
compiled to the static DAG of :mod:`repro.sched.graph` and executed by a
pool of worker threads pulling from a ready heap ordered by critical-path
length (Polyphony-style list scheduling — the node with the longest
downstream chain runs first, suite position and creation order breaking
ties deterministically).

The budget / retry / journal machinery of the supervisor applies **per
node**:

* a failed ILP solve retries only its own node (with the supervisor's
  deterministic exponential backoff) — the benchmark's pathgen is *not*
  re-run, which the journal's ``node_attempt`` events prove,
* a terminal node failure cancels exactly its transitive dependents;
  sibling chains (DAWO next to a crashed PDW ILP) and sibling benchmarks
  complete normally,
* ``resume=True`` replays journaled benchmark successes from the artifact
  cache without re-execution, and within a partially-complete benchmark
  the per-stage artifact cache gives node-granular resume for free: every
  stage that finished before the interruption comes back ``origin=cache``.

Plan outputs are byte-identical to serial execution for any worker count:
each method chain is sequential under its dependency edges, the shared
replay is a single node, and every stage is itself deterministic — the
workers only overlap *independent* work.

Two caveats versus the subprocess supervisor: worker threads cannot be
killed, so a node past its wall-clock budget is abandoned (its eventual
completion is discarded via an attempt token and a replacement worker is
spawned) rather than terminated; and an abandoned attempt that later
limps home shares the process with its retry.  Chaos ``exit`` faults
therefore take down the whole suite process — exactly the mid-suite kill
the resume path exists to survive.
"""

from __future__ import annotations

import heapq
import json
import os
import random
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.baselines.dawo import DAWO_CONFIG
from repro.bench import BENCHMARKS, benchmark, load_benchmark
from repro.core import PDWConfig
from repro.core.pdw import no_wash_plan, record_ilp_rows, verify_plan
from repro.core.stages import REPLAY_STAGE, PDWContext
from repro.envutil import env_int
from repro.errors import ReproError
from repro.experiments.runner import (
    BenchmarkRun,
    FailureRecord,
    SuiteResult,
    adopt_run,
    default_config,
    memo_lookup,
    run_digest,
)
from repro.experiments.supervisor import (
    RETRYABLE_KINDS,
    RunBudget,
    default_journal_path,
)
from repro.ilp import faults
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span, tracer
from repro.pipeline import ArtifactCache, PipelineRun, chaos, default_cache, digest_config
from repro.sched import journal as sched_journal
from repro.sched.graph import RUN, SHARED, StageNode, build_graph
from repro.sim.validate import validate_plan
from repro.synth import synthesize

#: Worker-count environment knob of the DAG executor (``--sched-workers``).
WORKERS_ENV = "REPRO_SCHED_WORKERS"


@dataclass
class _Bench:
    """Mutable per-benchmark state threaded between that benchmark's nodes."""

    name: str
    index: int
    digest: str
    #: Nodes of this benchmark not yet terminal; 0 finalizes the benchmark.
    remaining: int = 0
    started: float = 0.0
    synthesis: Any = None
    main_run: Optional[PipelineRun] = None
    pdw_run: Optional[PipelineRun] = None
    dawo_run: Optional[PipelineRun] = None
    pdw_ctx: Optional[PDWContext] = None
    dawo_ctx: Optional[PDWContext] = None
    pdw_plan: Any = None
    dawo_plan: Any = None
    #: PDW's no-wash-needed early exit: downstream PDW nodes become no-ops.
    pdw_short: bool = False
    #: The finished run — set early on a whole-run cache/memo hit, in which
    #: case every remaining node of the benchmark completes as ``skipped``.
    run: Optional[BenchmarkRun] = None
    failure: Optional[FailureRecord] = None


@dataclass
class _NodeState:
    """Scheduler-side bookkeeping for one :class:`StageNode`."""

    node: StageNode
    #: Dependency node ids not yet completed.
    waiting: Set[str] = field(default_factory=set)
    #: pending | ready | running | backoff | done | failed | cancelled
    status: str = "pending"
    #: Attempts started so far (1-based once running).
    attempt: int = 0
    #: Bumped when an attempt is abandoned (timeout) so its eventual
    #: completion is recognized as stale and discarded.
    token: int = 0
    #: ``perf_counter`` when the node last entered the ready heap; the
    #: queue-wait metric is ``started - ready_at``.
    ready_at: float = 0.0
    #: ``monotonic`` when the current attempt started (budget checks).
    run_started: float = 0.0
    #: Ready-to-start latency of the successful attempt, filled by the
    #: completion handler and attached to the stage record at collect time
    #: — after every ``plan.notes`` snapshot, so plan notes stay exactly
    #: what serial execution produces.
    queue_wait: Optional[float] = None


class DagExecutor:
    """Stage-DAG suite execution over an in-process worker pool.

    Drop-in for ``run_suite(..., supervisor=...)``: ``run`` takes the
    benchmark names and config and returns a
    :class:`~repro.experiments.runner.SuiteResult` in suite order.

    Parameters mirror :class:`~repro.experiments.supervisor.SuiteSupervisor`
    — ``budget`` (timeout/retries apply per stage node), ``cache`` /
    ``use_cache``, ``resume`` and ``journal_path`` — plus ``workers``, the
    requested thread-pool width (default ``$REPRO_SCHED_WORKERS`` or
    ``min(4, len(suite))``; the ILP/HiGHS solve releases the GIL, so
    threads overlap real compute wherever the host has cores to run it).

    The pool actually spawned is ``min(workers, os.cpu_count())``: the
    nodes are CPU-bound, so threads beyond the host's cores cannot add
    throughput — they only add GIL handoffs and cache contention (~10%
    measured on a 1-CPU container).  Results are worker-count invariant
    either way, so the clamp changes wall time, never output.
    """

    def __init__(
        self,
        budget: Optional[RunBudget] = None,
        cache: Optional[ArtifactCache] = None,
        use_cache: bool = True,
        workers: Optional[int] = None,
        resume: bool = False,
        journal_path: Optional[Path] = None,
    ):
        self.budget = budget or RunBudget()
        self.cache = cache if cache is not None else (default_cache() if use_cache else None)
        self.use_cache = use_cache
        self.workers = workers
        self.resume = resume
        self.journal_path = (
            Path(journal_path) if journal_path is not None else default_journal_path(self.cache)
        )
        self._disk = self.cache if self.use_cache else None
        self._cond = threading.Condition()
        self._jbuf: Optional[List[dict]] = None  # active only inside _execute_graph

    # -- entry point -------------------------------------------------------------

    def run(
        self, names: Optional[Sequence[str]] = None, config: Optional[PDWConfig] = None
    ) -> SuiteResult:
        """Run the suite; never raises for a single benchmark's failure."""
        suite = list(names or BENCHMARKS)
        cfg = config or default_config()
        digests = {name: run_digest(name, cfg) for name in suite}
        results: Dict[str, object] = {}
        resumed: List[str] = []

        if self.resume:
            done = sched_journal.journaled_successes(
                sched_journal.read_records(self.journal_path)
            )
            for name in suite:
                if done.get(name) != digests[name]:
                    continue
                cached = self._load_journaled(name, cfg)
                if cached is not None:
                    results[name] = cached
                    resumed.append(name)

        pending = [name for name in suite if name not in results]
        if pending:
            n_workers = self._resolve_workers(len(pending))
            with span("sched.suite", benchmarks=len(pending), workers=n_workers):
                self._execute_graph(pending, n_workers, cfg, digests, results)

        entries = [results[name] for name in suite]
        metrics_path = self._dump_metrics(config_digest=digest_config(cfg))
        return SuiteResult(
            entries=entries,
            journal_path=self.journal_path,
            resumed=tuple(resumed),
            metrics_path=metrics_path,
        )

    def _resolve_workers(self, n_benchmarks: int) -> int:
        if self.workers is not None:
            return max(1, self.workers)
        env = env_int(WORKERS_ENV, minimum=1)
        if env is not None:
            return env
        return max(1, min(4, n_benchmarks))

    # -- scheduling loop ---------------------------------------------------------

    def _execute_graph(
        self,
        names: List[str],
        n_workers: int,
        cfg: PDWConfig,
        digests: Dict[str, str],
        results: Dict[str, object],
    ) -> None:
        graph = build_graph(names)
        self._cfg = cfg
        self._states: Dict[str, _NodeState] = {
            node.id: _NodeState(node=node, waiting=set(node.deps)) for node in graph
        }
        self._children: Dict[str, List[str]] = {}
        self._bench_nodes: Dict[str, List[StageNode]] = {}
        for node in graph:
            self._bench_nodes.setdefault(node.benchmark, []).append(node)
            for dep in node.deps:
                self._children.setdefault(dep, []).append(node.id)

        per_bench: Dict[str, int] = {}
        for node in graph:
            per_bench[node.benchmark] = per_bench.get(node.benchmark, 0) + 1
        self._benches: Dict[str, _Bench] = {}
        for index, name in enumerate(names):
            bench = _Bench(
                name=name, index=index, digest=digests[name], remaining=per_bench[name]
            )
            bench.main_run = PipelineRun(label=f"bench:{name}", cache=self._disk)
            bench.pdw_run = PipelineRun(label=f"PDW:{name}", cache=self._disk)
            bench.dawo_run = PipelineRun(label=f"DAWO:{name}", cache=self._disk)
            self._benches[name] = bench

        self._ready: List[Tuple] = []
        self._completions: deque = deque()
        self._stop = False
        self._jbuf: Optional[List[dict]] = []  # buffered journal records
        backoffs: List[Tuple[float, str]] = []  # (ready_at_monotonic, node_id)
        outstanding = len(graph)

        with self._cond:
            for node in graph:
                if not self._states[node.id].waiting:
                    self._make_ready(node.id)

        # Never oversubscribe the host: the nodes are CPU-bound, so a
        # pool wider than the core count adds only GIL handoffs and
        # cache thrash.  Requested width is honored up to that limit
        # (results are worker-count invariant regardless).
        pool_width = max(1, min(n_workers, os.cpu_count() or 1))
        threads = [
            threading.Thread(
                target=self._worker_loop, name=f"sched-worker-{i}", daemon=True
            )
            for i in range(pool_width)
        ]
        for thread in threads:
            thread.start()

        try:
            while outstanding > 0:
                with self._cond:
                    now = time.monotonic()
                    due = [item for item in backoffs if item[0] <= now]
                    for item in due:
                        backoffs.remove(item)
                        self._make_ready(item[1])
                    if due:
                        self._cond.notify_all()
                    if self.budget.timeout_s is not None:
                        for nid in self._expired(now):
                            outstanding -= self._abandon(
                                nid, backoffs, results, digests, cfg
                            )
                    if not self._completions:
                        self._cond.wait(0.05)
                    while self._completions:
                        item = self._completions.popleft()
                        outstanding -= self._complete(
                            *item, backoffs=backoffs, results=results,
                            digests=digests, cfg=cfg,
                        )
                self._flush_journal()
        finally:
            with self._cond:
                self._stop = True
                self._cond.notify_all()
            self._flush_journal()
            self._jbuf = None

    def _make_ready(self, nid: str) -> None:
        """Push a node onto the ready heap (caller holds the lock)."""
        st = self._states[nid]
        st.status = "ready"
        st.ready_at = time.perf_counter()
        heapq.heappush(self._ready, (st.node.sort_key, nid, st.attempt + 1, st.token))
        obs_metrics.registry().gauge("pdw_sched_ready_queue_depth").set(
            float(len(self._ready))
        )
        # notify_all, not notify: workers and the completion loop share the
        # condition, and a single notify may wake the loop instead of a
        # worker — stalling a ready node for a full worker poll interval.
        self._cond.notify_all()

    def _expired(self, now: float) -> List[str]:
        """Running nodes past the per-attempt wall-clock budget."""
        return [
            nid
            for nid, st in self._states.items()
            if st.status == "running" and now - st.run_started > self.budget.timeout_s
        ]

    # -- worker pool -------------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            with self._cond:
                while not self._stop and not self._ready:
                    self._cond.wait(0.2)
                if self._stop:
                    return
                _, nid, attempt, token = heapq.heappop(self._ready)
                st = self._states[nid]
                if token != st.token or st.status != "ready":
                    continue  # superseded while queued
                st.status = "running"
                st.attempt = attempt
                st.run_started = time.monotonic()
                obs_metrics.registry().gauge("pdw_sched_ready_queue_depth").set(
                    float(len(self._ready))
                )
            node = st.node
            bench = self._benches[node.benchmark]
            self._journal_now(
                {
                    "event": "node_attempt",
                    "benchmark": node.benchmark,
                    "node": node.id,
                    "stage": node.stage,
                    "method": node.method,
                    "attempt": attempt,
                    "chaos": chaos.environment_token() or None,
                }
            )
            started = time.perf_counter()
            try:
                with chaos.scope(node.benchmark):
                    origin = self._execute_node(node, bench)
                outcome: tuple = ("ok", origin)
            except chaos.InjectedFault as exc:
                outcome = ("fail", "crash", str(exc))
            except MemoryError:
                outcome = ("fail", "oom", "MemoryError while running stage")
            except ReproError as exc:
                outcome = ("fail", "error", str(exc))
            except BaseException as exc:  # noqa: BLE001 — a worker must always report
                outcome = ("fail", "crash", f"{type(exc).__name__}: {exc}")
            ended = time.perf_counter()
            with self._cond:
                self._completions.append((nid, token, outcome, started, ended))
                self._cond.notify_all()

    # -- node execution (worker threads) -----------------------------------------

    def _execute_node(self, node: StageNode, bench: _Bench) -> str:
        """Run one node; returns the artifact origin for journal/metrics."""
        if bench.run is not None:
            return "skipped"  # whole-run cache/memo hit short-circuits
        if node.method == RUN:
            return self._collect(bench)
        if node.stage == "synthesis":
            return self._synthesis(bench)
        if node.method == SHARED:  # the PDW↔DAWO shared replay
            return self._replay(bench)
        ctx, run = (
            (bench.pdw_ctx, bench.pdw_run)
            if node.method == "pdw"
            else (bench.dawo_ctx, bench.dawo_run)
        )
        if node.method == "pdw" and bench.pdw_short:
            return "skipped"  # no-wash-needed early exit
        stage = node.stage_obj
        artifact = run.run_stage(stage, ctx)
        stage.apply(ctx, artifact)
        self._post_stage(node, bench, ctx, run, artifact)
        rec = run.report.get(stage.name)
        return rec.origin if rec is not None else "computed"

    def _synthesis(self, bench: _Bench) -> str:
        """The benchmark's root node: cache probes, then baseline synthesis."""
        bench.started = time.perf_counter()
        name = bench.name
        cfg = self._cfg
        if self.use_cache:
            hit = memo_lookup(name, cfg)
            if hit is not None:
                bench.run = hit
                return "memo"
            if self._disk is not None:
                stored = self._disk.get(bench.digest)
                if isinstance(stored, BenchmarkRun):
                    stored.from_cache = True
                    obs_metrics.registry().counter(
                        "pdw_run_cache_hits_total", benchmark=name
                    ).inc()
                    bench.run = adopt_run(stored, cfg)
                    return "cache"
        spec = benchmark(name)
        assay = load_benchmark(name)
        synthesis = bench.main_run.timed(
            "synthesis",
            lambda: synthesize(assay, inventory=spec.inventory),
            counters=lambda s: {
                "operations": float(assay.operation_count),
                "devices": float(s.device_count),
                "baseline_makespan_s": float(s.baseline_makespan),
            },
        )
        bench.synthesis = synthesis
        bench.pdw_ctx = PDWContext(synthesis=synthesis, config=cfg, cache=self.cache)
        bench.dawo_ctx = PDWContext(
            synthesis=synthesis, config=DAWO_CONFIG, cache=self.cache
        )
        bench.pdw_run.report.label = f"PDW:{synthesis.assay.name}"
        bench.dawo_run.report.label = f"DAWO:{synthesis.assay.name}"
        return "computed"

    def _replay(self, bench: _Bench) -> str:
        """The shared replay node: computed once, handed to both methods."""
        tracker = bench.main_run.run_stage(REPLAY_STAGE, bench.pdw_ctx)
        bench.pdw_ctx.tracker = tracker
        bench.dawo_ctx.tracker = tracker
        counters = REPLAY_STAGE.counters(tracker)
        bench.pdw_run.provided(REPLAY_STAGE.name, counters)
        bench.dawo_run.provided(REPLAY_STAGE.name, counters)
        rec = bench.main_run.report.get(REPLAY_STAGE.name)
        return rec.origin if rec is not None else "computed"

    def _post_stage(
        self, node: StageNode, bench: _Bench, ctx: PDWContext, run: PipelineRun, artifact
    ) -> None:
        """Method-chain epilogues, mirroring the serial orchestrators.

        The finish sequences (report attach → notes → verify → validate)
        replicate :class:`~repro.core.pdw.PathDriverWash` and
        :class:`~repro.baselines.dawo.DelayAwareWashOptimizer` exactly, so
        DAG-built plans are byte-identical to serially-built ones.
        """
        key = (node.method, node.stage)
        if key == ("pdw", "necessity"):
            if not ctx.necessity.required:
                plan = no_wash_plan(ctx)
                plan.report = run.report
                plan.notes.update(run.report.flat())
                bench.pdw_plan = plan
                bench.pdw_short = True
        elif key == ("pdw", "ilp"):
            record_ilp_rows(run, artifact)
        elif key == ("pdw", "assemble"):
            artifact.report = run.report
            artifact.notes.update(run.report.flat())
            degradation = getattr(artifact, "degradation", None)
            verify_plan(artifact, degradation=degradation)
            validate_plan(artifact, ctx.synthesis, degradation=degradation)
            bench.pdw_plan = artifact
        elif key == ("dawo", "sweepline"):
            artifact.notes["necessity_events"] = float(ctx.necessity.total_events)
            artifact.notes["requirements"] = float(len(ctx.necessity.required))
            artifact.report = run.report
            artifact.notes.update(run.report.flat())
            verify_plan(artifact)
            validate_plan(artifact, ctx.synthesis)
            bench.dawo_plan = artifact

    def _collect(self, bench: _Bench) -> str:
        """The benchmark's sink node: merge reports, cache and memoize."""
        # Attach each node's queue wait to its stage record now — after
        # every plan's ``notes`` snapshot was taken (plan notes must match
        # serial execution byte for byte) and before the merge below
        # copies the records into the run-level report that ``pdw report
        # timings`` renders.  All of this benchmark's nodes are terminal
        # before collect becomes ready, so the waits are final.
        for other in self._bench_nodes[bench.name]:
            st = self._states[other.id]
            if st.queue_wait is None:
                continue
            rec = self._node_record(other, bench)
            if rec is not None:
                rec.counters["queue_wait_s"] = round(st.queue_wait, 6)
        report = bench.main_run.report
        report.extend(bench.dawo_run.report, prefix="dawo.")
        report.extend(bench.pdw_run.report, prefix="pdw.")
        run = BenchmarkRun(
            name=bench.name,
            synthesis=bench.synthesis,
            dawo=bench.dawo_plan,
            pdw=bench.pdw_plan,
            wall_time_s=time.perf_counter() - bench.started,
            report=report,
        )
        if self._disk is not None:
            self._disk.put(bench.digest, run)
        if self.use_cache:
            run = adopt_run(run, self._cfg)
        bench.run = run
        return "computed"

    # -- completion handling (main thread, lock held) ----------------------------

    def _complete(
        self, nid, token, outcome, started, ended, *, backoffs, results, digests, cfg
    ) -> int:
        """Absorb one worker completion; returns nodes newly terminal."""
        st = self._states[nid]
        if token != st.token or st.status != "running":
            return 0  # stale: the attempt was abandoned past its budget
        node = st.node
        bench = self._benches[node.benchmark]
        if outcome[0] == "ok":
            st.status = "done"
            origin = outcome[1]
            wait = max(0.0, started - st.ready_at)
            st.queue_wait = wait
            # Unblock successors BEFORE any bookkeeping I/O: the journal
            # append releases the GIL per syscall, and winning it back
            # from a computing worker costs up to a switch interval —
            # latency that must not gate ready-to-run nodes.  Crash
            # semantics are unchanged (dying before the append just
            # re-runs this node on resume; execution is at-least-once).
            for cid in self._children.get(nid, ()):
                child = self._states[cid]
                child.waiting.discard(nid)
                if not child.waiting and child.status == "pending":
                    self._make_ready(cid)
            obs_metrics.registry().histogram(
                "pdw_sched_queue_wait_seconds", stage=node.stage
            ).observe(wait)
            self._journal(
                {
                    "event": "node_success",
                    "benchmark": node.benchmark,
                    "node": node.id,
                    "stage": node.stage,
                    "method": node.method,
                    "attempt": st.attempt,
                    "origin": origin,
                    "wall_s": round(ended - started, 6),
                    "queue_wait_s": round(wait, 6),
                }
            )
            tracer().record_span(
                "sched.node", started, ended, status="ok",
                benchmark=node.benchmark, method=node.method, stage=node.stage,
                attempt=st.attempt, origin=origin,
            )
            self._finalize_node(bench, results, digests)
            return 1
        kind, message = outcome[1], outcome[2]
        if kind in RETRYABLE_KINDS and st.attempt <= self.budget.retries:
            st.status = "backoff"
            delay = self._backoff(node.id, st.attempt)
            obs_metrics.registry().counter("pdw_suite_retries_total", kind=kind).inc()
            self._journal(
                {
                    "event": "node_retry",
                    "benchmark": node.benchmark,
                    "node": node.id,
                    "stage": node.stage,
                    "method": node.method,
                    "attempt": st.attempt,
                    "kind": kind,
                    "message": message,
                    "backoff_s": round(delay, 3),
                }
            )
            backoffs.append((time.monotonic() + delay, nid))
            return 0
        return self._fail_node(
            st, bench, kind, message, started, ended, results, digests
        )

    def _abandon(self, nid: str, backoffs, results, digests, cfg) -> int:
        """A running node past its budget: discard the attempt, retry/fail."""
        st = self._states[nid]
        st.token += 1  # the eventual completion will be recognized as stale
        ended = time.perf_counter()
        started = ended - (time.monotonic() - st.run_started)
        message = f"exceeded wall-clock budget of {self.budget.timeout_s:g}s"
        # The worker stays stuck on the abandoned attempt (threads cannot
        # be killed); spawn a replacement so pool capacity is preserved.
        threading.Thread(target=self._worker_loop, daemon=True).start()
        if "timeout" in RETRYABLE_KINDS and st.attempt <= self.budget.retries:
            st.status = "backoff"
            delay = self._backoff(st.node.id, st.attempt)
            obs_metrics.registry().counter(
                "pdw_suite_retries_total", kind="timeout"
            ).inc()
            self._journal(
                {
                    "event": "node_retry",
                    "benchmark": st.node.benchmark,
                    "node": nid,
                    "stage": st.node.stage,
                    "method": st.node.method,
                    "attempt": st.attempt,
                    "kind": "timeout",
                    "message": message,
                    "backoff_s": round(delay, 3),
                }
            )
            backoffs.append((time.monotonic() + delay, nid))
            return 0
        bench = self._benches[st.node.benchmark]
        return self._fail_node(
            st, bench, "timeout", message, started, ended, results, digests
        )

    def _fail_node(
        self, st: _NodeState, bench: _Bench, kind, message, started, ended,
        results, digests,
    ) -> int:
        """Terminal node failure: record it, cancel transitive dependents."""
        node = st.node
        st.status = "failed"
        self._journal(
            {
                "event": "node_failure",
                "benchmark": node.benchmark,
                "node": node.id,
                "stage": node.stage,
                "method": node.method,
                "attempt": st.attempt,
                "kind": kind,
                "message": message,
                "wall_s": round(ended - started, 6),
            }
        )
        tracer().record_span(
            "sched.node", started, ended, status=f"fail:{kind}",
            benchmark=node.benchmark, method=node.method, stage=node.stage,
            attempt=st.attempt,
        )
        if bench.failure is None:
            wall = time.perf_counter() - bench.started if bench.started else 0.0
            bench.failure = FailureRecord(
                name=bench.name, kind=kind, message=message,
                attempts=st.attempt, wall_time_s=wall,
            )
            obs_metrics.registry().counter("pdw_suite_failures_total", kind=kind).inc()
            self._journal(
                {
                    "event": "failure",
                    "benchmark": bench.name,
                    "attempt": st.attempt,
                    "digest": bench.digest,
                    "kind": kind,
                    "message": message,
                    "wall_s": round(wall, 3),
                }
            )
        terminal = 1
        self._finalize_node(bench, results, digests)
        queue = list(self._children.get(node.id, ()))
        while queue:
            cid = queue.pop(0)
            child = self._states[cid]
            if child.status in ("done", "failed", "cancelled"):
                continue
            child.status = "cancelled"
            self._journal(
                {
                    "event": "node_cancelled",
                    "benchmark": child.node.benchmark,
                    "node": cid,
                    "stage": child.node.stage,
                    "method": child.node.method,
                    "by": node.id,
                }
            )
            self._finalize_node(
                self._benches[child.node.benchmark], results, digests
            )
            terminal += 1
            queue.extend(self._children.get(cid, ()))
        return terminal

    def _finalize_node(self, bench: _Bench, results, digests) -> None:
        """One node of ``bench`` went terminal; finalize at zero remaining."""
        bench.remaining -= 1
        if bench.remaining > 0:
            return
        if bench.run is not None:
            results[bench.name] = bench.run
            obs_metrics.registry().counter(
                "pdw_suite_attempts_total", outcome="ok"
            ).inc()
            self._journal(
                {
                    "event": "success",
                    "benchmark": bench.name,
                    "attempt": 1,
                    "digest": digests[bench.name],
                    "wall_s": round(
                        time.perf_counter() - bench.started if bench.started else 0.0, 3
                    ),
                    "from_cache": bench.run.from_cache,
                }
            )
            return
        results[bench.name] = bench.failure or FailureRecord(
            name=bench.name, kind="error", message="benchmark produced no result"
        )

    def _node_record(self, node: StageNode, bench: _Bench):
        """The StageRecord a node produced, for the queue-wait attach."""
        if node.method == RUN:
            return None
        if node.method == SHARED:
            return bench.main_run.report.get(node.stage)
        run = bench.pdw_run if node.method == "pdw" else bench.dawo_run
        return run.report.get(node.stage) if run is not None else None

    # -- shared-machinery mirrors (supervisor parity) ----------------------------

    def _journal_now(self, record: dict) -> None:
        sched_journal.append_record(self.journal_path, record)

    def _journal(self, record: dict) -> None:
        """Record one journal event, buffered while the completion loop runs.

        Everything the completion loop journals happens with the scheduler
        lock held, and each append releases the GIL per syscall — latency
        that would gate ready successors and worker pickup.  So while the
        loop is active the records are buffered (stamped with their true
        event time) and flushed outside the lock once per loop iteration.
        The worker-side ``node_attempt`` write stays synchronous via
        :meth:`_journal_now` — it must hit the journal *before* execution
        so an interruption shows what was in flight.
        """
        if self._jbuf is not None:
            self._jbuf.append({"ts": time.time(), **record})
        else:
            self._journal_now(record)

    def _flush_journal(self) -> None:
        """Write buffered records (called WITHOUT the scheduler lock)."""
        buf = self._jbuf
        if buf:
            self._jbuf = []
            for record in buf:
                self._journal_now(record)

    def _backoff(self, key: str, attempt: int) -> float:
        """Supervisor-identical deterministic backoff, keyed by node id."""
        base = self.budget.backoff_base_s * (2 ** (attempt - 1))
        seed = os.environ.get(faults.ENV_SEED, "0")
        jitter = random.Random(f"{seed}:{key}:{attempt}").random()
        return min(self.budget.backoff_cap_s, base * (1.0 + jitter))

    def _load_journaled(self, name: str, cfg: PDWConfig) -> Optional[BenchmarkRun]:
        """Serve a journaled success from the artifact cache, if intact."""
        if self.cache is None or not self.use_cache:
            return None
        stored = self.cache.get(run_digest(name, cfg))
        if not isinstance(stored, BenchmarkRun):
            return None
        stored.from_cache = True
        return adopt_run(stored, cfg)

    def _dump_metrics(self, config_digest: str = "") -> Path:
        """Write the run-wide metrics dump next to the journal."""
        path = self.journal_path.parent / "metrics.json"
        payload = {
            **obs_metrics.snapshot(),
            "config_digest": config_digest,
            "journal": str(self.journal_path),
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8")
        return path
