"""Reproducible performance baselines: ``pdw bench`` and ``--compare``.

A bench run executes a pinned benchmark matrix ``iterations`` times
through the existing cache-bypass path (``run_benchmark(use_cache=False)``
— both the in-process memo and the on-disk artifact cache are skipped, so
every sample is cold compute), collects the per-stage wall times and the
per-solver-rung wall times from each run's
:class:`~repro.pipeline.RunReport`, and reduces them to median / p95 per
series.  The result is written as ``BENCH_<git-sha>.json`` at the repo
root (schema: :data:`BENCH_SCHEMA`, documented in docs/OBSERVABILITY.md)
and carries the run's config digest so every number stays attributable to
the exact configuration that produced it.

``compare_bench(current, baseline, threshold_pct)`` gates the *hot paths*
(:data:`DEFAULT_HOT_PATHS` — total wall, the scheduling ILP and path
generation, the paths later scaling PRs optimise) and reports a
:class:`Regression` for every hot-path median that grew by more than the
threshold.  ``pdw bench --compare BASELINE.json`` exits 1 when any
survive, which is what the CI ``bench-smoke`` job consumes.
"""

from __future__ import annotations

import json
import math
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence

from repro.errors import ReproError

if TYPE_CHECKING:  # heavy imports stay lazy: obs must not drag in the solver
    from repro.core import PDWConfig

#: Schema identifier embedded in every bench artifact.
BENCH_SCHEMA = "pdw-bench/1"

#: Default number of cold samples per benchmark.
DEFAULT_ITERATIONS = 3

#: Stage/rung series gated by ``--compare`` (per benchmark).  ``wall_s``
#: is the whole cold run; the others are RunReport stage names.
DEFAULT_HOT_PATHS = (
    "wall_s",
    "pdw.ilp",
    "pdw.pathgen",
    "pdw.ilp.build",
    "pdw.ilp.presolve",
)

#: The single benchmark + one iteration used by ``pdw bench --quick``
#: (the smallest Table II assay, |O| = 4).
QUICK_BENCHMARK = "Kinase-act-1"


def git_sha(repo_root: Optional[Path] = None) -> str:
    """Short git SHA of the working tree, or ``"nogit"``."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=str(repo_root) if repo_root else None,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "nogit"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "nogit"


def median(samples: Sequence[float]) -> float:
    ordered = sorted(samples)
    n = len(ordered)
    if n == 0:
        return 0.0
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def p95(samples: Sequence[float]) -> float:
    """Nearest-rank 95th percentile (exact for the small N we run)."""
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    rank = max(1, math.ceil(0.95 * len(ordered)))
    return ordered[rank - 1]


def _series(samples: Sequence[float]) -> Dict[str, object]:
    return {
        "median": round(median(samples), 6),
        "p95": round(p95(samples), 6),
        "samples": [round(s, 6) for s in samples],
    }


@dataclass
class BenchResult:
    """One completed bench run over the whole matrix."""

    payload: Dict[str, object]

    @property
    def sha(self) -> str:
        return str(self.payload["git_sha"])

    def to_json(self) -> str:
        return json.dumps(self.payload, indent=2, sort_keys=True)

    def default_path(self, repo_root: Path) -> Path:
        return Path(repo_root) / f"BENCH_{self.sha}.json"


def run_bench(
    names: Optional[Sequence[str]] = None,
    config: Optional["PDWConfig"] = None,
    iterations: int = DEFAULT_ITERATIONS,
    quick: bool = False,
    progress=None,
    sched_workers: Optional[int] = None,
) -> BenchResult:
    """Run the pinned matrix cold ``iterations`` times and reduce.

    ``quick`` shrinks the matrix to :data:`QUICK_BENCHMARK` with a single
    iteration (the CI smoke configuration).  ``progress`` is an optional
    ``callable(str)`` fed one line per completed sample.

    ``sched_workers`` additionally times cold whole-suite passes through
    the stage-DAG executor at that worker count, A/B-interleaved with
    serial back-to-back passes over the same benchmarks, and records the
    medians as the artifact's ``suite`` section (``wall_s`` vs
    ``serial_sum_s``) — the committed evidence that overlapping
    independent stages beats running the benchmarks serially.
    """
    # Imported here so ``pdw bench --compare`` works without triggering
    # the full solver import chain (and so repro.obs stays importable
    # from inside repro.pipeline without a cycle).
    from repro.bench import BENCHMARKS
    from repro.core import PDWConfig
    from repro.experiments.runner import run_benchmark
    from repro.pipeline import digest_config

    if quick:
        suite = [QUICK_BENCHMARK]
        iterations = 1
    else:
        suite = list(names) if names else list(BENCHMARKS)
    if iterations < 1:
        raise ReproError("bench iterations must be >= 1")
    for name in suite:
        if name not in BENCHMARKS:
            raise ReproError(f"unknown benchmark {name!r}")

    cfg = config or PDWConfig(time_limit_s=120.0)
    benchmarks: Dict[str, Dict[str, object]] = {}
    for name in suite:
        walls: List[float] = []
        stage_samples: Dict[str, List[float]] = {}
        rung_samples: Dict[str, List[float]] = {}
        for i in range(iterations):
            started = time.perf_counter()
            run = run_benchmark(name, cfg, use_cache=False)
            wall = time.perf_counter() - started
            walls.append(wall)
            for rec in run.report.stages if run.report else ():
                if rec.cached:
                    continue  # a cold run, but stay robust to shared rows
                target = rung_samples if ".ilp.rung." in f".{rec.stage}" else stage_samples
                key = rec.stage
                if target is rung_samples:
                    key = rec.stage.split("ilp.rung.", 1)[1]
                target.setdefault(key, []).append(rec.wall_s)
            if progress is not None:
                progress(f"{name} sample {i + 1}/{iterations}: {wall:.3f}s")
        benchmarks[name] = {
            "wall_s": _series(walls),
            "stages": {k: _series(v) for k, v in sorted(stage_samples.items())},
            "rungs": {k: _series(v) for k, v in sorted(rung_samples.items())},
        }

    payload: Dict[str, object] = {
        "schema": BENCH_SCHEMA,
        "git_sha": git_sha(),
        "created_unix": round(time.time(), 3),
        "iterations": iterations,
        "quick": quick,
        "config_digest": digest_config(cfg),
        "time_limit_s": cfg.time_limit_s,
        "hot_paths": list(DEFAULT_HOT_PATHS),
        "benchmarks": benchmarks,
    }
    if sched_workers:
        from repro.sched.executor import DagExecutor

        # A/B-interleaved sampling: each iteration runs the benchmarks
        # back to back (the serial whole-suite wall) and then once
        # through the DAG executor, so both sides see the same box
        # conditions — a load spike between phases cannot fake (or hide)
        # the overlap win.  Medians over ``iterations`` of each.
        serial_walls: List[float] = []
        suite_walls: List[float] = []
        failures = 0
        # One untimed warm-up pass of each side before sampling: the
        # first pass in a process pays one-time costs (solver binding
        # initialisation, allocator growth) that belong to neither
        # side's steady-state wall.  Symmetric, so it cannot tilt the
        # comparison.
        for name in suite:
            run_benchmark(name, cfg, use_cache=False)
        DagExecutor(use_cache=False, workers=sched_workers).run(suite, cfg)
        for i in range(iterations):
            # Counterbalanced order (serial-first on even iterations,
            # DAG-first on odd): a load spike arriving mid-iteration
            # otherwise always lands on whichever side runs second.
            def _serial() -> None:
                started = time.perf_counter()
                for name in suite:
                    run_benchmark(name, cfg, use_cache=False)
                serial_walls.append(time.perf_counter() - started)

            def _dag() -> None:
                nonlocal failures
                started = time.perf_counter()
                suite_result = DagExecutor(
                    use_cache=False, workers=sched_workers
                ).run(suite, cfg)
                suite_walls.append(time.perf_counter() - started)
                failures = max(failures, len(suite_result.failures))

            first, second = (_serial, _dag) if i % 2 == 0 else (_dag, _serial)
            first()
            second()
            if progress is not None:
                progress(
                    f"suite sample {i + 1}/{iterations}: serial "
                    f"{serial_walls[-1]:.3f}s, DAG x{sched_workers} "
                    f"{suite_walls[-1]:.3f}s"
                )
        if progress is not None:
            progress(
                f"suite via DAG x{sched_workers}: median "
                f"{median(suite_walls):.3f}s vs serial median "
                f"{median(serial_walls):.3f}s"
            )
        import os

        payload["suite"] = {
            "sched_workers": int(sched_workers),
            # The executor never oversubscribes the host (pool is
            # clamped to the core count), so record what actually ran.
            "cpu_count": os.cpu_count(),
            "pool_width": max(1, min(int(sched_workers), os.cpu_count() or 1)),
            "wall_s": round(median(suite_walls), 6),
            "samples": [round(s, 6) for s in suite_walls],
            "serial_sum_s": round(median(serial_walls), 6),
            "serial_samples": [round(s, 6) for s in serial_walls],
            "failures": failures,
        }
    return BenchResult(payload)


# ---------------------------------------------------------------------------
# comparison
# ---------------------------------------------------------------------------

@dataclass
class Regression:
    """One hot-path median that grew past the threshold."""

    path: str
    baseline_s: float
    current_s: float

    @property
    def pct(self) -> float:
        if self.baseline_s <= 0:
            return math.inf
        return 100.0 * (self.current_s - self.baseline_s) / self.baseline_s

    def render(self) -> str:
        return (
            f"{self.path}: {self.baseline_s:.4f}s -> {self.current_s:.4f}s "
            f"(+{self.pct:.1f}%)"
        )


@dataclass
class CompareReport:
    """Outcome of gating a bench run against a baseline."""

    regressions: List[Regression] = field(default_factory=list)
    compared: List[str] = field(default_factory=list)
    skipped: List[str] = field(default_factory=list)
    threshold_pct: float = 25.0

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        lines = [
            f"compared {len(self.compared)} hot-path series "
            f"(threshold +{self.threshold_pct:g}%)"
        ]
        for reg in self.regressions:
            lines.append(f"  REGRESSION {reg.render()}")
        for path in self.skipped:
            lines.append(f"  skipped {path} (missing from one side)")
        lines.append("result: " + ("OK" if self.ok else "REGRESSED"))
        return "\n".join(lines) + "\n"


def _hot_path_value(bench: Mapping[str, object], path: str) -> Optional[float]:
    """Median of one hot-path series inside a benchmark entry."""
    if path == "wall_s":
        series = bench.get("wall_s")
    else:
        series = bench.get("stages", {}).get(path)
        if series is None:
            series = bench.get("rungs", {}).get(path)
    if not isinstance(series, Mapping):
        return None
    value = series.get("median")
    return float(value) if value is not None else None


def compare_bench(
    current: Mapping[str, object],
    baseline: Mapping[str, object],
    threshold_pct: float = 25.0,
    hot_paths: Optional[Sequence[str]] = None,
) -> CompareReport:
    """Gate ``current`` against ``baseline`` on the named hot paths.

    A series regresses when its current median exceeds the baseline
    median by more than ``threshold_pct`` percent.  Series missing from
    either side are reported as skipped, never as failures — a baseline
    from an older matrix must not block a grown one.
    """
    for payload, side in ((current, "current"), (baseline, "baseline")):
        if payload.get("schema") != BENCH_SCHEMA:
            raise ReproError(
                f"{side} bench artifact has schema {payload.get('schema')!r}; "
                f"expected {BENCH_SCHEMA!r}"
            )
    paths = list(hot_paths) if hot_paths else list(
        baseline.get("hot_paths") or DEFAULT_HOT_PATHS
    )
    report = CompareReport(threshold_pct=threshold_pct)
    cur_benches: Mapping[str, object] = current.get("benchmarks", {})
    base_benches: Mapping[str, object] = baseline.get("benchmarks", {})
    for name in sorted(base_benches):
        cur = cur_benches.get(name)
        base = base_benches[name]
        for path in paths:
            label = f"{name}.{path}"
            base_v = _hot_path_value(base, path)
            cur_v = _hot_path_value(cur, path) if isinstance(cur, Mapping) else None
            if base_v is None or cur_v is None:
                report.skipped.append(label)
                continue
            report.compared.append(label)
            if cur_v > base_v * (1.0 + threshold_pct / 100.0):
                report.regressions.append(Regression(label, base_v, cur_v))
    return report


def load_bench(path: Path) -> Dict[str, object]:
    """Parse one bench artifact, with a clean error on malformed input."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as exc:
        raise ReproError(f"cannot read bench artifact {path}: {exc}") from exc
    except ValueError as exc:
        raise ReproError(f"malformed bench artifact {path}: {exc}") from exc
    if not isinstance(payload, dict):
        raise ReproError(f"bench artifact {path} is not a JSON object")
    return payload
