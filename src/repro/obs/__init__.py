"""Observability: trace spans, the metrics registry, perf baselines.

Zero-dependency instrumentation substrate for the whole stack
(DESIGN.md §10, docs/OBSERVABILITY.md):

* :mod:`repro.obs.trace` — hierarchical spans with an ambient
  thread-local context (``with span("stage.pathgen") as sp: ...``),
  exported as Chrome-trace JSON (``pdw export --what trace``) or an
  indented tree (``pdw report trace <benchmark>``),
* :mod:`repro.obs.metrics` — a central registry of counters, gauges and
  fixed-bucket histograms, serializable to JSON and the Prometheus text
  format, with exact cross-process snapshot merging (the suite
  supervisor journals one snapshot per worker and dumps the merge),
* :mod:`repro.obs.perf` — ``pdw bench``: cold-run medians/p95 per stage
  and per solver rung over the pinned matrix, written as
  ``BENCH_<git-sha>.json`` and gated by ``pdw bench --compare``.

Every exported artifact (trace, metrics dump, bench JSON) carries the
run's config digest so numbers stay attributable.
"""

from repro.obs import metrics, perf, trace
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
    registry,
)
from repro.obs.perf import (
    BENCH_SCHEMA,
    BenchResult,
    CompareReport,
    Regression,
    compare_bench,
    load_bench,
    run_bench,
)
from repro.obs.trace import SpanRecord, Tracer, span, tracer

__all__ = [
    "BENCH_SCHEMA",
    "BenchResult",
    "CompareReport",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Regression",
    "SpanRecord",
    "Tracer",
    "compare_bench",
    "load_bench",
    "merge_snapshots",
    "metrics",
    "perf",
    "registry",
    "run_bench",
    "span",
    "trace",
    "tracer",
]
