"""Hierarchical trace spans with an ambient (thread-local) context.

A *span* covers one timed region of work — a pipeline stage, a solver
ladder rung, a supervisor attempt — and nests under whatever span was
open on the same thread when it started::

    with span("pdw.pathgen") as sp:
        sp.set("candidates", len(pool))

Spans are recorded into the process-global :class:`Tracer` only while
tracing is enabled (:func:`enable` / ``REPRO_TRACE=1``); when disabled,
``span()`` costs one truthiness check and yields a shared no-op handle,
so the instrumentation can stay in the hot paths permanently.

Two export forms:

* :meth:`Tracer.chrome_trace` — the Chrome trace-event JSON format
  (``chrome://tracing`` / Perfetto): one complete ``"ph": "X"`` event per
  span with microsecond timestamps, plus a process-metadata record
  carrying the run's config digest, and
* :meth:`Tracer.render_tree` — an indented text tree with durations,
  shown by ``pdw report trace <benchmark>``.

Naming convention (docs/OBSERVABILITY.md): dotted lowercase components,
``<subsystem>.<unit>`` — ``stage.pathgen``, ``ilp.rung.highs``,
``suite.attempt``.  The hierarchy comes from nesting, not from the name.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Union

#: Environment variable that enables tracing at import time.
ENV_TRACE = "REPRO_TRACE"

AttrValue = Union[str, int, float, bool]


@dataclass
class SpanRecord:
    """One finished span: timing, nesting, and free-form attributes."""

    name: str
    #: Seconds relative to the tracer's epoch (``perf_counter`` based).
    start_s: float
    end_s: float
    #: Index of the enclosing span in :attr:`Tracer.spans`, or ``None``.
    parent: Optional[int]
    index: int
    thread_id: int
    attrs: Dict[str, AttrValue] = field(default_factory=dict)
    status: str = "ok"

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "start_s": round(self.start_s, 6),
            "duration_s": round(self.duration_s, 6),
            "parent": self.parent,
            "index": self.index,
            "status": self.status,
            "attrs": dict(self.attrs),
        }


class _ActiveSpan:
    """The handle yielded by :func:`span` while the region is open."""

    __slots__ = ("name", "attrs", "status", "_started")

    def __init__(self, name: str, attrs: Dict[str, AttrValue]):
        self.name = name
        self.attrs = attrs
        self.status = "ok"
        self._started = 0.0

    def set(self, key: str, value: AttrValue) -> None:
        """Attach one attribute to the span (exported in ``args``)."""
        self.attrs[key] = value


class _NoopSpan:
    """Shared no-op handle returned while tracing is disabled."""

    __slots__ = ()

    def set(self, key: str, value: AttrValue) -> None:
        pass


_NOOP = _NoopSpan()


class Tracer:
    """Collects finished spans; one per process is usually enough.

    Thread-safe: each thread keeps its own open-span stack (the ambient
    context), finished spans are appended under a lock.
    """

    def __init__(self, enabled: bool = False):
        self._enabled = enabled
        self._lock = threading.Lock()
        self._local = threading.local()
        self._epoch = time.perf_counter()
        self._epoch_unix = time.time()
        self.spans: List[SpanRecord] = []

    # -- state -------------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def clear(self) -> None:
        """Drop recorded spans and restart the epoch."""
        with self._lock:
            self.spans = []
            self._epoch = time.perf_counter()
            self._epoch_unix = time.time()

    def _stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # -- recording ---------------------------------------------------------------

    def span(self, name: str, **attrs: AttrValue):
        """Context manager opening one span nested in the ambient context."""
        if not self._enabled:
            return _noop_ctx()
        return _span_ctx(self, name, attrs)

    def record_span(
        self,
        name: str,
        started_s: float,
        ended_s: float,
        status: str = "ok",
        **attrs: AttrValue,
    ) -> SpanRecord:
        """Record an already-measured region (``perf_counter`` endpoints).

        Used where the region's lifetime does not match a ``with`` block —
        e.g. the suite supervisor's asynchronous worker attempts.
        """
        if not self._enabled:
            return SpanRecord(name, 0.0, 0.0, None, -1, 0, dict(attrs), status)
        stack = self._stack()
        parent = stack[-1] if stack else None
        with self._lock:
            rec = SpanRecord(
                name=name,
                start_s=started_s - self._epoch,
                end_s=ended_s - self._epoch,
                parent=parent,
                index=len(self.spans),
                thread_id=threading.get_ident(),
                attrs=dict(attrs),
                status=status,
            )
            self.spans.append(rec)
        return rec

    # -- export ------------------------------------------------------------------

    def chrome_trace(self, config_digest: str = "") -> str:
        """The recorded spans as Chrome trace-event JSON.

        Loads in ``chrome://tracing`` and Perfetto: complete (``"X"``)
        events with microsecond timestamps, one metadata record naming
        the process, and the run's config digest in ``otherData`` so the
        numbers stay attributable.
        """
        pid = os.getpid()
        events: List[Dict[str, object]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": "pdw"},
            }
        ]
        with self._lock:
            spans = list(self.spans)
        for rec in spans:
            args: Dict[str, object] = dict(rec.attrs)
            if rec.status != "ok":
                args["status"] = rec.status
            events.append(
                {
                    "name": rec.name,
                    "ph": "X",
                    "ts": round(rec.start_s * 1e6, 3),
                    "dur": round(rec.duration_s * 1e6, 3),
                    "pid": pid,
                    "tid": rec.thread_id,
                    "args": args,
                }
            )
        payload = {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "producer": "repro.obs.trace",
                "config_digest": config_digest,
                "epoch_unix": round(self._epoch_unix, 3),
            },
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    def render_tree(self) -> str:
        """Indented text tree of the recorded spans with durations."""
        with self._lock:
            spans = list(self.spans)
        if not spans:
            return "no spans recorded\n"
        children: Dict[Optional[int], List[SpanRecord]] = {}
        for rec in spans:
            children.setdefault(rec.parent, []).append(rec)
        for bucket in children.values():
            bucket.sort(key=lambda r: (r.start_s, r.index))

        lines: List[str] = []

        def walk(rec: SpanRecord, depth: int) -> None:
            attrs = " ".join(f"{k}={v}" for k, v in sorted(rec.attrs.items()))
            mark = "" if rec.status == "ok" else f" [{rec.status}]"
            lines.append(
                f"{'  ' * depth}{rec.name:<{max(1, 40 - 2 * depth)}}"
                f"{rec.duration_s * 1e3:10.2f} ms{mark}"
                + (f"  {attrs}" if attrs else "")
            )
            for child in children.get(rec.index, ()):
                walk(child, depth + 1)

        for root in children.get(None, ()):
            walk(root, 0)
        return "\n".join(lines) + "\n"


class _span_ctx:
    """``with``-statement body of :meth:`Tracer.span` (enabled path)."""

    __slots__ = ("_tracer", "_handle", "_parent", "_index")

    def __init__(self, tracer: Tracer, name: str, attrs: Dict[str, AttrValue]):
        self._tracer = tracer
        self._handle = _ActiveSpan(name, dict(attrs))

    def __enter__(self) -> _ActiveSpan:
        stack = self._tracer._stack()
        self._parent = stack[-1] if stack else None
        self._handle._started = time.perf_counter()
        # Reserve the index up front so children recorded inside the
        # region can point at this span before it is finished.
        with self._tracer._lock:
            index = len(self._tracer.spans)
            self._tracer.spans.append(
                SpanRecord(
                    name=self._handle.name,
                    start_s=self._handle._started - self._tracer._epoch,
                    end_s=self._handle._started - self._tracer._epoch,
                    parent=self._parent,
                    index=index,
                    thread_id=threading.get_ident(),
                )
            )
        stack.append(index)
        self._index = index
        return self._handle

    def __exit__(self, exc_type, exc, tb) -> bool:
        ended = time.perf_counter()
        stack = self._tracer._stack()
        if stack and stack[-1] == self._index:
            stack.pop()
        elif self._index in stack:  # exotic: exited out of order
            stack.remove(self._index)
        with self._tracer._lock:
            rec = self._tracer.spans[self._index]
            rec.end_s = ended - self._tracer._epoch
            rec.attrs = dict(self._handle.attrs)
            if exc_type is not None:
                rec.status = f"error:{exc_type.__name__}"
            elif self._handle.status != "ok":
                rec.status = self._handle.status
        return False  # never swallow the exception


class _noop_ctx:
    __slots__ = ()

    def __enter__(self) -> _NoopSpan:
        return _NOOP

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


# ---------------------------------------------------------------------------
# process-global tracer
# ---------------------------------------------------------------------------

_GLOBAL = Tracer(enabled=os.environ.get(ENV_TRACE, "") not in ("", "0", "off"))


def tracer() -> Tracer:
    """The process-global tracer."""
    return _GLOBAL


def span(name: str, **attrs: AttrValue):
    """Open a span on the process-global tracer (no-op while disabled)."""
    return _GLOBAL.span(name, **attrs)


def enable() -> None:
    _GLOBAL.enable()


def disable() -> None:
    _GLOBAL.disable()


def clear() -> None:
    _GLOBAL.clear()


def spans() -> List[SpanRecord]:
    """Snapshot of the globally recorded spans."""
    with _GLOBAL._lock:
        return list(_GLOBAL.spans)


def iter_roots() -> Iterator[SpanRecord]:
    """The recorded top-level spans (no parent)."""
    for rec in spans():
        if rec.parent is None:
            yield rec
