"""Central metrics registry: counters, gauges, fixed-bucket histograms.

One :class:`MetricsRegistry` per process aggregates everything the
pipeline, the solver portfolio and the suite layers emit, replacing the
ad-hoc per-call-site counter dicts.  Metric identity is
``(name, sorted labels)``; names follow the Prometheus convention
(``pdw_stage_wall_seconds``, ``pdw_suite_attempts_total`` — see
docs/OBSERVABILITY.md for the full catalogue).

Three instrument kinds:

* :class:`Counter` — monotonically increasing float,
* :class:`Gauge` — last-written value,
* :class:`Histogram` — observation counts over *fixed* bucket upper
  bounds (fixed so snapshots from different processes merge exactly),
  plus running sum and count.

Serialization targets both machines and scrapers:

* :meth:`MetricsRegistry.as_dict` / :meth:`MetricsRegistry.from_dict` —
  plain-JSON snapshots, mergeable via :meth:`MetricsRegistry.merge`
  (counters and histogram buckets add; gauges take the incoming value).
  The suite supervisor journals one snapshot per worker subprocess and
  merges them into the run-wide dump,
* :meth:`MetricsRegistry.render_prometheus` — the Prometheus text
  exposition format (``pdw export --what metrics --format prom``).
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

LabelValue = Union[str, int, float, bool]
#: Canonical metric identity: name + sorted ``(label, value)`` pairs.
MetricKey = Tuple[str, Tuple[Tuple[str, str], ...]]

#: Default histogram bucket upper bounds (seconds-flavoured latencies).
#: Fixed across the codebase so cross-process snapshots merge bucket-wise.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
    10.0, 30.0, 60.0, 120.0, 300.0,
)


def _label_key(labels: Mapping[str, LabelValue]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonic counter; negative increments are rejected."""

    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount

    def state(self) -> Dict[str, object]:
        return {"value": self.value}

    def absorb(self, state: Mapping[str, object]) -> None:
        self.value += float(state.get("value", 0.0))


class Gauge:
    """Last-write-wins instantaneous value."""

    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def state(self) -> Dict[str, object]:
        return {"value": self.value}

    def absorb(self, state: Mapping[str, object]) -> None:
        # A merged gauge keeps the incoming (more recent) observation.
        self.value = float(state.get("value", self.value))


class Histogram:
    """Cumulative-bucket histogram over fixed upper bounds.

    ``counts[i]`` is the number of observations ``<= bounds[i]``
    (*non*-cumulative storage; rendering accumulates), with one implicit
    ``+Inf`` overflow bucket at the end.
    """

    kind = "histogram"

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKETS):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be a sorted non-empty sequence")
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def state(self) -> Dict[str, object]:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }

    def absorb(self, state: Mapping[str, object]) -> None:
        bounds = tuple(float(b) for b in state.get("bounds", ()))
        if bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different buckets: "
                f"{bounds} vs {self.bounds}"
            )
        counts = list(state.get("counts", ()))
        if len(counts) != len(self.counts):
            raise ValueError("histogram bucket count mismatch")
        for i, c in enumerate(counts):
            self.counts[i] += int(c)
        self.sum += float(state.get("sum", 0.0))
        self.count += int(state.get("count", 0))


Instrument = Union[Counter, Gauge, Histogram]

_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Thread-safe get-or-create store of labelled instruments."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[MetricKey, Instrument] = {}

    # -- instruments -------------------------------------------------------------

    def _get(self, name: str, labels: Mapping[str, LabelValue], factory) -> Instrument:
        key = (name, _label_key(labels))
        with self._lock:
            inst = self._metrics.get(key)
            if inst is None:
                inst = self._metrics[key] = factory()
            return inst

    def counter(self, name: str, **labels: LabelValue) -> Counter:
        inst = self._get(name, labels, Counter)
        if not isinstance(inst, Counter):
            raise TypeError(f"metric {name!r} already registered as {inst.kind}")
        return inst

    def gauge(self, name: str, **labels: LabelValue) -> Gauge:
        inst = self._get(name, labels, Gauge)
        if not isinstance(inst, Gauge):
            raise TypeError(f"metric {name!r} already registered as {inst.kind}")
        return inst

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        **labels: LabelValue,
    ) -> Histogram:
        inst = self._get(name, labels, lambda: Histogram(buckets))
        if not isinstance(inst, Histogram):
            raise TypeError(f"metric {name!r} already registered as {inst.kind}")
        return inst

    # -- snapshots ---------------------------------------------------------------

    def clear(self) -> None:
        with self._lock:
            self._metrics.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def as_dict(self) -> Dict[str, object]:
        """Plain-JSON snapshot: one entry per (name, labels) series."""
        series: List[Dict[str, object]] = []
        with self._lock:
            items = sorted(self._metrics.items())
            for (name, labels), inst in items:
                series.append(
                    {
                        "name": name,
                        "labels": dict(labels),
                        "kind": inst.kind,
                        **inst.state(),
                    }
                )
        return {"schema": "pdw-metrics/1", "series": series}

    @classmethod
    def from_dict(cls, snapshot: Mapping[str, object]) -> "MetricsRegistry":
        reg = cls()
        reg.merge(snapshot)
        return reg

    def merge(self, snapshot: Mapping[str, object]) -> None:
        """Fold a JSON snapshot into this registry.

        Counters and histogram buckets add up; gauges take the incoming
        value.  Used to combine supervisor-worker snapshots (journalled
        per subprocess) into the run-wide dump.
        """
        for entry in snapshot.get("series", ()):
            name = str(entry["name"])
            labels = {str(k): str(v) for k, v in dict(entry.get("labels", {})).items()}
            kind = str(entry.get("kind", "counter"))
            factory = _KINDS.get(kind)
            if factory is None:
                raise ValueError(f"unknown metric kind {kind!r} in snapshot")
            if kind == "histogram":
                bounds = tuple(float(b) for b in entry.get("bounds", DEFAULT_BUCKETS))
                inst = self._get(name, labels, lambda: Histogram(bounds))
            else:
                inst = self._get(name, labels, factory)
            if inst.kind != kind:
                raise TypeError(
                    f"metric {name!r} is {inst.kind} here but {kind} in snapshot"
                )
            inst.absorb(entry)

    # -- rendering ---------------------------------------------------------------

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format (0.0.4)."""
        with self._lock:
            items = sorted(self._metrics.items())
        lines: List[str] = []
        seen_type: set = set()
        for (name, labels), inst in items:
            if name not in seen_type:
                lines.append(f"# TYPE {name} {inst.kind}")
                seen_type.add(name)
            base = dict(labels)
            if isinstance(inst, Histogram):
                cumulative = 0
                for bound, count in zip(inst.bounds, inst.counts):
                    cumulative += count
                    lines.append(
                        _sample(f"{name}_bucket", {**base, "le": _fmt(bound)}, cumulative)
                    )
                cumulative += inst.counts[-1]
                lines.append(_sample(f"{name}_bucket", {**base, "le": "+Inf"}, cumulative))
                lines.append(_sample(f"{name}_sum", base, inst.sum))
                lines.append(_sample(f"{name}_count", base, inst.count))
            else:
                lines.append(_sample(name, base, inst.value))
        return "\n".join(lines) + ("\n" if lines else "")


def _fmt(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    out = f"{value:g}"
    return out


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _sample(name: str, labels: Mapping[str, str], value: float) -> str:
    if labels:
        inner = ",".join(
            f'{k}="{_escape(str(v))}"' for k, v in sorted(labels.items())
        )
        return f"{name}{{{inner}}} {_fmt(float(value))}"
    return f"{name} {_fmt(float(value))}"


# ---------------------------------------------------------------------------
# process-global registry
# ---------------------------------------------------------------------------

_GLOBAL = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-global registry every subsystem emits into."""
    return _GLOBAL


def reset() -> None:
    """Drop every globally recorded series (tests, fresh bench runs)."""
    _GLOBAL.clear()


def snapshot() -> Dict[str, object]:
    """JSON snapshot of the global registry (what workers ship home)."""
    return _GLOBAL.as_dict()


def merge_snapshots(
    snapshots: Sequence[Mapping[str, object]],
    into: Optional[MetricsRegistry] = None,
) -> MetricsRegistry:
    """Merge many JSON snapshots into one registry (journal → dump)."""
    reg = into if into is not None else MetricsRegistry()
    for snap in snapshots:
        reg.merge(snap)
    return reg
