"""Machine-readable wash-plan export."""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.core.plan import WashPlan


def plan_to_dict(plan: WashPlan) -> Dict[str, Any]:
    """Serialize a wash plan (schedule + washes + metrics) to plain data."""
    out = {
        "method": plan.method,
        "chip": plan.chip.name,
        "solver_status": plan.solver_status,
        "solver_rung": plan.solver_rung,
        "solve_time_s": round(plan.solve_time_s, 4),
        "metrics": plan.metrics(),
        "baseline_makespan_s": plan.baseline_makespan,
        "tasks": [
            {
                "id": task.id,
                "kind": task.kind.value,
                "start_s": task.start,
                "duration_s": task.duration,
                "path": list(task.path) if task.path else None,
                "device": task.device,
                "fluid_type": task.fluid_type,
                "edge": list(task.edge) if task.edge else None,
            }
            for task in plan.schedule.tasks()
        ],
        "washes": [
            {
                "id": wash.id,
                "start_s": wash.start,
                "duration_s": wash.duration,
                "path": list(wash.path),
                "targets": sorted(wash.targets),
                "absorbed_removals": list(wash.absorbed_removals),
            }
            for wash in plan.washes
        ],
    }
    degradation = getattr(plan, "degradation", None)
    if degradation is not None:
        out["degradation"] = degradation.as_dict()
    repairs = getattr(plan, "repairs", ()) or ()
    if repairs:
        out["repairs"] = [record.as_dict() for record in repairs]
    if plan.report is not None:
        out["pipeline"] = plan.report.as_dict()
    return out


def plan_to_json(plan: WashPlan, indent: int = 2) -> str:
    """Serialize a wash plan to a JSON string."""
    return json.dumps(plan_to_dict(plan), indent=indent)


def canonical_plan_dict(plan: WashPlan) -> Dict[str, Any]:
    """The timing-free view of a plan: byte-stable across identical runs.

    Drops the volatile fields — ``solve_time_s`` and the ``pipeline``
    report (wall times, cache origins, queue waits) — leaving exactly the
    *decisions*: schedule, washes, metrics, solver status/rung.  Two runs
    of the same inputs must produce identical canonical dicts regardless
    of caching, worker count or executor, which is what the suite DAG's
    determinism test and the CI ``dag-executor`` plan diff assert.
    """
    out = plan_to_dict(plan)
    out.pop("pipeline", None)
    out.pop("solve_time_s", None)
    # Repair rounds carry wall-clock latencies; the decisions stay.
    for record in out.get("repairs", ()):
        record.pop("wall_s", None)
    return out


def canonical_plan_json(plan: WashPlan, indent: int = 2) -> str:
    """Canonical (timing-free) plan serialization with sorted keys."""
    return json.dumps(canonical_plan_dict(plan), indent=indent, sort_keys=True)
