"""Exporters: wash plans, schedules and valve control programs.

Downstream consumers of a wash-optimized assay are (a) humans reviewing a
plan, (b) other EDA tools, and (c) the pressure controller actually driving
the chip.  This package serves all three:

* :func:`~repro.export.plan_json.plan_to_dict` /
  :func:`~repro.export.plan_json.plan_to_json` — full machine-readable
  plan (tasks, washes, metrics),
* :func:`~repro.export.actuation.actuation_program` — the tick-by-tick
  valve program (CSV) a controller executes,
* :func:`~repro.viz.svg.render_svg` (re-exported) — layout drawings.
"""

from repro.export.plan_json import (
    canonical_plan_dict,
    canonical_plan_json,
    plan_to_dict,
    plan_to_json,
)
from repro.export.actuation import actuation_program
from repro.viz.svg import render_svg

__all__ = [
    "actuation_program",
    "canonical_plan_dict",
    "canonical_plan_json",
    "plan_to_dict",
    "plan_to_json",
    "render_svg",
]
