"""Valve control-program export.

A pressure controller drives a chip by switching valves between pressurized
(closed) and vented (open) states at fixed time steps.  The CSV produced
here has one row per schedule tick and one column per valve; cells are
``O`` (open) or ``C`` (closed — the default/safe state of a normally
closed membrane valve).
"""

from __future__ import annotations

import io
from typing import Optional

from repro.arch.chip import Chip
from repro.arch.control import ControlLayer
from repro.schedule.schedule import Schedule


def actuation_program(
    chip: Chip,
    schedule: Schedule,
    layer: Optional[ControlLayer] = None,
) -> str:
    """CSV valve program for ``schedule`` on ``chip``.

    The header row lists the valve ids with the channel segment each valve
    gates in a comment line above it.
    """
    layer = layer or ControlLayer(chip)
    table = layer.actuation_table(schedule)
    valves = sorted(layer.valves.values(), key=lambda v: int(v.id[1:]))

    out = io.StringIO()
    out.write(
        "# valve program for chip "
        f"{chip.name!r}: O=open (vented), C=closed (pressurized)\n"
    )
    out.write(
        "# "
        + ", ".join(f"{v.id}={v.edge[0]}-{v.edge[1]}" for v in valves)
        + "\n"
    )
    out.write("tick," + ",".join(v.id for v in valves) + "\n")
    for tick in range(table.horizon):
        open_now = table.open_valves(tick)
        row = ",".join("O" if v in open_now else "C" for v in valves)
        out.write(f"{tick},{row}\n")
    return out.getvalue()
