"""Per-stage instrumentation of a pipeline run.

Every pipeline execution (PDW, DAWO, the benchmark runner) fills a
:class:`RunReport`: one :class:`StageRecord` per executed stage with its
wall time, whether the artifact came from the cache, free-form numeric
counters (cluster counts, candidate-pool sizes, solver statistics) and an
optional detail string (e.g. the ILP model-size summary).

The report is attached to the produced :class:`~repro.core.plan.WashPlan`
and to the runner's :class:`~repro.experiments.runner.BenchmarkRun`, and is
rendered by ``pdw run --stats`` and ``python -m repro.experiments timings``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs import metrics as obs_metrics


@dataclass
class StageRecord:
    """Instrumentation of one executed (or cache-served) stage."""

    stage: str
    wall_s: float
    cached: bool = False
    counters: Dict[str, float] = field(default_factory=dict)
    detail: str = ""

    @property
    def origin(self) -> str:
        """Where the artifact came from: computed | cache | shared.

        Derived (not stored) so reports pickled by older code versions
        keep loading.  ``shared`` rows were handed in by another pipeline
        (zero wall time); ``cache`` rows cost one cache lookup, recorded
        as this record's ``wall_s`` (and the ``cache_lookup_s`` counter).
        Timing statistics must average ``computed`` rows only.
        """
        if self.counters.get("shared"):
            return "shared"
        return "cache" if self.cached else "computed"

    def as_dict(self) -> Dict[str, object]:
        """Plain-data view (used by reports and JSON export)."""
        return {
            "stage": self.stage,
            "wall_s": self.wall_s,
            "cached": self.cached,
            "origin": self.origin,
            "counters": dict(self.counters),
            "detail": self.detail,
        }

    def publish(self) -> None:
        """Emit this record into the central metrics registry.

        The single choke point through which every stage execution —
        pipeline stages, ad-hoc timed steps, solver-rung records —
        reaches :mod:`repro.obs.metrics`: wall-time histograms split by
        origin, a run counter, and one gauge per artifact counter.
        """
        reg = obs_metrics.registry()
        reg.counter(
            "pdw_stage_runs_total", stage=self.stage, origin=self.origin
        ).inc()
        if self.origin == "computed":
            reg.histogram("pdw_stage_wall_seconds", stage=self.stage).observe(
                self.wall_s
            )
        elif self.origin == "cache":
            reg.histogram(
                "pdw_stage_cache_lookup_seconds", stage=self.stage
            ).observe(self.wall_s)
        for key, value in self.counters.items():
            reg.gauge("pdw_stage_counter", stage=self.stage, key=key).set(
                float(value)
            )


@dataclass
class RunReport:
    """Ordered per-stage records of one pipeline run."""

    label: str = ""
    stages: List[StageRecord] = field(default_factory=list)

    # -- recording ---------------------------------------------------------------

    def record(
        self,
        stage: str,
        wall_s: float,
        cached: bool = False,
        counters: Optional[Dict[str, float]] = None,
        detail: str = "",
    ) -> StageRecord:
        """Append one stage record, publish it to the registry, return it."""
        rec = StageRecord(stage, wall_s, cached, dict(counters or {}), detail)
        rec.publish()
        self.stages.append(rec)
        return rec

    def extend(self, other: "RunReport", prefix: str = "") -> None:
        """Absorb another report's records (optionally namespaced)."""
        for rec in other.stages:
            name = f"{prefix}{rec.stage}" if prefix else rec.stage
            self.stages.append(
                StageRecord(name, rec.wall_s, rec.cached, dict(rec.counters), rec.detail)
            )

    # -- queries -----------------------------------------------------------------

    def get(self, stage: str) -> Optional[StageRecord]:
        """The first record of ``stage``, or ``None``."""
        for rec in self.stages:
            if rec.stage == stage:
                return rec
        return None

    def stage_names(self) -> List[str]:
        """Stage names in execution order."""
        return [rec.stage for rec in self.stages]

    @property
    def total_wall_s(self) -> float:
        """Summed wall time over all recorded stages."""
        return sum(rec.wall_s for rec in self.stages)

    @property
    def computed_wall_s(self) -> float:
        """Summed wall time over *computed* stages only.

        Cache-served and shared rows cost a lookup (or nothing), so
        including them silently skews timing averages toward zero —
        ``pdw report timings`` and ``pdw bench`` aggregate this view.
        """
        return sum(rec.wall_s for rec in self.stages if rec.origin == "computed")

    @property
    def cache_hits(self) -> int:
        """Number of stages served from the artifact cache."""
        return sum(1 for rec in self.stages if rec.cached)

    # -- export -------------------------------------------------------------------

    def flat(self) -> Dict[str, float]:
        """Flat float mapping suitable for ``WashPlan.notes``.

        Keys look like ``stage.replay.wall_s`` / ``stage.ilp.cached`` /
        ``stage.ilp.solve_time_s``.
        """
        out: Dict[str, float] = {}
        for rec in self.stages:
            out[f"stage.{rec.stage}.wall_s"] = round(rec.wall_s, 6)
            out[f"stage.{rec.stage}.cached"] = float(rec.cached)
            for key, value in rec.counters.items():
                out[f"stage.{rec.stage}.{key}"] = float(value)
        return out

    def as_dict(self) -> Dict[str, object]:
        """Plain-data view of the whole report."""
        return {
            "label": self.label,
            "total_wall_s": self.total_wall_s,
            "cache_hits": self.cache_hits,
            "stages": [rec.as_dict() for rec in self.stages],
        }

    def render(self) -> str:
        """Aligned text table of the per-stage instrumentation."""
        headers = ("stage", "wall(s)", "cached", "counters", "detail")
        rows: List[tuple] = []
        for rec in self.stages:
            counters = " ".join(
                f"{k}={v:g}" for k, v in sorted(rec.counters.items())
            )
            rows.append(
                (rec.stage, f"{rec.wall_s:.4f}", "yes" if rec.cached else "-",
                 counters, rec.detail)
            )
        rows.append(
            ("total", f"{self.total_wall_s:.4f}",
             f"{self.cache_hits}/{len(self.stages)}", "", "")
        )
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in rows)) for i in range(len(headers))
        ]

        def fmt(cells) -> str:
            return "  ".join(str(c).ljust(widths[i]) for i, c in enumerate(cells)).rstrip()

        title = f"pipeline report [{self.label}]" if self.label else "pipeline report"
        lines = [title, fmt(headers), "  ".join("-" * w for w in widths)]
        lines.extend(fmt(r) for r in rows)
        return "\n".join(lines)
