"""Content-addressed, self-verifying on-disk artifact cache.

Every pipeline stage artifact (contamination replay, necessity report, wash
clusters, candidate path pools, ILP outcomes, whole benchmark runs) is
stored under a key that is a SHA-256 digest of canonical JSON describing
*everything the artifact depends on*: the assay graph, the chip, the
binding and baseline schedule, the relevant :class:`PDWConfig` fields, and
a per-stage code-version string that is bumped whenever the stage's
implementation changes.  Identical inputs therefore hit the same cache
entry across processes and sessions, and any input or code change misses
cleanly instead of serving a stale artifact.

Entries are self-verifying: each file carries a small header (magic bytes,
an entry-format version, and the SHA-256 of the pickled payload) written
atomically (temp file + ``os.replace``) so concurrent writers of the same
digest are safe.  :meth:`ArtifactCache.get` verifies the checksum before
unpickling and **quarantines** — moves to ``quarantine/`` with a logged
reason, never deletes — any entry with a bad header, mismatched checksum
or unpicklable payload; the caller sees a plain miss and recomputes.
:meth:`ArtifactCache.verify` runs the same check over the whole store
(``pdw cache verify``), and :meth:`ArtifactCache.gc` applies a size bound
with mtime-ordered (LRU-ish — reads touch the mtime) eviction, configured
through ``REPRO_CACHE_MAX_BYTES`` (``pdw cache gc``).

The default cache directory is ``$REPRO_CACHE_DIR`` when set, else
``~/.cache/repro-pdw``; set ``REPRO_CACHE=off`` to disable disk caching
globally.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import logging
import os
import pickle
import tempfile
import time
from dataclasses import asdict, dataclass, field, is_dataclass
from pathlib import Path
from typing import Any, Iterator, List, Optional, Tuple

from repro.envutil import env_int, pick
from repro.pipeline import chaos

#: Global salt for every digest; bump to invalidate all cached artifacts
#: (e.g. after a serialization-format change).
CACHE_FORMAT_VERSION = "2"

#: Leading magic bytes of every entry file.
ENTRY_MAGIC = b"RPDW"
#: On-disk entry format version (one byte after the magic); bumped together
#: with :data:`CACHE_FORMAT_VERSION` when the framing changes.
ENTRY_FORMAT = 2
#: magic + format byte + SHA-256 of the payload.
_HEADER_LEN = len(ENTRY_MAGIC) + 1 + 32

#: Subdirectory quarantined entries are moved to (never deleted).
QUARANTINE_DIR = "quarantine"

#: Environment variable bounding the store size in bytes (optional K/M/G
#: binary suffix, e.g. ``512M``).
ENV_MAX_BYTES = "REPRO_CACHE_MAX_BYTES"

#: How many :meth:`ArtifactCache.put` calls between opportunistic size
#: enforcements (a full store walk per put would be wasteful).
_GC_PUT_INTERVAL = 64

_logger = logging.getLogger(__name__)


# ---------------------------------------------------------------------------
# stable digests
# ---------------------------------------------------------------------------

def _canonical(obj: Any) -> Any:
    """Reduce ``obj`` to JSON-serializable plain data, deterministically."""
    import enum

    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, enum.Enum):
        return [type(obj).__name__, obj.value]
    if is_dataclass(obj) and not isinstance(obj, type):
        return [type(obj).__name__, _canonical(asdict(obj))]
    if isinstance(obj, dict):
        items = sorted(obj.items(), key=lambda kv: str(kv[0]))
        return {str(_canonical(k)): _canonical(v) for k, v in items}
    if isinstance(obj, (list, tuple)):
        return [_canonical(item) for item in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(str(_canonical(item)) for item in obj)
    raise TypeError(f"cannot canonicalize {type(obj).__name__} for digesting")


def stable_digest(*parts: Any) -> str:
    """SHA-256 hex digest of the canonical JSON encoding of ``parts``.

    The digest is stable across processes and python versions (no
    ``hash()`` randomization, no ``repr`` reliance).
    """
    payload = json.dumps(
        _canonical([CACHE_FORMAT_VERSION, *parts]),
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def digest_config(config: Any) -> str:
    """Digest of a :class:`~repro.core.config.PDWConfig` (or any dataclass)."""
    return stable_digest("config", config)


def digest_synthesis(synthesis: Any) -> str:
    """Digest of a :class:`~repro.synth.synthesis.SynthesisResult`.

    Covers the assay graph, the chip architecture, the operation binding,
    the reagent-port assignment and the baseline schedule — everything the
    wash optimizers read.
    """
    from repro.arch.io import chip_to_dict
    from repro.assay.io import graph_to_dict

    tasks = [
        [
            t.id, t.kind.value, t.start, t.duration,
            list(t.path) if t.path else None,
            t.device, t.fluid_type,
            list(t.edge) if t.edge else None,
            t.op_id,
        ]
        for t in synthesis.schedule.tasks()
    ]
    return stable_digest(
        "synthesis",
        graph_to_dict(synthesis.assay),
        chip_to_dict(synthesis.chip),
        dict(synthesis.binding),
        dict(synthesis.reagent_ports),
        tasks,
        dict(synthesis.fluid_types),
    )


# ---------------------------------------------------------------------------
# size bound
# ---------------------------------------------------------------------------

def max_cache_bytes() -> Optional[int]:
    """The ``REPRO_CACHE_MAX_BYTES`` size bound, or ``None`` when unset.

    A malformed value is treated as unset with a warning rather than
    crashing whatever pipeline happened to touch the cache first (see
    :func:`repro.envutil.env_int`).
    """
    return env_int(ENV_MAX_BYTES, minimum=0, suffixes=True)


# ---------------------------------------------------------------------------
# the store
# ---------------------------------------------------------------------------

@dataclass
class VerifyReport:
    """Outcome of :meth:`ArtifactCache.verify`."""

    checked: int = 0
    ok: int = 0
    #: ``(entry file name, reason)`` for every entry quarantined this pass.
    quarantined: List[Tuple[str, str]] = field(default_factory=list)

    def render(self) -> str:
        lines = [
            f"checked {self.checked} entries: {self.ok} ok, "
            f"{len(self.quarantined)} quarantined"
        ]
        lines.extend(f"  {name}: {reason}" for name, reason in self.quarantined)
        return "\n".join(lines)


class ArtifactCache:
    """A content-addressed, self-verifying pickle store under one directory.

    Entries are sharded two levels deep (``ab/cdef...pkl``) to keep
    directory listings small under heavy use.
    """

    def __init__(self, root: Path | str):
        self.root = Path(root)
        self._puts = 0

    # -- core API -----------------------------------------------------------------

    def _path(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest[2:]}.pkl"

    def get(self, digest: str) -> Optional[Any]:
        """The artifact stored under ``digest``, or ``None`` on a miss.

        The payload checksum is verified against the entry header before
        unpickling; an entry with a bad header, mismatched checksum or
        unpicklable payload is *quarantined* (moved under ``quarantine/``
        with a logged reason, never deleted) and reported as a miss so the
        caller recomputes cleanly.
        """
        chaos.trip(chaos.CACHE_TARGET)
        path = self._path(digest)
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            return None
        except OSError:
            return None

        if len(data) < _HEADER_LEN or data[: len(ENTRY_MAGIC)] != ENTRY_MAGIC:
            self._quarantine(path, "bad-header")
            return None
        if data[len(ENTRY_MAGIC)] != ENTRY_FORMAT:
            self._quarantine(path, f"entry-format-{data[len(ENTRY_MAGIC)]}")
            return None
        stored_sum = data[len(ENTRY_MAGIC) + 1 : _HEADER_LEN]
        payload = data[_HEADER_LEN:]
        fault = chaos.fault_for(chaos.CACHE_TARGET)
        if fault is not None and fault.mode == "corrupt":
            payload = chaos.corrupt_payload(payload)
        if hashlib.sha256(payload).digest() != stored_sum:
            self._quarantine(path, "checksum-mismatch")
            return None
        try:
            artifact = pickle.loads(payload)
        except Exception as exc:
            self._quarantine(path, f"unpicklable-{type(exc).__name__}")
            return None
        # LRU-ish: a hit refreshes the mtime so gc evicts cold entries first.
        with contextlib.suppress(OSError):
            os.utime(path)
        return artifact

    def put(self, digest: str, artifact: Any) -> None:
        """Store ``artifact`` under ``digest`` (atomic, last-writer-wins)."""
        payload = pickle.dumps(artifact, protocol=pickle.HIGHEST_PROTOCOL)
        header = ENTRY_MAGIC + bytes([ENTRY_FORMAT]) + hashlib.sha256(payload).digest()
        path = self._path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(header)
                fh.write(payload)
            os.replace(tmp, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise
        self._puts += 1
        if self._puts % _GC_PUT_INTERVAL == 0 and max_cache_bytes() is not None:
            self.gc()

    def __contains__(self, digest: str) -> bool:
        return self._path(digest).exists()

    # -- integrity ---------------------------------------------------------------

    def _quarantine(self, path: Path, reason: str) -> Optional[Path]:
        """Move a bad entry under ``quarantine/`` and log why.

        Never deletes: the bytes stay available for postmortems.  Returns
        the quarantine path, or ``None`` when the move itself failed (e.g.
        a concurrent reader already moved it).
        """
        qdir = self.root / QUARANTINE_DIR
        try:
            qdir.mkdir(parents=True, exist_ok=True)
        except OSError:
            return None
        dest = qdir / f"{path.parent.name}{path.name}"
        if dest.exists():
            dest = qdir / f"{path.parent.name}{path.stem}.{int(time.time() * 1e6)}{path.suffix}"
        try:
            os.replace(path, dest)
        except OSError:
            return None
        record = {
            "ts": time.time(),
            "entry": f"{path.parent.name}/{path.name}",
            "quarantined_as": dest.name,
            "reason": reason,
        }
        with contextlib.suppress(OSError):
            with (qdir / "log.jsonl").open("a", encoding="utf-8") as fh:
                fh.write(json.dumps(record, sort_keys=True) + "\n")
        _logger.warning(
            "quarantined cache entry %s/%s (%s)", path.parent.name, path.name, reason
        )
        return dest

    def verify(self) -> VerifyReport:
        """Check every entry's header and checksum, quarantining bad ones."""
        report = VerifyReport()
        for path in list(self.entries()):
            report.checked += 1
            reason = self._inspect(path)
            if reason is None:
                report.ok += 1
            else:
                self._quarantine(path, reason)
                report.quarantined.append((f"{path.parent.name}/{path.name}", reason))
        return report

    def _inspect(self, path: Path) -> Optional[str]:
        """The quarantine reason for a bad entry file, or ``None`` if sound."""
        try:
            data = path.read_bytes()
        except OSError:
            return None  # vanished concurrently; nothing to quarantine
        if len(data) < _HEADER_LEN or data[: len(ENTRY_MAGIC)] != ENTRY_MAGIC:
            return "bad-header"
        if data[len(ENTRY_MAGIC)] != ENTRY_FORMAT:
            return f"entry-format-{data[len(ENTRY_MAGIC)]}"
        stored_sum = data[len(ENTRY_MAGIC) + 1 : _HEADER_LEN]
        payload = data[_HEADER_LEN:]
        if hashlib.sha256(payload).digest() != stored_sum:
            return "checksum-mismatch"
        try:
            pickle.loads(payload)
        except Exception as exc:
            return f"unpicklable-{type(exc).__name__}"
        return None

    def quarantined(self) -> Iterator[Path]:
        """All quarantined entry files."""
        qdir = self.root / QUARANTINE_DIR
        if not qdir.is_dir():
            return iter(())
        return (p for p in qdir.iterdir() if p.suffix == ".pkl")

    # -- maintenance ---------------------------------------------------------------

    def entries(self) -> Iterator[Path]:
        """All stored (non-quarantined) entry files."""
        if not self.root.exists():
            return iter(())
        return (
            p for p in self.root.glob("*/*.pkl") if p.parent.name != QUARANTINE_DIR
        )

    def stats(self) -> Tuple[int, int]:
        """(entry count, total bytes) of the store."""
        count = total = 0
        for path in self.entries():
            count += 1
            total += path.stat().st_size
        return count, total

    def gc(self, max_bytes: Optional[int] = None) -> Tuple[int, int]:
        """Evict oldest-mtime entries until the store fits ``max_bytes``.

        ``max_bytes`` defaults to ``$REPRO_CACHE_MAX_BYTES``; with neither
        set this is a no-op.  Reads refresh mtimes (see :meth:`get`), so
        eviction is LRU-ish.  Returns ``(entries removed, bytes freed)``.
        """
        limit = max_bytes if max_bytes is not None else max_cache_bytes()
        if limit is None:
            return 0, 0
        entries = []
        total = 0
        for path in self.entries():
            try:
                st = path.stat()
            except OSError:
                continue
            entries.append((st.st_mtime, st.st_size, path))
            total += st.st_size
        entries.sort(key=lambda item: item[0])
        removed = freed = 0
        for _, size, path in entries:
            if total <= limit:
                break
            with contextlib.suppress(OSError):
                path.unlink()
                removed += 1
                freed += size
                total -= size
        return removed, freed

    def clear(self) -> int:
        """Delete every (non-quarantined) entry; returns how many."""
        removed = 0
        for path in list(self.entries()):
            path.unlink(missing_ok=True)
            removed += 1
        return removed


# ---------------------------------------------------------------------------
# the default store
# ---------------------------------------------------------------------------

def cache_enabled() -> bool:
    """Whether disk caching is globally enabled (``REPRO_CACHE`` gate)."""
    return os.environ.get("REPRO_CACHE", "").lower() not in ("0", "off", "false", "no")


def default_cache_dir(explicit: Optional[str] = None) -> Path:
    """Resolve the cache directory with the shared flag/env/default precedence.

    ``explicit`` (a ``--cache DIR`` flag) beats ``$REPRO_CACHE_DIR`` beats
    the XDG default ``~/.cache/repro-pdw`` — the one precedence rule for
    every surface that takes a cache directory (``pdw cache``, ``pdw
    serve``), implemented by :func:`repro.envutil.pick`.
    """
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return Path(pick(explicit, "REPRO_CACHE_DIR", str(base / "repro-pdw")))


def default_cache(explicit: Optional[str] = None) -> Optional[ArtifactCache]:
    """The process-wide default cache, or ``None`` when disabled."""
    if not cache_enabled():
        return None
    return ArtifactCache(default_cache_dir(explicit))
