"""Content-addressed on-disk artifact cache.

Every pipeline stage artifact (contamination replay, necessity report, wash
clusters, candidate path pools, ILP outcomes, whole benchmark runs) is
stored under a key that is a SHA-256 digest of canonical JSON describing
*everything the artifact depends on*: the assay graph, the chip, the
binding and baseline schedule, the relevant :class:`PDWConfig` fields, and
a per-stage code-version string that is bumped whenever the stage's
implementation changes.  Identical inputs therefore hit the same cache
entry across processes and sessions, and any input or code change misses
cleanly instead of serving a stale artifact.

Artifacts are serialized with :mod:`pickle` (they are internal python
objects, not an interchange format) and written atomically (temp file +
``os.replace``) so concurrent writers of the same digest are safe.

The default cache directory is ``$REPRO_CACHE_DIR`` when set, else
``~/.cache/repro-pdw``; set ``REPRO_CACHE=off`` to disable disk caching
globally.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import asdict, is_dataclass
from pathlib import Path
from typing import Any, Iterator, Optional, Tuple

#: Global salt for every digest; bump to invalidate all cached artifacts
#: (e.g. after a serialization-format change).
CACHE_FORMAT_VERSION = "1"


# ---------------------------------------------------------------------------
# stable digests
# ---------------------------------------------------------------------------

def _canonical(obj: Any) -> Any:
    """Reduce ``obj`` to JSON-serializable plain data, deterministically."""
    import enum

    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, enum.Enum):
        return [type(obj).__name__, obj.value]
    if is_dataclass(obj) and not isinstance(obj, type):
        return [type(obj).__name__, _canonical(asdict(obj))]
    if isinstance(obj, dict):
        return {str(_canonical(k)): _canonical(v) for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if isinstance(obj, (list, tuple)):
        return [_canonical(item) for item in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(str(_canonical(item)) for item in obj)
    raise TypeError(f"cannot canonicalize {type(obj).__name__} for digesting")


def stable_digest(*parts: Any) -> str:
    """SHA-256 hex digest of the canonical JSON encoding of ``parts``.

    The digest is stable across processes and python versions (no
    ``hash()`` randomization, no ``repr`` reliance).
    """
    payload = json.dumps(
        _canonical([CACHE_FORMAT_VERSION, *parts]),
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def digest_config(config: Any) -> str:
    """Digest of a :class:`~repro.core.config.PDWConfig` (or any dataclass)."""
    return stable_digest("config", config)


def digest_synthesis(synthesis: Any) -> str:
    """Digest of a :class:`~repro.synth.synthesis.SynthesisResult`.

    Covers the assay graph, the chip architecture, the operation binding,
    the reagent-port assignment and the baseline schedule — everything the
    wash optimizers read.
    """
    from repro.arch.io import chip_to_dict
    from repro.assay.io import graph_to_dict

    tasks = [
        [
            t.id, t.kind.value, t.start, t.duration,
            list(t.path) if t.path else None,
            t.device, t.fluid_type,
            list(t.edge) if t.edge else None,
            t.op_id,
        ]
        for t in synthesis.schedule.tasks()
    ]
    return stable_digest(
        "synthesis",
        graph_to_dict(synthesis.assay),
        chip_to_dict(synthesis.chip),
        dict(synthesis.binding),
        dict(synthesis.reagent_ports),
        tasks,
        dict(synthesis.fluid_types),
    )


# ---------------------------------------------------------------------------
# the store
# ---------------------------------------------------------------------------

class ArtifactCache:
    """A content-addressed pickle store under one directory.

    Entries are sharded two levels deep (``ab/cdef...pkl``) to keep
    directory listings small under heavy use.
    """

    def __init__(self, root: Path | str):
        self.root = Path(root)

    # -- core API -----------------------------------------------------------------

    def _path(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest[2:]}.pkl"

    def get(self, digest: str) -> Optional[Any]:
        """The artifact stored under ``digest``, or ``None`` on a miss.

        A corrupt or unreadable entry (e.g. written by an incompatible
        code version) is treated as a miss and removed.
        """
        path = self._path(digest)
        try:
            with path.open("rb") as fh:
                return pickle.load(fh)
        except FileNotFoundError:
            return None
        except Exception:
            path.unlink(missing_ok=True)
            return None

    def put(self, digest: str, artifact: Any) -> None:
        """Store ``artifact`` under ``digest`` (atomic, last-writer-wins)."""
        path = self._path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(artifact, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise

    def __contains__(self, digest: str) -> bool:
        return self._path(digest).exists()

    # -- maintenance ---------------------------------------------------------------

    def entries(self) -> Iterator[Path]:
        """All stored entry files."""
        if not self.root.exists():
            return iter(())
        return self.root.glob("*/*.pkl")

    def stats(self) -> Tuple[int, int]:
        """(entry count, total bytes) of the store."""
        count = total = 0
        for path in self.entries():
            count += 1
            total += path.stat().st_size
        return count, total

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in list(self.entries()):
            path.unlink(missing_ok=True)
            removed += 1
        return removed


# ---------------------------------------------------------------------------
# the default store
# ---------------------------------------------------------------------------

def cache_enabled() -> bool:
    """Whether disk caching is globally enabled (``REPRO_CACHE`` gate)."""
    return os.environ.get("REPRO_CACHE", "").lower() not in ("0", "off", "false", "no")


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` when set, else ``~/.cache/repro-pdw``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-pdw"


def default_cache() -> Optional[ArtifactCache]:
    """The process-wide default cache, or ``None`` when disabled."""
    if not cache_enabled():
        return None
    return ArtifactCache(default_cache_dir())
