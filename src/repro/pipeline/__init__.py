"""Staged pipeline infrastructure: stages, artifact cache, instrumentation.

The PDW flow of Section III is a staged pipeline — baseline replay →
necessity analysis → clustering → candidate path generation → scheduling
ILP → plan assembly — and the DAWO baseline shares its upstream stages.
This package makes those boundaries explicit:

* :class:`Stage` / :class:`StageBase` — one pipeline step producing an
  immutable, picklable artifact, with a declared cache key and code
  version,
* :class:`ArtifactCache` — a content-addressed on-disk store keyed by a
  stable SHA-256 digest of (assay, chip, config, stage code version) that
  survives across processes,
* :class:`PipelineRun` — executes stages cache-first and records a
  :class:`RunReport` of per-stage wall times, counters and solver
  statistics.

Robustness layers (DESIGN.md §9):

* :mod:`repro.pipeline.chaos` — pipeline-wide fault injection
  (``REPRO_INJECT_STAGE_FAULT``) that can crash/hang/kill any stage or
  corrupt cache reads, driving the suite supervisor's failure handling,
* the cache is *self-verifying*: entries carry a checksummed header, bad
  entries are quarantined (never deleted) and re-computed, and the store
  is size-bounded through ``REPRO_CACHE_MAX_BYTES``.

See DESIGN.md §7 ("Pipeline architecture") for the full walkthrough.
"""

from repro.pipeline import chaos
from repro.pipeline.cache import (
    ArtifactCache,
    VerifyReport,
    cache_enabled,
    default_cache,
    default_cache_dir,
    digest_config,
    digest_synthesis,
    max_cache_bytes,
    stable_digest,
)
from repro.pipeline.chaos import InjectedFault, StageFault
from repro.pipeline.report import RunReport, StageRecord
from repro.pipeline.stage import PipelineRun, Stage, StageBase

__all__ = [
    "ArtifactCache",
    "InjectedFault",
    "PipelineRun",
    "RunReport",
    "Stage",
    "StageBase",
    "StageFault",
    "StageRecord",
    "VerifyReport",
    "cache_enabled",
    "chaos",
    "default_cache",
    "default_cache_dir",
    "digest_config",
    "digest_synthesis",
    "max_cache_bytes",
    "stable_digest",
]
