"""The :class:`Stage` protocol and the :class:`PipelineRun` context.

A *stage* is one step of a staged pipeline: it computes an immutable,
picklable artifact from a context object, declares a cache key describing
every input the artifact depends on (or ``None`` to opt out of caching),
and reports numeric counters about what it produced.  ``version`` is the
stage's *code version*: bump it whenever the stage's implementation changes
so previously cached artifacts are invalidated.

A :class:`PipelineRun` executes stages in order, consults the
content-addressed :class:`~repro.pipeline.cache.ArtifactCache` before
computing, and records one :class:`~repro.pipeline.report.StageRecord` per
stage (wall time, cache hit, counters) into its :class:`RunReport`.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Optional, Protocol, runtime_checkable

from repro.obs.trace import span
from repro.pipeline import chaos
from repro.pipeline.cache import ArtifactCache, stable_digest
from repro.pipeline.report import RunReport


@runtime_checkable
class Stage(Protocol):
    """One pipeline step producing a cacheable artifact from a context.

    Beyond the required members below, stages may declare their *dataflow*
    — ``requires`` (context attribute names read by :meth:`compute`) and
    ``provides`` (the context attribute the artifact fills, bound by
    ``apply``).  The declarations are what the suite stage DAG
    (:mod:`repro.sched`) derives its edges from, so a stage that reads an
    undeclared input simply never becomes schedulable before that input's
    producer — edges are derived, not hardcoded.
    """

    #: Stage name; also the instrumentation label.
    name: str
    #: Code version of the implementation; part of every cache key.
    version: str

    def key(self, ctx: Any) -> Optional[Any]:
        """Cache-key material covering every input, or ``None`` (no cache)."""
        ...

    def compute(self, ctx: Any) -> Any:
        """Produce the artifact (only called on a cache miss)."""
        ...

    def counters(self, artifact: Any) -> Dict[str, float]:
        """Numeric instrumentation derived from the artifact."""
        ...


class StageBase:
    """Convenience base: no cache key, no counters, no detail.

    Subclasses declare their dataflow through ``requires``/``provides``;
    the defaults (no inputs, anonymous output) keep ad-hoc stages working
    while registered pipeline stages override both so the suite DAG can
    derive dependency edges from the declarations.
    """

    name = "stage"
    version = "1"
    #: Context attribute names this stage reads (its dataflow inputs).
    requires: tuple = ()
    #: Context attribute its artifact fills (its dataflow output), or "".
    provides: str = ""
    #: Whether the artifact is method-independent (keyed on the synthesis
    #: alone), so pipelines containing the same stage share one DAG node.
    shared: bool = False

    def key(self, ctx: Any) -> Optional[Any]:
        return None

    def counters(self, artifact: Any) -> Dict[str, float]:
        return {}

    def detail(self, artifact: Any) -> str:
        """Free-form one-line description recorded with the stage."""
        return ""

    def apply(self, ctx: Any, artifact: Any) -> None:
        """Bind the produced artifact back onto the context.

        The default stores the artifact under the declared ``provides``
        attribute; stages whose context field is a *view* of the artifact
        (e.g. pathgen's candidate pools inside a richer result object)
        override this.
        """
        if self.provides:
            setattr(ctx, self.provides, artifact)


class PipelineRun:
    """Executes stages, serving artifacts from the cache when possible."""

    def __init__(
        self,
        label: str = "",
        cache: Optional[ArtifactCache] = None,
        report: Optional[RunReport] = None,
    ):
        self.cache = cache
        self.report = report if report is not None else RunReport(label=label)

    # -- stage execution ---------------------------------------------------------

    def run_stage(self, stage: Stage, ctx: Any) -> Any:
        """Run one stage against ``ctx`` (cache-first) and record it.

        Cache hits are recorded with the *lookup* wall time (never a flat
        ``0.0``) plus a ``cache_lookup_s`` counter, and flagged
        ``cached=True`` so timing aggregations can exclude them instead
        of silently averaging near-zero rows.
        """
        with span(f"stage.{stage.name}") as sp:
            chaos.trip(stage.name)
            started = time.perf_counter()
            digest: Optional[str] = None
            key = stage.key(ctx)
            if self.cache is not None and key is not None:
                digest = stable_digest("stage", stage.name, stage.version, key)
                artifact = self.cache.get(digest)
                if artifact is not None:
                    lookup_s = time.perf_counter() - started
                    sp.set("origin", "cache")
                    counters = stage.counters(artifact)
                    counters["cache_lookup_s"] = round(lookup_s, 6)
                    self.report.record(
                        stage.name,
                        wall_s=lookup_s,
                        cached=True,
                        counters=counters,
                        detail=getattr(stage, "detail", lambda a: "")(artifact),
                    )
                    return artifact
            artifact = stage.compute(ctx)
            if self.cache is not None and digest is not None and artifact is not None:
                self.cache.put(digest, artifact)
            sp.set("origin", "computed")
            self.report.record(
                stage.name,
                wall_s=time.perf_counter() - started,
                cached=False,
                counters=stage.counters(artifact),
                detail=getattr(stage, "detail", lambda a: "")(artifact),
            )
            return artifact

    def provided(self, name: str, counters: Optional[Dict[str, float]] = None) -> None:
        """Record a stage whose artifact was handed in by the caller.

        Used when an upstream artifact (e.g. the contamination replay) is
        shared between pipelines instead of recomputed: the consuming
        pipeline still shows the stage, flagged ``shared`` with zero wall
        time (excluded from timing averages via ``StageRecord.origin``).
        """
        rec_counters = dict(counters or {})
        rec_counters["shared"] = 1.0
        self.report.record(name, wall_s=0.0, cached=True, counters=rec_counters)

    def timed(
        self,
        name: str,
        compute: Callable[[], Any],
        counters: Optional[Callable[[Any], Dict[str, float]]] = None,
        detail: str = "",
    ) -> Any:
        """Run an ad-hoc (non-cached, non-Stage) step under instrumentation."""
        with span(f"stage.{name}"):
            chaos.trip(name)
            started = time.perf_counter()
            artifact = compute()
            self.report.record(
                name,
                wall_s=time.perf_counter() - started,
                cached=False,
                counters=counters(artifact) if counters else {},
                detail=detail,
            )
            return artifact
