"""Pipeline-wide fault injection (generalizes :mod:`repro.ilp.faults`).

PR 2's harness could only break the solver ladder; this module can break
*any* pipeline stage or cache read, which is what the suite supervisor
(:mod:`repro.experiments.supervisor`) and the CI chaos job drive.  Faults
are armed through ``REPRO_INJECT_STAGE_FAULT``, a comma-separated list of
clauses::

    <target>:<mode>[:<arg>][@<benchmark>]

``target``
    A stage name (``synthesis``, ``replay``, ``necessity``, ``clusters``,
    ``pathgen``, ``ilp``, ``assemble``, ...) or ``cache`` for artifact
    cache reads.
``mode``
    ``crash``
        Raise :class:`InjectedFault` (a :class:`~repro.errors.ReproError`)
        when the target runs.  With ``:<n>`` only the first ``n`` trips
        fire — the counter lives in ``$REPRO_CHAOS_STATE`` (one file per
        clause) so it survives the supervisor's worker subprocesses and
        makes crash-then-recover retry tests deterministic.
    ``hang:<seconds>``
        Sleep before the target runs (default 3600 s), simulating a stall
        the supervisor must kill on its wall-clock budget.
    ``exit[:code]``
        ``os._exit`` immediately (default code 13), simulating a worker
        killed without a goodbye — the supervisor sees only the exit code.
    ``corrupt``
        Only meaningful for the ``cache`` target: payload bytes read from
        the artifact cache are flipped *in memory* before checksum
        verification, driving the cache's quarantine path.
``@<benchmark>``
    Scope the clause to one benchmark.  :func:`scope` is entered by
    :func:`repro.experiments.runner.run_benchmark` (and the ablation
    harness), so an unscoped clause fires everywhere.

Unlike solver faults, stage faults never *alter* a produced artifact —
they only prevent production (crash / hang / exit) or invalidate a read
(corrupt, which forces a clean recompute).  Armed chaos therefore cannot
poison the artifact cache and is deliberately **not** folded into cache
digests: a suite run that journaled successes under chaos can be resumed
with a clean environment and still hit the same digests.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional, Tuple

from repro.errors import ReproError

#: Environment variable arming stage faults.
ENV_STAGE_FAULT = "REPRO_INJECT_STAGE_FAULT"
#: Directory holding cross-process trip counters for count-limited faults.
ENV_STATE_DIR = "REPRO_CHAOS_STATE"

#: Valid fault modes.
MODES = ("crash", "hang", "exit", "corrupt")

#: Target name addressing artifact-cache reads instead of a stage.
CACHE_TARGET = "cache"


class ChaosError(ReproError):
    """A malformed ``REPRO_INJECT_STAGE_FAULT`` specification."""


class InjectedFault(ReproError):
    """Raised by an armed ``crash`` fault when its target runs."""


@dataclass(frozen=True)
class StageFault:
    """One parsed clause of ``REPRO_INJECT_STAGE_FAULT``."""

    stage: str
    mode: str
    arg: Optional[float] = None
    benchmark: Optional[str] = None

    @classmethod
    def parse(cls, clause: str) -> "StageFault":
        """Parse ``<target>:<mode>[:<arg>][@<benchmark>]`` (raises on junk)."""
        text = clause.strip()
        bench: Optional[str] = None
        if "@" in text:
            text, _, bench = text.rpartition("@")
            bench = bench.strip() or None
        parts = text.split(":")
        if len(parts) < 2 or not parts[0].strip():
            raise ChaosError(
                f"bad {ENV_STAGE_FAULT} clause {clause!r}; "
                "expected <stage>:<mode>[:<arg>][@<benchmark>]"
            )
        stage, mode = parts[0].strip(), parts[1].strip()
        if mode not in MODES:
            raise ChaosError(
                f"unknown fault mode {mode!r} in {clause!r}; "
                f"expected one of {', '.join(MODES)}"
            )
        arg: Optional[float] = None
        if len(parts) > 2:
            try:
                arg = float(parts[2])
            except ValueError as exc:
                raise ChaosError(f"bad fault argument {parts[2]!r} in {clause!r}") from exc
            if arg < 0:
                raise ChaosError(f"fault argument must be >= 0, got {arg} in {clause!r}")
        return cls(stage=stage, mode=mode, arg=arg, benchmark=bench)


def parse_spec(text: str) -> Tuple[StageFault, ...]:
    """Parse the full comma-separated fault specification."""
    clauses = [c for c in text.split(",") if c.strip()]
    return tuple(StageFault.parse(c) for c in clauses)


def active_faults() -> Tuple[StageFault, ...]:
    """The armed faults, or ``()`` when the environment is clean."""
    raw = os.environ.get(ENV_STAGE_FAULT, "").strip()
    return parse_spec(raw) if raw else ()


def environment_token() -> str:
    """Raw spec for journaling/forensics; empty in a clean environment."""
    return os.environ.get(ENV_STAGE_FAULT, "").strip()


# ---------------------------------------------------------------------------
# benchmark scoping
# ---------------------------------------------------------------------------

_scope = threading.local()


@contextmanager
def scope(benchmark: str) -> Iterator[None]:
    """Mark the current thread as running ``benchmark`` (for ``@`` clauses)."""
    prior = getattr(_scope, "benchmark", None)
    _scope.benchmark = benchmark
    try:
        yield
    finally:
        _scope.benchmark = prior


def current_scope() -> Optional[str]:
    """The benchmark the current thread is running, if any."""
    return getattr(_scope, "benchmark", None)


# ---------------------------------------------------------------------------
# firing
# ---------------------------------------------------------------------------

def _state_dir() -> Path:
    env = os.environ.get(ENV_STATE_DIR)
    if env:
        return Path(env)
    return Path(tempfile.gettempdir()) / "repro-chaos"


def _consume(fault: StageFault) -> bool:
    """Atomically count one firing of a count-limited clause.

    Returns whether the fault should still fire (trips so far < limit).
    The counter is a file whose size is the trip count — one appended byte
    per firing works lock-free across the supervisor's worker processes.
    """
    limit = int(fault.arg or 0)
    key = hashlib.sha256(repr(fault).encode("utf-8")).hexdigest()[:16]
    path = _state_dir() / f"{key}.count"
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "ab") as fh:
        fh.write(b".")
        fh.flush()
        fired = fh.tell()
    return fired <= limit


def reset() -> None:
    """Clear all count-limited trip counters (used by tests)."""
    state = _state_dir()
    if state.is_dir():
        for path in state.glob("*.count"):
            try:
                path.unlink()
            except OSError:
                pass


def fault_for(stage: str) -> Optional[StageFault]:
    """The first armed fault matching ``stage`` in the current scope."""
    faults = active_faults()
    if not faults:
        return None
    bench = current_scope()
    for fault in faults:
        if fault.stage != stage:
            continue
        if fault.benchmark is not None and fault.benchmark != bench:
            continue
        return fault
    return None


def trip(stage: str) -> None:
    """Apply the armed fault (if any) to one execution of ``stage``.

    ``crash`` raises :class:`InjectedFault`, ``hang`` sleeps, ``exit``
    terminates the process; ``corrupt`` is a no-op here (it is applied at
    the cache-read layer, see :func:`corrupt_payload`).
    """
    fault = fault_for(stage)
    if fault is None or fault.mode == "corrupt":
        return
    if fault.mode == "crash":
        if fault.arg is not None and not _consume(fault):
            return
        raise InjectedFault(
            f"injected crash in stage {stage!r}"
            + (f" (benchmark {fault.benchmark})" if fault.benchmark else "")
        )
    if fault.mode == "hang":
        time.sleep(fault.arg if fault.arg is not None else 3600.0)
        return
    # exit: simulate a worker killed without a goodbye message.
    os._exit(int(fault.arg) if fault.arg is not None else 13)


def corrupt_payload(payload: bytes) -> bytes:
    """Deterministically flip the payload bytes of a cache read.

    Applied by :meth:`repro.pipeline.cache.ArtifactCache.get` when a
    ``cache:corrupt`` fault is armed; the flipped first byte guarantees a
    checksum mismatch, driving the quarantine path.
    """
    if not payload:
        return b"\x00"
    return bytes([payload[0] ^ 0xFF]) + payload[1:]
