"""The route registry and HTTP request handler of ``pdw serve``.

:data:`ROUTES` is the single source of truth for the API surface —
docs/SERVICE.md's endpoint table is asserted against it by
``tests/unit/test_docs_service.py`` exactly as docs/CLI.md is asserted
against ``build_parser()``: adding an endpoint without documenting it
(or documenting a status code the handler can't produce) fails the
suite.

The handler is deliberately thin: it matches a route, decodes the body,
and calls into :class:`~repro.serve.server.JobServer`, which owns all
job/queue/cache state.  Responses are JSON with sorted keys; the plan
endpoint returns the **canonical plan JSON** (timing-free, byte-stable
across identical runs — ``repro.export.plan_json``), which is what lets
tests assert that N deduped submissions observe identical plan bytes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler
from typing import Any, Dict, Optional, Tuple

from repro.serve.wire import MAX_BODY_BYTES, WireError, decode_body


@dataclass(frozen=True)
class Route:
    """One API endpoint: the unit of the docs drift test."""

    method: str
    path: str  # literal path with {id}-style wildcards
    name: str
    summary: str
    codes: Tuple[int, ...]


ROUTES: Tuple[Route, ...] = (
    Route("GET", "/healthz", "healthz",
          "liveness probe: uptime, worker count, queue depth", (200,)),
    Route("GET", "/metrics", "metrics",
          "Prometheus text exposition of the process metrics registry", (200,)),
    Route("GET", "/v1/jobs", "list_jobs",
          "all jobs with state counts", (200,)),
    Route("POST", "/v1/jobs", "submit_job",
          "submit a job; dedups onto an existing run by content digest",
          (201, 200, 400, 413, 429)),
    Route("GET", "/v1/jobs/{id}", "job_status",
          "job state, attempts, errors, and stage progress", (200, 404)),
    Route("GET", "/v1/jobs/{id}/plan", "job_plan",
          "canonical plan JSON of a finished job", (200, 404, 409)),
    Route("DELETE", "/v1/jobs/{id}", "cancel_job",
          "cancel a still-queued job", (200, 404, 409)),
)


def match_route(method: str, path: str) -> Tuple[Optional[Route], Dict[str, str]]:
    """Match a request line against :data:`ROUTES`.

    Returns ``(route, params)`` where params holds wildcard segments, or
    ``(None, {})`` when no route matches the path at all.
    """
    parts = [p for p in path.split("/") if p]
    for route in ROUTES:
        if route.method != method:
            continue
        rparts = [p for p in route.path.split("/") if p]
        if len(rparts) != len(parts):
            continue
        params: Dict[str, str] = {}
        for want, got in zip(rparts, parts):
            if want.startswith("{") and want.endswith("}"):
                params[want[1:-1]] = got
            elif want != got:
                break
        else:
            return route, params
    return None, {}


def path_has_routes(path: str) -> bool:
    """Whether *any* method serves this path (404 vs 405 distinction)."""
    parts = [p for p in path.split("/") if p]
    for route in ROUTES:
        rparts = [p for p in route.path.split("/") if p]
        if len(rparts) != len(parts):
            continue
        if all(
            want.startswith("{") or want == got
            for want, got in zip(rparts, parts)
        ):
            return True
    return False


def make_handler(server: Any) -> type:
    """Build the request-handler class bound to one :class:`JobServer`."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        # The default handler logs every request to stderr; the server
        # has /metrics for that.
        def log_message(self, fmt: str, *args: Any) -> None:
            pass

        def _respond(
            self,
            code: int,
            body: Any,
            route: Optional[Route] = None,
            content_type: str = "application/json",
            extra_headers: Optional[Dict[str, str]] = None,
        ) -> None:
            if isinstance(body, (dict, list)):
                raw = (json.dumps(body, indent=2, sort_keys=True) + "\n").encode()
            elif isinstance(body, str):
                raw = body.encode()
            else:
                raw = body
            self.send_response(code)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(raw)))
            for key, value in (extra_headers or {}).items():
                self.send_header(key, value)
            self.end_headers()
            self.wfile.write(raw)
            server.count_request(route.name if route else "unmatched", code)

        def _error(self, code: int, message: str, route: Optional[Route] = None,
                   extra_headers: Optional[Dict[str, str]] = None) -> None:
            self._respond(code, {"error": message}, route, extra_headers=extra_headers)

        def _dispatch(self, method: str) -> None:
            path = self.path.split("?", 1)[0]
            route, params = match_route(method, path)
            if route is None:
                if path_has_routes(path):
                    self._error(405, f"method {method} not allowed on {path}")
                else:
                    self._error(404, f"no route for {path}")
                return
            try:
                handler = getattr(self, f"_do_{route.name}")
                handler(route, params)
            except BrokenPipeError:
                pass  # client went away mid-response
            except Exception as exc:  # pragma: no cover - last-resort guard
                self._error(500, f"internal error: {exc}", route)

        def do_GET(self) -> None:
            self._dispatch("GET")

        def do_POST(self) -> None:
            self._dispatch("POST")

        def do_DELETE(self) -> None:
            self._dispatch("DELETE")

        # -- endpoint bodies -------------------------------------------------

        def _do_healthz(self, route: Route, params: Dict[str, str]) -> None:
            self._respond(200, server.health_dict(), route)

        def _do_metrics(self, route: Route, params: Dict[str, str]) -> None:
            self._respond(
                200, server.render_metrics(), route,
                content_type="text/plain; version=0.0.4; charset=utf-8",
            )

        def _do_list_jobs(self, route: Route, params: Dict[str, str]) -> None:
            self._respond(200, server.jobs_dict(), route)

        def _do_submit_job(self, route: Route, params: Dict[str, str]) -> None:
            length = int(self.headers.get("Content-Length") or 0)
            if length > MAX_BODY_BYTES:
                self._error(413, f"body exceeds {MAX_BODY_BYTES} bytes", route)
                return
            body = self.rfile.read(length)
            header_client = (self.headers.get("X-PDW-Client") or "").strip()
            try:
                spec = decode_body(body, default_client=header_client or "anon")
            except WireError as exc:
                server.count_invalid()
                self._error(400, str(exc), route)
                return
            job, created, accepted = server.submit(spec)
            if not accepted:
                self._error(
                    429, "job queue is full; retry later", route,
                    extra_headers={"Retry-After": str(server.retry_after_s)},
                )
                return
            body_out = {"id": job.id, "state": job.state, "deduped": not created}
            self._respond(201 if created else 200, body_out, route)

        def _do_job_status(self, route: Route, params: Dict[str, str]) -> None:
            status = server.job_status(params["id"])
            if status is None:
                self._error(404, f"no job {params['id']!r}", route)
                return
            self._respond(200, status, route)

        def _do_job_plan(self, route: Route, params: Dict[str, str]) -> None:
            job = server.store.get(params["id"])
            if job is None:
                self._error(404, f"no job {params['id']!r}", route)
                return
            if job.state != "done":
                self._error(
                    409, f"job {job.id} is {job.state}; plan requires state=done",
                    route,
                )
                return
            text = server.plan_json(job)
            if text is None:
                self._error(404, f"plan artifact for {job.id} not found", route)
                return
            self._respond(200, text, route)

        def _do_cancel_job(self, route: Route, params: Dict[str, str]) -> None:
            job = server.store.get(params["id"])
            if job is None:
                self._error(404, f"no job {params['id']!r}", route)
                return
            if not server.cancel(job):
                self._error(
                    409, f"job {job.id} is {job.state}; only queued jobs cancel",
                    route,
                )
                return
            self._respond(200, {"id": job.id, "state": job.state}, route)

    return Handler
