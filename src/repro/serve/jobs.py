"""Job records, the lifecycle state machine, and the dedup store.

Lifecycle (docs/SERVICE.md, drift-tested)::

    queued ──▶ running ──▶ done
       │          └──────▶ failed
       └──▶ cancelled

``done``/``failed``/``cancelled`` are terminal.  The :class:`JobStore`
indexes jobs by content digest: a submission whose digest matches a
*live or successful* job dedups onto it (same job id returned, no second
run); a digest whose previous job **failed or was cancelled** is
resubmittable — the same id is re-queued with a fresh attempt counter,
so a transient crash doesn't poison the digest forever.

Progress for running benchmark jobs is read from the suite run journal:
the DAG executor writes one ``node_success`` record per finished
``(benchmark, method, stage)`` node, so counting this job's records
since its start gives ``nodes_done / nodes_total`` without any extra
bookkeeping channel.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.serve.wire import JobSpec, job_id_for

#: The lifecycle states, in canonical order (docs/SERVICE.md table).
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")
TERMINAL_STATES = ("done", "failed", "cancelled")

#: Stage nodes per benchmark in the suite DAG (repro.sched.graph): the
#: denominator of the progress fraction for benchmark jobs.
NODES_PER_BENCHMARK = 11


class JobFailure(Exception):
    """Raised by job execution with a suite-taxonomy failure kind."""

    def __init__(self, kind: str, message: str):
        super().__init__(message)
        self.kind = kind


@dataclass
class Job:
    """One submitted job and its observable state."""

    id: str
    spec: JobSpec
    digest: str
    state: str = "queued"
    submitted_ts: float = field(default_factory=time.time)
    started_ts: Optional[float] = None
    finished_ts: Optional[float] = None
    #: How many times this digest has been (re)queued for execution.
    attempts: int = 0
    error_kind: Optional[str] = None
    error_message: Optional[str] = None
    #: Whole-run artifact digest (benchmark jobs) for /plan cache lookups.
    run_digest: Optional[str] = None
    #: In-memory canonical plan dict (fallback when the disk cache is off).
    plan: Optional[Dict[str, Any]] = None

    def status_dict(self, progress: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """The ``GET /v1/jobs/<id>`` response body."""
        body: Dict[str, Any] = {
            "id": self.id,
            "state": self.state,
            "kind": self.spec.kind,
            "target": self.spec.target,
            "method": self.spec.method,
            "client": self.spec.client,
            "config_keys": list(self.spec.config_keys),
            "attempts": self.attempts,
            "submitted_ts": self.submitted_ts,
            "started_ts": self.started_ts,
            "finished_ts": self.finished_ts,
        }
        if self.error_kind is not None:
            body["error"] = {"kind": self.error_kind, "message": self.error_message}
        if progress is not None:
            body["progress"] = progress
        return body


class JobStore:
    """Thread-safe registry of jobs with digest-keyed dedup.

    All mutation happens under one lock; the server additionally holds
    its admission lock across lookup+insert so dedup and the queue-cap
    check are atomic with respect to concurrent submissions.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self._by_digest: Dict[str, str] = {}

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: j.submitted_ts)

    def find_by_digest(self, digest: str) -> Optional[Job]:
        with self._lock:
            job_id = self._by_digest.get(digest)
            return self._jobs.get(job_id) if job_id else None

    def admit(self, spec: JobSpec, digest: str) -> tuple:
        """Dedup-or-create for a submission: ``(job, created)``.

        ``created`` is ``True`` when the job must be enqueued (new digest,
        or a failed/cancelled digest being retried), ``False`` when the
        submission deduped onto a queued/running/done job.
        """
        with self._lock:
            existing_id = self._by_digest.get(digest)
            existing = self._jobs.get(existing_id) if existing_id else None
            if existing is not None:
                if existing.state in ("queued", "running", "done"):
                    return existing, False
                # failed | cancelled → resubmission re-queues the same id.
                existing.state = "queued"
                existing.submitted_ts = time.time()
                existing.started_ts = None
                existing.finished_ts = None
                existing.error_kind = None
                existing.error_message = None
                existing.spec = spec
                return existing, True
            job = Job(id=job_id_for(digest), spec=spec, digest=digest)
            self._jobs[job.id] = job
            self._by_digest[digest] = job.id
            return job, True

    def mark_running(self, job: Job) -> None:
        with self._lock:
            job.state = "running"
            job.started_ts = time.time()
            job.attempts += 1

    def mark_done(self, job: Job) -> None:
        with self._lock:
            job.state = "done"
            job.finished_ts = time.time()

    def mark_failed(self, job: Job, kind: str, message: str) -> None:
        with self._lock:
            job.state = "failed"
            job.finished_ts = time.time()
            job.error_kind = kind
            job.error_message = message

    def mark_cancelled(self, job: Job) -> bool:
        """queued → cancelled; ``False`` when the job is not cancellable."""
        with self._lock:
            if job.state != "queued":
                return False
            job.state = "cancelled"
            job.finished_ts = time.time()
            return True

    def counts(self) -> Dict[str, int]:
        with self._lock:
            out = {state: 0 for state in JOB_STATES}
            for job in self._jobs.values():
                out[job.state] += 1
            return out


def job_progress(job: Job, journal_records: List[dict]) -> Dict[str, Any]:
    """Stage progress of a running benchmark job from journal records.

    Counts distinct ``node_success`` stages recorded for this job's
    benchmark at timestamps after the job started; assay jobs (which run
    outside the DAG) report coarse state-only progress.
    """
    if job.spec.kind != "benchmark" or job.started_ts is None:
        return {"nodes_done": None, "nodes_total": None}
    done = {
        (rec.get("method"), rec.get("stage"))
        for rec in journal_records
        if rec.get("event") == "node_success"
        and rec.get("benchmark") == job.spec.benchmark
        and float(rec.get("ts", 0.0)) >= job.started_ts - 1.0
    }
    return {"nodes_done": len(done), "nodes_total": NODES_PER_BENCHMARK}
