"""Optimization-as-a-service: the ``pdw serve`` HTTP job API.

The front door that turns the repository from "a CLI that runs
benchmarks" into a long-running service (ROADMAP north star; DESIGN.md
§15).  Stdlib-only — ``http.server`` + ``threading``, keeping the
zero-dependency stance — and a thin layer over machinery that already
exists: jobs compile to stage-DAG runs under the
:class:`~repro.sched.executor.DagExecutor`, dedup rides the
content-addressed artifact-cache digest, progress is read from the JSONL
run journal, and ``/metrics`` is the Prometheus registry the rest of the
system already populates.

Module map:

* :mod:`repro.serve.wire` — submission parsing, validation, job digests
* :mod:`repro.serve.queue` — bounded per-client-fair admission queue
* :mod:`repro.serve.jobs` — job records, lifecycle, dedup store
* :mod:`repro.serve.routes` — the route registry (docs drift-tested) and
  the HTTP handler
* :mod:`repro.serve.server` — :class:`JobServer`: admission, execution,
  graceful shutdown

The HTTP API handbook is ``docs/SERVICE.md``; the end-to-end walkthrough
is ``docs/TUTORIAL.md`` §10.
"""

from repro.serve.jobs import JOB_STATES, Job, JobStore
from repro.serve.queue import FairQueue
from repro.serve.routes import ROUTES, Route
from repro.serve.server import JobServer
from repro.serve.wire import (
    MAX_BODY_BYTES,
    WIRE_SCHEMA,
    JobSpec,
    WireError,
    job_digest,
    parse_job,
)

__all__ = [
    "JOB_STATES",
    "Job",
    "JobServer",
    "JobSpec",
    "JobStore",
    "FairQueue",
    "MAX_BODY_BYTES",
    "ROUTES",
    "Route",
    "WIRE_SCHEMA",
    "WireError",
    "job_digest",
    "parse_job",
]
