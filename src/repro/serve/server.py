"""The ``pdw serve`` job server: admission, execution, lifecycle, shutdown.

Execution rides the existing suite machinery instead of re-implementing
any of it: each benchmark job becomes a one-benchmark stage-DAG run under
:class:`~repro.sched.executor.DagExecutor` (per-node budget/retries, the
shared JSONL run journal, artifact-cache writes), so ``GET
/v1/jobs/<id>`` progress is read straight from the journal and ``GET
/v1/jobs/<id>/plan`` is served from the same content-addressed cache a
CLI run would populate.  Jobs run **in-process** deliberately: the
per-chip ``PathKernel`` routing caches, the incremental-ILP ``ModelMemo``
and the whole-run memo all live in this process, so the second request
for a chip the server has already seen starts warm — the throughput
property the ROADMAP's service north-star is about.

Admission is bounded and fair: one lock makes digest-dedup, the
queue-capacity check and the enqueue atomic (two racing submissions of
the same payload cannot create two runs, and an accepted job is never
dropped), the per-client FIFO :class:`~repro.serve.queue.FairQueue`
prevents one client's burst from starving others, and a full queue turns
into ``429 Retry-After`` instead of an unbounded backlog.

Shutdown (SIGTERM/SIGINT or :meth:`shutdown`) is graceful and
idempotent: stop accepting, cancel everything still queued, join the
executor threads, close the listener.  The CI serve job asserts this
leaves no orphaned threads or processes.
"""

from __future__ import annotations

import json
import signal
import threading
import time
from http.server import ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.obs import metrics as obs_metrics
from repro.pipeline import ArtifactCache, default_cache
from repro.serve.jobs import Job, JobFailure, JobStore, job_progress
from repro.serve.queue import FairQueue
from repro.serve.routes import make_handler
from repro.serve.wire import JobSpec, job_digest

#: Seconds clients are told to back off when admission rejects with 429.
RETRY_AFTER_S = 5


class _HttpServer(ThreadingHTTPServer):
    """ThreadingHTTPServer tuned for burst traffic.

    The stdlib default listen backlog is 5; a 50-submission burst (the CI
    serve job's shape) overflows that and the kernel resets the excess
    connections before a handler thread ever sees them.  The backlog only
    holds sockets awaiting ``accept()`` — handler threads drain it fast —
    so a deep backlog costs nothing in steady state.
    """

    request_queue_size = 128
    daemon_threads = True
    allow_reuse_address = True


class JobServer:
    """The long-running optimization service behind ``pdw serve``."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8977,
        workers: int = 2,
        queue_cap: int = 64,
        cache: Optional[ArtifactCache] = None,
        cache_dir: Optional[str] = None,
        use_cache: bool = True,
        job_timeout_s: float = 600.0,
    ):
        from repro.experiments.supervisor import default_journal_path

        self.cache = cache if cache is not None else (
            default_cache(cache_dir) if use_cache else None
        )
        self.use_cache = use_cache and self.cache is not None
        self.job_timeout_s = job_timeout_s
        self.retry_after_s = RETRY_AFTER_S
        self.journal_path: Path = default_journal_path(self.cache)

        self.store = JobStore()
        self.queue = FairQueue(capacity=max(1, queue_cap))
        self._admission = threading.Lock()
        self._stop = threading.Event()
        self._shutdown_done = threading.Event()
        self._started_ts = time.time()

        self._http = _HttpServer((host, port), make_handler(self))
        self.host, self.port = self._http.server_address[:2]

        self._workers: List[threading.Thread] = [
            threading.Thread(
                target=self._worker_loop, name=f"pdw-serve-worker-{i}", daemon=True
            )
            for i in range(max(1, workers))
        ]
        for thread in self._workers:
            thread.start()

    # -- admission ---------------------------------------------------------------

    def submit(self, spec: JobSpec) -> Tuple[Optional[Job], bool, bool]:
        """Admit one submission: ``(job, created, accepted)``.

        Dedup, the capacity check and the enqueue are atomic under the
        admission lock, so concurrent identical submissions converge on
        one job and an admitted job always reaches the queue.
        """
        digest = job_digest(spec)
        with self._admission:
            existing = self.store.find_by_digest(digest)
            needs_slot = existing is None or existing.state in ("failed", "cancelled")
            if needs_slot and self.queue.depth() >= self.queue.capacity:
                self._count_job("rejected")
                return None, False, False
            job, created = self.store.admit(spec, digest)
            if created:
                if not self.queue.offer(spec.client, job):
                    raise AssertionError("admission raced the queue capacity check")
                self._count_job("submitted")
                self._journal_serve("submit", job)
            else:
                self._count_job("deduped")
                self._journal_serve("dedup", job)
            self._set_queue_gauge()
            return job, created, True

    def cancel(self, job: Job) -> bool:
        with self._admission:
            if not self.store.mark_cancelled(job):
                return False
            self.queue.remove(job)
            self._count_job("cancelled")
            self._journal_serve("cancel", job)
            self._set_queue_gauge()
            return True

    # -- execution ---------------------------------------------------------------

    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            job = self.queue.take(timeout=0.2)
            if job is None:
                continue
            if self._stop.is_set():
                if self.store.mark_cancelled(job):
                    self._count_job("cancelled")
                    self._journal_serve("cancel", job)
                continue
            self.store.mark_running(job)
            self._journal_serve("start", job)
            self._set_queue_gauge()
            started = time.perf_counter()
            try:
                self._execute(job)
            except JobFailure as exc:
                self.store.mark_failed(job, exc.kind, str(exc))
                self._count_job("failed")
                self._journal_serve("failed", job)
            except ReproError as exc:
                self.store.mark_failed(job, "error", str(exc))
                self._count_job("failed")
                self._journal_serve("failed", job)
            except Exception as exc:  # pragma: no cover - crash guard
                self.store.mark_failed(job, "crash", f"{type(exc).__name__}: {exc}")
                self._count_job("failed")
                self._journal_serve("failed", job)
            else:
                self.store.mark_done(job)
                self._count_job("done")
                self._journal_serve("done", job)
            obs_metrics.registry().histogram(
                "pdw_serve_job_wall_seconds", kind=job.spec.kind
            ).observe(time.perf_counter() - started)

    def _execute(self, job: Job) -> None:
        if job.spec.kind == "benchmark":
            self._execute_benchmark(job)
        else:
            self._execute_assay(job)

    def _execute_benchmark(self, job: Job) -> None:
        """One-benchmark stage-DAG run; plan extracted per requested method."""
        from repro.experiments.runner import FailureRecord, run_digest
        from repro.experiments.supervisor import RunBudget
        from repro.export.plan_json import canonical_plan_dict
        from repro.sched.executor import DagExecutor

        spec = job.spec
        executor = DagExecutor(
            budget=RunBudget(timeout_s=self.job_timeout_s),
            cache=self.cache,
            use_cache=self.use_cache,
            workers=1,
            journal_path=self.journal_path,
        )
        result = executor.run([spec.benchmark], spec.config)
        entry = result.entries[0]
        if isinstance(entry, FailureRecord):
            raise JobFailure(entry.kind, entry.message)
        job.run_digest = run_digest(spec.benchmark, spec.config)
        plan = self._method_plan(entry, spec.method)
        job.plan = canonical_plan_dict(plan)

    def _execute_assay(self, job: Job) -> None:
        """User-assay jobs run the pipeline directly (no benchmark DAG)."""
        from repro.assay import graph_from_dict
        from repro.baselines import dawo_plan, immediate_wash_plan
        from repro.core import optimize_washes
        from repro.export.plan_json import canonical_plan_dict
        from repro.synth import synthesize

        spec = job.spec
        synth = synthesize(graph_from_dict(dict(spec.assay)))
        cache = self.cache if self.use_cache else None
        if spec.method == "pdw":
            plan = optimize_washes(synth, spec.config, cache=cache)
        elif spec.method == "dawo":
            plan = dawo_plan(synth, cache=cache)
        else:
            plan = immediate_wash_plan(synth)
        job.plan = canonical_plan_dict(plan)

    @staticmethod
    def _method_plan(run: Any, method: str):
        from repro.baselines import immediate_wash_plan

        if method == "pdw":
            return run.pdw
        if method == "dawo":
            return run.dawo
        return immediate_wash_plan(run.synthesis)

    # -- read endpoints ----------------------------------------------------------

    def job_status(self, job_id: str) -> Optional[Dict[str, Any]]:
        job = self.store.get(job_id)
        if job is None:
            return None
        progress = None
        if job.state == "running":
            from repro.sched import journal as sched_journal

            progress = job_progress(
                job, sched_journal.read_records(self.journal_path)
            )
        return job.status_dict(progress)

    def jobs_dict(self) -> Dict[str, Any]:
        return {
            "jobs": [job.status_dict() for job in self.store.jobs()],
            "counts": self.store.counts(),
        }

    def health_dict(self) -> Dict[str, Any]:
        return {
            "status": "ok",
            "uptime_s": round(time.time() - self._started_ts, 3),
            "workers": len(self._workers),
            "queue_depth": self.queue.depth(),
            "queue_cap": self.queue.capacity,
            "jobs": self.store.counts(),
        }

    def plan_json(self, job: Job) -> Optional[str]:
        """Canonical plan JSON for a done job — cache first, memory second.

        Both paths serialize the same timing-free canonical dict with the
        same dump settings, so every reader of a deduped job observes
        byte-identical plans regardless of which path served it.
        """
        plan_dict = None
        if job.run_digest is not None and self.use_cache:
            from repro.export.plan_json import canonical_plan_dict

            stored = self.cache.get(job.run_digest)
            if stored is not None:
                plan_dict = canonical_plan_dict(
                    self._method_plan(stored, job.spec.method)
                )
        if plan_dict is None:
            plan_dict = job.plan
        if plan_dict is None:
            return None
        return json.dumps(plan_dict, indent=2, sort_keys=True) + "\n"

    def render_metrics(self) -> str:
        self._set_queue_gauge()
        return obs_metrics.registry().render_prometheus()

    # -- bookkeeping -------------------------------------------------------------

    def count_request(self, route: str, code: int) -> None:
        obs_metrics.registry().counter(
            "pdw_serve_requests_total", route=route, code=str(code)
        ).inc()

    def count_invalid(self) -> None:
        self._count_job("invalid")

    def _count_job(self, outcome: str) -> None:
        obs_metrics.registry().counter(
            "pdw_serve_jobs_total", outcome=outcome
        ).inc()

    def _set_queue_gauge(self) -> None:
        obs_metrics.registry().gauge("pdw_serve_queue_depth").set(
            float(self.queue.depth())
        )

    def _journal_serve(self, action: str, job: Job) -> None:
        """Serve lifecycle events share the suite journal (event="serve");
        the suite's readers filter on their own event names, so the two
        record families coexist in one operational log."""
        from repro.sched import journal as sched_journal

        sched_journal.append_record(
            self.journal_path,
            {
                "event": "serve",
                "action": action,
                "job": job.id,
                "digest": job.digest,
                "client": job.spec.client,
                "target": job.spec.target,
                "state": job.state,
            },
        )

    # -- lifecycle ---------------------------------------------------------------

    def serve_forever(self, install_signals: bool = False) -> None:
        """Run the HTTP loop until :meth:`shutdown` (or SIGTERM/SIGINT)."""
        if install_signals:
            # The handler must not call ThreadingHTTPServer.shutdown()
            # directly: the signal interrupts the serve_forever loop's own
            # thread, and shutdown() blocks until that loop acknowledges —
            # a deadlock.  A one-shot helper thread breaks the cycle.
            def _on_signal(signum: int, frame: Any) -> None:
                threading.Thread(
                    target=self.shutdown, name="pdw-serve-shutdown", daemon=True
                ).start()

            signal.signal(signal.SIGTERM, _on_signal)
            signal.signal(signal.SIGINT, _on_signal)
        try:
            self._http.serve_forever(poll_interval=0.1)
        finally:
            self.shutdown()

    def shutdown(self) -> None:
        """Graceful, idempotent: drain, cancel queued, join, close."""
        if self._stop.is_set():
            self._shutdown_done.wait(timeout=30.0)
            return
        self._stop.set()
        self.queue.close()
        for job in self.queue.drain():
            if self.store.mark_cancelled(job):
                self._count_job("cancelled")
                self._journal_serve("cancel", job)
        self._http.shutdown()
        self._http.server_close()
        for thread in self._workers:
            thread.join(timeout=max(10.0, self.job_timeout_s))
        self._shutdown_done.set()
