"""Wire format of the ``pdw serve`` job API: parsing, validation, digests.

A job submission is a small JSON object::

    {"benchmark": "pcr", "method": "pdw",
     "config": {"time_limit_s": 30}, "client": "lab-7"}

or, for a user assay, ``{"assay": {<sequencing-graph dict>}, ...}`` using
the same graph schema as :func:`repro.assay.graph_from_dict`.  Exactly one
of ``benchmark`` / ``assay`` must be present.

Validation is strict — unknown top-level keys, unknown config keys, or
mistyped config values are a 400, never a silent default — because the
job **digest** is derived from the parsed spec: two clients sending the
"same" job must land on the same digest, so everything that reaches the
digest has to be canonicalized here (ints submitted for float fields are
coerced before hashing, key order never matters).  Benchmark-job digests
wrap :func:`repro.experiments.runner.run_digest`, the exact key under
which the executed run is stored in the artifact cache — dedup and the
``/plan`` endpoint's cache lookup cannot drift apart.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.bench import BENCHMARKS
from repro.core import PDWConfig
from repro.errors import ReproError, WashError
from repro.ilp import faults
from repro.pipeline import stable_digest

#: Version tag mixed into every job digest; bump on wire-format changes
#: so old digests cannot collide with re-interpreted payloads.
WIRE_SCHEMA = "pdw-serve/1"

#: Submission bodies above this are rejected with 413 before parsing.
MAX_BODY_BYTES = 1 << 20

METHODS = ("pdw", "dawo", "immediate")

_TOP_KEYS = frozenset({"benchmark", "assay", "method", "config", "client"})

#: Config fields settable over the wire, with their canonical coercion.
#: ``necessity`` (an enum wired through the pipeline) is deliberately not
#: exposed; everything else mirrors :class:`PDWConfig`.
_CONFIG_FIELDS: Dict[str, type] = {
    "alpha": float,
    "beta": float,
    "gamma": float,
    "time_limit_s": float,
    "mip_gap": float,
    "max_candidates": int,
    "merge_clusters": bool,
    "max_wash_path_mm": float,
    "path_mode": str,
    "enable_integration": bool,
    "integration_window_s": float,
    "solver": str,
    "solver_mode": str,
    "pathgen_workers": int,
    "degrade": str,
}


class WireError(ReproError):
    """A malformed job submission (HTTP 400)."""


@dataclass(frozen=True)
class JobSpec:
    """A validated, canonicalized job submission."""

    kind: str  # "benchmark" | "assay"
    method: str  # one of METHODS
    config: PDWConfig
    client: str = "anon"
    benchmark: Optional[str] = None
    #: Canonical sequencing-graph dict for assay jobs (``kind="assay"``).
    assay: Optional[Mapping[str, Any]] = None
    #: The config keys the client actually sent, for echoing in status.
    config_keys: Tuple[str, ...] = field(default=())

    @property
    def target(self) -> str:
        """Human-readable job target for status payloads and logs."""
        return self.benchmark if self.kind == "benchmark" else "assay"


def _parse_config(raw: Any) -> Tuple[PDWConfig, Tuple[str, ...]]:
    if raw is None:
        raw = {}
    if not isinstance(raw, dict):
        raise WireError("'config' must be a JSON object")
    kwargs: Dict[str, Any] = {}
    for key, value in raw.items():
        want = _CONFIG_FIELDS.get(key)
        if want is None:
            raise WireError(
                f"unknown config key {key!r}; settable keys: "
                f"{', '.join(sorted(_CONFIG_FIELDS))}"
            )
        if want is bool:
            if not isinstance(value, bool):
                raise WireError(f"config key {key!r} must be a boolean")
            kwargs[key] = value
        elif want is float:
            # Accept ints for float fields but canonicalize before the
            # digest: {"time_limit_s": 30} and {"time_limit_s": 30.0}
            # are the same job.
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise WireError(f"config key {key!r} must be a number")
            kwargs[key] = float(value)
        elif want is int:
            if isinstance(value, bool) or not isinstance(value, int):
                raise WireError(f"config key {key!r} must be an integer")
            kwargs[key] = value
        else:
            if not isinstance(value, str):
                raise WireError(f"config key {key!r} must be a string")
            kwargs[key] = value
    sent = tuple(sorted(kwargs))
    # The service default mirrors the CLI's --time-limit default (120 s),
    # not the dataclass's 60 s, unless the client sets it explicitly.
    kwargs.setdefault("time_limit_s", 120.0)
    try:
        config = PDWConfig(**kwargs)
    except (WashError, TypeError) as exc:
        raise WireError(f"invalid config: {exc}") from exc
    return config, sent


def parse_job(payload: Any, default_client: str = "anon") -> JobSpec:
    """Validate a decoded submission body into a :class:`JobSpec`.

    Raises :class:`WireError` (→ HTTP 400) on any shape problem.
    """
    if not isinstance(payload, dict):
        raise WireError("job submission must be a JSON object")
    unknown = set(payload) - _TOP_KEYS
    if unknown:
        raise WireError(
            f"unknown keys: {', '.join(sorted(unknown))}; "
            f"allowed: {', '.join(sorted(_TOP_KEYS))}"
        )

    bench = payload.get("benchmark")
    assay = payload.get("assay")
    if (bench is None) == (assay is None):
        raise WireError("exactly one of 'benchmark' or 'assay' is required")

    method = payload.get("method", "pdw")
    if method not in METHODS:
        raise WireError(f"unknown method {method!r}; one of {', '.join(METHODS)}")

    client = payload.get("client", default_client)
    if not isinstance(client, str) or not client.strip():
        raise WireError("'client' must be a non-empty string")
    client = client.strip()

    config, config_keys = _parse_config(payload.get("config"))
    if config.degrade and method != "pdw":
        raise WireError("config key 'degrade' is a PDW capability (method=pdw)")

    if bench is not None:
        if bench not in BENCHMARKS:
            raise WireError(
                f"unknown benchmark {bench!r}; choose from {', '.join(BENCHMARKS)}"
            )
        return JobSpec(
            kind="benchmark", method=method, config=config, client=client,
            benchmark=bench, config_keys=config_keys,
        )

    if not isinstance(assay, dict):
        raise WireError("'assay' must be a sequencing-graph JSON object")
    # Round-trip through the graph loader now so a malformed graph is a
    # 400 at submission, not a failed job later; keep the canonical dict.
    from repro.assay import graph_from_dict, graph_to_dict

    try:
        graph = graph_from_dict(assay)
    except WireError:
        raise
    except (ReproError, KeyError, TypeError, ValueError, AttributeError) as exc:
        raise WireError(f"malformed assay graph: {exc}") from exc
    return JobSpec(
        kind="assay", method=method, config=config, client=client,
        assay=graph_to_dict(graph), config_keys=config_keys,
    )


def decode_body(body: bytes, default_client: str = "anon") -> JobSpec:
    """Parse raw request bytes: UTF-8 JSON → :class:`JobSpec`."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"request body is not valid JSON: {exc}") from exc
    return parse_job(payload, default_client=default_client)


def job_digest(spec: JobSpec) -> str:
    """Content digest of a job — the dedup key.

    Benchmark jobs reuse the whole-run digest (assay graph, inventory,
    config, environment token, runner version), so a serve job and a CLI
    ``pdw run`` of the same benchmark+config share one cache entry.
    """
    if spec.kind == "benchmark":
        from repro.experiments.runner import run_digest

        inner = run_digest(spec.benchmark, spec.config)
        return stable_digest("serve-job", WIRE_SCHEMA, spec.method, inner)
    return stable_digest(
        "serve-job", WIRE_SCHEMA, spec.method, spec.assay, spec.config,
        faults.environment_token(),
    )


def job_id_for(digest: str) -> str:
    """Stable public job id: ``j`` + the first 16 hex digits of the digest."""
    return "j" + digest[:16]
