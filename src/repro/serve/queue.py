"""Bounded, per-client-fair admission queue for the job server.

A plain FIFO would let one chatty client starve everyone behind a burst
of submissions.  :class:`FairQueue` keeps one FIFO **per client** and
deals work round-robin across clients: within a client, jobs run in
submission order; across clients, each gets one job per rotation.  Total
occupancy is bounded — :meth:`offer` returns ``False`` at capacity and
the server turns that into ``429 Retry-After`` (bounded admission beats
an unbounded backlog that times every job out).

Thread-safe; :meth:`take` blocks on a condition variable, and
:meth:`remove` supports cancellation of still-queued jobs.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from typing import Any, Deque, Optional


class FairQueue:
    """Bounded multi-client queue with round-robin fairness."""

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ValueError("FairQueue capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        # OrderedDict so the round-robin rotation order is deterministic:
        # clients are served in first-seen order, moved to the back after
        # each take.
        self._lanes: "OrderedDict[str, Deque[Any]]" = OrderedDict()
        self._size = 0
        self._closed = False

    def offer(self, client: str, item: Any) -> bool:
        """Enqueue ``item`` for ``client``; ``False`` when full or closed."""
        with self._lock:
            if self._closed or self._size >= self.capacity:
                return False
            lane = self._lanes.get(client)
            if lane is None:
                lane = self._lanes[client] = deque()
            lane.append(item)
            self._size += 1
            self._not_empty.notify()
            return True

    def take(self, timeout: Optional[float] = None) -> Optional[Any]:
        """Dequeue the next item round-robin, or ``None`` on timeout/close."""
        with self._lock:
            while self._size == 0:
                if self._closed:
                    return None
                if not self._not_empty.wait(timeout=timeout):
                    return None
            # First non-empty lane in rotation order gets served, then
            # rotates to the back so the next take serves the next client.
            for client in list(self._lanes):
                lane = self._lanes[client]
                if not lane:
                    continue
                item = lane.popleft()
                self._size -= 1
                self._lanes.move_to_end(client)
                if not lane:
                    del self._lanes[client]
                return item
            raise AssertionError("FairQueue size/lane bookkeeping diverged")

    def remove(self, item: Any) -> bool:
        """Remove a queued item (job cancellation); ``False`` if not queued."""
        with self._lock:
            for client, lane in list(self._lanes.items()):
                try:
                    lane.remove(item)
                except ValueError:
                    continue
                self._size -= 1
                if not lane:
                    del self._lanes[client]
                return True
            return False

    def depth(self) -> int:
        with self._lock:
            return self._size

    def drain(self) -> list:
        """Empty the queue (shutdown), returning the abandoned items."""
        with self._lock:
            items = [item for lane in self._lanes.values() for item in lane]
            self._lanes.clear()
            self._size = 0
            return items

    def close(self) -> None:
        """Wake every blocked :meth:`take` and refuse further offers."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
