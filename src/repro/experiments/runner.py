"""Run benchmarks through synthesis, DAWO and PDW, with artifact caching.

Two cache levels:

* an in-process memo keyed by ``(benchmark, config)`` preserving object
  identity within a process (``run_benchmark`` twice returns the *same*
  :class:`BenchmarkRun`), and
* the content-addressed on-disk :class:`~repro.pipeline.ArtifactCache`
  (default: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-pdw``), which stores
  both the whole :class:`BenchmarkRun` and every intermediate stage
  artifact, and therefore survives across processes — a warm
  :func:`run_suite` skips synthesis, replay, necessity, path generation
  and the ILP entirely.

Within one cold run the two methods share upstream work: the baseline is
synthesized once and the contamination replay is computed once, then handed
to both DAWO and PDW (their plans record the stage as ``shared``).

:func:`run_suite` can fan benchmarks out across workers with
:mod:`concurrent.futures` (``workers=`` / ``$REPRO_SUITE_WORKERS``;
threads by default, ``executor="process"`` for CPU-bound parallelism on
multi-core machines) and never aborts mid-suite: a benchmark that fails
with a :class:`~repro.errors.ReproError` (including injected stage
faults) becomes a :class:`FailureRecord` in the returned
:class:`SuiteResult` and the remaining benchmarks still run.  For
process isolation, per-run budgets, retries and resumable journals, pass
a :class:`~repro.experiments.supervisor.SuiteSupervisor` as
``supervisor=`` (what ``pdw suite`` does).
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Union

from repro.assay.io import graph_to_dict
from repro.baselines import dawo_plan
from repro.bench import BENCHMARKS, benchmark, load_benchmark
from repro.core import PDWConfig, optimize_washes
from repro.core.plan import WashPlan
from repro.core.stages import REPLAY_STAGE, PDWContext
from repro.envutil import env_int
from repro.errors import DegradedInfeasibleError, ReproError
from repro.ilp import faults
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.pipeline import (
    ArtifactCache,
    PipelineRun,
    RunReport,
    chaos,
    default_cache,
    stable_digest,
)
from repro.synth import synthesize
from repro.synth.synthesis import SynthesisResult

#: Code version of the whole-run artifact; bump when run_benchmark's
#: composition (not just one stage) changes.
RUNNER_VERSION = "2"


def default_config() -> PDWConfig:
    """The config used when callers pass ``config=None``.

    A single constructor shared by :func:`run_benchmark` and the suite
    memo-adoption path — a drift between two inline defaults would
    silently split the in-process memo.
    """
    return PDWConfig(time_limit_s=120.0)


@dataclass
class BenchmarkRun:
    """One benchmark executed through both methods."""

    name: str
    synthesis: SynthesisResult
    dawo: WashPlan
    pdw: WashPlan
    wall_time_s: float
    #: Whether this run was served from the on-disk artifact cache.
    from_cache: bool = False
    #: Per-stage instrumentation (synthesis, replay, and both methods'
    #: pipelines namespaced as ``dawo.*`` / ``pdw.*``).
    report: Optional[RunReport] = None

    def improvement(self, metric: str) -> float:
        """PDW improvement over DAWO in percent (paper's :math:`I_m`)."""
        d = self.dawo.metrics()[metric]
        p = self.pdw.metrics()[metric]
        return 100.0 * (d - p) / d if d else 0.0

    @property
    def sizes(self) -> str:
        """|O|/|D|/|E| string as in Table II column 2."""
        assay = self.synthesis.assay
        return f"{assay.operation_count}/{self.synthesis.device_count}/{assay.edge_count}"


#: Failure kinds recorded by the suite layers, in rough severity order.
#: ``infeasible_degraded`` is a *taxonomy* outcome, not an execution
#: failure: wash planning was proven impossible on a degraded chip.
FAILURE_KINDS = ("timeout", "crash", "oom", "error", "infeasible_degraded")

#: Kinds rendered under their own suite-taxonomy label instead of the
#: generic ``FAILED(kind)`` cell.
_TAXONOMY_LABELS = {"infeasible_degraded": "INFEASIBLE_DEGRADED"}


@dataclass
class FailureRecord:
    """A benchmark the suite could not complete.

    ``kind`` is one of :data:`FAILURE_KINDS`: ``timeout`` (wall-clock
    budget exceeded), ``crash`` (worker died or raised unexpectedly),
    ``oom`` (memory cap hit), ``error`` (a deterministic
    :class:`~repro.errors.ReproError`) or ``infeasible_degraded``
    (washing proven impossible on a degraded chip — reported, by
    design, rather than raised).
    """

    name: str
    kind: str
    message: str = ""
    attempts: int = 1
    wall_time_s: float = 0.0

    @property
    def label(self) -> str:
        """The ``FAILED(kind)`` (or taxonomy) cell the reports render."""
        return _TAXONOMY_LABELS.get(self.kind, f"FAILED({self.kind})")


SuiteEntry = Union[BenchmarkRun, FailureRecord]


@dataclass
class SuiteResult(Sequence):
    """Per-benchmark outcomes of a suite run, in suite order.

    Sequence over *all* entries (``BenchmarkRun | FailureRecord``) so
    existing list-style consumers keep working on clean runs; ``runs`` /
    ``failures`` split them, ``ok`` is true when nothing failed.
    """

    entries: List[SuiteEntry] = field(default_factory=list)
    #: Journal file of the supervising run, when one was used.
    journal_path: Optional[object] = None
    #: Benchmarks served from the journal + cache without re-execution.
    resumed: tuple = ()
    #: Merged metrics dump (parent + all worker subprocesses) of a
    #: supervised run; ``None`` for in-process suites.
    metrics_path: Optional[object] = None

    @property
    def runs(self) -> List[BenchmarkRun]:
        return [e for e in self.entries if isinstance(e, BenchmarkRun)]

    @property
    def failures(self) -> List[FailureRecord]:
        return [e for e in self.entries if isinstance(e, FailureRecord)]

    @property
    def ok(self) -> bool:
        return not self.failures

    def __len__(self) -> int:
        return len(self.entries)

    def __getitem__(self, index):
        return self.entries[index]

    def __iter__(self) -> Iterator[SuiteEntry]:
        return iter(self.entries)


_CACHE: Dict[tuple, BenchmarkRun] = {}
_CACHE_LOCK = threading.Lock()


def _memo_key(name: str, config: PDWConfig) -> tuple:
    return (name, config, faults.environment_token())


def memo_lookup(name: str, config: Optional[PDWConfig] = None) -> Optional[BenchmarkRun]:
    """The in-process memoized run for ``(name, config)``, if any.

    Shared with the DAG executor's synthesis node so a suite re-run in
    the same process short-circuits the whole benchmark subgraph.
    """
    cfg = config or default_config()
    with _CACHE_LOCK:
        return _CACHE.get(_memo_key(name, cfg))


def adopt_run(run: BenchmarkRun, config: Optional[PDWConfig] = None) -> BenchmarkRun:
    """Adopt a run computed elsewhere (worker process, journal resume)
    into this process's memo, preserving object identity for later
    same-process calls."""
    cfg = config or default_config()
    with _CACHE_LOCK:
        return _CACHE.setdefault(_memo_key(run.name, cfg), run)


def _run_digest(name: str, config: PDWConfig) -> str:
    """Content digest of a whole benchmark run.

    Includes the assay graph and device inventory (so editing a benchmark
    definition invalidates its cached runs), the full config, the
    solver-altering environment (fault injection / forced rung — degraded
    runs must never poison the clean cache), and the runner code version.
    Stage faults (:mod:`repro.pipeline.chaos`) are deliberately *not*
    included: they prevent artifact production instead of altering it, so
    a journaled success stays resumable after the fault is disarmed.
    """
    spec = benchmark(name)
    assay = spec.build()
    inventory = {kind.value: count for kind, count in spec.inventory.items()}
    return stable_digest(
        "benchmark-run", RUNNER_VERSION, name, graph_to_dict(assay), inventory,
        config, faults.environment_token(),
    )


def run_digest(name: str, config: Optional[PDWConfig] = None) -> str:
    """Public alias of the whole-run digest (used by the supervisor)."""
    return _run_digest(name, config or default_config())


def run_benchmark(
    name: str,
    config: Optional[PDWConfig] = None,
    use_cache: bool = True,
    cache: Optional[ArtifactCache] = None,
) -> BenchmarkRun:
    """Synthesize a benchmark and run DAWO + PDW on it.

    ``cache`` overrides the default on-disk artifact cache; pass
    ``use_cache=False`` to bypass (and not populate) both cache levels.
    """
    cfg = config or default_config()
    with obs_trace.span(f"bench.{name}", cached=use_cache) as sp:
        with chaos.scope(name):
            run = _run_benchmark_scoped(name, cfg, use_cache, cache)
        sp.set("from_cache", run.from_cache)
        return run


def _run_benchmark_scoped(
    name: str,
    cfg: PDWConfig,
    use_cache: bool,
    cache: Optional[ArtifactCache],
) -> BenchmarkRun:
    key = _memo_key(name, cfg)
    if use_cache:
        with _CACHE_LOCK:
            hit = _CACHE.get(key)
        if hit is not None:
            return hit

    disk = (cache if cache is not None else default_cache()) if use_cache else None
    started = time.perf_counter()
    digest = _run_digest(name, cfg) if disk is not None else None

    if disk is not None:
        stored = disk.get(digest)
        if isinstance(stored, BenchmarkRun):
            stored.from_cache = True
            obs_metrics.registry().counter(
                "pdw_run_cache_hits_total", benchmark=name
            ).inc()
            with _CACHE_LOCK:
                run = _CACHE.setdefault(key, stored)
            return run

    pipeline = PipelineRun(label=f"bench:{name}", cache=disk)
    spec = benchmark(name)
    assay = load_benchmark(name)
    synthesis = pipeline.timed(
        "synthesis",
        lambda: synthesize(assay, inventory=spec.inventory),
        counters=lambda s: {
            "operations": float(assay.operation_count),
            "devices": float(s.device_count),
            "baseline_makespan_s": float(s.baseline_makespan),
        },
    )
    ctx = PDWContext(synthesis=synthesis, config=cfg)
    tracker = pipeline.run_stage(REPLAY_STAGE, ctx)
    dawo = dawo_plan(synthesis, cache=disk, tracker=tracker)
    pdw = optimize_washes(synthesis, cfg, cache=disk, tracker=tracker)
    pipeline.report.extend(dawo.report, prefix="dawo.")
    pipeline.report.extend(pdw.report, prefix="pdw.")

    run = BenchmarkRun(
        name=name,
        synthesis=synthesis,
        dawo=dawo,
        pdw=pdw,
        wall_time_s=time.perf_counter() - started,
        report=pipeline.report,
    )
    if disk is not None:
        disk.put(digest, run)
    if use_cache:
        with _CACHE_LOCK:
            run = _CACHE.setdefault(key, run)
    return run


# -- suite execution ---------------------------------------------------------------

def _worker_count(names: Sequence[str], workers: Optional[int]) -> int:
    if workers is not None:
        return max(1, workers)
    env = env_int("REPRO_SUITE_WORKERS", minimum=1)
    if env is not None:
        return env
    return max(1, min(len(names), os.cpu_count() or 1))


def _run_benchmark_task(args: tuple) -> SuiteEntry:
    """Top-level worker (picklable for process pools).

    Captures per-benchmark :class:`~repro.errors.ReproError` failures —
    including injected stage faults — as :class:`FailureRecord` entries
    so one broken benchmark never aborts the rest of the suite.
    """
    name, config, use_cache, cache = args
    started = time.perf_counter()
    try:
        return run_benchmark(name, config, use_cache, cache)
    except chaos.InjectedFault as exc:
        return FailureRecord(
            name, "crash", str(exc), wall_time_s=time.perf_counter() - started
        )
    except DegradedInfeasibleError as exc:
        return FailureRecord(
            name,
            "infeasible_degraded",
            str(exc),
            wall_time_s=time.perf_counter() - started,
        )
    except ReproError as exc:
        return FailureRecord(
            name, "error", str(exc), wall_time_s=time.perf_counter() - started
        )


def run_suite(
    names: Optional[Sequence[str]] = None,
    config: Optional[PDWConfig] = None,
    use_cache: bool = True,
    workers: Optional[int] = None,
    executor: str = "thread",
    cache: Optional[ArtifactCache] = None,
    supervisor: Optional["object"] = None,
    sched_workers: Optional[int] = None,
) -> SuiteResult:
    """Run a list of benchmarks (default: the full Table II suite).

    ``workers`` (default: ``$REPRO_SUITE_WORKERS`` or one per CPU, capped
    at the suite size) fans the benchmarks out with
    :mod:`concurrent.futures`; results keep suite order.  ``executor`` is
    ``"thread"`` (shares the in-process memo; best when the disk cache is
    warm or the solver dominates) or ``"process"`` (true CPU parallelism;
    each worker re-imports the library and shares work through the on-disk
    artifact cache only).  ``cache`` overrides the default on-disk
    artifact cache for every benchmark, under both executors.

    ``supervisor`` (a
    :class:`~repro.experiments.supervisor.SuiteSupervisor`) replaces the
    executor fan-out entirely: each benchmark then runs in an isolated
    subprocess under a wall-clock/memory budget with retries and a
    resumable journal.

    ``sched_workers`` instead hands the suite to the stage-DAG executor
    (:class:`~repro.sched.executor.DagExecutor`): the benchmarks are
    compiled to one DAG of stage nodes scheduled across that many worker
    threads, overlapping independent stages of different benchmarks while
    keeping every plan byte-identical to serial execution.
    """
    suite = list(names or BENCHMARKS)
    if supervisor is not None:
        return supervisor.run(suite, config)
    if sched_workers is not None:
        from repro.sched.executor import DagExecutor

        dag = DagExecutor(workers=sched_workers, cache=cache, use_cache=use_cache)
        return dag.run(suite, config)
    if executor not in ("thread", "process"):
        raise ValueError(f"unknown executor {executor!r}")
    n_workers = _worker_count(suite, workers)
    tasks = [(name, config, use_cache, cache) for name in suite]
    if n_workers <= 1 or len(suite) <= 1:
        return SuiteResult([_run_benchmark_task(task) for task in tasks])

    if executor == "process":
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            entries = list(pool.map(_run_benchmark_task, tasks))
        if use_cache:
            # Adopt the workers' results into this process's memo so later
            # same-process calls return identical objects.
            for entry in entries:
                if isinstance(entry, BenchmarkRun):
                    adopt_run(entry, config)
        return SuiteResult(entries)
    with ThreadPoolExecutor(max_workers=n_workers) as pool:
        return SuiteResult(list(pool.map(_run_benchmark_task, tasks)))


def clear_cache() -> None:
    """Drop all in-process cached runs (used by tests)."""
    with _CACHE_LOCK:
        _CACHE.clear()
