"""Run benchmarks through synthesis, DAWO and PDW, with in-process caching."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.baselines import dawo_plan
from repro.bench import BENCHMARKS, benchmark, load_benchmark
from repro.core import PDWConfig, optimize_washes
from repro.core.plan import WashPlan
from repro.synth import synthesize
from repro.synth.synthesis import SynthesisResult


@dataclass
class BenchmarkRun:
    """One benchmark executed through both methods."""

    name: str
    synthesis: SynthesisResult
    dawo: WashPlan
    pdw: WashPlan
    wall_time_s: float

    def improvement(self, metric: str) -> float:
        """PDW improvement over DAWO in percent (paper's :math:`I_m`)."""
        d = self.dawo.metrics()[metric]
        p = self.pdw.metrics()[metric]
        return 100.0 * (d - p) / d if d else 0.0

    @property
    def sizes(self) -> str:
        """|O|/|D|/|E| string as in Table II column 2."""
        assay = self.synthesis.assay
        return f"{assay.operation_count}/{self.synthesis.device_count}/{assay.edge_count}"


_CACHE: Dict[tuple, BenchmarkRun] = {}


def run_benchmark(
    name: str,
    config: Optional[PDWConfig] = None,
    use_cache: bool = True,
) -> BenchmarkRun:
    """Synthesize a benchmark and run DAWO + PDW on it."""
    cfg = config or PDWConfig(time_limit_s=120.0)
    key = (name, cfg)
    if use_cache and key in _CACHE:
        return _CACHE[key]

    started = time.perf_counter()
    spec = benchmark(name)
    assay = load_benchmark(name)
    synthesis = synthesize(assay, inventory=spec.inventory)
    dawo = dawo_plan(synthesis)
    pdw = optimize_washes(synthesis, cfg)
    run = BenchmarkRun(
        name=name,
        synthesis=synthesis,
        dawo=dawo,
        pdw=pdw,
        wall_time_s=time.perf_counter() - started,
    )
    if use_cache:
        _CACHE[key] = run
    return run


def run_suite(
    names: Optional[Sequence[str]] = None,
    config: Optional[PDWConfig] = None,
    use_cache: bool = True,
) -> List[BenchmarkRun]:
    """Run a list of benchmarks (default: the full Table II suite)."""
    return [
        run_benchmark(name, config, use_cache) for name in (names or list(BENCHMARKS))
    ]


def clear_cache() -> None:
    """Drop all cached runs (used by tests)."""
    _CACHE.clear()
