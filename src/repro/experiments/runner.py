"""Run benchmarks through synthesis, DAWO and PDW, with artifact caching.

Two cache levels:

* an in-process memo keyed by ``(benchmark, config)`` preserving object
  identity within a process (``run_benchmark`` twice returns the *same*
  :class:`BenchmarkRun`), and
* the content-addressed on-disk :class:`~repro.pipeline.ArtifactCache`
  (default: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-pdw``), which stores
  both the whole :class:`BenchmarkRun` and every intermediate stage
  artifact, and therefore survives across processes — a warm
  :func:`run_suite` skips synthesis, replay, necessity, path generation
  and the ILP entirely.

Within one cold run the two methods share upstream work: the baseline is
synthesized once and the contamination replay is computed once, then handed
to both DAWO and PDW (their plans record the stage as ``shared``).

:func:`run_suite` can fan benchmarks out across workers with
:mod:`concurrent.futures` (``workers=`` / ``$REPRO_SUITE_WORKERS``;
threads by default, ``executor="process"`` for CPU-bound parallelism on
multi-core machines).
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.assay.io import graph_to_dict
from repro.baselines import dawo_plan
from repro.bench import BENCHMARKS, benchmark, load_benchmark
from repro.core import PDWConfig, optimize_washes
from repro.core.plan import WashPlan
from repro.core.stages import REPLAY_STAGE, PDWContext
from repro.ilp import faults
from repro.pipeline import (
    ArtifactCache,
    PipelineRun,
    RunReport,
    default_cache,
    stable_digest,
)
from repro.synth import synthesize
from repro.synth.synthesis import SynthesisResult

#: Code version of the whole-run artifact; bump when run_benchmark's
#: composition (not just one stage) changes.
RUNNER_VERSION = "2"


@dataclass
class BenchmarkRun:
    """One benchmark executed through both methods."""

    name: str
    synthesis: SynthesisResult
    dawo: WashPlan
    pdw: WashPlan
    wall_time_s: float
    #: Whether this run was served from the on-disk artifact cache.
    from_cache: bool = False
    #: Per-stage instrumentation (synthesis, replay, and both methods'
    #: pipelines namespaced as ``dawo.*`` / ``pdw.*``).
    report: Optional[RunReport] = None

    def improvement(self, metric: str) -> float:
        """PDW improvement over DAWO in percent (paper's :math:`I_m`)."""
        d = self.dawo.metrics()[metric]
        p = self.pdw.metrics()[metric]
        return 100.0 * (d - p) / d if d else 0.0

    @property
    def sizes(self) -> str:
        """|O|/|D|/|E| string as in Table II column 2."""
        assay = self.synthesis.assay
        return f"{assay.operation_count}/{self.synthesis.device_count}/{assay.edge_count}"


_CACHE: Dict[tuple, BenchmarkRun] = {}
_CACHE_LOCK = threading.Lock()


def _run_digest(name: str, config: PDWConfig) -> str:
    """Content digest of a whole benchmark run.

    Includes the assay graph and device inventory (so editing a benchmark
    definition invalidates its cached runs), the full config, the
    solver-altering environment (fault injection / forced rung — degraded
    runs must never poison the clean cache), and the runner code version.
    """
    spec = benchmark(name)
    assay = spec.build()
    inventory = {kind.value: count for kind, count in spec.inventory.items()}
    return stable_digest(
        "benchmark-run", RUNNER_VERSION, name, graph_to_dict(assay), inventory,
        config, faults.environment_token(),
    )


def run_benchmark(
    name: str,
    config: Optional[PDWConfig] = None,
    use_cache: bool = True,
    cache: Optional[ArtifactCache] = None,
) -> BenchmarkRun:
    """Synthesize a benchmark and run DAWO + PDW on it.

    ``cache`` overrides the default on-disk artifact cache; pass
    ``use_cache=False`` to bypass (and not populate) both cache levels.
    """
    cfg = config or PDWConfig(time_limit_s=120.0)
    key = (name, cfg, faults.environment_token())
    if use_cache:
        with _CACHE_LOCK:
            hit = _CACHE.get(key)
        if hit is not None:
            return hit

    disk = (cache if cache is not None else default_cache()) if use_cache else None
    started = time.perf_counter()
    digest = _run_digest(name, cfg) if disk is not None else None

    if disk is not None:
        stored = disk.get(digest)
        if isinstance(stored, BenchmarkRun):
            stored.from_cache = True
            with _CACHE_LOCK:
                run = _CACHE.setdefault(key, stored)
            return run

    pipeline = PipelineRun(label=f"bench:{name}", cache=disk)
    spec = benchmark(name)
    assay = load_benchmark(name)
    synthesis = pipeline.timed(
        "synthesis",
        lambda: synthesize(assay, inventory=spec.inventory),
        counters=lambda s: {
            "operations": float(assay.operation_count),
            "devices": float(s.device_count),
            "baseline_makespan_s": float(s.baseline_makespan),
        },
    )
    ctx = PDWContext(synthesis=synthesis, config=cfg)
    tracker = pipeline.run_stage(REPLAY_STAGE, ctx)
    dawo = dawo_plan(synthesis, cache=disk, tracker=tracker)
    pdw = optimize_washes(synthesis, cfg, cache=disk, tracker=tracker)
    pipeline.report.extend(dawo.report, prefix="dawo.")
    pipeline.report.extend(pdw.report, prefix="pdw.")

    run = BenchmarkRun(
        name=name,
        synthesis=synthesis,
        dawo=dawo,
        pdw=pdw,
        wall_time_s=time.perf_counter() - started,
        report=pipeline.report,
    )
    if disk is not None:
        disk.put(digest, run)
    if use_cache:
        with _CACHE_LOCK:
            run = _CACHE.setdefault(key, run)
    return run


# -- suite execution ---------------------------------------------------------------

def _worker_count(names: Sequence[str], workers: Optional[int]) -> int:
    if workers is not None:
        return max(1, workers)
    env = os.environ.get("REPRO_SUITE_WORKERS")
    if env:
        return max(1, int(env))
    return max(1, min(len(names), os.cpu_count() or 1))


def _run_benchmark_task(args: tuple) -> BenchmarkRun:
    """Top-level worker (picklable for process pools)."""
    name, config, use_cache = args
    return run_benchmark(name, config, use_cache)


def run_suite(
    names: Optional[Sequence[str]] = None,
    config: Optional[PDWConfig] = None,
    use_cache: bool = True,
    workers: Optional[int] = None,
    executor: str = "thread",
) -> List[BenchmarkRun]:
    """Run a list of benchmarks (default: the full Table II suite).

    ``workers`` (default: ``$REPRO_SUITE_WORKERS`` or one per CPU, capped
    at the suite size) fans the benchmarks out with
    :mod:`concurrent.futures`; results keep suite order.  ``executor`` is
    ``"thread"`` (shares the in-process memo; best when the disk cache is
    warm or the solver dominates) or ``"process"`` (true CPU parallelism;
    each worker re-imports the library and shares work through the on-disk
    artifact cache only).
    """
    suite = list(names or BENCHMARKS)
    if executor not in ("thread", "process"):
        raise ValueError(f"unknown executor {executor!r}")
    n_workers = _worker_count(suite, workers)
    if n_workers <= 1 or len(suite) <= 1:
        return [run_benchmark(name, config, use_cache) for name in suite]

    tasks = [(name, config, use_cache) for name in suite]
    if executor == "process":
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            runs = list(pool.map(_run_benchmark_task, tasks))
        if use_cache:
            # Adopt the workers' results into this process's memo so later
            # same-process calls return identical objects.
            with _CACHE_LOCK:
                for run in runs:
                    _CACHE.setdefault(
                        (
                            run.name,
                            config or PDWConfig(time_limit_s=120.0),
                            faults.environment_token(),
                        ),
                        run,
                    )
        return runs
    with ThreadPoolExecutor(max_workers=n_workers) as pool:
        return list(pool.map(_run_benchmark_task, tasks))


def clear_cache() -> None:
    """Drop all in-process cached runs (used by tests)."""
    with _CACHE_LOCK:
        _CACHE.clear()
