"""Fig. 4 — average waiting time of biochemical operations.

PDW assigns wash operations to optimized time windows so they run
concurrently with other fluidic tasks; the waiting time a biochemical
operation accumulates relative to the wash-free baseline is therefore much
shorter than under DAWO's sweep-line insertion.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core import PDWConfig
from repro.experiments.reporting import render_series
from repro.experiments.runner import BenchmarkRun, run_suite


def fig4_series(runs: Sequence[BenchmarkRun]) -> Dict[str, List[float]]:
    """Average waiting time per benchmark for both methods."""
    return {
        "DAWO": [run.dawo.average_waiting_time for run in runs],
        "PDW": [run.pdw.average_waiting_time for run in runs],
    }


def fig4_report(
    names: Optional[Sequence[str]] = None,
    config: Optional[PDWConfig] = None,
) -> str:
    """Render the Fig. 4 reproduction as a text bar chart.

    Failed benchmarks are listed below the chart as ``FAILED(kind)``
    instead of aborting the figure.
    """
    result = run_suite(names, config)
    runs = result.runs
    series = fig4_series(runs)
    text = render_series(
        "Fig. 4: Average waiting time of biochemical operations",
        [run.name for run in runs],
        list(series.items()),
        unit="s",
    )
    for failure in result.failures:
        text += f"  {failure.name}: {failure.label} — excluded from the chart\n"
    return text
