"""Command-line entry: ``python -m repro.experiments <report>``."""

from __future__ import annotations

import argparse
import sys

from repro.core import PDWConfig
from repro.experiments.ablation import ablation_report
from repro.experiments.fig4 import fig4_report
from repro.experiments.fig5 import fig5_report
from repro.experiments.necessity_stats import necessity_report
from repro.experiments.pareto import pareto_report
from repro.experiments.table2 import table2_report
from repro.experiments.timings import timings_report

REPORTS = (
    "table2", "fig4", "fig5", "ablation", "necessity", "pareto", "timings", "all",
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("report", choices=REPORTS, help="which artifact to regenerate")
    parser.add_argument(
        "--benchmarks", nargs="*", default=None,
        help="benchmark subset (default: the full Table II suite)",
    )
    parser.add_argument(
        "--time-limit", type=float, default=120.0,
        help="ILP time limit per benchmark in seconds (default 120)",
    )
    args = parser.parse_args(argv)
    config = PDWConfig(time_limit_s=args.time_limit)

    if args.report in ("table2", "all"):
        print(table2_report(args.benchmarks, config))
    if args.report in ("fig4", "all"):
        print(fig4_report(args.benchmarks, config))
    if args.report in ("fig5", "all"):
        print(fig5_report(args.benchmarks, config))
    if args.report in ("ablation", "all"):
        print(ablation_report(args.benchmarks))
    if args.report in ("necessity", "all"):
        print(necessity_report(args.benchmarks))
    if args.report in ("timings", "all"):
        print(timings_report(args.benchmarks, config))
    if args.report == "pareto":
        print(pareto_report(args.benchmarks[0] if args.benchmarks else "PCR", config))
    return 0


if __name__ == "__main__":
    sys.exit(main())
