"""Ablations of the three PDW techniques (motivated by Section II).

Variants:

* **full** — the complete method,
* **no-necessity** — Type 1/2/3 analysis replaced by wash-on-any-reuse
  (ablates contribution 1, Section II-A),
* **no-integration** — ψ integration disabled; excess removals always
  execute separately (ablates contribution 2, Section II-B),
* **no-merge** — wash clusters never merged, one wash per contaminating
  task (ablates the path/operation sharing of Section II-C),
* **eager** — necessary washes executed immediately instead of in
  optimized time windows (the strawman of Section II-A's introduction;
  uses :func:`repro.baselines.immediate.immediate_wash_plan`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace
from typing import Dict, List, Optional, Sequence

from repro.baselines import immediate_wash_plan
from repro.bench import benchmark, load_benchmark
from repro.contam import ContaminationTracker, NecessityPolicy
from repro.core import PDWConfig, optimize_washes
from repro.core.plan import WashPlan
from repro.errors import ReproError
from repro.experiments.reporting import render_table
from repro.pipeline import chaos
from repro.synth import synthesize

#: Default benchmarks for the ablation sweep (small + medium + large).
DEFAULT_ABLATION_BENCHMARKS = ("PCR", "IVD", "Synthetic1")


@dataclass(frozen=True)
class AblationVariant:
    """A named PDW configuration variant."""

    name: str
    description: str


VARIANTS = (
    AblationVariant("full", "complete PDW"),
    AblationVariant("no-necessity", "wash on any reuse (no Type 1/2/3)"),
    AblationVariant("no-integration", "no removal-into-wash folding (ψ=0)"),
    AblationVariant("no-merge", "one wash per contaminating task"),
    AblationVariant("eager", "washes executed immediately"),
)


def _variant_config(name: str, base: PDWConfig) -> PDWConfig:
    if name in ("full", "eager"):
        return base
    if name == "no-necessity":
        return dc_replace(base, necessity=NecessityPolicy.REUSE_ONLY)
    if name == "no-integration":
        return dc_replace(base, enable_integration=False)
    if name == "no-merge":
        return dc_replace(base, merge_clusters=False)
    raise ValueError(f"unknown ablation variant {name!r}")


_CACHE: Dict[tuple, Dict[str, WashPlan]] = {}


def run_ablation(
    bench_name: str,
    base: Optional[PDWConfig] = None,
    use_cache: bool = True,
) -> Dict[str, WashPlan]:
    """Run all variants on one benchmark (cached per config in-process)."""
    cfg = base or PDWConfig(time_limit_s=60.0)
    key = (bench_name, cfg)
    if use_cache and key in _CACHE:
        return _CACHE[key]
    with chaos.scope(bench_name):
        spec = benchmark(bench_name)
        synthesis = synthesize(load_benchmark(bench_name), inventory=spec.inventory)
        # One contamination replay shared across every variant (the replay
        # depends only on the synthesis, not on the variant's config).
        tracker = ContaminationTracker(synthesis.chip, synthesis.schedule)
        plans: Dict[str, WashPlan] = {}
        for variant in VARIANTS:
            if variant.name == "eager":
                plans[variant.name] = immediate_wash_plan(synthesis, tracker=tracker)
            else:
                plans[variant.name] = optimize_washes(
                    synthesis, _variant_config(variant.name, cfg), tracker=tracker
                )
    if use_cache:
        _CACHE[key] = plans
    return plans


def ablation_report(
    names: Optional[Sequence[str]] = None,
    base: Optional[PDWConfig] = None,
) -> str:
    """Render the ablation sweep as text.

    A benchmark whose sweep fails with a
    :class:`~repro.errors.ReproError` (including injected stage faults)
    renders as a single ``FAILED(kind)`` row instead of aborting the
    remaining benchmarks.
    """
    bench_names = list(names or DEFAULT_ABLATION_BENCHMARKS)
    headers = ["Benchmark", "Variant", "N_wash", "L_wash(mm)", "T_delay(s)", "T_assay(s)", "ψ"]
    rows: List[List[str]] = []
    for bench_name in bench_names:
        try:
            plans = run_ablation(bench_name, base)
        except chaos.InjectedFault:
            rows.append([bench_name, "-", "FAILED(crash)", "-", "-", "-", "-"])
            continue
        except ReproError:
            rows.append([bench_name, "-", "FAILED(error)", "-", "-", "-", "-"])
            continue
        for variant in VARIANTS:
            plan = plans[variant.name]
            m = plan.metrics()
            rows.append(
                [
                    bench_name,
                    variant.name,
                    f"{m['n_wash']:.0f}",
                    f"{m['l_wash_mm']:.1f}",
                    f"{m['t_delay_s']:.0f}",
                    f"{m['t_assay_s']:.0f}",
                    f"{m['integrated_removals']:.0f}",
                ]
            )
    title = "Ablation: contribution of each PDW technique\n"
    return title + render_table(headers, rows)
