"""Table II — DAWO vs PDW wash-optimization comparison.

Reproduces the paper's main table: per benchmark, the number of wash
operations, the total wash-path length (mm), the wash-induced assay delay
(s) and the assay completion time (s) for both methods, with the PDW
improvement percentage and the column averages.  Each row also carries the
paper's published improvement for side-by-side reading.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.bench import benchmark
from repro.core import PDWConfig
from repro.experiments.reporting import pct, render_table
from repro.experiments.runner import BenchmarkRun, FailureRecord, run_suite

#: (metric key, display name, paper row index in the PaperRow tuples)
METRICS: Tuple[Tuple[str, str, int], ...] = (
    ("n_wash", "N_wash", 0),
    ("l_wash_mm", "L_wash(mm)", 1),
    ("t_delay_s", "T_delay(s)", 2),
    ("t_assay_s", "T_assay(s)", 3),
)


@dataclass
class Table2Row:
    """One benchmark's measured Table II entries."""

    name: str
    sizes: str
    dawo: dict
    pdw: dict
    improvements: dict
    paper_improvements: dict


def table2_rows(runs: Sequence[BenchmarkRun]) -> List[Table2Row]:
    """Measured rows plus the paper's published improvements."""
    rows = []
    for run in runs:
        spec = benchmark(run.name)
        paper_imp = {}
        for key, _, idx in METRICS:
            d, p = spec.paper_dawo[idx], spec.paper_pdw[idx]
            paper_imp[key] = 100.0 * (d - p) / d if d else 0.0
        rows.append(
            Table2Row(
                name=run.name,
                sizes=run.sizes,
                dawo=run.dawo.metrics(),
                pdw=run.pdw.metrics(),
                improvements={k: run.improvement(k) for k, _, _ in METRICS},
                paper_improvements=paper_imp,
            )
        )
    return rows


def table2_report(
    names: Optional[Sequence[str]] = None,
    config: Optional[PDWConfig] = None,
) -> str:
    """Render the Table II reproduction as text.

    Benchmarks the suite lost (see
    :class:`~repro.experiments.runner.FailureRecord`) render as
    ``FAILED(kind)`` rows instead of aborting the table; the averages
    cover the completed rows only.
    """
    result = run_suite(names, config)
    by_name = {row.name: row for row in table2_rows(result.runs)}

    headers = ["Benchmark", "|O|/|D|/|E|"]
    for _, display, _ in METRICS:
        headers += [f"{display} DAWO", "PDW", "Im(%)", "paper Im(%)"]

    body: List[List[str]] = []
    for entry in result:
        if isinstance(entry, FailureRecord):
            cells = [entry.name, "-"]
            for i, _ in enumerate(METRICS):
                cells += [entry.label if i == 0 else "-", "-", "-", "-"]
            body.append(cells)
            continue
        row = by_name[entry.name]
        cells = [row.name, row.sizes]
        for key, _, _ in METRICS:
            cells += [
                f"{row.dawo[key]:.0f}" if key != "l_wash_mm" else f"{row.dawo[key]:.1f}",
                f"{row.pdw[key]:.0f}" if key != "l_wash_mm" else f"{row.pdw[key]:.1f}",
                pct(row.improvements[key]),
                pct(row.paper_improvements[key]),
            ]
        body.append(cells)

    rows = list(by_name.values())
    if rows:
        avg = ["Average", "-"]
        for key, _, _ in METRICS:
            measured = sum(r.improvements[key] for r in rows) / len(rows)
            paper = sum(r.paper_improvements[key] for r in rows) / len(rows)
            avg += ["-", "-", pct(measured), pct(paper)]
        body.append(avg)

    title = "Table II: PathDriver-Wash (PDW) vs DAWO — wash optimization\n"
    text = title + render_table(headers, body)
    if result.failures:
        text += (
            f"({len(result.failures)} of {len(result)} benchmarks failed; "
            "averages cover completed rows — see `pdw report failures`)\n"
        )
    return text
