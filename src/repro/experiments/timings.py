"""Per-stage pipeline timings and solver statistics across the suite.

Surfaces the :class:`~repro.pipeline.RunReport` instrumentation of every
benchmark: wall time per stage (synthesis, replay, necessity, clusters,
pathgen, ILP, assembly / sweep-line), which artifacts came from the cache,
and the PDW solver statistics (model size, solve time, MIP gap).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core import PDWConfig
from repro.experiments.reporting import render_table
from repro.experiments.runner import BenchmarkRun, run_suite

#: Stage columns of the timing table, in pipeline order.
STAGE_COLUMNS = (
    ("synthesis", "synth"),
    ("replay", "replay"),
    ("pdw.necessity", "necess"),
    ("pdw.clusters", "clust"),
    ("pdw.pathgen", "pathgen"),
    ("pdw.ilp", "ilp"),
    ("pdw.assemble", "asm"),
    ("dawo.sweepline", "dawo-sweep"),
)


def _cell(run: BenchmarkRun, stage: str) -> str:
    rec = run.report.get(stage) if run.report else None
    if rec is None:
        return "-"
    mark = "*" if rec.cached else ""
    return f"{rec.wall_s:.3f}{mark}"


def timings_rows(runs: Sequence[BenchmarkRun]) -> List[List[str]]:
    """One row per benchmark: stage wall times (``*`` = cache hit)."""
    rows: List[List[str]] = []
    for run in runs:
        cells = [run.name, f"{run.wall_time_s:.2f}", "yes" if run.from_cache else "-"]
        cells.extend(_cell(run, stage) for stage, _ in STAGE_COLUMNS)
        rows.append(cells)
    return rows


def computed_mean_row(runs: Sequence[BenchmarkRun]) -> List[str]:
    """Per-stage mean wall time over *computed* records only.

    Cache hits record their lookup time (a few ms) as ``wall_s``; mixing
    those rows into an average would report the cache's speed, not the
    stage's.  Cells show ``-`` when no benchmark computed that stage.
    """
    cells = ["mean(computed)", "-", "-"]
    for stage, _ in STAGE_COLUMNS:
        walls = []
        for run in runs:
            rec = run.report.get(stage) if run.report else None
            if rec is not None and rec.origin == "computed":
                walls.append(rec.wall_s)
        cells.append(f"{sum(walls) / len(walls):.3f}" if walls else "-")
    return cells


def queue_wait_rows(runs: Sequence[BenchmarkRun]) -> List[List[str]]:
    """One row per benchmark: per-stage scheduler queue wait.

    The DAG executor (:mod:`repro.sched`) stamps every stage record with
    ``queue_wait_s`` — the time between the node becoming ready (all
    dependencies done) and a worker starting it.  Cells show ``-`` for
    stages without the counter (serial/supervised runs, skipped nodes);
    cache-served stages keep their usual origin semantics and simply show
    the wait their *lookup* node spent queued.
    """
    rows: List[List[str]] = []
    for run in runs:
        cells = [run.name]
        for stage, _ in STAGE_COLUMNS:
            rec = run.report.get(stage) if run.report else None
            wait = rec.counters.get("queue_wait_s") if rec is not None else None
            cells.append(f"{wait:.3f}" if wait is not None else "-")
        rows.append(cells)
    return rows


def _has_queue_waits(runs: Sequence[BenchmarkRun]) -> bool:
    return any(
        run.report is not None
        and any("queue_wait_s" in rec.counters for rec in run.report.stages)
        for run in runs
    )


def routing_cache_line(runs: Sequence[BenchmarkRun]) -> str:
    """Aggregate routing-kernel cache traffic across the suite.

    The pathgen stage publishes its shortest-path cache counters
    (``routing_cache_hits`` / ``routing_cache_misses``) and thread-pool
    width; cache-served stage records carry the counters of the original
    computation, so the aggregate reflects actual routing work.
    """
    hits = misses = 0
    workers = []
    for run in runs:
        rec = run.report.get("pdw.pathgen") if run.report else None
        if rec is None:
            continue
        hits += int(rec.counters.get("routing_cache_hits", 0))
        misses += int(rec.counters.get("routing_cache_misses", 0))
        w = rec.counters.get("workers")
        if w:
            workers.append(int(w))
    total = hits + misses
    if total == 0:
        return ""
    rate = hits / total
    width = max(workers) if workers else 1
    return (
        f"Routing cache: {hits} hits / {misses} misses "
        f"({rate:.1%} hit rate); pathgen workers: {width}\n"
    )


def solver_rows(runs: Sequence[BenchmarkRun]) -> List[List[str]]:
    """One row per benchmark: PDW scheduling-ILP statistics."""
    rows: List[List[str]] = []
    for run in runs:
        rung = getattr(run.pdw, "solver_rung", "") or "-"
        rec = run.report.get("pdw.ilp") if run.report else None
        if rec is None:
            rows.append(
                [run.name, run.pdw.solver_status, rung, "-", "-", "-", "-", "-", "-"]
            )
            continue
        c = rec.counters
        gap = c.get("mip_gap")
        rungs_tried = c.get("rungs_tried")
        rows.append(
            [
                run.name,
                run.pdw.solver_status,
                rung,
                f"{rungs_tried:.0f}" if rungs_tried is not None else "-",
                f"{c.get('variables', 0):.0f}",
                f"{c.get('binaries', 0):.0f}",
                f"{c.get('constraints', 0):.0f}",
                f"{c.get('solve_time_s', 0):.3f}",
                f"{gap:.2e}" if gap is not None else "-",
            ]
        )
    return rows


def timings_report(
    names: Optional[Sequence[str]] = None,
    config: Optional[PDWConfig] = None,
    sched_workers: Optional[int] = None,
) -> str:
    """Render per-stage timings + solver statistics for the suite.

    ``sched_workers`` runs the suite through the stage-DAG executor,
    adding a per-stage queue-wait table (ready → start latency per node);
    the table also appears when a previous DAG run's reports are served
    from the cache.  Failed benchmarks are listed below the tables
    instead of aborting the report.
    """
    result = run_suite(names, config, sched_workers=sched_workers)
    runs = result.runs

    stage_headers = ["Benchmark", "wall(s)", "cached"]
    stage_headers.extend(label for _, label in STAGE_COLUMNS)
    text = (
        "Pipeline stage timings (s; * = cache hit, cell shows lookup time;\n"
        "the mean row averages computed rows only)\n"
    )
    text += render_table(stage_headers, timings_rows(runs) + [computed_mean_row(runs)])
    cache_line = routing_cache_line(runs)
    if cache_line:
        text += "\n" + cache_line

    if _has_queue_waits(runs):
        wait_headers = ["Benchmark"]
        wait_headers.extend(label for _, label in STAGE_COLUMNS)
        text += "\nScheduler queue waits (s; node ready -> node start)\n"
        text += render_table(wait_headers, queue_wait_rows(runs))

    solver_headers = [
        "Benchmark", "status", "rung", "tried", "vars", "bin", "constrs",
        "solve(s)", "gap",
    ]
    text += "\nPDW scheduling-ILP solver statistics\n"
    text += render_table(solver_headers, solver_rows(runs))
    for failure in result.failures:
        text += f"  {failure.name}: {failure.label} — excluded from the tables\n"
    return text
