"""Fig. 5 — total wash time comparison.

PDW's shorter wash paths (Eq. 17 ties duration to path length) and fewer
wash operations yield less cumulative wash time than DAWO.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core import PDWConfig
from repro.experiments.reporting import render_series
from repro.experiments.runner import BenchmarkRun, run_suite


def fig5_series(runs: Sequence[BenchmarkRun]) -> Dict[str, List[float]]:
    """Total wash time per benchmark for both methods."""
    return {
        "DAWO": [float(run.dawo.total_wash_time) for run in runs],
        "PDW": [float(run.pdw.total_wash_time) for run in runs],
    }


def fig5_report(
    names: Optional[Sequence[str]] = None,
    config: Optional[PDWConfig] = None,
) -> str:
    """Render the Fig. 5 reproduction as a text bar chart.

    Failed benchmarks are listed below the chart as ``FAILED(kind)``
    instead of aborting the figure.
    """
    result = run_suite(names, config)
    runs = result.runs
    series = fig5_series(runs)
    text = render_series(
        "Fig. 5: Total wash time",
        [run.name for run in runs],
        list(series.items()),
        unit="s",
    )
    for failure in result.failures:
        text += f"  {failure.name}: {failure.label} — excluded from the chart\n"
    return text
