"""Necessity-analysis statistics across the benchmark suite.

Section II-A claims most contaminated spots need no wash; this report
quantifies that on every benchmark: how many contamination events occur,
how many are exempted by each rule (Type 1/2/3, consumed-by-lineage), and
the fraction that genuinely requires washing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.bench import BENCHMARKS, benchmark, load_benchmark
from repro.contam import ContaminationTracker, NecessityPolicy, wash_requirements
from repro.experiments.reporting import render_table
from repro.synth import synthesize


@dataclass(frozen=True)
class NecessityRow:
    """Per-benchmark necessity statistics."""

    name: str
    events: int
    required: int
    type1: int
    type2: int
    type3: int
    consumed: int

    @property
    def required_pct(self) -> float:
        """Share of contamination events that actually need a wash."""
        return 100.0 * self.required / self.events if self.events else 0.0


def necessity_rows(names: Optional[Sequence[str]] = None) -> List[NecessityRow]:
    """Compute the statistics for the given benchmarks (default: all 8)."""
    rows = []
    for name in names or list(BENCHMARKS):
        spec = benchmark(name)
        synthesis = synthesize(load_benchmark(name), inventory=spec.inventory)
        tracker = ContaminationTracker(synthesis.chip, synthesis.schedule)
        report = wash_requirements(tracker, synthesis.assay, NecessityPolicy.PDW)
        rows.append(
            NecessityRow(
                name=name,
                events=report.total_events,
                required=len(report.required),
                type1=report.type1_exempt,
                type2=report.type2_exempt,
                type3=report.type3_exempt,
                consumed=report.consumed,
            )
        )
    return rows


def necessity_report(names: Optional[Sequence[str]] = None) -> str:
    """Render the statistics as a text table."""
    rows = necessity_rows(names)
    headers = [
        "Benchmark", "events", "required", "req %",
        "type-1", "type-2", "type-3", "consumed",
    ]
    body = [
        [
            r.name, str(r.events), str(r.required), f"{r.required_pct:.1f}",
            str(r.type1), str(r.type2), str(r.type3), str(r.consumed),
        ]
        for r in rows
    ]
    total_events = sum(r.events for r in rows)
    total_required = sum(r.required for r in rows)
    pct = 100.0 * total_required / total_events if total_events else 0.0
    body.append(
        ["Total", str(total_events), str(total_required), f"{pct:.1f}",
         str(sum(r.type1 for r in rows)), str(sum(r.type2 for r in rows)),
         str(sum(r.type3 for r in rows)), str(sum(r.consumed for r in rows))]
    )
    title = "Wash-necessity analysis: contamination events by classification\n"
    return title + render_table(headers, body)
