"""Fault-tolerant suite execution: isolation, budgets, retries, journals.

:func:`~repro.experiments.runner.run_suite` shares one process (or an
executor pool) across benchmarks, so a single hang, OOM or hard crash
takes the whole reproduction down.  The :class:`SuiteSupervisor` runs
each benchmark in its own subprocess instead:

* **isolation** — a worker that dies (segfault, ``os._exit``, OOM kill)
  loses only its benchmark; results come back over a pipe, and the
  shared on-disk artifact cache means a completed worker's artifacts
  survive it,
* **budgets** — a per-run wall-clock budget (the worker is killed past
  it) and a best-effort address-space cap via ``resource.setrlimit``,
* **classification** — every failure is one of ``timeout`` / ``crash`` /
  ``oom`` / ``error`` (deterministic :class:`~repro.errors.ReproError`),
* **retries** — transient kinds (:data:`RETRYABLE_KINDS`) are retried
  with exponential backoff and deterministic jitter (seeded by
  ``REPRO_FAULT_SEED`` so chaos tests replay identically),
* **journal** — every attempt/success/failure is appended to a JSONL
  run journal under the cache dir; an interrupted or partially failed
  suite re-run with ``resume=True`` (``pdw suite --resume``) serves
  journaled successes from the cache without re-executing them.  The
  journal is append-only and tolerant of a truncated final line (the
  interruption it exists to survive).

A suite that loses benchmarks completes anyway: the returned
:class:`~repro.experiments.runner.SuiteResult` carries a
``BenchmarkRun | FailureRecord`` per benchmark, the experiment reports
render failed rows as ``FAILED(kind)``, and ``pdw suite`` exits 3.
"""

from __future__ import annotations

import json
import os
import random
import signal
import time
from collections import deque
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core import PDWConfig
from repro.errors import DegradedInfeasibleError, ReproError
from repro.experiments.reporting import render_table
from repro.experiments.runner import (
    BenchmarkRun,
    FailureRecord,
    SuiteResult,
    adopt_run,
    default_config,
    run_benchmark,
    run_digest,
)
from repro.ilp import faults
from repro.obs import metrics as obs_metrics
from repro.obs.trace import tracer
from repro.pipeline import (
    ArtifactCache,
    chaos,
    default_cache,
    default_cache_dir,
    digest_config,
)
from repro.procutil import MP as _MP
from repro.procutil import reap as _reap
from repro.procutil import safe_send as _safe_send
from repro.procutil import terminate as _terminate
from repro.sched import journal as sched_journal

#: Failure kinds worth retrying: a flaky worker death or a stall can be
#: transient, while ``error`` (a deterministic ReproError) and ``oom``
#: (the same allocation will fail again under the same cap) are not.
RETRYABLE_KINDS = ("crash", "timeout")

#: Journal file name, relative to the cache root.
JOURNAL_NAME = os.path.join("journal", "suite.jsonl")

#: Merged metrics dump written next to the journal after every suite run.
METRICS_DUMP_NAME = os.path.join("journal", "metrics.json")


@dataclass(frozen=True)
class RunBudget:
    """Per-benchmark execution limits enforced by the supervisor."""

    #: Wall-clock seconds per attempt; the worker is killed past it.
    timeout_s: Optional[float] = None
    #: Best-effort address-space cap (``resource.setrlimit``) in bytes.
    max_rss_bytes: Optional[int] = None
    #: How many times a transient failure is retried (0 = never).
    retries: int = 0
    #: First backoff delay; doubles per retry, jittered, capped below.
    backoff_base_s: float = 0.5
    backoff_cap_s: float = 30.0


def default_journal_path(cache: Optional[ArtifactCache] = None) -> Path:
    """Where the suite journal lives: under the artifact cache directory."""
    root = cache.root if cache is not None else default_cache_dir()
    return Path(root) / JOURNAL_NAME


def _child_entry(conn, name, config, use_cache, cache, max_rss_bytes) -> None:
    """Worker subprocess body: run one benchmark, report over the pipe.

    Must stay a module-level function (picklable under spawn).  Failures
    are classified here when the worker survives long enough to tell;
    the parent classifies from the exit code otherwise.  Every report —
    success or classified failure — carries the worker's own metrics
    snapshot, which the parent merges and journals so the run-wide dump
    covers all subprocesses.
    """
    # Under fork the worker inherits the parent's already-populated
    # registry; reset so the snapshot covers only this worker's work and
    # the parent-side merge never double counts.
    obs_metrics.reset()
    try:
        if max_rss_bytes:
            try:
                import resource

                resource.setrlimit(resource.RLIMIT_AS, (max_rss_bytes, max_rss_bytes))
            except (ImportError, ValueError, OSError):
                pass  # best-effort: not every platform allows it
        run = run_benchmark(name, config, use_cache=use_cache, cache=cache)
        _safe_send(conn, ("ok", run, obs_metrics.snapshot()))
    except MemoryError:
        _safe_send(
            conn,
            ("fail", "oom", "MemoryError while running benchmark", obs_metrics.snapshot()),
        )
    except chaos.InjectedFault as exc:
        _safe_send(conn, ("fail", "crash", str(exc), obs_metrics.snapshot()))
    except DegradedInfeasibleError as exc:
        _safe_send(
            conn, ("fail", "infeasible_degraded", str(exc), obs_metrics.snapshot())
        )
    except ReproError as exc:
        _safe_send(conn, ("fail", "error", str(exc), obs_metrics.snapshot()))
    except BaseException as exc:  # noqa: BLE001 — a worker must always report
        _safe_send(
            conn,
            ("fail", "crash", f"{type(exc).__name__}: {exc}", obs_metrics.snapshot()),
        )
    finally:
        try:
            conn.close()
        except OSError:
            pass


@dataclass
class _Active:
    """Book-keeping for one in-flight worker."""

    name: str
    attempt: int
    proc: object
    conn: object
    started: float


class SuiteSupervisor:
    """Runs a benchmark suite with per-run subprocess isolation.

    Parameters
    ----------
    budget:
        Per-benchmark limits and retry policy (default: no limits).
    cache:
        Artifact cache shared with the workers; defaults to the process
        default.  The journal lives under its root.
    use_cache:
        Propagated to the workers' :func:`run_benchmark`.
    workers:
        How many benchmark subprocesses may run concurrently.
    resume:
        Skip benchmarks whose latest journal entry is a success for the
        *same run digest* (config or code changes invalidate), serving
        them from the artifact cache without re-execution.
    journal_path:
        Override the journal location (default: ``<cache>/journal/suite.jsonl``).
    """

    def __init__(
        self,
        budget: Optional[RunBudget] = None,
        cache: Optional[ArtifactCache] = None,
        use_cache: bool = True,
        workers: Optional[int] = 1,
        resume: bool = False,
        journal_path: Optional[Path] = None,
    ):
        self.budget = budget or RunBudget()
        self.cache = cache if cache is not None else (default_cache() if use_cache else None)
        self.use_cache = use_cache
        self.workers = max(1, workers or 1)
        self.resume = resume
        self.journal_path = (
            Path(journal_path) if journal_path is not None else default_journal_path(self.cache)
        )

    # -- journal -----------------------------------------------------------------

    def _journal(self, record: dict) -> None:
        """Append one JSONL record (append-only; one write per event)."""
        sched_journal.append_record(self.journal_path, record)

    def _absorb_metrics(self, name: str, attempt: int, snapshot) -> None:
        """Merge one worker's metrics snapshot and journal it.

        The journal copy makes the merge durable: ``merged_metrics`` can
        rebuild the run-wide dump offline, and a parent that dies after
        journalling loses nothing.
        """
        if not isinstance(snapshot, dict) or not snapshot.get("series"):
            return
        try:
            obs_metrics.registry().merge(snapshot)
        except (TypeError, ValueError):
            return  # a worker on mismatched code; drop rather than corrupt
        self._journal(
            {
                "event": "metrics",
                "benchmark": name,
                "attempt": attempt,
                "snapshot": snapshot,
            }
        )

    def _dump_metrics(self, config_digest: str = "") -> Path:
        """Write the merged (parent + all workers) metrics dump."""
        path = self.journal_path.parent / "metrics.json"
        payload = {
            **obs_metrics.snapshot(),
            "config_digest": config_digest,
            "journal": str(self.journal_path),
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8")
        return path

    def _journaled_successes(self) -> Dict[str, str]:
        """Latest terminal outcome per benchmark: ``{name: digest}`` of
        successes, dropping names whose most recent terminal event is a
        failure.  Malformed lines (e.g. a write cut short by the very
        interruption resume exists for) are skipped."""
        return sched_journal.journaled_successes(
            sched_journal.read_records(self.journal_path)
        )

    # -- execution ---------------------------------------------------------------

    def run(
        self, names: Sequence[str], config: Optional[PDWConfig] = None
    ) -> SuiteResult:
        """Run the suite; never raises for a single benchmark's failure."""
        suite = list(names)
        cfg = config or default_config()
        digests = {name: run_digest(name, cfg) for name in suite}
        results: Dict[str, object] = {}
        resumed: List[str] = []

        if self.resume:
            done = self._journaled_successes()
            for name in suite:
                if done.get(name) != digests[name]:
                    continue
                cached = self._load_journaled(name, cfg, digests[name])
                if cached is not None:
                    results[name] = cached
                    resumed.append(name)

        pending: deque = deque(
            (name, 1) for name in suite if name not in results
        )
        backoffs: List[Tuple[float, str, int]] = []  # (ready_at, name, attempt)
        active: Dict[str, _Active] = {}

        while pending or backoffs or active:
            now = time.monotonic()
            ready = [item for item in backoffs if item[0] <= now]
            for item in ready:
                backoffs.remove(item)
                pending.append((item[1], item[2]))

            while pending and len(active) < self.workers:
                name, attempt = pending.popleft()
                active[name] = self._launch(name, attempt, cfg, digests[name])

            progressed = self._poll(active, results, backoffs, digests, cfg)
            if not progressed and (active or backoffs):
                time.sleep(0.02)

        entries = [results[name] for name in suite]
        metrics_path = self._dump_metrics(config_digest=digest_config(cfg))
        return SuiteResult(
            entries=entries,
            journal_path=self.journal_path,
            resumed=tuple(resumed),
            metrics_path=metrics_path,
        )

    def _launch(self, name: str, attempt: int, cfg: PDWConfig, digest: str) -> _Active:
        self._journal(
            {
                "event": "attempt",
                "benchmark": name,
                "attempt": attempt,
                "digest": digest,
                "chaos": chaos.environment_token() or None,
            }
        )
        parent_conn, child_conn = _MP.Pipe(duplex=False)
        proc = _MP.Process(
            target=_child_entry,
            args=(
                child_conn,
                name,
                cfg,
                self.use_cache,
                self.cache,
                self.budget.max_rss_bytes,
            ),
            daemon=True,
        )
        proc.start()
        child_conn.close()  # parent keeps only the read end
        return _Active(
            name=name, attempt=attempt, proc=proc, conn=parent_conn,
            started=time.monotonic(),
        )

    def _poll(self, active, results, backoffs, digests, cfg) -> bool:
        """One scheduling pass; returns whether anything finished."""
        progressed = False
        for name, act in list(active.items()):
            wall = time.monotonic() - act.started
            outcome: Optional[tuple] = None
            if act.conn.poll(0):
                try:
                    outcome = act.conn.recv()
                except (EOFError, OSError):
                    outcome = None  # died mid-send: classify from exit code
            if outcome is None and act.proc.is_alive():
                if self.budget.timeout_s is not None and wall > self.budget.timeout_s:
                    _terminate(act.proc)
                    outcome = (
                        "fail",
                        "timeout",
                        f"exceeded wall-clock budget of {self.budget.timeout_s:g}s",
                    )
                else:
                    continue  # still running within budget
            if outcome is None:
                # Worker exited without reporting: hard crash or OOM kill.
                code = act.proc.exitcode
                kind = "crash"
                if (
                    code is not None
                    and code < 0
                    and -code == signal.SIGKILL
                    and self.budget.max_rss_bytes
                ):
                    kind = "oom"
                outcome = (
                    "fail", kind,
                    f"worker exited with code {code} before reporting a result",
                )
            self._finish(act, outcome, wall, results, backoffs, digests, cfg)
            del active[name]
            progressed = True
        return progressed

    def _finish(
        self, act: _Active, outcome, wall, results, backoffs, digests, cfg
    ) -> None:
        _reap(act.proc)
        try:
            act.conn.close()
        except OSError:
            pass
        name = act.name
        ok = outcome[0] == "ok"
        # Workers append their metrics snapshot to the payload; parent-made
        # outcomes (timeout, silent death) have none.
        snapshot = outcome[-1] if len(outcome) > (2 if ok else 3) else None
        self._absorb_metrics(name, act.attempt, snapshot)
        ended = time.perf_counter()
        tracer().record_span(
            "suite.attempt",
            ended - wall,
            ended,
            status="ok" if ok else f"fail:{outcome[1]}",
            benchmark=name,
            attempt=act.attempt,
        )
        if ok:
            run = adopt_run(outcome[1], cfg)
            results[name] = run
            obs_metrics.registry().counter(
                "pdw_suite_attempts_total", outcome="ok"
            ).inc()
            self._journal(
                {
                    "event": "success",
                    "benchmark": name,
                    "attempt": act.attempt,
                    "digest": digests[name],
                    "wall_s": round(wall, 3),
                    "from_cache": run.from_cache,
                }
            )
            return
        kind, message = outcome[1], outcome[2]
        obs_metrics.registry().counter(
            "pdw_suite_attempts_total", outcome=kind
        ).inc()
        if kind in RETRYABLE_KINDS and act.attempt <= self.budget.retries:
            delay = self._backoff(name, act.attempt)
            obs_metrics.registry().counter(
                "pdw_suite_retries_total", kind=kind
            ).inc()
            self._journal(
                {
                    "event": "retry",
                    "benchmark": name,
                    "attempt": act.attempt,
                    "kind": kind,
                    "message": message,
                    "backoff_s": round(delay, 3),
                }
            )
            backoffs.append((time.monotonic() + delay, name, act.attempt + 1))
            return
        obs_metrics.registry().counter("pdw_suite_failures_total", kind=kind).inc()
        results[name] = FailureRecord(
            name=name, kind=kind, message=message,
            attempts=act.attempt, wall_time_s=wall,
        )
        self._journal(
            {
                "event": "failure",
                "benchmark": name,
                "attempt": act.attempt,
                "digest": digests[name],
                "kind": kind,
                "message": message,
                "wall_s": round(wall, 3),
            }
        )

    def _backoff(self, name: str, attempt: int) -> float:
        """Exponential backoff with deterministic jitter (seeded stream)."""
        base = self.budget.backoff_base_s * (2 ** (attempt - 1))
        seed = os.environ.get(faults.ENV_SEED, "0")
        jitter = random.Random(f"{seed}:{name}:{attempt}").random()
        return min(self.budget.backoff_cap_s, base * (1.0 + jitter))

    def _load_journaled(
        self, name: str, cfg: PDWConfig, digest: str
    ) -> Optional[BenchmarkRun]:
        """Serve a journaled success from the artifact cache, if intact.

        A quarantined or evicted entry returns ``None`` and the benchmark
        is re-run under supervision — resume degrades to re-execution,
        never to a wrong answer.
        """
        if self.cache is None or not self.use_cache:
            return None
        stored = self.cache.get(digest)
        if not isinstance(stored, BenchmarkRun):
            return None
        stored.from_cache = True
        return adopt_run(stored, cfg)


# ---------------------------------------------------------------------------
# journal reporting (``pdw report failures``)
# ---------------------------------------------------------------------------

def _read_journal(path: Path) -> List[dict]:
    """Parsed journal records, skipping malformed (truncated) lines."""
    return sched_journal.read_records(path)


def merged_metrics(journal_path: Optional[Path] = None) -> obs_metrics.MetricsRegistry:
    """Rebuild a run-wide metrics registry from the journal's snapshots.

    Offline counterpart of the ``metrics.json`` dump: every ``metrics``
    event (one per finished worker attempt) is merged in journal order.
    """
    path = Path(journal_path) if journal_path is not None else default_journal_path(
        default_cache()
    )
    snapshots = [
        rec["snapshot"]
        for rec in _read_journal(path)
        if rec.get("event") == "metrics" and isinstance(rec.get("snapshot"), dict)
    ]
    return obs_metrics.merge_snapshots(snapshots)


def failures_report(journal_path: Optional[Path] = None) -> str:
    """Render the suite journal's failure history as text."""
    path = Path(journal_path) if journal_path is not None else default_journal_path(
        default_cache()
    )
    records = _read_journal(path)
    if not records:
        return f"no suite journal at {path}\n"

    headers = ["When (UTC)", "Benchmark", "Event", "Kind", "Attempt", "Message"]
    rows: List[List[str]] = []
    last_outcome: Dict[str, str] = {}
    for record in records:
        event = record.get("event")
        name = str(record.get("benchmark", "?"))
        if event == "success":
            last_outcome[name] = "ok"
            continue
        if event not in ("failure", "retry"):
            continue
        if event == "failure":
            last_outcome[name] = f"FAILED({record.get('kind', '?')})"
        when = datetime.fromtimestamp(
            float(record.get("ts", 0.0)), tz=timezone.utc
        ).strftime("%Y-%m-%d %H:%M:%S")
        message = str(record.get("message", ""))
        if len(message) > 100:
            message = message[:97] + "..."
        rows.append(
            [
                when, name, str(event), str(record.get("kind", "-")),
                str(record.get("attempt", "-")), message,
            ]
        )

    title = f"Suite failure journal ({path})\n"
    if not rows:
        return title + "no failures on record\n"
    text = title + render_table(headers, rows)
    text += "\nlatest outcome per benchmark:\n"
    for name in sorted(last_outcome):
        text += f"  {name}: {last_outcome[name]}\n"
    return text
