"""Objective-weight Pareto sweep.

Eq. (26) trades wash count, path length and completion time through α, β
and γ.  This experiment sweeps the (β, γ) balance and reports the
(L_wash, T_assay) frontier PDW traces, demonstrating that the formulation
actually responds to its weights rather than having one dominant term.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

from repro.bench import benchmark, load_benchmark
from repro.contam import ContaminationTracker
from repro.core import PDWConfig, optimize_washes
from repro.experiments.reporting import render_table
from repro.synth import synthesize

#: (label, alpha, beta, gamma) sweep points.
DEFAULT_SWEEP: Tuple[Tuple[str, float, float, float], ...] = (
    ("length-only", 0.0, 1.0, 0.0),
    ("paper", 0.3, 0.3, 0.4),
    ("balanced", 0.2, 0.4, 0.4),
    ("time-only", 0.0, 0.0, 1.0),
)


@dataclass(frozen=True)
class ParetoPoint:
    """One sweep point's outcome."""

    label: str
    alpha: float
    beta: float
    gamma: float
    n_wash: int
    l_wash_mm: float
    t_assay: int


def pareto_points(
    bench_name: str,
    sweep: Sequence[Tuple[str, float, float, float]] = DEFAULT_SWEEP,
    base: Optional[PDWConfig] = None,
) -> List[ParetoPoint]:
    """Run the sweep on one benchmark."""
    cfg = base or PDWConfig(time_limit_s=60.0)
    spec = benchmark(bench_name)
    synthesis = synthesize(load_benchmark(bench_name), inventory=spec.inventory)
    tracker = ContaminationTracker(synthesis.chip, synthesis.schedule)
    points = []
    for label, alpha, beta, gamma in sweep:
        plan = optimize_washes(
            synthesis,
            replace(cfg, alpha=alpha, beta=beta, gamma=gamma),
            tracker=tracker,
        )
        points.append(
            ParetoPoint(
                label=label, alpha=alpha, beta=beta, gamma=gamma,
                n_wash=plan.n_wash,
                l_wash_mm=plan.l_wash_mm,
                t_assay=plan.t_assay,
            )
        )
    return points


def pareto_report(bench_name: str = "PCR", base: Optional[PDWConfig] = None) -> str:
    """Render the sweep as a text table."""
    points = pareto_points(bench_name, base=base)
    headers = ["weights (α/β/γ)", "label", "N_wash", "L_wash(mm)", "T_assay(s)"]
    rows = [
        [
            f"{p.alpha:g}/{p.beta:g}/{p.gamma:g}", p.label,
            str(p.n_wash), f"{p.l_wash_mm:.1f}", str(p.t_assay),
        ]
        for p in points
    ]
    title = f"Objective sweep on {bench_name} (Eq. 26 weight response)\n"
    return title + render_table(headers, rows)
