"""Experiment harness: regenerate every table and figure of the paper.

* :mod:`repro.experiments.table2` — Table II (DAWO vs PDW on
  :math:`N_{wash}`, :math:`L_{wash}`, :math:`T_{delay}`, :math:`T_{assay}`),
* :mod:`repro.experiments.fig4` — Fig. 4 (average waiting time of
  biochemical operations),
* :mod:`repro.experiments.fig5` — Fig. 5 (total wash time),
* :mod:`repro.experiments.ablation` — contribution-wise ablations of the
  PDW techniques (ours; motivated by Section II).

Run from the command line::

    python -m repro.experiments table2
    python -m repro.experiments fig4
    python -m repro.experiments fig5
    python -m repro.experiments ablation
    python -m repro.experiments all
"""

from repro.experiments.runner import (
    BenchmarkRun,
    FailureRecord,
    SuiteResult,
    adopt_run,
    default_config,
    run_benchmark,
    run_suite,
)
from repro.experiments.supervisor import RunBudget, SuiteSupervisor, failures_report
from repro.experiments.table2 import table2_report
from repro.experiments.fig4 import fig4_report
from repro.experiments.fig5 import fig5_report
from repro.experiments.ablation import ablation_report
from repro.experiments.necessity_stats import necessity_report
from repro.experiments.pareto import pareto_report
from repro.experiments.timings import timings_report

__all__ = [
    "BenchmarkRun",
    "FailureRecord",
    "RunBudget",
    "SuiteResult",
    "SuiteSupervisor",
    "ablation_report",
    "adopt_run",
    "default_config",
    "failures_report",
    "fig4_report",
    "fig5_report",
    "necessity_report",
    "pareto_report",
    "run_benchmark",
    "run_suite",
    "table2_report",
    "timings_report",
]
