"""Text-table rendering shared by the experiment reports."""

from __future__ import annotations

from typing import Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Render an aligned plain-text table with a header rule."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(str(c).rjust(widths[i]) for i, c in enumerate(cells))
    rule = "  ".join("-" * w for w in widths)
    lines = [fmt(headers), rule]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines) + "\n"


def render_series(
    title: str,
    labels: Sequence[str],
    series: Sequence[tuple],
    unit: str,
    bar_width: int = 40,
) -> str:
    """Render grouped bar series as text (our Fig. 4 / Fig. 5 analog).

    ``series`` is a list of (series_name, values) pairs; one bar per
    (label, series) combination, scaled to the global maximum.
    """
    peak = max((max(values) for _, values in series), default=0.0) or 1.0
    lines = [title]
    label_width = max(len(l) for l in labels) if labels else 0
    name_width = max(len(n) for n, _ in series) if series else 0
    for i, label in enumerate(labels):
        for name, values in series:
            value = values[i]
            bar = "#" * max(1, round(bar_width * value / peak)) if value else ""
            lines.append(
                f"  {label:<{label_width}}  {name:<{name_width}} "
                f"{value:8.2f} {unit} |{bar}"
            )
        lines.append("")
    return "\n".join(lines) + "\n"


def pct(value: float) -> str:
    """Format a percentage like Table II's I_m columns."""
    return f"{value:.2f}"
