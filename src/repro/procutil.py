"""Shared subprocess plumbing for the supervisor and the solver race.

Both :class:`~repro.experiments.supervisor.SuiteSupervisor` (benchmark
isolation) and :mod:`repro.ilp.race` (concurrent solver rungs) launch
worker subprocesses, collect results over a pipe, and must kill and reap
workers that lost their reason to exist.  The helpers here are that shared
machinery, factored out so the ILP layer does not import the experiments
package (which imports the ILP layer back).

* :data:`MP` — the preferred multiprocessing context: ``fork`` where
  available so workers inherit the warmed interpreter (and, for the race,
  the already-built model without pickling), ``spawn`` otherwise.
* :func:`safe_send` — a pipe send that never raises: a dead parent or an
  unpicklable payload degrades to "worker exited silently", which every
  consumer already classifies from the exit code.
* :func:`terminate` / :func:`reap` — hard-kill a worker and join it with
  a bounded wait, escalating once if it survives the first join.
* :func:`in_daemon_process` — whether the current process is a daemonic
  multiprocessing worker (such processes may not have children, so
  subprocess-based strategies must fall back to threads).
"""

from __future__ import annotations

import multiprocessing

#: Prefer fork: workers inherit the warmed interpreter; fall back to
#: spawn where fork is unavailable (all arguments are picklable).
MP = multiprocessing.get_context(
    "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
)


def safe_send(conn, payload) -> None:
    """Send over a pipe, swallowing a dead peer or unpicklable payload."""
    try:
        conn.send(payload)
    except (OSError, ValueError):
        pass  # parent is gone or payload unpicklable; exit code tells the rest


def terminate(proc) -> None:
    """Hard-kill a worker process (best effort, never raises)."""
    try:
        proc.kill()
    except (OSError, AttributeError):
        try:
            proc.terminate()
        except OSError:
            pass


def reap(proc) -> None:
    """Join a worker with a bounded wait, escalating to a kill once."""
    proc.join(timeout=5.0)
    if proc.is_alive():
        terminate(proc)
        proc.join(timeout=5.0)


def in_daemon_process() -> bool:
    """Whether this process is a daemonic worker (cannot have children)."""
    return bool(getattr(multiprocessing.current_process(), "daemon", False))
