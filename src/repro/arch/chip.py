"""The :class:`Chip` flow-network model.

A chip is an undirected graph whose nodes are the cells of the virtual grid
that carry something: channel junctions (``s_1..s_16`` in Fig. 2), devices,
flow ports (fluid inlets, the paper's :math:`F_p`) and waste ports (outlets,
:math:`W_p`).  Edges are channel segments; each has a physical length in mm
(one grid-cell pitch by default).

Flow paths — for reagent transport, excess/waste removal, and wash — are
node sequences through this graph, e.g.
``["in1", "s2", "s3", "s4", "out1"]`` (wash path :math:`w_1` of Table I).
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

from repro.arch.device import Device, DeviceKind
from repro.errors import ArchitectureError, RoutingError
from repro.units import PhysicalParameters, DEFAULT_PARAMETERS

#: A flow path: a sequence of node ids from a source to a sink.
FlowPath = Tuple[str, ...]


class NodeKind(enum.Enum):
    """Role of a node in the chip flow network."""

    CHANNEL = "channel"
    DEVICE = "device"
    FLOW_PORT = "flow_port"
    WASTE_PORT = "waste_port"


class Chip:
    """A continuous-flow biochip architecture.

    Build instances through :class:`~repro.arch.builder.ChipBuilder` (or the
    synthesis flow); the constructor validates the assembled network.
    """

    def __init__(
        self,
        name: str,
        graph: nx.Graph,
        devices: Dict[str, Device],
        flow_ports: Sequence[str],
        waste_ports: Sequence[str],
        parameters: PhysicalParameters = DEFAULT_PARAMETERS,
    ) -> None:
        self.name = name
        self.graph = graph
        self.devices = dict(devices)
        self.flow_ports = list(flow_ports)
        self.waste_ports = list(waste_ports)
        self.parameters = parameters
        self._validate()

    # -- validation ---------------------------------------------------------

    def _validate(self) -> None:
        if not self.flow_ports:
            raise ArchitectureError(f"chip {self.name!r} has no flow ports")
        if not self.waste_ports:
            raise ArchitectureError(f"chip {self.name!r} has no waste ports")
        for node in list(self.devices) + self.flow_ports + self.waste_ports:
            if node not in self.graph:
                raise ArchitectureError(f"node {node!r} referenced but absent from the network")
        for name, device in self.devices.items():
            if name != device.name:
                raise ArchitectureError(
                    f"device registered under {name!r} but named {device.name!r}"
                )
        kinds = nx.get_node_attributes(self.graph, "kind")
        missing = [n for n in self.graph.nodes if n not in kinds]
        if missing:
            raise ArchitectureError(f"nodes missing 'kind' attribute: {missing[:5]}")
        if self.graph.number_of_nodes() and not nx.is_connected(self.graph):
            parts = [len(c) for c in nx.connected_components(self.graph)]
            raise ArchitectureError(
                f"chip {self.name!r} flow network is disconnected (components: {parts})"
            )
        for port in self.flow_ports + self.waste_ports:
            if self.graph.degree(port) == 0:
                raise ArchitectureError(f"port {port!r} is not attached to any channel")

    # -- node queries -----------------------------------------------------

    def kind_of(self, node: str) -> NodeKind:
        """The :class:`NodeKind` of ``node``."""
        return self.graph.nodes[node]["kind"]

    def is_port(self, node: str) -> bool:
        """Whether ``node`` is a flow or waste port."""
        return self.kind_of(node) in (NodeKind.FLOW_PORT, NodeKind.WASTE_PORT)

    def is_device(self, node: str) -> bool:
        """Whether ``node`` hosts a device."""
        return node in self.devices

    def position(self, node: str) -> Optional[Tuple[float, float]]:
        """Layout coordinates of ``node`` if known (for rendering)."""
        return self.graph.nodes[node].get("pos")

    def neighbors(self, node: str) -> List[str]:
        """Adjacent nodes in the flow network (the paper's ``AC`` sets)."""
        return list(self.graph.neighbors(node))

    def devices_of_kind(self, kind: DeviceKind) -> List[Device]:
        """All devices of a given kind, in name order."""
        return sorted(
            (d for d in self.devices.values() if d.kind is kind),
            key=lambda d: d.name,
        )

    @property
    def channel_nodes(self) -> List[str]:
        """All plain channel/junction nodes."""
        return [n for n in self.graph.nodes if self.kind_of(n) is NodeKind.CHANNEL]

    @property
    def washable_nodes(self) -> List[str]:
        """Nodes that can hold residue: channels and devices (not ports)."""
        return [n for n in self.graph.nodes if not self.is_port(n)]

    # -- geometry -------------------------------------------------------------

    def edge_length_mm(self, a: str, b: str) -> float:
        """Physical length of the channel segment between two adjacent nodes."""
        data = self.graph.get_edge_data(a, b)
        if data is None:
            raise RoutingError(f"no channel segment between {a!r} and {b!r}")
        return data.get("length_mm", self.parameters.cell_pitch_mm)

    def path_length_mm(self, path: Sequence[str]) -> float:
        """Total physical length of a flow path (sum of its segments)."""
        return sum(self.edge_length_mm(a, b) for a, b in zip(path, path[1:]))

    def path_cells(self, path: Sequence[str]) -> int:
        """Number of segments in a flow path (its cell count analog)."""
        return max(0, len(path) - 1)

    def check_path(self, path: Sequence[str]) -> FlowPath:
        """Validate that ``path`` is a walk in the network; return it as a tuple."""
        if len(path) < 2:
            raise RoutingError(f"flow path needs at least two nodes, got {list(path)}")
        for a, b in zip(path, path[1:]):
            if not self.graph.has_edge(a, b):
                raise RoutingError(f"path hop {a!r} -> {b!r} is not a channel segment")
        return tuple(path)

    # -- convenience ----------------------------------------------------------

    def transport_time_s(self, path: Sequence[str]) -> int:
        """Schedule ticks needed to push a plug along ``path``."""
        return self.parameters.transport_time_s(self.path_cells(path))

    def wash_time_s(self, path: Sequence[str]) -> int:
        """Duration of a wash along ``path`` (Eq. 17)."""
        return self.parameters.wash_time_s(self.path_cells(path))

    def stats(self) -> Dict[str, int]:
        """Size summary of the architecture."""
        return {
            "nodes": self.graph.number_of_nodes(),
            "edges": self.graph.number_of_edges(),
            "devices": len(self.devices),
            "flow_ports": len(self.flow_ports),
            "waste_ports": len(self.waste_ports),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        s = self.stats()
        return (
            f"Chip({self.name!r}, {s['devices']} devices, {s['nodes']} nodes, "
            f"{s['flow_ports']}+{s['waste_ports']} ports)"
        )


def interior_nodes(path: Iterable[str], chip: Chip) -> List[str]:
    """Non-port nodes of a flow path — the ones that can be contaminated."""
    return [n for n in path if not chip.is_port(n)]
