"""Chip architecture model for continuous-flow LoC biochips.

A chip is modeled as a *flow network*: a graph whose nodes are grid cells of
the paper's virtual grid ``R`` — channel junctions (the ``s_i`` switches of
Fig. 2), devices (mixer, heater, detectors, filter, ...), flow ports and
waste ports.  Edges are channel segments with a physical length.

Two construction routes are provided:

* :class:`~repro.arch.builder.ChipBuilder` — explicit construction used by
  the Fig. 2 preset (:func:`~repro.arch.presets.figure2_chip`) and by users
  describing their own chips,
* the synthesis flow in :mod:`repro.synth`, which places devices on a
  :class:`~repro.arch.grid.Grid` and routes channels automatically.
"""

from repro.arch.device import Device, DeviceKind
from repro.arch.grid import Grid
from repro.arch.chip import Chip, NodeKind
from repro.arch.builder import ChipBuilder
from repro.arch.routing import Router
from repro.arch.presets import figure2_chip

__all__ = [
    "Chip",
    "ChipBuilder",
    "Device",
    "DeviceKind",
    "Grid",
    "NodeKind",
    "Router",
    "figure2_chip",
]
