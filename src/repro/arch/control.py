"""The control layer: microvalves and their actuation.

Continuous-flow chips are two-layer devices (Fig. 1(a)-(b)): the flow layer
carries fluids, and the control layer pushes elastomer membranes —
*microvalves* — down into flow channels to block them.  Routing a fluid
along a path means opening every valve on the path and closing the valves
on all side branches, so the plug cannot leak into adjacent channels.

This module derives the valve set of a chip, computes the open/closed valve
sets of any flow path, builds the tick-by-tick actuation table of a
schedule, and groups valves that always switch together so they can share a
control port (pressure-source multiplexing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from repro.arch.chip import Chip
from repro.errors import ArchitectureError
from repro.schedule.schedule import Schedule

#: A flow-layer channel segment, as an unordered node pair.
Edge = Tuple[str, str]


def _norm(a: str, b: str) -> Edge:
    return (a, b) if a <= b else (b, a)


@dataclass(frozen=True)
class Valve:
    """A microvalve gating one channel segment."""

    id: str
    edge: Edge

    def gates(self, a: str, b: str) -> bool:
        """Whether this valve sits on segment (a, b)."""
        return self.edge == _norm(a, b)


class ControlLayer:
    """Valve placement and path isolation for one chip.

    A valve is placed on every channel segment incident to a *branching*
    node (degree >= 3) or to a port — exactly the segments where a flow
    could leak sideways or escape the chip.  Straight-through segments
    between two degree-2 junctions need no valve: fluid cannot branch
    there.
    """

    def __init__(self, chip: Chip):
        self.chip = chip
        self.valves: Dict[Edge, Valve] = {}
        self._place_valves()

    # -- placement ----------------------------------------------------------

    def _needs_valve(self, a: str, b: str) -> bool:
        graph = self.chip.graph
        return (
            graph.degree(a) >= 3
            or graph.degree(b) >= 3
            or self.chip.is_port(a)
            or self.chip.is_port(b)
        )

    def _place_valves(self) -> None:
        index = 1
        for a, b in sorted(map(lambda e: _norm(*e), self.chip.graph.edges)):
            if self._needs_valve(a, b):
                edge = _norm(a, b)
                self.valves[edge] = Valve(f"v{index}", edge)
                index += 1

    @property
    def valve_count(self) -> int:
        """Total microvalves on the chip."""
        return len(self.valves)

    def valve_on(self, a: str, b: str) -> Valve | None:
        """The valve gating segment (a, b), if one exists."""
        return self.valves.get(_norm(a, b))

    # -- path isolation ---------------------------------------------------------

    def path_valves(self, path: Sequence[str]) -> Tuple[FrozenSet[Valve], FrozenSet[Valve]]:
        """(open, closed) valve sets isolating ``path``.

        Open: valves on the path's own segments.  Closed: valves on
        segments that touch a path node but are not part of the path —
        these block leakage into side branches.

        Raises :class:`ArchitectureError` if a path segment that needs
        gating has no valve (cannot happen for layers built here).
        """
        self.chip.check_path(path)
        path_edges: Set[Edge] = {_norm(a, b) for a, b in zip(path, path[1:])}
        path_nodes = set(path)

        open_valves: Set[Valve] = set()
        for edge in path_edges:
            valve = self.valves.get(edge)
            if valve is not None:
                open_valves.add(valve)

        closed_valves: Set[Valve] = set()
        for node in path_nodes:
            for neighbor in self.chip.neighbors(node):
                edge = _norm(node, neighbor)
                if edge in path_edges:
                    continue
                valve = self.valves.get(edge)
                if valve is None:
                    raise ArchitectureError(
                        f"side branch {edge} of path through {node!r} has no valve"
                    )
                closed_valves.add(valve)
        return frozenset(open_valves), frozenset(closed_valves)

    # -- schedule actuation ---------------------------------------------------------

    def actuation_table(self, schedule: Schedule) -> "ActuationTable":
        """Tick-by-tick valve demands of every flow task in ``schedule``.

        Raises :class:`ArchitectureError` when two concurrent tasks demand
        the same valve in opposite states — which cannot happen for
        node-disjoint (conflict-free) schedules; the check catches invalid
        schedules early.
        """
        demands: Dict[int, Dict[Valve, bool]] = {}
        for task in schedule.flow_tasks():
            open_v, closed_v = self.path_valves(task.path)
            for tick in range(task.start, task.end):
                states = demands.setdefault(tick, {})
                for valve in open_v:
                    self._demand(states, valve, True, tick, task.id)
                for valve in closed_v:
                    self._demand(states, valve, False, tick, task.id)
        # An executing operation traps its fluid: both device ends closed.
        for task in schedule.operations():
            device = task.device
            for neighbor in self.chip.neighbors(device):
                valve = self.valves.get(_norm(device, neighbor))
                if valve is None:
                    continue
                for tick in range(task.start, task.end):
                    states = demands.setdefault(tick, {})
                    self._demand(states, valve, False, tick, task.id)
        return ActuationTable(self, demands)

    @staticmethod
    def _demand(
        states: Dict[Valve, bool], valve: Valve, is_open: bool, tick: int, task: str
    ) -> None:
        current = states.get(valve)
        if current is not None and current != is_open:
            raise ArchitectureError(
                f"valve {valve.id} demanded both open and closed at t={tick} "
                f"(task {task!r})"
            )
        states[valve] = is_open


class ActuationTable:
    """The resolved valve states of a schedule, tick by tick.

    Valves not demanded at a tick default to *closed* (pressure applied),
    the safe state of a normally-closed membrane valve.
    """

    def __init__(self, layer: ControlLayer, demands: Dict[int, Dict[Valve, bool]]):
        self.layer = layer
        self._demands = demands

    @property
    def horizon(self) -> int:
        """One past the last demanded tick."""
        return max(self._demands, default=-1) + 1

    def open_valves(self, tick: int) -> FrozenSet[Valve]:
        """Valves that must be open at ``tick``."""
        states = self._demands.get(tick, {})
        return frozenset(v for v, is_open in states.items() if is_open)

    def switch_count(self) -> int:
        """Total open/close transitions over the schedule.

        Membrane lifetime is bounded by actuation cycles, so synthesis
        tools report this as a chip-wear metric.
        """
        transitions = 0
        previous: FrozenSet[Valve] = frozenset()
        for tick in range(self.horizon):
            current = self.open_valves(tick)
            transitions += len(current ^ previous)
            previous = current
        transitions += len(previous)  # final close
        return transitions

    def signature(self, valve: Valve) -> Tuple[bool, ...]:
        """The open/closed pattern of ``valve`` over the horizon."""
        return tuple(
            valve in self.open_valves(tick) for tick in range(self.horizon)
        )

    def control_port_groups(self) -> List[FrozenSet[Valve]]:
        """Valves grouped by identical actuation patterns.

        Valves in one group can share a single control port (one external
        pressure source drives them through a common control channel), so
        ``len(control_port_groups())`` is the minimum control-port count
        for this schedule.
        """
        by_pattern: Dict[Tuple[bool, ...], Set[Valve]] = {}
        for valve in self.layer.valves.values():
            by_pattern.setdefault(self.signature(valve), set()).add(valve)
        return sorted(
            (frozenset(group) for group in by_pattern.values()),
            key=lambda g: sorted(v.id for v in g),
        )

    def control_port_count(self) -> int:
        """Minimum number of control ports for this schedule."""
        return len(self.control_port_groups())
