"""CSR-backed shortest-path kernel for chip flow networks.

:mod:`networkx` is excellent for building and validating the chip graph,
but its per-query generality is the wrong trade for routing: candidate
generation issues *thousands* of point-to-point queries per chip (every
visit-order probe of every port pair of every cluster), and each
``nx.shortest_path`` call pays for subgraph views, attribute lookups and
generator plumbing.  This module precomputes, once per :class:`Chip`, a
compressed-sparse-row (CSR) adjacency — index-mapped nodes with
``array``-backed offset/target/weight columns — and answers queries with
a heapq Dijkstra plus Yen's algorithm for k shortest loop-free paths,
both running over plain ints and floats.

On top of the kernel sits an avoid-set-aware LRU cache keyed by
``(src, dst, frozenset(banned))``.  Routing repeats itself heavily —
cluster merging and candidate generation probe the same legs under the
same avoid sets again and again — so the cache converts the dominant
routing cost into dictionary lookups.  Negative results (no route) are
cached too: unreachable probes are just as repetitive.  Hit/miss counts
are kept per kernel and published to the metrics registry by the
pipeline stages that drive routing (see
:meth:`repro.core.stages.PathGenStage`).

Determinism: neighbor lists preserve the graph's adjacency order and the
heap breaks distance ties by insertion order (like networkx's Dijkstra),
so repeated queries — including across processes — return identical
paths.  Every query returns ``(path, length_mm)``: the kernel already
accumulated the length, so callers never re-walk the path to price it.
"""

from __future__ import annotations

import threading
import weakref
from array import array
from collections import OrderedDict
from heapq import heappop, heappush
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.arch.chip import Chip, FlowPath
from repro.errors import RoutingError
from repro.obs.trace import span

#: Shared empty avoid set (the common case — keeps cache keys small).
NO_AVOID: FrozenSet[str] = frozenset()

#: Default bound on cached queries per kernel.  Entries are small
#: (a node tuple and a float); 32k of them comfortably cover the full
#: benchmark suite without bounding memory in any meaningful way.
DEFAULT_CACHE_SIZE = 32768

_INF = float("inf")


class PathKernel:
    """Dijkstra/Yen queries over a CSR snapshot of one chip's network.

    Build via :func:`kernel_for` (cached per chip) rather than directly;
    the constructor walks the whole graph once.  Queries are thread-safe:
    the CSR arrays are immutable after construction and the LRU cache is
    guarded by a lock, so parallel path generation can share one kernel.
    """

    def __init__(self, chip: Chip, cache_size: int = DEFAULT_CACHE_SIZE):
        with span("routing.kernel.build", chip=chip.name):
            # Weak, not strong: kernels live in a WeakKeyDictionary keyed
            # by chip, and a value holding its own key alive would make
            # every entry immortal — one leaked kernel (plus its LRU) per
            # chip instance, forever.
            self._chip_ref = weakref.ref(chip)
            graph = chip.graph
            default_mm = chip.parameters.cell_pitch_mm
            #: Node order: graph insertion order, matching networkx
            #: adjacency iteration so tie-breaks stay comparable.
            self.nodes: List[str] = list(graph.nodes)
            self.index: Dict[str, int] = {n: i for i, n in enumerate(self.nodes)}
            n = len(self.nodes)
            offsets = array("l", [0]) if n else array("l")
            targets = array("l")
            weights = array("d")
            for node in self.nodes:
                for nbr, data in graph.adj[node].items():
                    targets.append(self.index[nbr])
                    weights.append(float(data.get("length_mm", default_mm)))
                offsets.append(len(targets))
            self.offsets = offsets
            self.targets = targets
            self.weights = weights
            self._cache: "OrderedDict[Tuple[str, str, FrozenSet[str]], object]" = (
                OrderedDict()
            )
            self._cache_size = int(cache_size)
            self._lock = threading.Lock()
            self.cache_hits = 0
            self.cache_misses = 0

    @property
    def chip(self) -> Optional[Chip]:
        """The chip this kernel snapshots, or ``None`` once it is dropped."""
        return self._chip_ref()

    # -- cache --------------------------------------------------------------

    def cache_info(self) -> Tuple[int, int, int]:
        """``(hits, misses, current size)`` of the query cache."""
        with self._lock:
            return self.cache_hits, self.cache_misses, len(self._cache)

    def clear_cache(self) -> None:
        with self._lock:
            self._cache.clear()

    # -- shortest path ------------------------------------------------------

    def shortest(
        self, src: str, dst: str, banned: FrozenSet[str] = NO_AVOID
    ) -> Tuple[FlowPath, float]:
        """Shortest path and its physical length, avoiding ``banned``.

        ``banned`` never applies to the endpoints themselves.  Raises
        :class:`RoutingError` when no route exists (that outcome is
        cached as well — unreachable probes repeat just like reachable
        ones).
        """
        key = (src, dst, banned)
        with self._lock:
            hit = self._cache.get(key)
            if hit is not None:
                self._cache.move_to_end(key)
                self.cache_hits += 1
                if hit.__class__ is tuple:
                    return hit  # type: ignore[return-value]
                raise RoutingError(f"no route from {src!r} to {dst!r}")
            self.cache_misses += 1
        result = self._shortest_uncached(src, dst, banned)
        with self._lock:
            self._cache[key] = result if result is not None else _NO_ROUTE
            if len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)
        if result is None:
            raise RoutingError(f"no route from {src!r} to {dst!r}")
        return result

    def _shortest_uncached(
        self, src: str, dst: str, banned: FrozenSet[str]
    ) -> Optional[Tuple[FlowPath, float]]:
        index = self.index
        s = index.get(src)
        t = index.get(dst)
        if s is None or t is None:
            return None
        if s == t:
            return (src,), 0.0
        banned_idx: Set[int] = set()
        for name in banned:
            i = index.get(name)
            if i is not None and i != s and i != t:
                banned_idx.add(i)
        return self._bidijkstra(s, t, banned_idx)

    def _bidijkstra(
        self, s: int, t: int, banned: Set[int]
    ) -> Optional[Tuple[FlowPath, float]]:
        """Bidirectional Dijkstra over the CSR arrays.

        A faithful port of networkx's ``bidirectional_dijkstra`` (which
        backed the router before this kernel existed): one shared FIFO
        tie counter across both fringes, predecessor updates on strict
        improvement only, and the first equal-cost meeting point wins.
        Equal-cost routes therefore come out *identical* to the
        networkx-era router, keeping synthesized transports and wash
        paths stable across the optimization.
        """
        offsets, targets, weights = self.offsets, self.targets, self.weights
        n = len(self.nodes)
        done = ([False] * n, [False] * n)
        seen = ([_INF] * n, [_INF] * n)
        preds = ([-1] * n, [-1] * n)
        fringe: Tuple[List[Tuple[float, int, int]], List[Tuple[float, int, int]]] = (
            [(0.0, 0, s)],
            [(0.0, 1, t)],
        )
        seen[0][s] = 0.0
        seen[1][t] = 0.0
        counter = 2
        finaldist = _INF
        meetnode = -1
        direction = 1
        while fringe[0] and fringe[1]:
            direction = 1 - direction
            dist, _, v = heappop(fringe[direction])
            if done[direction][v]:
                continue  # shortest path to v already found
            done[direction][v] = True
            if done[1 - direction][v]:
                # Scanned in both directions: the best meeting point so
                # far closes the shortest path.
                break
            d_seen = seen[direction]
            o_seen = seen[1 - direction]
            d_done = done[direction]
            d_preds = preds[direction]
            for e in range(offsets[v], offsets[v + 1]):
                w = targets[e]
                if d_done[w] or w in banned:
                    continue
                vw = dist + weights[e]
                if vw < d_seen[w]:
                    d_seen[w] = vw
                    heappush(fringe[direction], (vw, counter, w))
                    counter += 1
                    d_preds[w] = v
                    if o_seen[w] != _INF:
                        total = vw + o_seen[w]
                        if total < finaldist:
                            finaldist = total
                            meetnode = w
        else:
            return None  # a fringe drained without the searches meeting
        nodes = self.nodes
        fwd: List[int] = []
        u = meetnode
        while u != -1:
            fwd.append(u)
            u = preds[0][u]
        fwd.reverse()
        u = preds[1][meetnode]
        while u != -1:
            fwd.append(u)
            u = preds[1][u]
        return tuple(nodes[i] for i in fwd), finaldist

    def _dijkstra(
        self,
        s: int,
        t: int,
        banned: Set[int],
        banned_edges: Iterable[Tuple[int, int]],
    ) -> Optional[Tuple[List[int], float]]:
        """Parent array + distance to ``t``, or ``None`` when unreachable.

        Ties break by discovery order (a FIFO counter in the heap) and
        parents are only replaced on *strict* improvement, mirroring
        networkx so equal-cost routes come out in a stable, comparable
        order.
        """
        offsets, targets, weights = self.offsets, self.targets, self.weights
        n = len(self.nodes)
        dist: List[float] = [_INF] * n
        seen: List[float] = [_INF] * n
        parent: List[int] = [-1] * n
        edge_ban = set(banned_edges) if banned_edges else None
        heap: List[Tuple[float, int, int]] = [(0.0, 0, s)]
        seen[s] = 0.0
        counter = 1
        while heap:
            d, _, u = heappop(heap)
            if dist[u] != _INF:
                continue  # stale heap entry; u already finalized
            dist[u] = d
            if u == t:
                return parent, d
            for e in range(offsets[u], offsets[u + 1]):
                v = targets[e]
                if dist[v] != _INF or v in banned:
                    continue
                if edge_ban is not None and (u, v) in edge_ban:
                    continue
                nd = d + weights[e]
                if nd < seen[v]:
                    seen[v] = nd
                    parent[v] = u
                    heappush(heap, (nd, counter, v))
                    counter += 1
        return None

    def _walk_back(
        self, result: Tuple[List[int], float], s: int, t: int
    ) -> Tuple[FlowPath, float]:
        parent, d = result
        nodes = self.nodes
        rev = [t]
        u = t
        while u != s:
            u = parent[u]
            rev.append(u)
        rev.reverse()
        return tuple(nodes[i] for i in rev), d

    # -- k shortest loop-free paths (Yen) -----------------------------------

    def k_shortest(
        self,
        src: str,
        dst: str,
        k: int,
        banned: FrozenSet[str] = NO_AVOID,
    ) -> List[Tuple[FlowPath, float]]:
        """Up to ``k`` simple paths in increasing length order (Yen).

        Length ties break on the node sequence so the ordering is total
        and deterministic.  Raises :class:`RoutingError` when not even
        one path exists.
        """
        if k < 1:
            return []
        first = self.shortest(src, dst, banned)  # raises when unreachable
        found: List[Tuple[FlowPath, float]] = [first]
        candidates: List[Tuple[float, FlowPath]] = []
        in_candidates: Set[FlowPath] = set()
        index = self.index
        while len(found) < k:
            prev_path, _ = found[-1]
            prev_idx = [index[n] for n in prev_path]
            root_len = 0.0
            for i in range(len(prev_path) - 1):
                root = prev_path[: i + 1]
                spur = prev_path[i]
                # Edges leaving the spur node along any already-found or
                # queued path sharing this root are off limits.
                edge_ban: Set[Tuple[int, int]] = set()
                for path, _ in found:
                    if path[: i + 1] == root and len(path) > i + 1:
                        a, b = index[path[i]], index[path[i + 1]]
                        edge_ban.add((a, b))
                        edge_ban.add((b, a))
                spur_banned = set(banned)
                spur_banned.update(root[:-1])
                spur_result = self._spur(
                    spur, dst, frozenset(spur_banned), frozenset(edge_ban)
                )
                if spur_result is not None:
                    spur_path, spur_len = spur_result
                    total = root[:-1] + spur_path
                    if total not in in_candidates:
                        in_candidates.add(total)
                        heappush(candidates, (root_len + spur_len, total))
                root_len += self._edge_weight(prev_idx[i], prev_idx[i + 1])
            if not candidates:
                break
            length, path = heappop(candidates)
            found.append((path, length))
        return found

    def _spur(
        self,
        src: str,
        dst: str,
        banned: FrozenSet[str],
        edge_ban: FrozenSet[Tuple[int, int]],
    ) -> Optional[Tuple[FlowPath, float]]:
        index = self.index
        s, t = index.get(src), index.get(dst)
        if s is None or t is None or s == t:
            return None
        banned_idx = {
            i
            for i in (index.get(name) for name in banned)
            if i is not None and i != s and i != t
        }
        result = self._dijkstra(s, t, banned_idx, edge_ban)
        if result is None:
            return None
        return self._walk_back(result, s, t)

    def _edge_weight(self, u: int, v: int) -> float:
        for e in range(self.offsets[u], self.offsets[u + 1]):
            if self.targets[e] == v:
                return self.weights[e]
        raise RoutingError(
            f"no channel segment between {self.nodes[u]!r} and {self.nodes[v]!r}"
        )


#: Sentinel cached for unreachable (src, dst, banned) queries.
_NO_ROUTE = object()

_KERNELS: "weakref.WeakKeyDictionary[Chip, PathKernel]" = weakref.WeakKeyDictionary()
_KERNELS_LOCK = threading.Lock()


def kernel_for(chip: Chip) -> PathKernel:
    """The (cached) :class:`PathKernel` of ``chip``.

    Kernels are keyed by chip identity in a weak dictionary: a chip's
    network never mutates after construction, and dropping the chip
    drops its kernel.
    """
    kernel = _KERNELS.get(chip)
    if kernel is None:
        with _KERNELS_LOCK:
            kernel = _KERNELS.get(chip)
            if kernel is None:
                kernel = PathKernel(chip)
                _KERNELS[chip] = kernel
    return kernel


def cache_counters(chip: Chip) -> Tuple[int, int]:
    """``(hits, misses)`` of the chip's kernel cache (0, 0 when unbuilt)."""
    kernel = _KERNELS.get(chip)
    if kernel is None:
        return 0, 0
    hits, misses, _ = kernel.cache_info()
    return hits, misses
