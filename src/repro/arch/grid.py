"""The virtual grid ``R`` of the paper's formulation.

PDW "uses a virtual grid R of size W_G x H_G to represent the chip layout,
where devices and channels are placed on the cells of R" (Section III).
:class:`Grid` provides coordinates, bounds checking, 4-neighborhood
adjacency and Manhattan geometry; the synthesis flow places devices on grid
cells and routes channels along cell sequences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.errors import GridError

#: A grid cell, addressed as (x, y) with 0 <= x < width, 0 <= y < height.
Cell = Tuple[int, int]


@dataclass(frozen=True)
class Grid:
    """A rectangular virtual grid of unit cells."""

    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1:
            raise GridError(f"grid must be at least 1x1, got {self.width}x{self.height}")

    # -- membership -------------------------------------------------------

    def contains(self, cell: Cell) -> bool:
        """Whether ``cell`` lies inside the grid."""
        x, y = cell
        return 0 <= x < self.width and 0 <= y < self.height

    def require(self, cell: Cell) -> Cell:
        """Return ``cell`` or raise :class:`GridError` if out of bounds."""
        if not self.contains(cell):
            raise GridError(f"cell {cell} outside {self.width}x{self.height} grid")
        return cell

    # -- geometry -----------------------------------------------------------

    def neighbors(self, cell: Cell) -> List[Cell]:
        """In-grid 4-neighborhood of ``cell`` (the paper's ``AC_{x,y}``)."""
        x, y = self.require(cell)
        candidates = ((x + 1, y), (x - 1, y), (x, y + 1), (x, y - 1))
        return [c for c in candidates if self.contains(c)]

    @staticmethod
    def manhattan(a: Cell, b: Cell) -> int:
        """Manhattan distance between two cells."""
        return abs(a[0] - b[0]) + abs(a[1] - b[1])

    def is_boundary(self, cell: Cell) -> bool:
        """Whether ``cell`` lies on the grid boundary (where ports may sit)."""
        x, y = self.require(cell)
        return x in (0, self.width - 1) or y in (0, self.height - 1)

    # -- iteration ------------------------------------------------------------

    def cells(self) -> Iterator[Cell]:
        """All cells in row-major order."""
        for y in range(self.height):
            for x in range(self.width):
                yield (x, y)

    def boundary_cells(self) -> List[Cell]:
        """Boundary ring cells in clockwise order starting at (0, 0)."""
        if self.width == 1:
            return [(0, y) for y in range(self.height)]
        if self.height == 1:
            return [(x, 0) for x in range(self.width)]
        top = [(x, 0) for x in range(self.width)]
        right = [(self.width - 1, y) for y in range(1, self.height)]
        bottom = [(x, self.height - 1) for x in range(self.width - 2, -1, -1)]
        left = [(0, y) for y in range(self.height - 2, 0, -1)]
        return top + right + bottom + left

    def __iter__(self) -> Iterator[Cell]:
        return self.cells()

    @property
    def size(self) -> int:
        """Total number of cells."""
        return self.width * self.height
