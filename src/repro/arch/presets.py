"""Preset architectures — most importantly the paper's Fig. 2 example chip.

The Fig. 2 chip hosts five devices (filter, mixer, heater, two detectors),
four flow ports (``in1..in4``), four waste ports (``out1..out4``) and
sixteen channel junctions (``s1..s16``).  Its connectivity is reconstructed
from the complete flow paths of Table I: every listed transport, removal and
wash path is a valid walk on the network built here (asserted by the test
suite).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.arch.builder import ChipBuilder
from repro.arch.chip import Chip, FlowPath
from repro.arch.device import DeviceKind
from repro.units import PhysicalParameters, DEFAULT_PARAMETERS

#: Connectivity of the Fig. 2 chip, derived from the Table I flow paths.
_FIGURE2_EDGES: Tuple[Tuple[str, str], ...] = (
    ("in1", "s1"), ("in1", "s2"),
    ("s1", "filter"), ("filter", "s2"),
    ("s1", "out2"), ("s9", "out2"),
    ("s2", "s3"), ("s3", "s4"), ("s3", "s15"),
    ("s4", "mixer"), ("mixer", "s5"),
    ("s4", "out1"), ("s5", "out1"),
    ("s5", "s6"), ("s6", "s7"),
    ("in2", "s7"), ("in2", "s8"),
    ("s7", "det2"), ("det2", "s8"), ("s8", "out3"),
    ("s15", "s11"), ("s11", "s10"), ("s10", "det1"), ("det1", "s9"),
    ("in3", "s9"), ("in3", "s10"), ("s11", "out4"),
    ("s15", "s16"), ("s16", "s12"), ("s16", "s6"),
    ("s12", "s13"), ("s13", "heater"), ("heater", "s14"),
    ("s14", "out3"), ("in4", "s14"), ("in4", "s13"), ("s12", "out4"),
)

#: Display coordinates (decorative; used only by the ASCII renderer).
_FIGURE2_POSITIONS: Dict[str, Tuple[float, float]] = {
    "out2": (0, 0), "s1": (1, 1), "filter": (2, 1), "in1": (0, 2),
    "s2": (1, 3), "s3": (2, 3), "s4": (3, 3), "mixer": (4, 3), "s5": (5, 3),
    "out1": (4, 4), "s6": (5, 2), "s7": (5, 1), "det2": (6, 1),
    "in2": (7, 0), "s8": (7, 1), "out3": (8, 2),
    "s15": (2, 4), "s16": (3, 4), "s11": (2, 5), "s10": (2, 6),
    "det1": (1, 6), "s9": (0, 6), "in3": (0, 5), "out4": (3, 6),
    "s12": (4, 5), "s13": (5, 5), "heater": (6, 5), "s14": (7, 5),
    "in4": (6, 6),
}

_FIGURE2_DEVICES: Tuple[Tuple[str, DeviceKind], ...] = (
    ("filter", DeviceKind.FILTER),
    ("mixer", DeviceKind.MIXER),
    ("heater", DeviceKind.HEATER),
    ("det1", DeviceKind.DETECTOR),
    ("det2", DeviceKind.DETECTOR),
)


def figure2_chip(parameters: PhysicalParameters = DEFAULT_PARAMETERS) -> Chip:
    """Build the paper's Fig. 2 example chip."""
    builder = ChipBuilder("figure2", parameters)
    for i in range(1, 5):
        builder.add_flow_port(f"in{i}", pos=_FIGURE2_POSITIONS[f"in{i}"])
    for i in range(1, 5):
        builder.add_waste_port(f"out{i}", pos=_FIGURE2_POSITIONS[f"out{i}"])
    for name, kind in _FIGURE2_DEVICES:
        builder.add_device(name, kind, pos=_FIGURE2_POSITIONS[name])
    for i in range(1, 17):
        name = f"s{i}"
        builder.add_junction(name, pos=_FIGURE2_POSITIONS[name])
    for a, b in _FIGURE2_EDGES:
        builder.add_channel(a, b)
    return builder.build()


def _p(spec: str) -> FlowPath:
    return tuple(spec.split())


#: The complete flow paths of Table I.  Transport paths #1-#9 and wash paths
#: w1-w3 are verbatim; the excess-removal rows *2/*3 are partially garbled in
#: the source scan and reconstructed per Section II-B (see DESIGN.md).
FIGURE2_FLOW_PATHS: Dict[str, FlowPath] = {
    "#1": _p("in1 s2 filter s1 out2"),
    "#2": _p("in2 s7 s6 s5 mixer s4 out1"),
    "#3": _p("in1 s1 filter s2 s3 s4 mixer s5 out1"),
    "#4": _p("in1 s1 filter s2 s3 s15 s11 s10 det1 s9 out2"),
    "#5": _p("in1 s2 s3 s4 mixer s5 s6 s7 det2 s8 out3"),
    "#6": _p("in3 s9 det1 s10 s11 s15 s16 s12 s13 heater s14 out3"),
    "#7": _p("in3 s9 det1 s10 s11 s15 s3 s4 mixer s5 out1"),
    "#8": _p("in2 s8 det2 s7 s6 s5 mixer s4 out1"),
    "#9": _p("in4 s14 heater s13 s12 s16 s6 s5 mixer s4 out1"),
    "*1a": _p("in1 s1 out2"),
    "*1b": _p("in1 s2 s3 s4 out1"),
    "*2a": _p("in1 s2 s3 s4 out1"),
    "*2b": _p("in2 s7 s6 s5 out1"),
    "*4a": _p("in3 s9 out2"),
    "*4b": _p("in3 s10 s11 out4"),
    "*5a": _p("in2 s8 out3"),
    "*5b": _p("in2 s7 s6 s5 out1"),
    "*6a": _p("in4 s14 out3"),
    "*6b": _p("in4 s13 s12 out4"),
    "$1": _p("in2 s7 s6 s5 mixer s4 out1"),
    "w1": _p("in1 s2 s3 s4 out1"),
    "w2": _p("in2 s7 s6 s5 out1"),
    "w3": _p("in4 s13 s12 s16 s15 s11 out4"),
}


def figure2_transport_paths() -> List[FlowPath]:
    """The nine numbered transport paths of Table I, in order."""
    return [FIGURE2_FLOW_PATHS[f"#{i}"] for i in range(1, 10)]
