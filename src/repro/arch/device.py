"""Devices of the flow layer: mixers, heaters, detectors, filters, storage.

A device occupies one node of the chip flow network and executes biochemical
operations.  The :class:`DeviceKind` taxonomy mirrors the devices appearing
in the paper's example chip (Fig. 2) and benchmark suite.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet


class DeviceKind(enum.Enum):
    """Functional class of an on-chip device."""

    MIXER = "mixer"
    HEATER = "heater"
    DETECTOR = "detector"
    FILTER = "filter"
    STORAGE = "storage"
    SEPARATOR = "separator"
    INCUBATOR = "incubator"

    @property
    def display_name(self) -> str:
        """Human-readable name used by the ASCII renderer."""
        return self.value


#: Operation types each device kind can execute (operation type strings used
#: by :mod:`repro.assay.operations`).
DEVICE_CAPABILITIES = {
    DeviceKind.MIXER: frozenset({"mix", "dilute"}),
    DeviceKind.HEATER: frozenset({"heat", "thermocycle", "incubate"}),
    DeviceKind.DETECTOR: frozenset({"detect"}),
    DeviceKind.FILTER: frozenset({"filter"}),
    DeviceKind.STORAGE: frozenset({"store"}),
    DeviceKind.SEPARATOR: frozenset({"separate", "split"}),
    DeviceKind.INCUBATOR: frozenset({"incubate", "culture"}),
}


@dataclass(frozen=True)
class Device:
    """A named on-chip device.

    Attributes
    ----------
    name:
        Unique node id in the chip flow network (e.g. ``"mixer"``,
        ``"detector1"``).
    kind:
        Functional class, which determines the operation types the device
        can execute.
    capacity:
        How many operations the device can hold simultaneously.  All
        paper devices are single-occupancy.
    """

    name: str
    kind: DeviceKind
    capacity: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("device name cannot be empty")
        if self.capacity < 1:
            raise ValueError("device capacity must be at least 1")

    @property
    def capabilities(self) -> FrozenSet[str]:
        """Operation types this device can execute."""
        return DEVICE_CAPABILITIES[self.kind]

    def can_execute(self, op_type: str) -> bool:
        """Whether this device supports operation type ``op_type``."""
        return op_type in self.capabilities


def kind_for_operation(op_type: str) -> DeviceKind:
    """The device kind required by an operation type.

    Raises
    ------
    KeyError
        If no device kind supports ``op_type``.
    """
    for kind, ops in DEVICE_CAPABILITIES.items():
        if op_type in ops:
            return kind
    raise KeyError(f"no device kind can execute operation type {op_type!r}")
