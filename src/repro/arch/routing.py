"""Routing over a chip's flow network.

All flow paths — reagent transport, excess/waste removal, and the wash paths
of both PDW and the DAWO baseline — are computed here.  The router wraps
the CSR :class:`~repro.arch.pathkernel.PathKernel` (heapq Dijkstra + Yen's
k-paths + avoid-set-aware LRU cache) with chip-specific concerns: physical
edge lengths, node avoidance, multi-waypoint paths, and port selection.

Every kernel query returns ``(path, length_mm)`` — the kernel accumulates
the physical length while searching, so none of the methods here re-walk a
path through :meth:`Chip.path_length_mm` just to price it.  The ``*_mm``
method variants expose that pairing to callers (candidate generation and
cluster merging consume it); the plain variants keep the original
path-only signatures.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.arch.chip import Chip, FlowPath
from repro.arch.pathkernel import PathKernel, kernel_for
from repro.errors import RoutingError

#: A routed path together with its physical length in mm.
RoutedPath = Tuple[FlowPath, float]


def is_simple(path: Sequence[str]) -> bool:
    """Whether a flow path visits every node at most once."""
    return len(set(path)) == len(path)


class Router:
    """Shortest-path router over a :class:`~repro.arch.chip.Chip`.

    ``base_avoid`` bans a node set from *every* query this router issues
    (degraded-chip routing threads the dead-node set here).  Unlike the
    per-query ``avoid`` argument, the base set is folded into one shared
    frozenset up front, so the no-``avoid`` fast path below — and with it
    the kernel's LRU hit rate — survives arbitrarily large dead sets.
    """

    def __init__(self, chip: Chip, base_avoid: Optional[Iterable[str]] = None):
        self.chip = chip
        self.kernel: PathKernel = kernel_for(chip)
        #: Ports are never transited: fluid would leave the chip there.
        self._port_ban = frozenset(chip.flow_ports) | frozenset(chip.waste_ports)
        #: The every-query ban set: ports plus the router-level avoid set.
        self._base_ban = (
            self._port_ban | frozenset(base_avoid) if base_avoid else self._port_ban
        )

    # -- basic shortest paths ------------------------------------------------

    def _banned(self, avoid: Optional[Iterable[str]], keep: Sequence[str]):
        """Banned-node set for one routing query.

        Ports other than the endpoints are always banned: a flow cannot
        transit an inlet or outlet — fluid would leave the chip there.
        The no-``avoid`` case returns the shared base frozenset itself
        (no union, no copy): the kernel's LRU keys on this set, and an
        identity-stable frozenset hashes once ever, so repeated queries
        stay cache hits instead of rebuilding an equal-but-new set.
        """
        if not avoid:
            for endpoint in keep:
                if endpoint in self._base_ban:
                    return self._base_ban - frozenset(keep)
            return self._base_ban
        banned = self._base_ban | frozenset(avoid)
        if banned & frozenset(keep):
            banned = banned - frozenset(keep)
        return banned

    def shortest_path(
        self,
        src: str,
        dst: str,
        avoid: Optional[Iterable[str]] = None,
    ) -> FlowPath:
        """Shortest (physical length) path from ``src`` to ``dst``.

        ``avoid`` removes nodes from consideration (except the endpoints),
        modeling channels occupied by concurrent fluids.
        """
        return self.shortest_path_mm(src, dst, avoid)[0]

    def shortest_path_mm(
        self,
        src: str,
        dst: str,
        avoid: Optional[Iterable[str]] = None,
    ) -> RoutedPath:
        """Like :meth:`shortest_path` but paired with its length in mm."""
        return self.kernel.shortest(src, dst, self._banned(avoid, (src, dst)))

    def distance_mm(self, src: str, dst: str) -> float:
        """Shortest-path physical distance between two nodes."""
        return self.shortest_path_mm(src, dst)[1]

    def k_shortest_paths(self, src: str, dst: str, k: int = 3) -> List[FlowPath]:
        """Up to ``k`` loop-free paths in increasing length order."""
        banned = self._banned(None, (src, dst))
        return [path for path, _ in self.kernel.k_shortest(src, dst, k, banned)]

    # -- multi-waypoint paths ---------------------------------------------------

    def path_through(
        self,
        src: str,
        targets: Sequence[str],
        dst: str,
        avoid: Optional[Iterable[str]] = None,
    ) -> FlowPath:
        """A path from ``src`` to ``dst`` covering every node in ``targets``.

        Several target visit orders are tried with *strict* simplicity
        (no node revisited); the shortest simple result wins.  Only when no
        order yields a simple path does the router fall back to a walk that
        may revisit nodes.  Raises :class:`RoutingError` when some target
        is unreachable.
        """
        return self.path_through_mm(src, targets, dst, avoid)[0]

    def path_through_mm(
        self,
        src: str,
        targets: Sequence[str],
        dst: str,
        avoid: Optional[Iterable[str]] = None,
    ) -> RoutedPath:
        """Like :meth:`path_through` but paired with its length in mm."""
        remaining: Set[str] = set(targets)
        remaining.discard(src)
        remaining.discard(dst)
        base_avoid = set(avoid) if avoid else set()
        if not remaining:
            return self.shortest_path_mm(src, dst, avoid=base_avoid)

        best: Optional[RoutedPath] = None
        for order in self._visit_orders(src, sorted(remaining), base_avoid):
            for protect_future in (True, False):
                routed = self._build_simple(src, order, dst, base_avoid, protect_future)
                if routed is None:
                    continue
                if best is None or routed[1] < best[1]:
                    best = routed
        if best is not None:
            return best
        return self._build_relaxed(src, remaining, dst, base_avoid)

    def _chain_order(self, targets: List[str]) -> Optional[List[str]]:
        """Targets ordered along their induced path, if they form one.

        Contaminated spots usually lie along one flow path, so their
        induced subgraph is a simple chain — visiting them in chain order
        is the natural wash direction.
        """
        if len(targets) == 1:
            return list(targets)
        sub = self.chip.graph.subgraph(targets)
        degrees = dict(sub.degree())
        if any(d > 2 for d in degrees.values()):
            return None
        if not nx.is_connected(sub):
            return None
        endpoints = [n for n, d in degrees.items() if d <= 1]
        if len(endpoints) != 2:
            return None
        order: List[str] = [min(endpoints)]
        seen = {order[0]}
        while len(order) < len(targets):
            nxt = [n for n in sub.neighbors(order[-1]) if n not in seen]
            if not nxt:
                return None
            order.append(nxt[0])
            seen.add(nxt[0])
        return order

    def _visit_orders(
        self, src: str, targets: List[str], base_avoid: Set[str]
    ) -> List[List[str]]:
        """Candidate target visit orders: distance sweeps + reversals."""
        def dist(a: str, b: str) -> float:
            try:
                return self.shortest_path_mm(a, b, avoid=base_avoid)[1]
            except RoutingError:
                return float("inf")

        ascending = sorted(targets, key=lambda t: (dist(src, t), t))
        greedy: List[str] = []
        pool = list(targets)
        current = src
        while pool:
            nxt = min(pool, key=lambda t: (dist(current, t), t))
            greedy.append(nxt)
            pool.remove(nxt)
            current = nxt
        orders = [greedy, ascending, list(reversed(ascending))]
        chain = self._chain_order(targets)
        if chain is not None:
            orders = [chain, list(reversed(chain))] + orders
        unique: List[List[str]] = []
        for order in orders:
            if order not in unique:
                unique.append(order)
        return unique

    def _build_simple(
        self,
        src: str,
        order: List[str],
        dst: str,
        base_avoid: Set[str],
        protect_future: bool = True,
    ) -> Optional[RoutedPath]:
        """Chain legs through ``order`` without revisiting any node.

        With ``protect_future`` each leg also detours around targets later
        in the order, so a leg never enters a constrained node (e.g. a
        two-ended device) from the side that strands the rest of the tour.
        """
        path: List[str] = [src]
        length = 0.0
        current = src
        covered = {src}
        for i, target in enumerate(order):
            if target in covered:
                continue
            avoid = base_avoid | (covered - {current})
            if protect_future:
                avoid |= {t for t in order[i + 1:] if t not in covered}
            try:
                leg, leg_mm = self.shortest_path_mm(current, target, avoid=avoid)
            except RoutingError:
                return None
            path.extend(leg[1:])
            length += leg_mm
            covered.update(leg)
            current = target
        try:
            leg, leg_mm = self.shortest_path_mm(
                current, dst, avoid=base_avoid | (covered - {current})
            )
        except RoutingError:
            return None
        path.extend(leg[1:])
        length += leg_mm
        return tuple(path), length

    def _build_relaxed(
        self, src: str, remaining: Set[str], dst: str, base_avoid: Set[str]
    ) -> RoutedPath:
        """Nearest-neighbor walk that may revisit nodes (last resort)."""
        remaining = set(remaining)
        path: List[str] = [src]
        length = 0.0
        current = src
        while remaining:
            current, (leg, leg_mm) = self._nearest_leg(
                current, remaining, base_avoid, path
            )
            path.extend(leg[1:])
            length += leg_mm
            remaining -= set(leg)
        last_leg, last_mm = self._leg(current, dst, base_avoid, path)
        path.extend(last_leg[1:])
        length += last_mm
        return tuple(path), length

    def _nearest_leg(
        self,
        current: str,
        remaining: Set[str],
        base_avoid: Set[str],
        visited: Sequence[str],
    ) -> Tuple[str, RoutedPath]:
        """Shortest leg from ``current`` to the closest remaining target."""
        best: Optional[Tuple[float, str, FlowPath]] = None
        for target in sorted(remaining):
            try:
                leg, leg_mm = self._leg(current, target, base_avoid, visited)
            except RoutingError:
                continue
            if best is None or leg_mm < best[0]:
                best = (leg_mm, target, leg)
        if best is None:
            raise RoutingError(
                f"cannot reach any of {sorted(remaining)} from {current!r}"
            )
        return best[1], (best[2], best[0])

    def _leg(
        self,
        src: str,
        dst: str,
        base_avoid: Set[str],
        visited: Sequence[str],
    ) -> RoutedPath:
        """One leg; try to stay simple first, then relax the visited set."""
        try:
            return self.shortest_path_mm(src, dst, avoid=base_avoid | set(visited))
        except RoutingError:
            return self.shortest_path_mm(src, dst, avoid=base_avoid)

    # -- port selection ----------------------------------------------------------

    def nearest_flow_port(self, node: str) -> str:
        """The flow port with the shortest route to ``node``."""
        return self._nearest_port(node, self.chip.flow_ports)

    def nearest_waste_port(self, node: str) -> str:
        """The waste port with the shortest route from ``node``."""
        return self._nearest_port(node, self.chip.waste_ports)

    def _nearest_port(self, node: str, ports: Sequence[str]) -> str:
        best_port, best_dist = None, float("inf")
        for port in ports:
            try:
                dist = self.distance_mm(node, port)
            except RoutingError:
                continue
            if dist < best_dist:
                best_port, best_dist = port, dist
        if best_port is None:
            raise RoutingError(f"no port reachable from {node!r}")
        return best_port

    def port_to_port_candidates(
        self,
        targets: Sequence[str],
        max_candidates: int = 8,
        avoid: Optional[Iterable[str]] = None,
    ) -> List[FlowPath]:
        """Candidate wash paths: every (flow port, waste port) pair routed
        through ``targets``, shortest first, truncated to ``max_candidates``.

        This is the candidate pool PDW's path-selection ILP chooses from.
        """
        return [
            path
            for path, _ in self.port_to_port_candidates_mm(
                targets, max_candidates, avoid
            )
        ]

    def port_to_port_candidates_mm(
        self,
        targets: Sequence[str],
        max_candidates: int = 8,
        avoid: Optional[Iterable[str]] = None,
    ) -> List[RoutedPath]:
        """Like :meth:`port_to_port_candidates`, each path with its length."""
        candidates: List[Tuple[float, FlowPath]] = []
        for fp in self.chip.flow_ports:
            for wp in self.chip.waste_ports:
                try:
                    path, length = self.path_through_mm(fp, targets, wp, avoid)
                except RoutingError:
                    continue
                candidates.append((length, path))
        candidates.sort(key=lambda item: (item[0], item[1]))
        unique: List[RoutedPath] = []
        seen: Set[FlowPath] = set()
        for length, path in candidates:
            if path not in seen:
                unique.append((path, length))
                seen.add(path)
            if len(unique) >= max_candidates:
                break
        if not unique:
            raise RoutingError(f"no port-to-port wash path covers {list(targets)}")
        return unique
