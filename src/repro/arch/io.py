"""JSON (de)serialization of chip architectures.

Lets users describe chips in plain data files and ship layouts between
tools::

    {
      "name": "ladder",
      "parameters": {"flow_velocity_mm_s": 10.0, "cell_pitch_mm": 1.5,
                      "dissolution_time_s": 1.0},
      "nodes": [
        {"id": "in1", "kind": "flow_port", "pos": [0, 0]},
        {"id": "mixerA", "kind": "device", "device_kind": "mixer"},
        ...
      ],
      "channels": [["in1", "a1"], ["a1", "mixerA", 2.5], ...]
    }

Channel entries are ``[a, b]`` or ``[a, b, length_mm]``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

import networkx as nx

from repro.arch.chip import Chip, NodeKind
from repro.arch.device import Device, DeviceKind
from repro.errors import ArchitectureError
from repro.units import PhysicalParameters


def chip_to_dict(chip: Chip) -> Dict[str, Any]:
    """Serialize a chip to plain data."""
    nodes: List[Dict[str, Any]] = []
    for node in sorted(chip.graph.nodes):
        entry: Dict[str, Any] = {"id": node, "kind": chip.kind_of(node).value}
        pos = chip.position(node)
        if pos is not None:
            entry["pos"] = [pos[0], pos[1]]
        if chip.is_device(node):
            device = chip.devices[node]
            entry["device_kind"] = device.kind.value
            if device.capacity != 1:
                entry["capacity"] = device.capacity
        nodes.append(entry)
    channels = []
    for a, b in sorted(map(lambda e: tuple(sorted(e)), chip.graph.edges)):
        length = chip.edge_length_mm(a, b)
        if length == chip.parameters.cell_pitch_mm:
            channels.append([a, b])
        else:
            channels.append([a, b, length])
    return {
        "name": chip.name,
        "parameters": {
            "flow_velocity_mm_s": chip.parameters.flow_velocity_mm_s,
            "cell_pitch_mm": chip.parameters.cell_pitch_mm,
            "dissolution_time_s": chip.parameters.dissolution_time_s,
        },
        "nodes": nodes,
        "channels": channels,
    }


def chip_from_dict(data: Dict[str, Any]) -> Chip:
    """Rebuild a chip from :func:`chip_to_dict` output."""
    try:
        params = PhysicalParameters(**data.get("parameters", {}))
        graph = nx.Graph()
        devices: Dict[str, Device] = {}
        flow_ports: List[str] = []
        waste_ports: List[str] = []
        for entry in data["nodes"]:
            node = entry["id"]
            kind = NodeKind(entry["kind"])
            attrs: Dict[str, Any] = {"kind": kind}
            if "pos" in entry:
                attrs["pos"] = tuple(entry["pos"])
            graph.add_node(node, **attrs)
            if kind is NodeKind.DEVICE:
                devices[node] = Device(
                    node,
                    DeviceKind(entry["device_kind"]),
                    entry.get("capacity", 1),
                )
            elif kind is NodeKind.FLOW_PORT:
                flow_ports.append(node)
            elif kind is NodeKind.WASTE_PORT:
                waste_ports.append(node)
        for channel in data["channels"]:
            a, b = channel[0], channel[1]
            length = channel[2] if len(channel) > 2 else params.cell_pitch_mm
            graph.add_edge(a, b, length_mm=length)
    except (KeyError, ValueError, TypeError) as exc:
        raise ArchitectureError(f"malformed chip document: {exc}") from exc
    return Chip(data.get("name", "chip"), graph, devices, flow_ports, waste_ports, params)


def chip_to_json(chip: Chip, indent: int = 2) -> str:
    """Serialize a chip to a JSON string."""
    return json.dumps(chip_to_dict(chip), indent=indent)


def chip_from_json(text: str) -> Chip:
    """Parse a chip from a JSON string."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ArchitectureError(f"malformed chip JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise ArchitectureError("chip JSON must be an object")
    return chip_from_dict(data)
