"""Fluent construction of :class:`~repro.arch.chip.Chip` instances."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.arch.chip import Chip, NodeKind
from repro.arch.device import Device, DeviceKind
from repro.errors import ArchitectureError
from repro.units import PhysicalParameters, DEFAULT_PARAMETERS


class ChipBuilder:
    """Incrementally assemble a chip flow network.

    Example
    -------
    >>> b = ChipBuilder("demo")
    >>> _ = b.add_flow_port("in1").add_waste_port("out1")
    >>> _ = b.add_device("mixer", DeviceKind.MIXER)
    >>> _ = b.add_junctions("s1", "s2")
    >>> _ = b.connect("in1", "s1", "mixer", "s2", "out1")
    >>> chip = b.build()
    >>> chip.path_length_mm(["in1", "s1", "mixer"])
    6.0
    """

    def __init__(self, name: str, parameters: PhysicalParameters = DEFAULT_PARAMETERS):
        self.name = name
        self.parameters = parameters
        self._graph = nx.Graph()
        self._devices: Dict[str, Device] = {}
        self._flow_ports: List[str] = []
        self._waste_ports: List[str] = []

    # -- nodes ---------------------------------------------------------------

    def _add_node(self, node: str, kind: NodeKind, pos: Optional[Tuple[float, float]]) -> None:
        if node in self._graph:
            raise ArchitectureError(f"duplicate node {node!r}")
        attrs = {"kind": kind}
        if pos is not None:
            attrs["pos"] = pos
        self._graph.add_node(node, **attrs)

    def add_junction(self, node: str, pos: Optional[Tuple[float, float]] = None) -> "ChipBuilder":
        """Add a plain channel junction node (a ``s_i`` switch)."""
        self._add_node(node, NodeKind.CHANNEL, pos)
        return self

    def add_junctions(self, *nodes: str) -> "ChipBuilder":
        """Add several junction nodes at once."""
        for node in nodes:
            self.add_junction(node)
        return self

    def add_device(
        self,
        name: str,
        kind: DeviceKind,
        capacity: int = 1,
        pos: Optional[Tuple[float, float]] = None,
    ) -> "ChipBuilder":
        """Add a device node."""
        self._add_node(name, NodeKind.DEVICE, pos)
        self._devices[name] = Device(name, kind, capacity)
        return self

    def add_flow_port(self, name: str, pos: Optional[Tuple[float, float]] = None) -> "ChipBuilder":
        """Add a fluid inlet (member of the paper's ``F_p``)."""
        self._add_node(name, NodeKind.FLOW_PORT, pos)
        self._flow_ports.append(name)
        return self

    def add_waste_port(self, name: str, pos: Optional[Tuple[float, float]] = None) -> "ChipBuilder":
        """Add a waste outlet (member of the paper's ``W_p``)."""
        self._add_node(name, NodeKind.WASTE_PORT, pos)
        self._waste_ports.append(name)
        return self

    # -- edges -------------------------------------------------------------

    def add_channel(self, a: str, b: str, length_mm: Optional[float] = None) -> "ChipBuilder":
        """Add a channel segment between two existing nodes."""
        for node in (a, b):
            if node not in self._graph:
                raise ArchitectureError(f"unknown node {node!r}; add it before connecting")
        if a == b:
            raise ArchitectureError(f"self-loop channel on {a!r}")
        self._graph.add_edge(a, b, length_mm=length_mm or self.parameters.cell_pitch_mm)
        return self

    def connect(self, *nodes: str) -> "ChipBuilder":
        """Chain channel segments along a node sequence."""
        if len(nodes) < 2:
            raise ArchitectureError("connect needs at least two nodes")
        for a, b in zip(nodes, nodes[1:]):
            self.add_channel(a, b)
        return self

    # -- assembly --------------------------------------------------------------

    def build(self) -> Chip:
        """Validate and return the finished :class:`Chip`."""
        return Chip(
            self.name,
            self._graph,
            self._devices,
            self._flow_ports,
            self._waste_ports,
            self.parameters,
        )
