"""A relaxed monolithic model: lower bounds on the PDW objective.

The default :class:`~repro.core.schedule_ilp.WashScheduleIlp` keeps the
relative order of node-sharing baseline tasks fixed, because the
wash-necessity analysis (which tasks contaminate, which are blocked) was
computed against that order.  Removing the order constraints yields the
paper's unrestricted formulation (free ordering binaries per conflicting
pair, Eqs. 3 and 8) — but a schedule extracted from it may violate the
precomputed necessity assumptions, so this module exposes the relaxation
only as a *bound*:

:func:`objective_lower_bound` solves the free-ordering model and returns
its objective, which is provably <= the decomposed model's objective.  The
gap between the two quantifies what the fixed-order decomposition gives up
(it is small on the shipped benchmarks — see ``bench_ablation``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.arch.chip import Chip, FlowPath
from repro.core.config import PDWConfig
from repro.core.schedule_ilp import WashScheduleIlp
from repro.core.targets import WashCluster
from repro.ilp import LinExpr
from repro.schedule.schedule import Schedule
from repro.schedule.tasks import TaskKind


class MonolithicWashIlp(WashScheduleIlp):
    """Eqs. (1)-(26) with free re-ordering of conflicting tasks.

    Only used for bounding: extracted schedules are NOT guaranteed to be
    contamination-safe (see module docstring).
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        # Presolve reasons over the *fixed* baseline order and the
        # baseline-start lower bounds; both are relaxed here, so every
        # deduction it makes would be unsound for this model.
        self.presolve_enabled = False

    def build(self) -> None:
        super().build()
        # Free ordering also removes the baseline-start lower bounds the
        # decomposed model imposes.
        for task in self.tasks:
            self._t[task.id].lb = 0.0

    def _add_baseline_order(self, emitted: set) -> None:  # overrides the fixed-order pass
        m = self.model
        ordered = sorted(self.tasks, key=lambda t: (t.start, t.end, t.id))
        structural = self._structural_pairs()
        for i, a in enumerate(ordered):
            nodes_a = set(a.occupied_nodes)
            for b in ordered[i + 1:]:
                if a.kind is TaskKind.OPERATION and b.kind is TaskKind.OPERATION:
                    if a.device != b.device:
                        continue
                elif not (nodes_a & set(b.occupied_nodes)):
                    continue
                if (a.id, b.id) in structural or (b.id, a.id) in structural:
                    continue  # precedence already decides the order
                m.add_disjunction(
                    (self._end_expr(a), LinExpr.from_any(self._t[b.id])),
                    (self._end_expr(b), LinExpr.from_any(self._t[a.id])),
                    name=f"free[{a.id},{b.id}]",
                )

    def _structural_pairs(self) -> set:
        """(earlier, later) pairs already ordered by Eqs. 2/4/5 precedences."""
        pairs = set()
        op_task = {
            t.op_id: t for t in self.tasks if t.kind is TaskKind.OPERATION
        }
        by_edge: Dict = {}
        for task in self.tasks:
            if task.edge is not None:
                by_edge.setdefault(task.edge, {})[task.kind] = task
        for (src, dst), group in by_edge.items():
            transport = group.get(TaskKind.TRANSPORT)
            removal = group.get(TaskKind.REMOVAL)
            waste = group.get(TaskKind.WASTE)
            producer = op_task.get(src)
            consumer = op_task.get(dst)
            chain = [t for t in (producer, transport, removal, consumer) if t]
            for a, b in zip(chain, chain[1:]):
                pairs.add((a.id, b.id))
            if waste is not None and producer is not None:
                pairs.add((producer.id, waste.id))
        return pairs


@dataclass(frozen=True)
class BoundComparison:
    """Decomposed objective vs the free-ordering lower bound."""

    decomposed_objective: float
    relaxed_bound: float

    @property
    def gap(self) -> float:
        """Absolute objective gap conceded by the decomposition."""
        return self.decomposed_objective - self.relaxed_bound

    @property
    def gap_percent(self) -> float:
        """Relative gap in percent of the decomposed objective."""
        if self.decomposed_objective == 0:
            return 0.0
        return 100.0 * self.gap / self.decomposed_objective


def objective_lower_bound(
    chip: Chip,
    baseline: Schedule,
    clusters: Sequence[WashCluster],
    candidates: Dict[str, List[FlowPath]],
    config: Optional[PDWConfig] = None,
) -> BoundComparison:
    """Solve both models and report the decomposition gap."""
    config = config if config is not None else PDWConfig()
    decomposed = WashScheduleIlp(chip, baseline, list(clusters), candidates, config)
    relaxed = MonolithicWashIlp(chip, baseline, list(clusters), candidates, config)
    return BoundComparison(
        decomposed_objective=decomposed.solve().objective,
        relaxed_bound=relaxed.solve().objective,
    )
