"""The PDW flow of Section III as explicit pipeline stages.

Each stage consumes the :class:`PDWContext`, produces one immutable,
picklable artifact, and declares a cache key covering exactly the inputs
the artifact depends on (synthesis digest + the relevant
:class:`PDWConfig` fields + the stage's code version).  The stages, in
order:

========== ============================================= =================
stage      artifact                                      depends on
========== ============================================= =================
replay     :class:`ContaminationTracker`                 synthesis
necessity  :class:`NecessityReport`                      + necessity policy
clusters   ``List[WashCluster]``                         + merge knobs
pathgen    ``Dict[cluster id, List[FlowPath]]``          + candidate knobs
ilp        :class:`IlpWashOutcome`                       + full config
assemble   :class:`WashPlan`                             (never cached)
========== ============================================= =================

The ``replay`` stage is shared verbatim with the DAWO baseline
(:mod:`repro.baselines.dawo`): both methods key it on the synthesis digest
alone, so whichever runs first populates the artifact the other reuses.
"""

from __future__ import annotations

import dataclasses
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.arch.pathkernel import kernel_for
from repro.contam import ContaminationTracker, wash_requirements
from repro.contam.necessity import NecessityReport
from repro.core.config import PDWConfig
from repro.core.fallback import greedy_outcome
from repro.core.path_ilp import exact_wash_path
from repro.core.pathgen import (
    candidate_paths,
    integration_candidates,
    resolve_pathgen_workers,
)
from repro.obs import metrics
from repro.core.plan import WashOperation, WashPlan
from repro.core.schedule_ilp import IlpWashOutcome, WashScheduleIlp
from repro.degrade.model import Degradation, derive, info_from, parse_spec
from repro.ilp.solution import SolveStatus
from repro.core.targets import WashCluster, cluster_requirements
from repro.errors import LadderExhausted, WashError
from repro.ilp import SolverPortfolio, faults
from repro.ilp import incremental
from repro.pipeline import ArtifactCache, StageBase, digest_synthesis
from repro.schedule.schedule import Schedule
from repro.schedule.tasks import ScheduledTask, TaskKind
from repro.synth.synthesis import SynthesisResult


@dataclass
class PDWContext:
    """Mutable carrier threading artifacts between PDW stages."""

    synthesis: SynthesisResult
    config: PDWConfig
    #: The run's artifact cache (also holds warm-start incumbents); stays
    #: ``None`` when the caller opted out of caching entirely.
    cache: Optional["ArtifactCache"] = None
    tracker: Optional[ContaminationTracker] = None
    necessity: Optional[NecessityReport] = None
    clusters: List[WashCluster] = field(default_factory=list)
    candidates: Dict[str, List] = field(default_factory=dict)
    outcome: Optional[IlpWashOutcome] = None
    plan: Optional[WashPlan] = None
    #: Resolved chip degradation (derived lazily from ``config.degrade``).
    degradation: Optional[Degradation] = None
    _synthesis_digest: Optional[str] = None

    @property
    def synthesis_digest(self) -> str:
        """Stable digest of the synthesis inputs (computed once)."""
        if self._synthesis_digest is None:
            self._synthesis_digest = digest_synthesis(self.synthesis)
        return self._synthesis_digest

    @property
    def dead_nodes(self) -> FrozenSet[str]:
        """The degraded chip's dead-node set (empty on a healthy chip).

        Derives the :class:`~repro.degrade.model.Degradation` on first
        access when ``config.degrade`` is set; the same resolved set then
        threads through clustering, candidate generation and assembly.
        """
        if not self.config.degrade:
            return frozenset()
        if self.degradation is None:
            self.degradation = derive(
                self.synthesis.chip,
                self.synthesis.schedule,
                parse_spec(self.config.degrade),
            )
        return self.degradation.dead


# ---------------------------------------------------------------------------
# stage implementations
# ---------------------------------------------------------------------------

class ReplayStage(StageBase):
    """Replay the wash-free baseline and index contamination events."""

    name = "replay"
    version = "1"
    requires = ("synthesis",)
    provides = "tracker"
    shared = True

    def key(self, ctx: PDWContext):
        # Keyed on the synthesis alone so PDW and DAWO share the artifact.
        return ctx.synthesis_digest

    def compute(self, ctx: PDWContext) -> ContaminationTracker:
        return ContaminationTracker(ctx.synthesis.chip, ctx.synthesis.schedule)

    def counters(self, tracker: ContaminationTracker) -> Dict[str, float]:
        return {
            "events": float(len(tracker.events())),
            "contaminated_nodes": float(len(tracker.contaminated_nodes())),
        }


class NecessityStage(StageBase):
    """Type 1/2/3 wash-necessity analysis (Eqs. 9-11)."""

    name = "necessity"
    version = "1"
    requires = ("tracker",)
    provides = "necessity"

    def key(self, ctx: PDWContext):
        return (ctx.synthesis_digest, ctx.config.necessity.value)

    def compute(self, ctx: PDWContext) -> NecessityReport:
        return wash_requirements(
            ctx.tracker, ctx.synthesis.assay, ctx.config.necessity
        )

    def counters(self, report: NecessityReport) -> Dict[str, float]:
        return {
            "events": float(report.total_events),
            "required": float(len(report.required)),
            "type1_exempt": float(report.type1_exempt),
            "type2_exempt": float(report.type2_exempt),
            "type3_exempt": float(report.type3_exempt),
            "consumed": float(report.consumed),
        }


class ClusterStage(StageBase):
    """Group the required washes into wash clusters (Section II-C).

    On a degraded chip, requirements sitting *on* a dead node are
    unwashable by definition — they are dropped here and resurface as
    reported uncovered targets on the assembled plan, never as a crash.
    The surviving clusters are merged with the dead set as a routing
    avoid-set so merge feasibility reflects the degraded chip.
    """

    name = "clusters"
    version = "2"
    requires = ("necessity",)
    provides = "clusters"

    def key(self, ctx: PDWContext):
        cfg = ctx.config
        return (
            ctx.synthesis_digest,
            cfg.necessity.value,
            cfg.merge_clusters,
            cfg.max_wash_path_mm,
            cfg.degrade,
        )

    def compute(self, ctx: PDWContext) -> List[WashCluster]:
        dead = ctx.dead_nodes
        required = ctx.necessity.required
        if dead:
            required = [r for r in required if r.node not in dead]
        return cluster_requirements(
            ctx.synthesis.chip,
            required,
            merge=ctx.config.merge_clusters,
            max_path_mm=ctx.config.max_wash_path_mm,
            avoid=dead or None,
        )

    def counters(self, clusters: List[WashCluster]) -> Dict[str, float]:
        return {
            "clusters": float(len(clusters)),
            "targets": float(sum(len(c.targets) for c in clusters)),
        }


@dataclass(frozen=True)
class PathgenResult:
    """Candidate pools per cluster plus the routing skips behind them.

    The skip counters (``avoid_relaxed``, ``unroutable_pairs``,
    ``exact_fallbacks``) are part of the cached artifact so the silent
    routing failures inside path generation stay visible in the run
    report even on cache hits.  ``routing_cache_hits`` / ``_misses`` are
    the kernel path-cache deltas accumulated while the pools were built;
    ``workers`` is the thread-pool width that built them (not part of the
    cache key — every width produces identical pools).
    """

    candidates: Dict[str, List]
    skips: Dict[str, int] = field(default_factory=dict)
    routing_cache_hits: int = 0
    routing_cache_misses: int = 0
    workers: int = 1


class PathGenStage(StageBase):
    """Candidate wash paths per cluster (Section II-C, optionally exact).

    Clusters are independent, so their candidate pools are generated on a
    thread pool (``PDWConfig.pathgen_workers`` / ``REPRO_PATHGEN_WORKERS``;
    serial by default).  Each cluster gets a private stats dict and the
    merge walks clusters in their original order, so the artifact is
    byte-identical for every worker count — which is also why ``workers``
    stays out of the cache key.
    """

    name = "pathgen"
    version = "4"
    requires = ("clusters",)
    provides = "candidates"

    def key(self, ctx: PDWContext):
        cfg = ctx.config
        return (
            ctx.synthesis_digest,
            cfg.necessity.value,
            cfg.merge_clusters,
            cfg.max_wash_path_mm,
            cfg.max_candidates,
            cfg.path_mode,
            cfg.enable_integration,
            cfg.integration_window_s,
            cfg.degrade,
        )

    def compute(self, ctx: PDWContext) -> PathgenResult:
        chip = ctx.synthesis.chip
        config = ctx.config
        dead = ctx.dead_nodes
        removals = ctx.synthesis.schedule.tasks(TaskKind.REMOVAL)
        window = config.integration_window_s
        workers = resolve_pathgen_workers(config)
        kernel = kernel_for(chip)
        hits_before, misses_before = kernel.cache_hits, kernel.cache_misses

        def base_pool(cluster, stats: Dict[str, int]) -> List:
            """The cluster's covering paths, degradation-aware.

            Degraded runs still try the *healthy* pool first: most
            clusters route nowhere near the dead nodes, so their pools —
            and the shared path-kernel cache entries behind them — are
            reused verbatim, and only the affected clusters pay for an
            avoid-set regeneration.  A cluster no degraded route can
            cover keeps an **empty** pool (counted as
            ``uncovered_clusters``) rather than failing the stage; the
            ILP stage drops it and the plan reports the coverage gap.
            """
            try:
                pool = candidate_paths(
                    chip, sorted(cluster.targets), config.max_candidates, stats=stats
                )
            except WashError:
                if not dead:
                    raise  # healthy chips keep the loud failure mode
                pool = []
            if not dead:
                return pool
            if pool and not any(dead & set(p) for p in pool):
                return pool
            try:
                return candidate_paths(
                    chip,
                    sorted(cluster.targets),
                    config.max_candidates,
                    stats=stats,
                    avoid=dead,
                )
            except WashError:
                stats["uncovered_clusters"] = stats.get("uncovered_clusters", 0) + 1
                return []

        def one_cluster(cluster) -> Tuple[List, Dict[str, int]]:
            stats: Dict[str, int] = {}
            pool = base_pool(cluster, stats)
            seen: Set[Tuple[str, ...]] = {tuple(p) for p in pool}
            if not pool:
                return pool, stats
            if config.enable_integration:
                nearby = [
                    rm.path
                    for rm in removals
                    if rm.start <= cluster.deadline + window
                    and rm.end >= cluster.release - window
                ]
                for cand in integration_candidates(
                    chip,
                    sorted(cluster.targets),
                    nearby,
                    stats=stats,
                    avoid=dead or None,
                ):
                    if tuple(cand) not in seen:
                        pool.append(cand)
                        seen.add(tuple(cand))
            if config.path_mode == "exact":
                try:
                    exact = exact_wash_path(chip, sorted(cluster.targets))
                    if dead & set(exact):
                        # The cell ILP knows nothing of dead nodes; a
                        # crossing exact path is unusable on this chip.
                        stats["exact_fallbacks"] = stats.get("exact_fallbacks", 0) + 1
                    elif tuple(exact) not in seen:
                        pool.insert(0, exact)
                        seen.add(tuple(exact))
                except WashError:
                    # Fall back to the greedy pool — but count the skip so
                    # the degraded path quality is visible in the report.
                    stats["exact_fallbacks"] = stats.get("exact_fallbacks", 0) + 1
            return pool, stats

        if workers > 1 and len(ctx.clusters) > 1:
            with ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="pathgen"
            ) as executor:
                # executor.map preserves input order, so the merge below is
                # deterministic regardless of completion order.
                results = list(executor.map(one_cluster, ctx.clusters))
        else:
            results = [one_cluster(cluster) for cluster in ctx.clusters]

        candidates: Dict[str, List] = {}
        skips: Dict[str, int] = {}
        for cluster, (pool, stats) in zip(ctx.clusters, results):
            candidates[cluster.id] = pool
            for key, value in stats.items():
                skips[key] = skips.get(key, 0) + value

        hits = kernel.cache_hits - hits_before
        misses = kernel.cache_misses - misses_before
        reg = metrics.registry()
        reg.counter("pdw_routing_cache_hits_total", chip=chip.name).inc(hits)
        reg.counter("pdw_routing_cache_misses_total", chip=chip.name).inc(misses)
        reg.gauge("pdw_pathgen_workers").set(float(workers))
        return PathgenResult(
            candidates=candidates,
            skips=skips,
            routing_cache_hits=hits,
            routing_cache_misses=misses,
            workers=workers,
        )

    def counters(self, result: PathgenResult) -> Dict[str, float]:
        pools = list(result.candidates.values())
        stats = {
            "pools": float(len(pools)),
            "candidates": float(sum(len(p) for p in pools)),
            "routing_cache_hits": float(result.routing_cache_hits),
            "routing_cache_misses": float(result.routing_cache_misses),
            "workers": float(result.workers),
        }
        stats.update({k: float(v) for k, v in sorted(result.skips.items())})
        return stats

    def apply(self, ctx: PDWContext, result: PathgenResult) -> None:
        ctx.candidates = result.candidates


#: Built-model memo for the incremental re-solve fast path.  Keyed by the
#: weight-independent structure digest, so jobs differing only in
#: alpha/beta/gamma (the Pareto sweep) reuse the assembled constraint
#: system via :meth:`WashScheduleIlp.reweight` instead of rebuilding.
#: Checkout/checkin semantics keep entries single-owner under the suite
#: DAG's worker threads (see :class:`repro.ilp.incremental.ModelMemo`).
_MODEL_MEMO = incremental.ModelMemo(capacity=4)


class ScheduleIlpStage(StageBase):
    """Build and solve the scheduling ILP (Eqs. 1-8, 16-26).

    When ``config.presolve == "on"`` (the default) the model is built
    through the reduction layer of :mod:`repro.ilp.presolve` — tightened
    bounds, fixed ordering binaries, per-row big-M values — and the solve
    first consults :mod:`repro.ilp.decompose`, which splits independent
    variable components into concurrent child solves when the
    interaction graph separates.  Both layers provably preserve the
    optimal objective, so canonical plans are byte-identical either way.

    Solving goes through the :class:`~repro.ilp.SolverPortfolio`
    degradation ladder (or the concurrent rung race under
    ``solver_mode="race"``); when every backend rung fails
    (:class:`LadderExhausted`) the stage falls back to greedy sweep-line
    assembly so a fault-injected or solver-less run still produces a
    valid, degraded plan.

    Incremental re-solve: structurally identical jobs (same synthesis and
    candidate knobs, any objective weights) share the built model via an
    in-process memo and warm-start from the previous winner's assignment,
    which — once vetted against the constraints — primes the
    branch-and-bound rung.  HiGHS accepts no starting point, so healthy
    primary-rung outputs are unaffected.
    """

    name = "ilp"
    version = "6"
    requires = ("clusters", "candidates")
    provides = "outcome"

    def key(self, ctx: PDWContext):
        # The outcome depends on every config field (weights, limits, ...)
        # plus the solver-altering environment (fault injection / forced
        # rung / race mode) — none of which may poison the clean-run cache.
        return (ctx.synthesis_digest, ctx.config, faults.environment_token())

    def compute(self, ctx: PDWContext) -> IlpWashOutcome:
        # Clusters whose degraded candidate pool came up empty cannot be
        # modeled (the ILP demands a candidate per cluster); they are
        # dropped here and resurface as the plan's uncovered targets.
        covered = [c for c in ctx.clusters if ctx.candidates.get(c.id)]
        if not covered:
            return self._empty_outcome(ctx)
        solve_ctx = ctx
        if len(covered) != len(ctx.clusters):
            solve_ctx = dataclasses.replace(ctx, clusters=covered)

        structure = incremental.structure_digest(ctx.synthesis_digest, ctx.config)
        ilp = _MODEL_MEMO.checkout(structure)
        reused = ilp is not None
        if reused:
            incremental.observe("model_reused")
            ilp.reweight(ctx.config)
        else:
            ilp = WashScheduleIlp(
                ctx.synthesis.chip,
                ctx.synthesis.schedule,
                solve_ctx.clusters,
                ctx.candidates,
                ctx.config,
            )
        try:
            ilp.ensure_built()
            cache = ctx.cache
            payload = incremental.load_incumbent(cache, structure)
            if payload is None and ctx.config.degrade:
                # Degraded re-solves (the online repair loop above all)
                # warm-start from the *healthy* twin's winning assignment
                # when no degraded incumbent exists yet: most variables
                # survive the delta, and ``adopt_incumbent`` vets the
                # assignment against the degraded constraints, so a
                # stale/incompatible incumbent degrades to a cold solve.
                healthy = incremental.structure_digest(
                    ctx.synthesis_digest,
                    dataclasses.replace(ctx.config, degrade=""),
                )
                payload = incremental.load_incumbent(cache, healthy)
            if payload is None:
                incremental.observe("miss")
                incumbent = None
            else:
                incumbent = incremental.adopt_incumbent(ilp.model, payload["values"])
            portfolio = SolverPortfolio.from_config(ctx.config, incumbent=incumbent)
            try:
                outcome = ilp.solve(portfolio)
            except LadderExhausted as exc:
                return greedy_outcome(solve_ctx, exc.attempts)
            outcome.model_reused = reused
            if ilp.last_solution is not None:
                incremental.store_incumbent(cache, structure, ilp.last_solution, ctx.config)
            return outcome
        finally:
            _MODEL_MEMO.checkin(structure, ilp)

    @staticmethod
    def _empty_outcome(ctx: PDWContext) -> IlpWashOutcome:
        """Outcome for a degraded run where no cluster is coverable.

        The baseline schedule is kept verbatim (it never touches dead
        nodes by construction); every required target becomes a reported
        coverage gap at assembly.
        """
        return IlpWashOutcome(
            status=SolveStatus.FEASIBLE,
            objective=0.0,
            solve_time_s=0.0,
            starts={t.id: t.start for t in ctx.synthesis.schedule.tasks()},
            wash_starts={},
            wash_paths={},
            wash_durations={},
            rung="degraded-skip",
            model_stats="no coverable clusters on the degraded chip",
        )

    def counters(self, outcome: IlpWashOutcome) -> Dict[str, float]:
        stats = {
            "solve_time_s": round(outcome.solve_time_s, 6),
            "build_time_s": round(outcome.build_time_s, 6),
            "objective": round(outcome.objective, 6),
            "variables": float(outcome.n_variables),
            "binaries": float(outcome.n_binaries),
            "constraints": float(outcome.n_constraints),
            "absorbed": float(len(outcome.absorbed)),
            "rungs_tried": float(len(outcome.attempts)),
        }
        # Only reported when they fired, so default ladder runs keep the
        # exact pre-race counter set (plan JSON embeds these).
        if outcome.warm_started:
            stats["warm_started"] = 1.0
        if outcome.model_reused:
            stats["model_reused"] = 1.0
        if outcome.mip_gap is not None:
            stats["mip_gap"] = outcome.mip_gap
        if outcome.solver_mode == "race":
            stats["race_wall_s"] = round(outcome.race_wall_s, 6)
        if outcome.presolve_time_s > 0 or outcome.presolve_dropped_constraints:
            stats["presolve_time_s"] = round(outcome.presolve_time_s, 6)
            stats["presolve_fixed_binaries"] = float(outcome.presolve_fixed_binaries)
            stats["presolve_dropped_constraints"] = float(
                outcome.presolve_dropped_constraints
            )
            stats["presolve_dropped_candidates"] = float(
                outcome.presolve_dropped_candidates
            )
        if outcome.components:
            stats["components"] = float(outcome.components)
        if outcome.solver_mode == "decompose":
            stats["decompose_wall_s"] = round(outcome.decompose_wall_s, 6)
        return stats

    def detail(self, outcome: IlpWashOutcome) -> str:
        mode = f" [{outcome.solver_mode}]" if outcome.solver_mode != "ladder" else ""
        return (
            f"{outcome.status.value} via {outcome.rung}{mode}; {outcome.model_stats}"
        )


class AssembleStage(StageBase):
    """Materialize the wash-aware schedule and plan from the ILP outcome.

    Cheap and final — never cached (``key`` stays ``None``), so the
    returned plan is always freshly built and safe to mutate.
    """

    name = "assemble"
    version = "2"
    requires = ("outcome", "clusters", "necessity")
    provides = "plan"

    def compute(self, ctx: PDWContext) -> WashPlan:
        outcome = ctx.outcome
        baseline = ctx.synthesis.schedule
        schedule = Schedule()
        absorbed_by: Dict[str, List[str]] = {}
        for rm_id, cluster_id in outcome.absorbed.items():
            absorbed_by.setdefault(cluster_id, []).append(rm_id)
        for task in baseline.tasks():
            if task.id in outcome.absorbed:
                continue
            schedule.add(task.at(outcome.starts[task.id]))

        washes: List[WashOperation] = []
        # Clusters absent from the outcome were dropped as uncoverable on
        # a degraded chip; they become reported coverage gaps below.
        for cluster in ctx.clusters:
            if cluster.id not in outcome.wash_paths:
                continue
            path = outcome.wash_paths[cluster.id]
            start = outcome.wash_starts[cluster.id]
            duration = outcome.wash_durations[cluster.id]
            schedule.add(
                ScheduledTask(
                    id=f"wash:{cluster.id}",
                    kind=TaskKind.WASH,
                    start=start,
                    duration=duration,
                    path=path,
                )
            )
            washes.append(
                WashOperation(
                    id=cluster.id,
                    targets=cluster.targets,
                    path=path,
                    start=start,
                    duration=duration,
                    absorbed_removals=tuple(sorted(absorbed_by.get(cluster.id, []))),
                )
            )

        report = ctx.necessity
        notes = {
            "ilp_objective": outcome.objective,
            "necessity_events": float(report.total_events),
            "type1_exempt": float(report.type1_exempt),
            "type2_exempt": float(report.type2_exempt),
            "type3_exempt": float(report.type3_exempt),
            "requirements": float(len(report.required)),
        }

        degradation_info = None
        if ctx.config.degrade:
            ctx.dead_nodes  # force the lazy derive (may sample nothing)
            required = {r.node for r in report.required}
            washed = {t for w in washes for t in w.targets}
            uncovered = required - washed
            degradation_info = info_from(ctx.degradation, uncovered, len(required))
            notes["uncovered_targets"] = float(len(uncovered))
            notes["coverage"] = round(degradation_info.coverage, 4)

        return WashPlan(
            method="PDW",
            chip=ctx.synthesis.chip,
            schedule=schedule,
            washes=washes,
            baseline_schedule=baseline,
            solver_status=outcome.status.value,
            solver_rung=outcome.rung,
            solve_time_s=outcome.solve_time_s,
            notes=notes,
            degradation=degradation_info,
        )

    def counters(self, plan: WashPlan) -> Dict[str, float]:
        return {
            "washes": float(plan.n_wash),
            "integrated_removals": float(plan.integrated_removals),
        }


#: Shared singletons — the stages are stateless.
REPLAY_STAGE = ReplayStage()
NECESSITY_STAGE = NecessityStage()
CLUSTER_STAGE = ClusterStage()
PATHGEN_STAGE = PathGenStage()
SCHEDULE_ILP_STAGE = ScheduleIlpStage()
ASSEMBLE_STAGE = AssembleStage()

#: The PDW method as an ordered stage chain.  The order is a valid
#: topological sort of the stages' ``requires``/``provides`` declarations;
#: the suite DAG (:mod:`repro.sched`) derives its edges from those
#: declarations rather than from this tuple's adjacency.
PDW_PIPELINE = (
    REPLAY_STAGE,
    NECESSITY_STAGE,
    CLUSTER_STAGE,
    PATHGEN_STAGE,
    SCHEDULE_ILP_STAGE,
    ASSEMBLE_STAGE,
)
