"""Candidate wash-path generation.

For each wash cluster, PDW considers every (flow port, waste port) pair and
routes a covering path through the cluster targets — like the paper's
example in Section II-C, where ``in4`` with the three candidate end points
``out1``/``out2``/``out4`` yields three alternative wash paths.  Paths
detour around devices that are not themselves wash targets (a buffer flow
through a loaded mixer would destroy its contents).

The scheduling ILP then selects one candidate per wash operation; with
``path_mode="exact"`` the cell-based ILP of Eqs. (12)-(15) refines the pool.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.arch.chip import Chip, FlowPath
from repro.arch.routing import RoutedPath, Router, is_simple
from repro.envutil import env_int
from repro.errors import RoutingError, WashError

#: Environment override for the pathgen worker count (see
#: :func:`resolve_pathgen_workers`).
WORKERS_ENV = "REPRO_PATHGEN_WORKERS"


def resolve_pathgen_workers(config) -> int:
    """Worker count for per-cluster candidate generation.

    Precedence: a positive ``config.pathgen_workers`` wins, then a positive
    :data:`WORKERS_ENV` environment value, then serial (1).  A malformed
    environment value is warned about and ignored rather than failing the
    run (see :func:`repro.envutil.env_int`).
    """
    configured = int(getattr(config, "pathgen_workers", 0) or 0)
    if configured > 0:
        return configured
    return env_int(WORKERS_ENV, default=1, minimum=1)


def _bump(stats: Optional[Dict[str, int]], key: str) -> None:
    """Increment a routing-outcome counter when a stats dict is supplied."""
    if stats is not None:
        stats[key] = stats.get(key, 0) + 1


def candidate_paths(
    chip: Chip,
    targets: Sequence[str],
    max_candidates: int = 6,
    stats: Optional[Dict[str, int]] = None,
    avoid: Optional[Sequence[str]] = None,
) -> List[FlowPath]:
    """Candidate wash paths covering ``targets``, shortest first.

    Every returned path starts at a flow port and ends at a waste port
    (Eq. 12) and visits every target (Eq. 15).  Raises
    :class:`~repro.errors.WashError` when no port pair can reach the
    targets at all.  ``stats`` (when given) accumulates routing-outcome
    counters — ``avoid_relaxed`` (detour constraint dropped) and
    ``unroutable_pairs`` (port pair skipped entirely) — so silently
    discarded routes stay visible in the pipeline report.

    ``avoid`` is a *hard* ban (degraded-chip dead nodes): it is installed
    as the router's base avoid set, so unlike the foreign-device detour
    constraint it is never relaxed when routing gets tight.
    """
    if not targets:
        raise WashError("a wash path needs at least one target")
    router = Router(chip, base_avoid=avoid)
    foreign_devices: Set[str] = set(chip.devices) - set(targets)

    scored: List[Tuple[float, FlowPath]] = []
    for fp in chip.flow_ports:
        for wp in chip.waste_ports:
            routed = _route(router, fp, targets, wp, foreign_devices, stats)
            if routed is not None:
                path, length_mm = routed
                scored.append((length_mm, path))

    # Simple paths strictly first; walks that double back are last resorts.
    scored.sort(key=lambda item: (not is_simple(item[1]), item[0], item[1]))
    unique: List[FlowPath] = []
    seen: Set[FlowPath] = set()
    for _, path in scored:
        if path not in seen:
            unique.append(path)
            seen.add(path)
        if len(unique) >= max_candidates:
            break
    if unique and not is_simple(unique[0]):
        # keep only the shortest walk if nothing simple exists
        unique = unique[:1]
    elif unique:
        unique = [p for p in unique if is_simple(p)]
    if not unique:
        raise WashError(f"no port-to-port wash path covers {sorted(targets)}")
    return unique


def _route(
    router: Router,
    fp: str,
    targets: Sequence[str],
    wp: str,
    foreign_devices: Set[str],
    stats: Optional[Dict[str, int]] = None,
) -> RoutedPath | None:
    """One covering route (with its length) for a port pair, or ``None``.

    Routing failures are expected here (many port pairs simply cannot
    reach the targets) but they must not vanish silently: each dropped
    detour constraint and each unroutable pair is counted into ``stats``.
    The kernel already accumulated each path's physical length, so the
    caller never re-walks the path to price it.
    """
    try:
        return router.path_through_mm(fp, sorted(targets), wp, avoid=foreign_devices)
    except RoutingError:
        _bump(stats, "avoid_relaxed")
    try:
        return router.path_through_mm(fp, sorted(targets), wp)
    except RoutingError:
        _bump(stats, "unroutable_pairs")
        return None


def integration_candidates(
    chip: Chip,
    targets: Sequence[str],
    removal_paths: Sequence[FlowPath],
    max_extra: int = 3,
    stats: Optional[Dict[str, int]] = None,
    avoid: Optional[Sequence[str]] = None,
) -> List[FlowPath]:
    """Candidates that additionally cover an excess-removal path.

    Section II-B integrates washes with excess-fluid removals: a wash whose
    path covers a removal's nodes (and runs in its window) replaces it
    (ψ = 1, Eq. 21).  For each removal path, this routes a wash through
    ``targets`` *plus* the removal's interior nodes, using the removal's own
    port pair — giving the scheduling ILP candidates for which the
    containment test actually holds.
    """
    router = Router(chip, base_avoid=avoid)
    foreign_devices: Set[str] = set(chip.devices) - set(targets)
    dead = set(avoid or ())
    out: List[FlowPath] = []
    for rm_path in removal_paths:
        if dead & set(rm_path):
            # The removal itself crosses a dead node: it can no longer
            # run, so integrating a wash with it is meaningless.
            continue
        interior = [n for n in rm_path if not chip.is_port(n)]
        union = sorted(set(targets) | set(interior))
        routed = _route(router, rm_path[0], union, rm_path[-1], foreign_devices, stats)
        if routed is not None:
            cand = routed[0]
            if set(rm_path) <= set(cand) and is_simple(cand):
                out.append(cand)
        if len(out) >= max_extra:
            break
    return out
