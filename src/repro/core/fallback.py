"""Last-resort greedy plan assembly for the solver degradation ladder.

When every backend rung of the :class:`~repro.ilp.SolverPortfolio` fails
(:class:`~repro.errors.LadderExhausted`), the scheduling stage still owes
the caller a contamination-free plan.  This module assembles one without
any ILP: each cluster takes its first candidate wash path and the shared
:class:`~repro.baselines.dawo.SweepLineReplayer` places the washes at the
earliest conflict-free slots, delaying blocked tasks as needed — the same
machinery the DAWO baseline trusts, so correctness (no node overlap, wash
before every blocker) is inherited, only optimality is given up.

The result is re-packaged as an :class:`IlpWashOutcome` whose ``rung`` is
``"greedy"`` so the degraded solve is visible in the plan, the run report
and ``pdw report timings``.
"""

from __future__ import annotations

import time
from typing import Dict, Sequence, Tuple

from repro.core.schedule_ilp import IlpWashOutcome
from repro.errors import WashError
from repro.ilp import RungAttempt, SolveStatus
from repro.schedule.tasks import TaskKind


def greedy_outcome(ctx, prior_attempts: Sequence[RungAttempt] = ()) -> IlpWashOutcome:
    """Assemble a feasible wash schedule without solving any ILP.

    ``ctx`` is the :class:`~repro.core.stages.PDWContext` with clusters
    and candidate paths already computed.  ``prior_attempts`` carries the
    failed ladder rungs so the outcome's attempt history stays complete.
    """
    from repro.baselines.dawo import SweepLineReplayer  # deferred: avoids cycle

    started = time.perf_counter()
    paths = {}
    for cluster in ctx.clusters:
        pool = ctx.candidates.get(cluster.id)
        if not pool:
            raise WashError(f"cluster {cluster.id!r} has no candidate paths")
        paths[cluster.id] = pool[0]

    replayer = SweepLineReplayer(
        ctx.synthesis, ctx.clusters, eager=False, wash_paths=paths
    )
    plan = replayer.run(method="PDW")

    starts: Dict[str, int] = {
        t.id: t.start for t in plan.schedule.tasks() if t.kind is not TaskKind.WASH
    }
    wash_starts: Dict[str, int] = {}
    wash_paths: Dict[str, object] = {}
    wash_durations: Dict[str, int] = {}
    for wash in plan.washes:
        wash_starts[wash.id] = wash.start
        wash_paths[wash.id] = wash.path
        wash_durations[wash.id] = wash.duration

    cfg = ctx.config
    objective = (
        cfg.alpha * plan.n_wash
        + cfg.beta * plan.l_wash_mm
        + cfg.gamma * plan.t_assay
    )
    elapsed = time.perf_counter() - started
    attempts: Tuple[RungAttempt, ...] = tuple(prior_attempts) + (
        RungAttempt(
            rung="greedy",
            status=SolveStatus.FEASIBLE.value,
            wall_s=elapsed,
            objective=objective,
            message="sweep-line assembly (no ILP)",
        ),
    )
    return IlpWashOutcome(
        status=SolveStatus.FEASIBLE,
        objective=objective,
        solve_time_s=elapsed,
        starts=starts,
        wash_starts=wash_starts,
        wash_paths=wash_paths,
        wash_durations=wash_durations,
        absorbed={},
        model_stats="greedy fallback (no model)",
        mip_gap=None,
        rung="greedy",
        attempts=attempts,
    )
