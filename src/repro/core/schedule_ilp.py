"""The PDW scheduling ILP — Eqs. (1)-(26) over re-timed task variables.

Decision variables
------------------
* one integer start per baseline task (operations keep their durations,
  Eq. 1; precedences follow Eqs. 2, 4, 5),
* one integer start per wash operation plus one binary per candidate wash
  path (the selected candidate determines the wash duration via Eq. 17 and
  its contribution to :math:`L_{wash}`, Eq. 25),
* ordering binaries for wash/task and wash/wash node conflicts
  (Eqs. 19, 20),
* integration binaries :math:`\\psi` folding an excess-removal task into a
  wash whose path covers it (Eqs. 7, 21).

Relative order among *baseline* tasks that share chip nodes is kept as in
the baseline schedule (the paper's monolithic model also re-orders them;
fixing the order is the decomposition that keeps the model tractable — see
DESIGN.md).  Everything may shift in time, so wash windows (Eq. 16) are
enforced against task variables and the model is always feasible: a tight
window simply delays the blocking task.

Model reduction (PR 10)
-----------------------
Before assembly, :mod:`repro.ilp.presolve` propagates start-time windows
over the fixed precedence/order DAG and proves which ordering binaries,
big-M rows and candidate paths are dead; the builder consults that
:class:`~repro.ilp.presolve.PresolveInfo` row by row and skips what was
proven (DESIGN.md §16 argues each rule preserves the optimal plans).
After assembly, :mod:`repro.ilp.decompose` splits the model into
independent components when the variable-interaction graph (ignoring the
shared makespan variable) is disconnected and solves them concurrently.
Both layers are disabled by ``PDWConfig.presolve = "off"`` /
``REPRO_PRESOLVE=off``, which emits the unreduced constraint system.  The
objective tie-breaks apply in both modes (start-time drift, candidate
pool index, absorption preference), so at *proven optimality* alternate
optima collapse to one canonical plan and presolved and raw solves agree
byte-for-byte under ``canonical_plan_json`` (CI's ``presolve-identity``
job checks the full matrix at ``mip_gap=1e-9``).  At a loose MIP gap the
two formulations may legally stop at different within-tolerance
incumbents, so byte identity is only guaranteed where optimality is
proven.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.arch.chip import Chip, FlowPath
from repro.core.config import PDWConfig
from repro.core.targets import WashCluster
from repro.errors import InfeasibleError, SolverError, UnboundedError, WashError
from repro.ilp import (
    LinExpr,
    Model,
    RungAttempt,
    Solution,
    SolverPortfolio,
    SolveStatus,
    Variable,
)
from repro.ilp import decompose as ilp_decompose
from repro.ilp import faults as ilp_faults
from repro.ilp import presolve as ilp_presolve
from repro.ilp.presolve import PresolveInfo, baseline_order_pairs, precedence_pairs
from repro.obs.trace import span
from repro.schedule.schedule import Schedule
from repro.schedule.tasks import ScheduledTask, TaskKind


@dataclass
class IlpWashOutcome:
    """Raw solver outcome, consumed by the PDW orchestrator."""

    status: SolveStatus
    objective: float
    solve_time_s: float
    starts: Dict[str, int]
    wash_starts: Dict[str, int]
    wash_paths: Dict[str, FlowPath]
    wash_durations: Dict[str, int]
    absorbed: Dict[str, str] = field(default_factory=dict)  # removal id -> cluster id
    model_stats: str = ""
    mip_gap: Optional[float] = None
    n_variables: int = 0
    n_binaries: int = 0
    n_constraints: int = 0
    rung: str = "highs"
    attempts: Tuple[RungAttempt, ...] = ()
    build_time_s: float = 0.0
    #: How the portfolio executed: ``"ladder"``, ``"race"`` or ``"decompose"``.
    solver_mode: str = "ladder"
    #: Wall-clock of the whole rung race (0.0 for ladder runs).
    race_wall_s: float = 0.0
    #: Whether a cached incumbent primed the solve (incremental re-solve).
    warm_started: bool = False
    #: Whether the built model was reused from the in-process memo.
    model_reused: bool = False
    #: Model-reduction accounting (all zero with ``presolve = "off"``).
    presolve_time_s: float = 0.0
    presolve_fixed_binaries: int = 0
    presolve_dropped_constraints: int = 0
    presolve_dropped_candidates: int = 0
    #: Independent components found by the decomposition layer
    #: (0 = not attempted, 1 = the model is a single component).
    components: int = 0
    decompose_wall_s: float = 0.0


class WashScheduleIlp:
    """Builds and solves the PDW scheduling model."""

    def __init__(
        self,
        chip: Chip,
        baseline: Schedule,
        clusters: Sequence[WashCluster],
        candidates: Dict[str, List[FlowPath]],
        config: Optional[PDWConfig] = None,
    ):
        self.chip = chip
        self.baseline = baseline
        self.clusters = list(clusters)
        self.candidates = candidates
        self.config = config if config is not None else PDWConfig()
        for cluster in self.clusters:
            if not candidates.get(cluster.id):
                raise WashError(f"cluster {cluster.id!r} has no candidate paths")

        self.tasks: List[ScheduledTask] = self.baseline.tasks()
        self.horizon = self._horizon()
        self.model = Model("pdw-schedule", big_m=float(self.horizon))
        self._t: Dict[str, Variable] = {}
        self._wash_t: Dict[str, Variable] = {}
        self._x: Dict[Tuple[str, int], Variable] = {}
        self._psi: Dict[Tuple[str, str], Variable] = {}
        self._psi_sum: Dict[str, LinExpr] = {}
        #: Per-cluster wash-duration rows ``[(x_i, wash_time_i), ...]`` —
        #: the coefficient form of :meth:`_wash_duration`, reused by every
        #: batch constraint that mentions the selected wash duration.
        self._wash_dur_terms: Dict[str, List[Tuple[Variable, float]]] = {}
        #: Surviving candidate indices per cluster (original positions in
        #: the candidate pool; all of them with presolve off).
        self._survivors: Dict[str, List[int]] = {}
        self.build_time_s: float = 0.0
        self.presolve_enabled = (
            ilp_faults.resolve_presolve(getattr(self.config, "presolve", "on")) == "on"
        )
        self.presolve_info: Optional[PresolveInfo] = None
        self.presolve_time_s: float = 0.0
        self.decompose_wall_s: float = 0.0
        self.components: int = 0
        #: Solution of the most recent :meth:`solve`, kept so callers can
        #: bank it as a warm-start incumbent for structural twins.
        self.last_solution: Optional[Solution] = None

    # -- model assembly ---------------------------------------------------------

    def _horizon(self) -> int:
        wash_worst = sum(
            max(self.chip.wash_time_s(p) for p in self.candidates[c.id])
            for c in self.clusters
        )
        return self.baseline.makespan + wash_worst + 10

    def _duration_expr(self, task: ScheduledTask) -> LinExpr:
        """Effective duration: removals shrink to zero when absorbed (Eq. 7)."""
        base = LinExpr({}, float(task.duration))
        psi = self._psi_sum.get(task.id)
        if psi is not None:
            return base - task.duration * psi
        return base

    def _end_expr(self, task: ScheduledTask) -> LinExpr:
        """Reference form of ``end(task)``; the hot loops use the batch
        coefficient rows of :meth:`_add_ge_end`, which mirror it exactly."""
        return LinExpr.from_any(self._t[task.id]) + self._duration_expr(task)

    def _add_ge_end(
        self,
        var: Variable,
        task: ScheduledTask,
        name: str,
        extra: Sequence[Tuple[Variable, float]] = (),
        rhs_shift: float = 0.0,
    ) -> None:
        """Batch row for ``var >= end(task) [+ extra terms + rhs_shift]``.

        With ``end(task) = t + d - d*sum(psi)`` (Eq. 7 absorption) the row
        is ``var - t + d*sum(psi) + extra >= d + rhs_shift`` — identical to
        what ``var >= self._end_expr(task) - ...`` builds through operators,
        minus the intermediate LinExpr allocations.
        """
        d = float(task.duration)
        coeffs: List[Tuple[Variable, float]] = [(var, 1.0), (self._t[task.id], -1.0)]
        psi = self._psi_sum.get(task.id)
        if psi is not None:
            coeffs.extend((p, d * c) for p, c in psi.terms.items())
        coeffs.extend(extra)
        self.model.add_linear_constraint(coeffs, ">=", d + rhs_shift, name)

    def build(self) -> None:
        """Assemble all variables and constraints.

        With :attr:`presolve_info` set, every loop below consults it:
        tightened variable bounds, skipped dead rows/binaries, per-row
        big-M values and the surviving candidate subset.  With it ``None``
        the original formulation is emitted untouched.
        """
        m = self.model
        info = self.presolve_info
        for task in self.tasks:
            # Washes may only delay the assay, never re-pack it tighter
            # than the baseline, so each task keeps its baseline start as
            # a lower bound (this also guarantees T_delay >= 0).
            lb, ub = task.start, self.horizon
            if info is not None:
                lb = max(lb, info.est[task.id])
                ub = info.lst[task.id]
            self._t[task.id] = m.add_integer_var(f"t[{task.id}]", lb, ub)
        for cluster in self.clusters:
            lb, ub = 0, self.horizon
            if info is not None:
                lb, ub = info.wash_est[cluster.id], info.wash_lst[cluster.id]
            self._wash_t[cluster.id] = m.add_integer_var(f"tw[{cluster.id}]", lb, ub)
            cands = self.candidates[cluster.id]
            survivors = (
                info.survivors[cluster.id] if info is not None else list(range(len(cands)))
            )
            self._survivors[cluster.id] = survivors
            xs = [m.add_binary_var(f"x[{cluster.id},{i}]") for i in survivors]
            for i, x in zip(survivors, xs):
                self._x[(cluster.id, i)] = x
            self._wash_dur_terms[cluster.id] = [
                (x, float(self.chip.wash_time_s(cands[i]))) for i, x in zip(survivors, xs)
            ]
            m.add_linear_constraint([(x, 1.0) for x in xs], "==", 1.0, f"one_path[{cluster.id}]")

        self._add_integration_vars()
        self._add_order_rows()
        self._add_wash_windows()
        self._add_wash_conflicts()
        self._add_integration_constraints()
        self._add_objective()

    # -- ψ integration (Eqs. 7, 21) ------------------------------------------------

    def _add_integration_vars(self) -> None:
        if not self.config.enable_integration:
            return
        m = self.model
        removals = [t for t in self.tasks if t.kind is TaskKind.REMOVAL]
        for rm in removals:
            rm_nodes = set(rm.path or ())
            terms: List[Variable] = []
            for cluster in self.clusters:
                covering = [
                    i
                    for i in self._survivors[cluster.id]
                    if rm_nodes <= set(self.candidates[cluster.id][i])
                ]
                if not covering:
                    continue
                psi = m.add_binary_var(f"psi[{rm.id},{cluster.id}]")
                self._psi[(rm.id, cluster.id)] = psi
                m.add_linear_constraint(
                    [(psi, 1.0)] + [(self._x[(cluster.id, i)], -1.0) for i in covering],
                    "<=",
                    0.0,
                    f"psi_cover[{rm.id},{cluster.id}]",
                )
                terms.append(psi)
            if terms:
                m.add_linear_constraint(
                    [(p, 1.0) for p in terms], "<=", 1.0, f"psi_once[{rm.id}]"
                )
                self._psi_sum[rm.id] = LinExpr.sum(terms)

    # -- precedences + fixed baseline order (Eqs. 2, 3, 4, 5, 8) -----------------------

    def _emit_order_pairs(
        self,
        pairs: Iterator[Tuple[ScheduledTask, ScheduledTask, str]],
        emitted: set,
    ) -> None:
        """Emit ``t[b] >= end(a)`` rows, consulting presolve when enabled.

        Under presolve, duplicated pairs, transitively entailed pairs and
        pairs already forced by the propagated windows are dropped.
        """
        info = self.presolve_info
        if info is None:
            for a, b, name in pairs:
                self._add_ge_end(self._t[b.id], a, name)
            return
        for a, b, name in pairs:
            key = (a.id, b.id)
            if (
                key in emitted
                or key in info.redundant_pairs
                # The windows alone force b after a's latest possible end.
                or info.est[b.id] >= info.lend(a.id)
            ):
                info.dropped_constraints += 1
                continue
            emitted.add(key)
            self._add_ge_end(self._t[b.id], a, name)

    def _add_order_rows(self) -> None:
        """Emit the precedence and baseline-order rows.

        The pairs come from :func:`~repro.ilp.presolve.precedence_pairs` /
        :func:`~repro.ilp.presolve.baseline_order_pairs` — the same
        generators presolve builds its DAG from, so the analysis and the
        emitted model can never drift apart.
        """
        emitted: set = set()
        self._emit_order_pairs(precedence_pairs(self.tasks), emitted)
        self._add_baseline_order(emitted)

    def _add_baseline_order(self, emitted: set) -> None:
        """Fixed relative order of node-sharing baseline tasks (Eqs. 3, 8).

        Overridden by the free-ordering relaxation
        (:class:`~repro.core.monolithic.MonolithicWashIlp`).
        """
        self._emit_order_pairs(baseline_order_pairs(self.tasks), emitted)

    # -- wash windows (Eq. 16) -----------------------------------------------------------

    def _wash_duration(self, cluster: WashCluster) -> LinExpr:
        return LinExpr.sum(
            wt * LinExpr.from_any(x) for x, wt in self._wash_dur_terms[cluster.id]
        )

    def _wash_length(self, cluster: WashCluster) -> LinExpr:
        cands = self.candidates[cluster.id]
        return LinExpr.sum(
            self.chip.path_length_mm(cands[i]) * LinExpr.from_any(self._x[(cluster.id, i)])
            for i in self._survivors[cluster.id]
        )

    def _add_wash_windows(self) -> None:
        m = self.model
        info = self.presolve_info
        for cluster in self.clusters:
            cid = cluster.id
            tw = self._wash_t[cid]
            neg_dur = [(x, -wt) for x, wt in self._wash_dur_terms[cid]]
            for source_id in sorted(cluster.source_tasks):
                if info is not None and info.wash_est[cid] >= info.lend(source_id):
                    info.dropped_constraints += 1
                    continue
                source = self.baseline.get(source_id)
                self._add_ge_end(tw, source, f"wash_after[{cid},{source_id}]")
            for blocker_id in sorted(cluster.blocking_tasks):
                if (
                    info is not None
                    and info.est[blocker_id] >= info.wash_lst[cid] + info.max_wash[cid]
                ):
                    info.dropped_constraints += 1
                    continue
                m.add_linear_constraint(
                    [(self._t[blocker_id], 1.0), (tw, -1.0)] + neg_dur,
                    ">=",
                    0.0,
                    f"wash_before[{cid},{blocker_id}]",
                )

    # -- wash resource conflicts (Eqs. 19, 20) ----------------------------------------------

    def _add_wash_conflicts(self) -> None:
        m = self.model
        big = float(self.horizon)
        info = self.presolve_info
        task_nodes = [(task, set(task.occupied_nodes)) for task in self.tasks]
        for cluster in self.clusters:
            cid = cluster.id
            tw = self._wash_t[cid]
            neg_dur = [(x, -wt) for x, wt in self._wash_dur_terms[cid]]
            exempt = cluster.source_tasks | cluster.blocking_tasks
            before = info.before_wash.get(cid, frozenset()) if info is not None else frozenset()
            after = info.after_wash.get(cid, frozenset()) if info is not None else frozenset()
            mu_of: Dict[str, Variable] = {}
            fixed_tasks: set = set()
            cands = self.candidates[cid]
            for i in self._survivors[cid]:
                cand = cands[i]
                cand_nodes = set(cand)
                x = self._x[(cid, i)]
                wt_i = float(self.chip.wash_time_s(cand))
                for task, nodes in task_nodes:
                    if task.id in exempt:
                        continue
                    if not (cand_nodes & nodes):
                        continue
                    if task.id in before or task.id in after:
                        # The relative order is provable: both big-M rows
                        # (and this task's mu binary) are dead weight.
                        fixed_tasks.add(task.id)
                        info.dropped_constraints += 2
                        continue
                    if info is not None:
                        m_after = info.m_wash_after_task(cid, task.id)
                        m_before = info.m_task_after_wash(cid, task.id)
                        drop_before = info.est[task.id] >= info.wash_lst[cid] + wt_i
                    else:
                        m_after = m_before = big
                        drop_before = False
                    mu = mu_of.get(task.id)
                    if mu is None:
                        mu = m.add_binary_var(f"mu[{cid},{task.id}]")
                        mu_of[task.id] = mu
                    psi = self._psi.get((task.id, cid))
                    tp = self._t[task.id]
                    # μ = 1: wash after the task; μ = 0: task after the wash.
                    # w_after: tw >= tp + dur(task) - M(1-μ) - M(1-x) - Mψ
                    # as a batch row (Eq. 7 absorption folded into +dψ terms).
                    d = float(task.duration)
                    after_row: List[Tuple[Variable, float]] = [
                        (tw, 1.0), (tp, -1.0), (mu, -m_after), (x, -m_after)
                    ]
                    psum = self._psi_sum.get(task.id)
                    if psum is not None:
                        after_row.extend((p, d * c) for p, c in psum.terms.items())
                    if psi is not None:
                        after_row.append((psi, m_after))
                    m.add_linear_constraint(
                        after_row, ">=", d - 2.0 * m_after,
                        f"w_after[{cid},{i},{task.id}]",
                    )
                    if drop_before:
                        # With x_i selected the windows already force the
                        # task after the wash; the row binds nothing.
                        info.dropped_constraints += 1
                        continue
                    # w_before: tp >= tw + dur(wash) - Mμ - M(1-x) - Mψ
                    before_row: List[Tuple[Variable, float]] = [
                        (tp, 1.0), (tw, -1.0), (mu, m_before), (x, -m_before)
                    ]
                    before_row.extend(neg_dur)
                    if psi is not None:
                        before_row.append((psi, m_before))
                    m.add_linear_constraint(
                        before_row, ">=", -m_before,
                        f"w_before[{cid},{i},{task.id}]",
                    )
            if info is not None:
                info.fixed_binaries += len(fixed_tasks)

        # wash-wash conflicts (Eq. 20)
        cand_sets = {
            c.id: [(i, set(self.candidates[c.id][i])) for i in self._survivors[c.id]]
            for c in self.clusters
        }
        wash_times = {
            c.id: {i: float(self.chip.wash_time_s(self.candidates[c.id][i]))
                   for i in self._survivors[c.id]}
            for c in self.clusters
        }
        for a_idx, a in enumerate(self.clusters):
            neg_dur_a = [(x, -wt) for x, wt in self._wash_dur_terms[a.id]]
            ta = self._wash_t[a.id]
            for b in self.clusters[a_idx + 1:]:
                neg_dur_b = [(x, -wt) for x, wt in self._wash_dur_terms[b.id]]
                tb = self._wash_t[b.id]
                pair_fixed = info is not None and (a.id, b.id) in info.wash_order
                eta: Optional[Variable] = None
                conflicted = False
                for i, nodes_a in cand_sets[a.id]:
                    for j, nodes_b in cand_sets[b.id]:
                        if not (nodes_a & nodes_b):
                            continue
                        conflicted = True
                        if pair_fixed:
                            info.dropped_constraints += 2
                            continue
                        if info is not None:
                            # ww_a enforces a-after-b, ww_b the reverse.
                            drop_a = (
                                info.wash_est[a.id]
                                >= info.wash_lst[b.id] + wash_times[b.id][j]
                            )
                            drop_b = (
                                info.wash_est[b.id]
                                >= info.wash_lst[a.id] + wash_times[a.id][i]
                            )
                            m_a = info.m_wash_after_wash(b.id, a.id)
                            m_b = info.m_wash_after_wash(a.id, b.id)
                        else:
                            drop_a = drop_b = False
                            m_a = m_b = big
                        if drop_a and drop_b:
                            info.dropped_constraints += 2
                            continue
                        if eta is None:
                            eta = m.add_binary_var(f"eta[{a.id},{b.id}]")
                        xa = self._x[(a.id, i)]
                        xb = self._x[(b.id, j)]
                        # η = 1: wash a after wash b, else b after a; both
                        # rows relax by M(2 - x_a - x_b) unless selected.
                        if drop_a:
                            info.dropped_constraints += 1
                        else:
                            m.add_linear_constraint(
                                [(ta, 1.0), (tb, -1.0), (eta, -m_a), (xa, -m_a), (xb, -m_a)]
                                + neg_dur_b,
                                ">=",
                                -3.0 * m_a,
                                f"ww_a[{a.id},{b.id},{i},{j}]",
                            )
                        if drop_b:
                            info.dropped_constraints += 1
                        else:
                            m.add_linear_constraint(
                                [(tb, 1.0), (ta, -1.0), (eta, m_b), (xa, -m_b), (xb, -m_b)]
                                + neg_dur_a,
                                ">=",
                                -2.0 * m_b,
                                f"ww_b[{a.id},{b.id},{i},{j}]",
                            )
                if conflicted and eta is None and info is not None:
                    info.fixed_binaries += 1

    # -- ψ timing constraints (Eq. 21) ---------------------------------------------------

    def _add_integration_constraints(self) -> None:
        m = self.model
        big = float(self.horizon)
        info = self.presolve_info
        by_edge: Dict[Tuple[str, str], Dict[TaskKind, ScheduledTask]] = {}
        for task in self.tasks:
            if task.edge is not None:
                by_edge.setdefault(task.edge, {})[task.kind] = task
        op_task: Dict[str, ScheduledTask] = {
            t.op_id: t for t in self.tasks if t.kind is TaskKind.OPERATION
        }
        for (rm_id, cluster_id), psi in self._psi.items():
            rm = self.baseline.get(rm_id)
            tw = self._wash_t[cluster_id]
            neg_dur = [(x, -wt) for x, wt in self._wash_dur_terms[cluster_id]]
            group = by_edge.get(rm.edge or ("", ""), {})
            transport = group.get(TaskKind.TRANSPORT)
            consumer = op_task.get(rm.edge[1]) if rm.edge else None
            if transport is None or consumer is None:
                # Cannot prove the wash covers the removal's timing role.
                m.add_linear_constraint(
                    [(psi, 1.0)], "<=", 0.0, f"psi_off[{rm_id},{cluster_id}]"
                )
                continue
            # The wash plays the removal's role: start after the transport
            # that cached the excess fluid (slack M(1-ψ) when not absorbed)...
            if info is not None and info.wash_est[cluster_id] >= info.lend(transport.id):
                info.dropped_constraints += 1
            else:
                m_after = (
                    info.m_wash_after_task(cluster_id, transport.id)
                    if info is not None
                    else big
                )
                self._add_ge_end(
                    tw,
                    transport,
                    f"psi_after[{rm_id},{cluster_id}]",
                    extra=[(psi, -m_after)],
                    rhs_shift=-m_after,
                )
            # ... and finish before the consuming operation starts.
            if (
                info is not None
                and info.est[consumer.id]
                >= info.wash_lst[cluster_id] + info.max_wash[cluster_id]
            ):
                info.dropped_constraints += 1
                continue
            m_before = (
                info.m_task_after_wash(cluster_id, consumer.id) if info is not None else big
            )
            m.add_linear_constraint(
                [(self._t[consumer.id], 1.0), (tw, -1.0), (psi, -m_before)] + neg_dur,
                ">=",
                -m_before,
                f"psi_before[{rm_id},{cluster_id}]",
            )

    # -- objective (Eq. 26) ------------------------------------------------------------------

    def _add_objective(self) -> None:
        m = self.model
        info = self.presolve_info
        t_floor = info.t_floor if info is not None else 0
        t_assay = m.add_integer_var("T_assay", t_floor, self.horizon)
        for task in self.tasks:
            if info is not None and t_floor >= info.lend(task.id):
                info.dropped_constraints += 1
                continue
            self._add_ge_end(t_assay, task, f"T_ge[{task.id}]")
        for cluster in self.clusters:
            cid = cluster.id
            if (
                info is not None
                and t_floor >= info.wash_lst[cid] + info.max_wash[cid]
            ):
                info.dropped_constraints += 1
                continue
            m.add_linear_constraint(
                [(t_assay, 1.0), (self._wash_t[cid], -1.0)]
                + [(x, -wt) for x, wt in self._wash_dur_terms[cid]],
                ">=",
                0.0,
                f"T_ge_wash[{cid}]",
            )
        self.model.set_objective(self._objective_expr(self.config, t_assay))
        self._t_assay = t_assay

    def _objective_expr(self, config: PDWConfig, t_assay: Variable) -> LinExpr:
        """Eq. 26 plus the drift tie-breaker, shared with :meth:`reweight`."""
        length_total = LinExpr.sum(self._wash_length(c) for c in self.clusters)
        objective = (
            config.alpha * len(self.clusters)
            + config.beta * length_total
            + config.gamma * LinExpr.from_any(t_assay)
        )
        # Tiny pressure so tasks (and washes) do not float needlessly late;
        # washes are included so alternate-optimal wash placements collapse
        # to one canonical plan regardless of how the model was reduced.
        # The coefficient must exceed the solver's absolute-gap tolerance
        # (HiGHS: 1e-6) or a one-second tie stays unresolved and reduced/raw
        # models may report different alternate optima.
        drift = LinExpr.sum(LinExpr.from_any(v) for v in self._t.values())
        drift = drift + LinExpr.sum(LinExpr.from_any(v) for v in self._wash_t.values())
        # Same-cost candidate paths (symmetric routes) are tie-broken toward
        # the lowest pool index; survivors keep original indices, so the
        # preference is identical with and without presolve.
        pick = LinExpr.sum(
            float(i) * LinExpr.from_any(x) for (_, i), x in self._x.items()
        )
        # A free absorption (psi flips nothing else in the objective) is
        # taken, so integration ties resolve the same way in both modes.
        absorb = LinExpr.sum(LinExpr.from_any(p) for p in self._psi.values())
        return objective + 1e-5 * drift + 1e-5 * pick - 1e-5 * absorb

    def reweight(self, config: PDWConfig) -> None:
        """Re-point the built model at new objective weights (Eq. 26 only).

        The feasible region is weight-independent, so a job that differs
        from this one only in alpha/beta/gamma can reuse the variables,
        constraints and COO triplet buffers as-is — only the objective is
        rebuilt, exactly as :meth:`_add_objective` would under the new
        weights.  This is the incremental-re-solve fast path used by the
        Pareto sweep (see :mod:`repro.ilp.incremental`).
        """
        if not self.model.variables:
            raise WashError("reweight requires a built model")
        self.config = config
        self.model.set_objective(self._objective_expr(config, self._t_assay))

    # -- solving / extraction -------------------------------------------------------------------

    def ensure_built(self) -> None:
        """Run presolve (when enabled) and assemble the model exactly once."""
        if self.model.variables:
            return
        if self.presolve_enabled and self.presolve_info is None:
            started = time.perf_counter()
            with span("ilp.presolve", model=self.model.name):
                self.presolve_info = ilp_presolve.analyze(
                    self.chip,
                    self.tasks,
                    self.clusters,
                    self.candidates,
                    self.config,
                    self.horizon,
                )
            self.presolve_time_s = time.perf_counter() - started
        started = time.perf_counter()
        with span("ilp.build", model=self.model.name):
            self.build()
        self.build_time_s = time.perf_counter() - started
        if self.presolve_info is not None:
            ilp_presolve.publish(self.presolve_info)

    def solve(self, portfolio: Optional[SolverPortfolio] = None) -> IlpWashOutcome:
        """Build (if needed), solve via the degradation ladder, and extract.

        When presolve is enabled the decomposition layer gets first shot:
        a model whose interaction graph (minus the shared makespan
        variable) splits into independent components is solved per
        component and stitched; otherwise — the common case for the
        paper's benchmarks, which are one component — the portfolio solves
        the monolithic model as before.

        A proven-infeasible/unbounded model raises a clean
        :class:`InfeasibleError` / :class:`UnboundedError`;
        :class:`~repro.errors.LadderExhausted` (every backend rung failed)
        propagates so the ILP stage can fall back to greedy assembly.
        """
        self.ensure_built()
        pf = portfolio if portfolio is not None else SolverPortfolio.from_config(self.config)
        result = None
        if self.presolve_enabled:
            started = time.perf_counter()
            with span("ilp.decompose", model=self.model.name):
                attempt = ilp_decompose.try_solve(
                    self.model, pf, makespan_var=self._t_assay
                )
            self.decompose_wall_s = time.perf_counter() - started
            self.components = attempt.components
            result = attempt.result
        if result is None:
            result = pf.solve(self.model)
        solution = result.solution
        self.last_solution = solution if solution.status.has_solution else None
        if solution.status is SolveStatus.INFEASIBLE:
            raise InfeasibleError(
                f"PDW scheduling ILP is infeasible ({self.model.stats()})"
            )
        if solution.status is SolveStatus.UNBOUNDED:
            raise UnboundedError("PDW scheduling ILP is unbounded")
        if not solution.status.has_solution:  # pragma: no cover - ladder guarantees
            raise SolverError(f"PDW scheduling ILP failed: {solution.status.value}")

        starts = {task.id: solution.rounded(self._t[task.id]) for task in self.tasks}
        wash_starts, wash_paths, wash_durs = {}, {}, {}
        for cluster in self.clusters:
            wash_starts[cluster.id] = solution.rounded(self._wash_t[cluster.id])
            for i in self._survivors[cluster.id]:
                if solution.rounded(self._x[(cluster.id, i)]) == 1:
                    cand = self.candidates[cluster.id][i]
                    wash_paths[cluster.id] = cand
                    wash_durs[cluster.id] = self.chip.wash_time_s(cand)
                    break
        absorbed = {
            rm_id: cluster_id
            for (rm_id, cluster_id), psi in self._psi.items()
            if solution.rounded(psi) == 1
        }
        pinfo = self.presolve_info
        return IlpWashOutcome(
            status=solution.status,
            objective=float(solution.objective or 0.0),
            solve_time_s=solution.solve_time_s,
            starts=starts,
            wash_starts=wash_starts,
            wash_paths=wash_paths,
            wash_durations=wash_durs,
            absorbed=absorbed,
            model_stats=self.model.stats(),
            mip_gap=solution.mip_gap,
            n_variables=len(self.model.variables),
            n_binaries=self.model.num_binaries,
            n_constraints=len(self.model.constraints),
            rung=result.rung,
            attempts=result.attempts,
            build_time_s=self.build_time_s,
            solver_mode=result.mode,
            race_wall_s=result.race_wall_s,
            warm_started=pf.incumbent is not None,
            presolve_time_s=self.presolve_time_s,
            presolve_fixed_binaries=pinfo.fixed_binaries if pinfo else 0,
            presolve_dropped_constraints=pinfo.dropped_constraints if pinfo else 0,
            presolve_dropped_candidates=pinfo.dropped_candidates if pinfo else 0,
            components=self.components,
            decompose_wall_s=self.decompose_wall_s,
        )
